//! Quick single-machine probe of each study codec's speed/ratio profile
//! on synthetic float-field data (harder than checkpoint images — full
//! mantissas). For the calibrated study use `cr-workloads`'s
//! `factor_probe` or the `repro_table2` binary.

use cr_compress::{measure::measure, registry::study_codecs};
fn main() {
    // Structured-ish data: smooth f64 fields (compressible like HPC checkpoints)
    let data: Vec<u8> = (0..2_000_000u64)
        .flat_map(|i| ((i as f64 / 300.0).sin() * 1000.0).to_le_bytes())
        .collect();
    println!("input: {} MB", data.len() / 1_000_000);
    for c in study_codecs() {
        let m = measure(c.as_ref(), &data);
        println!("{:8} factor {:5.1}%  comp {:7.1} MB/s  decomp {:7.1} MB/s",
            c.label(), m.factor * 100.0, m.compress_rate / 1e6, m.decompress_rate / 1e6);
    }
}
