//! Shared LZ77 tokenizer with hash-chain match finding and optional lazy
//! matching; configurable window, chain depth and match lengths so both
//! the `gz` (32 KiB window) and `rz` (multi-MiB window) codecs reuse it.
//!
//! ## Hot-path design
//!
//! The tokenizer is on the checkpoint drain's critical path (the NDP
//! sizing argument of §5 is throughput-per-core), so it avoids the three
//! classic costs of a naive LZ matcher:
//!
//! * **Table reuse, not reallocation** — [`LzState`] owns the hash-head
//!   and chain tables and is reused across calls. Entries are validated
//!   by an *epoch base* (positions below `base` are stale), so reuse
//!   requires no clearing: compressing a 4 KiB NDP block costs 4 KiB of
//!   work, not a 384 KiB table memset. [`tokenize`] keeps a thread-local
//!   state per thread, so existing callers get reuse for free.
//! * **Word-at-a-time match extension** — candidate matches are verified
//!   with one `u32` load and extended 8 bytes per step via `u64` loads +
//!   `trailing_zeros` ([`common_prefix`]).
//! * **Insert-skip acceleration** — on incompressible runs the matcher
//!   steps further between probes (LZ4-style), and long matches insert
//!   chain entries with a stride instead of per byte, so zero pages and
//!   turbulent state both stay cheap.

use std::cell::RefCell;

/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 3;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind the
    /// current output position. `dist >= 1`, `len >= MIN_MATCH`.
    Match {
        /// Match length in bytes.
        len: u32,
        /// Backwards distance in bytes.
        dist: u32,
    },
}

/// Tokenizer effort/shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct LzParams {
    /// Window size in bytes (power of two).
    pub window: usize,
    /// Maximum match length to emit.
    pub max_match: usize,
    /// Hash-chain positions examined per match attempt.
    pub max_chain: usize,
    /// Stop searching once a match of at least this length is found.
    pub nice_len: usize,
    /// Defer a match by one byte when the next position matches longer.
    pub lazy: bool,
}

impl LzParams {
    /// Sanity-checks parameter consistency.
    pub fn validate(&self) {
        assert!(self.window.is_power_of_two());
        assert!(self.max_match >= MIN_MATCH);
        assert!(self.nice_len >= MIN_MATCH && self.nice_len <= self.max_match);
        assert!(self.max_chain >= 1);
    }
}

const HASH_BITS: u32 = 16;

/// After this many consecutive literals the probe stride starts growing.
const SKIP_TRIGGER: u32 = 32;
/// Miss count doubling interval for the probe stride (LZ4-style).
const SKIP_SHIFT: u32 = 5;
/// Probe stride upper bound on incompressible runs.
const MAX_SKIP: usize = 16;
/// Matches longer than this insert chain entries with a stride.
const DENSE_INSERT_LEN: usize = 32;

#[inline(always)]
fn hash4(data: &[u8], pos: usize) -> usize {
    // Requires pos + 4 <= data.len().
    let v = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Reusable hash-chain tables for the match finder.
///
/// Positions are stored as *global* `u32` offsets (`base + local`).
/// Every call advances `base` past the previous input, so entries from
/// earlier buffers compare as `< base` and are treated as empty — no
/// per-call clearing. When the 32-bit position space nears exhaustion
/// the tables are reset once (amortized to ~never).
#[derive(Debug)]
pub struct LzState {
    head: Vec<u32>,
    prev: Vec<u32>,
    base: u32,
}

impl Default for LzState {
    fn default() -> Self {
        Self::new()
    }
}

impl LzState {
    /// Creates an empty state; tables grow on first use.
    pub fn new() -> Self {
        LzState {
            head: Vec::new(),
            prev: Vec::new(),
            base: 1,
        }
    }

    /// Prepares the tables for an input of `len` bytes under `params`,
    /// returning the window mask to use.
    fn prepare(&mut self, len: usize, params: &LzParams) -> usize {
        if self.head.is_empty() {
            self.head = vec![0u32; 1 << HASH_BITS];
        }
        // The chain table is sized to the largest window seen; a larger
        // mask never changes which in-window candidates are reachable
        // (distance filtering bounds the walk), so mixed-window reuse is
        // exact.
        if self.prev.len() < params.window {
            self.prev = vec![0u32; params.window];
            self.head.iter_mut().for_each(|h| *h = 0);
            self.base = 1;
        }
        // Epoch rollover: reset once the u32 position space would wrap.
        if (self.base as u64) + (len as u64) + 1 >= u32::MAX as u64 {
            self.head.iter_mut().for_each(|h| *h = 0);
            self.base = 1;
        }
        self.prev.len() - 1
    }

    /// Retires the epoch after processing `len` input bytes.
    fn advance(&mut self, len: usize) {
        self.base += len as u32;
    }
}

/// Hash-chain match finder over a single buffer, borrowing the reusable
/// tables from an [`LzState`].
struct MatchFinder<'a, 's> {
    data: &'a [u8],
    head: &'s mut [u32],
    prev: &'s mut [u32],
    base: u32,
    window_mask: usize,
    params: LzParams,
}

impl<'a, 's> MatchFinder<'a, 's> {
    fn new(data: &'a [u8], params: LzParams, state: &'s mut LzState) -> Self {
        params.validate();
        let window_mask = state.prepare(data.len(), &params);
        MatchFinder {
            data,
            head: &mut state.head,
            prev: &mut state.prev,
            base: state.base,
            window_mask,
            params,
        }
    }

    /// Inserts position `pos` into the chains.
    #[inline(always)]
    fn insert(&mut self, pos: usize) {
        if pos + 4 > self.data.len() {
            return;
        }
        let h = hash4(self.data, pos);
        let gp = self.base + pos as u32;
        self.prev[gp as usize & self.window_mask] = self.head[h];
        self.head[h] = gp;
    }

    /// Finds the best match at `pos`, returning `(len, dist)` when at
    /// least `MIN_MATCH` long.
    fn best_match(&self, pos: usize) -> Option<(u32, u32)> {
        let data = self.data;
        if pos + 4 > data.len() {
            return None;
        }
        let max_len = self.params.max_match.min(data.len() - pos);
        let gp = self.base + pos as u32;
        let first4 = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let mut cand = self.head[hash4(data, pos)];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0u32;
        let mut chain = self.params.max_chain;

        while cand >= self.base && cand < gp && chain > 0 {
            let dist = (gp - cand) as usize;
            if dist > self.params.window {
                break;
            }
            chain -= 1;
            let c = (cand - self.base) as usize;
            // Quick rejects: the byte past the current best must match
            // (cheap) and the first four bytes must match (kills hash
            // collisions before the extension loop).
            if pos + best_len < data.len()
                && data[c + best_len] == data[pos + best_len]
                && first4
                    == u32::from_le_bytes(
                        data[c..c + 4].try_into().unwrap(),
                    )
            {
                let len = 4 + common_prefix_from(data, c + 4, pos + 4, max_len - 4);
                if len > best_len {
                    best_len = len;
                    best_dist = dist as u32;
                    if len >= self.params.nice_len {
                        break;
                    }
                }
            }
            let next = self.prev[cand as usize & self.window_mask];
            // Chains are strictly decreasing within an epoch; anything
            // else is a stale slot from a previous input.
            if next >= cand {
                break;
            }
            cand = next;
        }
        if best_len >= MIN_MATCH {
            Some((best_len as u32, best_dist))
        } else {
            None
        }
    }

    /// Inserts the interior of an emitted match. Long matches insert
    /// with a stride: checkpoint images are full of page-sized runs, and
    /// per-byte insertion there is pure overhead.
    #[inline]
    fn insert_span(&mut self, start: usize, len: usize) {
        let end = (start + len).min(self.data.len());
        if len <= DENSE_INSERT_LEN {
            for p in start..end {
                self.insert(p);
            }
        } else {
            let mut p = start;
            while p < end {
                self.insert(p);
                p += 4;
            }
            // Keep the tail dense so matches chain across the boundary.
            for p in end.saturating_sub(3)..end {
                self.insert(p);
            }
        }
    }
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, up to
/// `max`, comparing 8 bytes at a time (`u64` load + `trailing_zeros`).
/// Shared with the `lzf` codec's match extension.
#[inline(always)]
pub(crate) fn common_prefix_from(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    debug_assert!(a < b);
    let mut n = 0;
    while n + 8 <= max && b + n + 8 <= data.len() {
        let x = u64::from_le_bytes(data[a + n..a + n + 8].try_into().unwrap());
        let y = u64::from_le_bytes(data[b + n..b + n + 8].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            return (n + (diff.trailing_zeros() / 8) as usize).min(max);
        }
        n += 8;
    }
    while n < max && b + n < data.len() && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

thread_local! {
    /// Per-thread tokenizer state: callers of [`tokenize`] reuse tables
    /// across calls without threading a state handle through every
    /// codec. Thread-local (not global) so block-parallel compression
    /// scales without sharing.
    static TLS_STATE: RefCell<LzState> = RefCell::new(LzState::new());
}

/// Tokenizes `input` into literals and matches, appending to `tokens`.
///
/// Uses a thread-local [`LzState`], so repeated calls on the same thread
/// pay no table-allocation or clearing cost. Use [`tokenize_with`] to
/// manage the state explicitly.
pub fn tokenize(input: &[u8], params: LzParams, tokens: &mut Vec<Token>) {
    TLS_STATE.with(|s| tokenize_with(&mut s.borrow_mut(), input, params, tokens));
}

/// Tokenizes `input` with an explicit reusable state.
pub fn tokenize_with(
    state: &mut LzState,
    input: &[u8],
    params: LzParams,
    tokens: &mut Vec<Token>,
) {
    let mut mf = MatchFinder::new(input, params, state);
    let mut pos = 0usize;
    // Consecutive literal count driving the probe stride.
    let mut miss: u32 = 0;
    while pos < input.len() {
        let found = mf.best_match(pos);
        match found {
            None => {
                // Incompressible run: probe less often the longer it
                // gets. The skipped bytes are emitted as literals
                // without a search (correctness is unaffected — worst
                // case a match is found a few bytes late).
                let step = if miss >= SKIP_TRIGGER {
                    (1 + ((miss - SKIP_TRIGGER) >> SKIP_SHIFT) as usize)
                        .min(MAX_SKIP)
                } else {
                    1
                };
                mf.insert(pos);
                let end = (pos + step).min(input.len());
                for &b in &input[pos..end] {
                    tokens.push(Token::Literal(b));
                }
                miss += (end - pos) as u32;
                pos = end;
            }
            Some((mut len, mut dist)) => {
                miss = 0;
                if params.lazy && (len as usize) < params.nice_len {
                    // Peek one position ahead; if it matches longer, emit
                    // a literal and take the later match.
                    mf.insert(pos);
                    if let Some((len2, dist2)) = mf.best_match(pos + 1) {
                        if len2 > len + 1 {
                            tokens.push(Token::Literal(input[pos]));
                            pos += 1;
                            // The deferred match start needs its own
                            // chain entry (the old start already has
                            // one).
                            mf.insert(pos);
                            len = len2;
                            dist = dist2;
                        }
                    }
                    tokens.push(Token::Match { len, dist });
                    // First position already inserted when lazy-probing.
                    mf.insert_span(pos + 1, len as usize - 1);
                    pos += len as usize;
                } else {
                    tokens.push(Token::Match { len, dist });
                    mf.insert_span(pos, len as usize);
                    pos += len as usize;
                }
            }
        }
    }
    state.advance(input.len());
}

/// Reconstructs bytes from tokens (shared by decoder tests; the real
/// decoders inline this against their output buffers).
pub fn detokenize(tokens: &[Token], out: &mut Vec<u8>) -> Result<(), String> {
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                if dist == 0 || dist > out.len() {
                    return Err(format!(
                        "invalid distance {dist} at output {}",
                        out.len()
                    ));
                }
                let start = out.len() - dist;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LzParams {
        LzParams {
            window: 1 << 15,
            max_match: 258,
            max_chain: 64,
            nice_len: 128,
            lazy: true,
        }
    }

    fn round_trip(data: &[u8], p: LzParams) {
        let mut tokens = Vec::new();
        tokenize(data, p, &mut tokens);
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"", params());
        round_trip(b"a", params());
        round_trip(b"ab", params());
        round_trip(b"abc", params());
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc".to_vec();
        let mut tokens = Vec::new();
        tokenize(&data, params(), &mut tokens);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "no matches found: {tokens:?}"
        );
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." compresses as literal 'a' + overlapping match
        // (dist 1).
        let data = vec![b'a'; 1000];
        let mut tokens = Vec::new();
        tokenize(&data, params(), &mut tokens);
        assert!(tokens.len() < 20, "tokens = {}", tokens.len());
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 1, .. })));
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn random_bytes_round_trip() {
        // Pseudo-random bytes: mostly literals, but must stay lossless.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        round_trip(&data, params());
    }

    #[test]
    fn structured_floats_round_trip() {
        let data: Vec<u8> = (0..4096u32)
            .flat_map(|i| ((i as f64).sin()).to_le_bytes())
            .collect();
        round_trip(&data, params());
    }

    #[test]
    fn greedy_vs_lazy_both_round_trip() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog!"
            .repeat(20);
        for lazy in [false, true] {
            let p = LzParams {
                lazy,
                ..params()
            };
            round_trip(&data, p);
        }
    }

    #[test]
    fn small_window_limits_distances() {
        let p = LzParams {
            window: 1 << 8,
            max_match: 64,
            max_chain: 16,
            nice_len: 64,
            lazy: false,
        };
        let mut data = vec![0u8; 4096];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 97) as u8;
        }
        let mut tokens = Vec::new();
        tokenize(&data, p, &mut tokens);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!(*dist as usize <= 1 << 8);
            }
        }
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn max_match_respected() {
        let p = LzParams {
            max_match: 16,
            nice_len: 16,
            ..params()
        };
        let data = vec![b'z'; 500];
        let mut tokens = Vec::new();
        tokenize(&data, p, &mut tokens);
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!(*len <= 16);
            }
        }
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let tokens = [Token::Match { len: 4, dist: 5 }];
        let mut out = Vec::new();
        assert!(detokenize(&tokens, &mut out).is_err());
    }

    #[test]
    fn common_prefix_finds_exact_length() {
        let data = b"abcdefgh_abcdefgX";
        assert_eq!(common_prefix_from(data, 0, 9, 8), 7);
        let long = [5u8; 100];
        assert_eq!(common_prefix_from(&long, 0, 50, 50), 50);
    }

    #[test]
    fn state_reuse_is_equivalent_to_fresh_state() {
        // The epoch trick must make a warm state behave exactly like a
        // fresh one: stale entries are invisible.
        let p = params();
        let inputs: [&[u8]; 4] = [
            b"abcabcabcabcabcabc",
            &[0u8; 5000],
            b"the quick brown fox jumps over the lazy dog",
            &[0xAB; 77],
        ];
        let mut warm = LzState::new();
        for _round in 0..3 {
            for input in inputs {
                let mut fresh_tokens = Vec::new();
                tokenize_with(
                    &mut LzState::new(),
                    input,
                    p,
                    &mut fresh_tokens,
                );
                let mut warm_tokens = Vec::new();
                tokenize_with(&mut warm, input, p, &mut warm_tokens);
                assert_eq!(fresh_tokens, warm_tokens);
            }
        }
    }

    #[test]
    fn state_survives_window_growth_and_shrink() {
        let small = LzParams {
            window: 1 << 10,
            ..params()
        };
        let big = LzParams {
            window: 1 << 18,
            ..params()
        };
        let data = b"wrap around the windows ".repeat(200);
        let mut state = LzState::new();
        for p in [small, big, small, big] {
            let mut tokens = Vec::new();
            tokenize_with(&mut state, &data, p, &mut tokens);
            let mut out = Vec::new();
            detokenize(&tokens, &mut out).unwrap();
            assert_eq!(out, data);
            for t in &tokens {
                if let Token::Match { dist, .. } = t {
                    assert!(*dist as usize <= p.window);
                }
            }
        }
    }

    #[test]
    fn incompressible_skip_still_finds_later_matches() {
        // Random prefix long enough to trigger skip acceleration,
        // followed by compressible data: matches must still appear.
        let mut x = 7u64;
        let mut data: Vec<u8> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        data.extend(b"compress me compress me compress me ".repeat(100));
        let mut tokens = Vec::new();
        tokenize(&data, params(), &mut tokens);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "no matches after incompressible prefix"
        );
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }
}
