//! Shared LZ77 tokenizer with hash-chain match finding and optional lazy
//! matching; configurable window, chain depth and match lengths so both
//! the `gz` (32 KiB window) and `rz` (multi-MiB window) codecs reuse it.

/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 3;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind the
    /// current output position. `dist >= 1`, `len >= MIN_MATCH`.
    Match {
        /// Match length in bytes.
        len: u32,
        /// Backwards distance in bytes.
        dist: u32,
    },
}

/// Tokenizer effort/shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct LzParams {
    /// Window size in bytes (power of two).
    pub window: usize,
    /// Maximum match length to emit.
    pub max_match: usize,
    /// Hash-chain positions examined per match attempt.
    pub max_chain: usize,
    /// Stop searching once a match of at least this length is found.
    pub nice_len: usize,
    /// Defer a match by one byte when the next position matches longer.
    pub lazy: bool,
}

impl LzParams {
    /// Sanity-checks parameter consistency.
    pub fn validate(&self) {
        assert!(self.window.is_power_of_two());
        assert!(self.max_match >= MIN_MATCH);
        assert!(self.nice_len >= MIN_MATCH && self.nice_len <= self.max_match);
        assert!(self.max_chain >= 1);
    }
}

const HASH_BITS: u32 = 16;
const NO_POS: i32 = -1;

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    // Requires pos + 4 <= data.len().
    let v = u32::from_le_bytes([
        data[pos],
        data[pos + 1],
        data[pos + 2],
        data[pos + 3],
    ]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain match finder over a single buffer.
struct MatchFinder<'a> {
    data: &'a [u8],
    head: Vec<i32>,
    prev: Vec<i32>,
    window_mask: usize,
    params: LzParams,
}

impl<'a> MatchFinder<'a> {
    fn new(data: &'a [u8], params: LzParams) -> Self {
        params.validate();
        MatchFinder {
            data,
            head: vec![NO_POS; 1 << HASH_BITS],
            prev: vec![NO_POS; params.window],
            window_mask: params.window - 1,
            params,
        }
    }

    /// Inserts position `pos` into the chains.
    #[inline]
    fn insert(&mut self, pos: usize) {
        if pos + 4 > self.data.len() {
            return;
        }
        let h = hash4(self.data, pos);
        self.prev[pos & self.window_mask] = self.head[h];
        self.head[h] = pos as i32;
    }

    /// Finds the best match at `pos`, returning `(len, dist)` when at
    /// least `MIN_MATCH` long.
    fn best_match(&self, pos: usize) -> Option<(u32, u32)> {
        let data = self.data;
        if pos + MIN_MATCH > data.len() || pos + 4 > data.len() {
            return None;
        }
        let max_len = self.params.max_match.min(data.len() - pos);
        let min_pos = pos.saturating_sub(self.params.window);
        let mut cand = self.head[hash4(data, pos)];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0u32;
        let mut chain = self.params.max_chain;

        while cand >= 0 && chain > 0 {
            let c = cand as usize;
            if c < min_pos || c >= pos {
                break;
            }
            chain -= 1;
            // Quick reject on the byte past the current best.
            if pos + best_len < data.len()
                && data[c + best_len] == data[pos + best_len]
            {
                let len = common_prefix(data, c, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = (pos - c) as u32;
                    if len >= self.params.nice_len {
                        break;
                    }
                }
            }
            cand = self.prev[c & self.window_mask];
        }
        if best_len >= MIN_MATCH {
            Some((best_len as u32, best_dist))
        } else {
            None
        }
    }
}

#[inline]
fn common_prefix(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    debug_assert!(a < b);
    let mut n = 0;
    // Compare 8 bytes at a time.
    while n + 8 <= max {
        let x = u64::from_le_bytes(data[a + n..a + n + 8].try_into().unwrap());
        let y = u64::from_le_bytes(data[b + n..b + n + 8].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            return (n + (diff.trailing_zeros() / 8) as usize).min(max);
        }
        n += 8;
    }
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

/// Tokenizes `input` into literals and matches, appending to `tokens`.
pub fn tokenize(input: &[u8], params: LzParams, tokens: &mut Vec<Token>) {
    let mut mf = MatchFinder::new(input, params);
    let mut pos = 0usize;
    while pos < input.len() {
        let found = mf.best_match(pos);
        match found {
            None => {
                tokens.push(Token::Literal(input[pos]));
                mf.insert(pos);
                pos += 1;
            }
            Some((mut len, mut dist)) => {
                if params.lazy && (len as usize) < params.nice_len {
                    // Peek one position ahead; if it matches longer, emit
                    // a literal and take the later match.
                    mf.insert(pos);
                    if let Some((len2, dist2)) = mf.best_match(pos + 1) {
                        if len2 > len + 1 {
                            tokens.push(Token::Literal(input[pos]));
                            pos += 1;
                            len = len2;
                            dist = dist2;
                        }
                    }
                    tokens.push(Token::Match { len, dist });
                    // First position already inserted when lazy-probing.
                    for p in pos + 1..(pos + len as usize).min(input.len()) {
                        mf.insert(p);
                    }
                    pos += len as usize;
                } else {
                    tokens.push(Token::Match { len, dist });
                    for p in pos..(pos + len as usize).min(input.len()) {
                        mf.insert(p);
                    }
                    pos += len as usize;
                }
            }
        }
    }
}

/// Reconstructs bytes from tokens (shared by decoder tests; the real
/// decoders inline this against their output buffers).
pub fn detokenize(tokens: &[Token], out: &mut Vec<u8>) -> Result<(), String> {
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                if dist == 0 || dist > out.len() {
                    return Err(format!(
                        "invalid distance {dist} at output {}",
                        out.len()
                    ));
                }
                let start = out.len() - dist;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LzParams {
        LzParams {
            window: 1 << 15,
            max_match: 258,
            max_chain: 64,
            nice_len: 128,
            lazy: true,
        }
    }

    fn round_trip(data: &[u8], p: LzParams) {
        let mut tokens = Vec::new();
        tokenize(data, p, &mut tokens);
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"", params());
        round_trip(b"a", params());
        round_trip(b"ab", params());
        round_trip(b"abc", params());
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc".to_vec();
        let mut tokens = Vec::new();
        tokenize(&data, params(), &mut tokens);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "no matches found: {tokens:?}"
        );
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." compresses as literal 'a' + overlapping match
        // (dist 1).
        let data = vec![b'a'; 1000];
        let mut tokens = Vec::new();
        tokenize(&data, params(), &mut tokens);
        assert!(tokens.len() < 20, "tokens = {}", tokens.len());
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 1, .. })));
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn random_bytes_round_trip() {
        // Pseudo-random bytes: mostly literals, but must stay lossless.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        round_trip(&data, params());
    }

    #[test]
    fn structured_floats_round_trip() {
        let data: Vec<u8> = (0..4096u32)
            .flat_map(|i| ((i as f64).sin()).to_le_bytes())
            .collect();
        round_trip(&data, params());
    }

    #[test]
    fn greedy_vs_lazy_both_round_trip() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog!"
            .repeat(20);
        for lazy in [false, true] {
            let p = LzParams {
                lazy,
                ..params()
            };
            round_trip(&data, p);
        }
    }

    #[test]
    fn small_window_limits_distances() {
        let p = LzParams {
            window: 1 << 8,
            max_match: 64,
            max_chain: 16,
            nice_len: 64,
            lazy: false,
        };
        let mut data = vec![0u8; 4096];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 97) as u8;
        }
        let mut tokens = Vec::new();
        tokenize(&data, p, &mut tokens);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!(*dist as usize <= 1 << 8);
            }
        }
        let mut out = Vec::new();
        detokenize(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn max_match_respected() {
        let p = LzParams {
            max_match: 16,
            nice_len: 16,
            ..params()
        };
        let data = vec![b'z'; 500];
        let mut tokens = Vec::new();
        tokenize(&data, p, &mut tokens);
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!(*len <= 16);
            }
        }
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let tokens = [Token::Match { len: 4, dist: 5 }];
        let mut out = Vec::new();
        assert!(detokenize(&tokens, &mut out).is_err());
    }

    #[test]
    fn common_prefix_finds_exact_length() {
        let data = b"abcdefgh_abcdefgX";
        assert_eq!(common_prefix(data, 0, 9, 8), 7);
        let long = [5u8; 100];
        assert_eq!(common_prefix(&long, 0, 50, 50), 50);
    }
}
