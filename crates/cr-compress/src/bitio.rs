//! LSB-first bit stream writer and reader shared by the Huffman-based
//! codecs.

use crate::CodecError;

/// Writes bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `bits` (count ≤ 57 per call).
    #[inline]
    pub fn write_bits(&mut self, bits: u64, count: u32) {
        debug_assert!(count <= 57);
        debug_assert!(count == 64 || bits < (1u64 << count));
        self.bit_buf |= bits << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Pads to a byte boundary and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
        }
        self.out
    }

    /// Number of complete bytes written so far.
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buf |= (self.data[self.pos] as u64) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Reads `count` bits (count ≤ 57). Fails if the stream is
    /// exhausted.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CodecError> {
        debug_assert!(count <= 57);
        if self.bit_count < count {
            self.refill();
            if self.bit_count < count {
                return Err(CodecError::new("bit stream exhausted"));
            }
        }
        let mask = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        let v = self.bit_buf & mask;
        self.bit_buf >>= count;
        self.bit_count -= count;
        Ok(v)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, CodecError> {
        Ok(self.read_bits(1)? as u32)
    }

    /// Returns the next `count` bits without consuming them, zero-padded
    /// if the stream ends early (table-based Huffman decode needs a
    /// fixed-width peek near end of stream).
    #[inline]
    pub fn peek_bits(&mut self, count: u32) -> u64 {
        debug_assert!(count <= 57);
        if self.bit_count < count {
            self.refill();
        }
        let mask = (1u64 << count) - 1;
        self.bit_buf & mask
    }

    /// Consumes `count` bits previously peeked. Fails if fewer bits
    /// remain.
    #[inline]
    pub fn consume(&mut self, count: u32) -> Result<(), CodecError> {
        if self.bit_count < count {
            self.refill();
            if self.bit_count < count {
                return Err(CodecError::new("bit stream exhausted"));
            }
        }
        self.bit_buf >>= count;
        self.bit_count -= count;
        Ok(())
    }

    /// Number of bits still available.
    pub fn bits_remaining(&self) -> u64 {
        self.bit_count as u64 + 8 * (self.data.len() - self.pos) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        let values = [
            (0b1u64, 1u32),
            (0b1010, 4),
            (0x7F, 7),
            (0xDEAD, 16),
            (0x1F_FFFF, 21),
            (0, 3),
(0x1_FFFF_FFFF_FFFF, 49),
        ];
        for &(v, c) in &values {
            w.write_bits(v, c);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, c) in &values {
            assert_eq!(r.read_bits(c).unwrap(), v, "width {c}");
        }
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        // Padding bits of the final byte are readable ...
        assert!(r.read_bits(5).is_ok());
        // ... but past the final byte is an error.
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn empty_stream() {
        let bytes = BitWriter::new().finish();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn many_single_bits() {
        let mut w = BitWriter::new();
        let pattern: Vec<u64> = (0..1000).map(|i| (i * 7 % 3 == 0) as u64).collect();
        for &b in &pattern {
            w.write_bits(b, 1);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 125);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap() as u64, b);
        }
    }

    #[test]
    fn byte_len_tracks_flushed_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 8);
        w.write_bits(0b1, 1);
        assert_eq!(w.byte_len(), 1); // one full byte flushed, 1 bit pending
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
    }
}
