//! `bwz` — a bzip2-family block codec: Burrows–Wheeler transform of
//! cyclic rotations (suffix ranking by prefix doubling), move-to-front,
//! bzip2-style zero run-length encoding (RUNA/RUNB bijective base-2),
//! and canonical Huffman coding. Levels 1–9 select the block size
//! (`level × 100 kB`), exactly as bzip2's levels do.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{Decoder, Encoder};
use crate::{Codec, CodecError};

const MAGIC: u8 = 0x42; // 'B'
const BLOCK_UNIT: usize = 100_000;
const RUNA: usize = 256;
const RUNB: usize = 257;
const EOB: usize = 258;
const ALPHABET: usize = 259;
const CODE_LEN_BITS: u32 = 4;
const MAX_CODE_LEN: u32 = 15;

/// The `bwz` codec at a given level (1..=9).
#[derive(Debug, Clone, Copy)]
pub struct Bwz {
    level: u32,
}

impl Bwz {
    /// Creates the codec; `level` selects the block size
    /// (`level × 100 kB`).
    pub fn new(level: u32) -> Self {
        assert!((1..=9).contains(&level), "bwz level must be 1..=9");
        Bwz { level }
    }

    fn block_size(&self) -> usize {
        self.level as usize * BLOCK_UNIT
    }
}

/// Sorts the cyclic rotations of `data` by prefix doubling and returns
/// `(bwt_last_column, primary_index)`.
fn bwt_forward(data: &[u8]) -> (Vec<u8>, u32) {
    let n = data.len();
    debug_assert!(n > 0);
    if n == 1 {
        return (vec![data[0]], 0);
    }

    // rank[i] = equivalence class of rotation i under the first 2^k
    // chars; sa = rotations sorted by current rank pair.
    let mut rank: Vec<u32> = data.iter().map(|&b| b as u32).collect();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut tmp: Vec<u32> = vec![0; n];
    let mut pairs: Vec<(u32, u32)> = vec![(0, 0); n];
    let mut step = 1usize;

    loop {
        for i in 0..n {
            let j = (i + step) % n;
            pairs[i] = (rank[i], rank[j]);
        }
        sa.sort_unstable_by_key(|&i| pairs[i as usize]);

        // Re-rank.
        let mut r = 0u32;
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            if pairs[sa[w] as usize] != pairs[sa[w - 1] as usize] {
                r += 1;
            }
            tmp[sa[w] as usize] = r;
        }
        std::mem::swap(&mut rank, &mut tmp);
        if r as usize == n - 1 {
            break; // all rotations distinct
        }
        step *= 2;
        if step >= 2 * n {
            // Fully periodic input: ranks have converged; ties are
            // between identical rotations, so any order is correct.
            break;
        }
    }

    let mut last = Vec::with_capacity(n);
    let mut primary = 0u32;
    for (row, &start) in sa.iter().enumerate() {
        let s = start as usize;
        last.push(data[(s + n - 1) % n]);
        if s == 0 {
            primary = row as u32;
        }
    }
    (last, primary)
}

/// Inverts the BWT given the last column and the primary index.
fn bwt_inverse(last: &[u8], primary: u32) -> Result<Vec<u8>, CodecError> {
    let n = last.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if primary as usize >= n {
        return Err(CodecError::new("primary index out of range"));
    }
    // cnt[c] = rows whose first char sorts before c; lf[i] = row of the
    // rotation starting one char earlier.
    let mut counts = [0u32; 256];
    for &b in last {
        counts[b as usize] += 1;
    }
    let mut starts = [0u32; 256];
    let mut acc = 0u32;
    for c in 0..256 {
        starts[c] = acc;
        acc += counts[c];
    }
    let mut lf = vec![0u32; n];
    let mut seen = [0u32; 256];
    for (i, &b) in last.iter().enumerate() {
        lf[i] = starts[b as usize] + seen[b as usize];
        seen[b as usize] += 1;
    }

    let mut out = vec![0u8; n];
    let mut row = primary as usize;
    for k in (0..n).rev() {
        out[k] = last[row];
        row = lf[row] as usize;
    }
    Ok(out)
}

/// Move-to-front transform.
fn mtf_forward(data: &[u8]) -> Vec<u8> {
    let mut order: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let idx = order.iter().position(|&x| x == b).unwrap();
            order.copy_within(0..idx, 1);
            order[0] = b;
            idx as u8
        })
        .collect()
}

/// Inverse move-to-front.
fn mtf_inverse(data: &[u8]) -> Vec<u8> {
    let mut order: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&i| {
            let idx = i as usize;
            let b = order[idx];
            order.copy_within(0..idx, 1);
            order[0] = b;
            b
        })
        .collect()
}

/// bzip2-style RLE of MTF zeros: a run of `n` zeros becomes bijective
/// base-2 digits (RUNA = 1, RUNB = 2, least significant first); nonzero
/// MTF byte `v` becomes symbol `v`.
fn rle_encode(mtf: &[u8], symbols: &mut Vec<u16>) {
    let mut run = 0u64;
    let flush = |run: &mut u64, symbols: &mut Vec<u16>| {
        let mut n = *run;
        while n > 0 {
            // Bijective base-2 digit: 1 -> RUNA, 2 -> RUNB.
            if n % 2 == 1 {
                symbols.push(RUNA as u16);
                n = (n - 1) / 2;
            } else {
                symbols.push(RUNB as u16);
                n = (n - 2) / 2;
            }
        }
        *run = 0;
    };
    for &b in mtf {
        if b == 0 {
            run += 1;
        } else {
            flush(&mut run, symbols);
            symbols.push(b as u16);
        }
    }
    flush(&mut run, symbols);
}

/// Inverse of [`rle_encode`].
fn rle_decode(symbols: &[u16], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let mut run = 0u64;
    let mut place = 1u64;
    let flush = |run: &mut u64, place: &mut u64, out: &mut Vec<u8>| {
        for _ in 0..*run {
            out.push(0);
        }
        *run = 0;
        *place = 1;
    };
    for &s in symbols {
        match s as usize {
            RUNA => {
                run += place;
                place *= 2;
            }
            RUNB => {
                run += 2 * place;
                place *= 2;
            }
            v if v < 256 && v > 0 => {
                flush(&mut run, &mut place, out);
                out.push(v as u8);
            }
            _ => return Err(CodecError::new("invalid RLE symbol")),
        }
    }
    flush(&mut run, &mut place, out);
    Ok(())
}

fn compress_impl(codec: &Bwz, input: &[u8], out: &mut Vec<u8>) {
    out.push(MAGIC);
    out.push(codec.level as u8);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    if input.is_empty() {
        return;
    }
    let mut w = BitWriter::new();
    let mut symbols: Vec<u16> = Vec::new();
    for block in input.chunks(codec.block_size()) {
        let (last, primary) = bwt_forward(block);
        let mtf = mtf_forward(&last);
        symbols.clear();
        rle_encode(&mtf, &mut symbols);

        w.write_bits(block.len() as u64, 32);
        w.write_bits(primary as u64, 32);

        let mut freqs = vec![0u64; ALPHABET];
        for &s in &symbols {
            freqs[s as usize] += 1;
        }
        freqs[EOB] += 1;
        let (enc, lens) = Encoder::from_freqs(&freqs, MAX_CODE_LEN);
        for &l in &lens {
            w.write_bits(l as u64, CODE_LEN_BITS);
        }
        for &s in &symbols {
            enc.write(&mut w, s as usize);
        }
        enc.write(&mut w, EOB);
    }
    out.extend_from_slice(&w.finish());
}

fn decompress_impl(input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    if input.len() < 10 || input[0] != MAGIC {
        return Err(CodecError::new("bad bwz header"));
    }
    let total = u64::from_le_bytes(input[2..10].try_into().unwrap()) as usize;
    out.reserve(total);
    if total == 0 {
        return Ok(());
    }
    let mut r = BitReader::new(&input[10..]);
    let mut symbols: Vec<u16> = Vec::new();
    while out.len() < total {
        let block_len = r.read_bits(32)? as usize;
        let primary = r.read_bits(32)? as u32;
        if block_len == 0 || out.len() + block_len > total {
            return Err(CodecError::new("invalid block length"));
        }
        let mut lens = vec![0u32; ALPHABET];
        for l in lens.iter_mut() {
            *l = r.read_bits(CODE_LEN_BITS)? as u32;
        }
        let dec = Decoder::from_lengths(&lens)?;
        symbols.clear();
        loop {
            let s = dec.read(&mut r)?;
            if s as usize == EOB {
                break;
            }
            symbols.push(s);
            if symbols.len() > 2 * block_len + 64 {
                return Err(CodecError::new("symbol stream overruns block"));
            }
        }
        let mut mtf = Vec::with_capacity(block_len);
        rle_decode(&symbols, &mut mtf)?;
        if mtf.len() != block_len {
            return Err(CodecError::new("MTF length mismatch"));
        }
        let last = mtf_inverse(&mtf);
        let data = bwt_inverse(&last, primary)?;
        out.extend_from_slice(&data);
    }
    Ok(())
}

impl Codec for Bwz {
    fn name(&self) -> &'static str {
        "bwz"
    }

    fn level(&self) -> u32 {
        self.level
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        compress_impl(self, input, out);
    }

    fn compress_append(&self, input: &[u8], out: &mut Vec<u8>) {
        compress_impl(self, input, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        out.clear();
        decompress_impl(input, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bwt_known_example() {
        // Classic example: "banana" rotations sorted ->
        // last column "nnbaaa", primary index 3.
        let (last, primary) = bwt_forward(b"banana");
        assert_eq!(&last, b"nnbaaa");
        assert_eq!(primary, 3);
        let back = bwt_inverse(&last, primary).unwrap();
        assert_eq!(&back, b"banana");
    }

    #[test]
    fn bwt_round_trips_edge_cases() {
        for data in [
            b"a".to_vec(),
            b"ab".to_vec(),
            b"aaaa".to_vec(),        // fully periodic
            b"abababab".to_vec(),    // periodic, period 2
            b"abcabcabc".to_vec(),   // periodic, period 3
            (0u8..=255).collect::<Vec<u8>>(),
            vec![0u8; 1000],
        ] {
            let (last, primary) = bwt_forward(&data);
            let back = bwt_inverse(&last, primary).unwrap();
            assert_eq!(back, data, "failed on {data:?}");
        }
    }

    #[test]
    fn bwt_random_round_trip() {
        let mut x = 7u64;
        let data: Vec<u8> = (0..30_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 40) as u8 % 16 // small alphabet -> many ties
            })
            .collect();
        let (last, primary) = bwt_forward(&data);
        assert_eq!(bwt_inverse(&last, primary).unwrap(), data);
    }

    #[test]
    fn mtf_round_trip_and_zeros() {
        let data = b"aaabbbcccaaa".to_vec();
        let mtf = mtf_forward(&data);
        // Repeated symbols become zeros after the first occurrence.
        assert_eq!(mtf[1], 0);
        assert_eq!(mtf[2], 0);
        assert_eq!(mtf_inverse(&mtf), data);
    }

    #[test]
    fn rle_round_trip_runs() {
        for run_len in [1usize, 2, 3, 4, 7, 8, 100, 1000] {
            let mut mtf = vec![0u8; run_len];
            mtf.push(5);
            mtf.extend(vec![0u8; run_len / 2]);
            let mut syms = Vec::new();
            rle_encode(&mtf, &mut syms);
            let mut back = Vec::new();
            rle_decode(&syms, &mut back).unwrap();
            assert_eq!(back, mtf, "run_len {run_len}");
        }
    }

    #[test]
    fn rle_long_runs_are_logarithmic() {
        let mtf = vec![0u8; 1_000_000];
        let mut syms = Vec::new();
        rle_encode(&mtf, &mut syms);
        assert!(syms.len() <= 21, "run encoded in {} symbols", syms.len());
    }

    fn round_trip_level(data: &[u8], level: u32) -> usize {
        let c = Bwz::new(level);
        let compressed = c.compress_to_vec(data);
        let restored = c.decompress_to_vec(&compressed).unwrap();
        assert_eq!(restored, data, "level {level}");
        compressed.len()
    }

    #[test]
    fn empty_and_tiny() {
        round_trip_level(b"", 1);
        round_trip_level(b"z", 1);
        round_trip_level(b"zz", 9);
    }

    #[test]
    fn text_compresses_better_than_half() {
        let data = b"multilevel checkpointing stores frequent checkpoints \
                     to node-local storage and occasional checkpoints to \
                     the parallel file system. "
            .repeat(500);
        let n = round_trip_level(&data, 1);
        assert!(n < data.len() / 8, "{n} of {}", data.len());
    }

    #[test]
    fn multi_block_input() {
        let data = b"block boundary test ".repeat(12_000); // 240 kB, 3 blocks at level 1
        let n = round_trip_level(&data, 1);
        assert!(n < data.len() / 8);
    }

    #[test]
    fn level9_beats_level1_on_large_structured_data() {
        let data: Vec<u8> = (0..60_000u32)
            .flat_map(|i| ((i / 7) as f64).sqrt().to_le_bytes())
            .collect(); // 480 kB
        let n1 = round_trip_level(&data, 1);
        let n9 = round_trip_level(&data, 9);
        assert!(
            n9 <= n1 + n1 / 50,
            "level 9 ({n9}) much worse than level 1 ({n1})"
        );
    }

    #[test]
    fn incompressible_data_survives() {
        let mut x = 3u64;
        let data: Vec<u8> = (0..150_000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (x >> 33) as u8
            })
            .collect();
        let n = round_trip_level(&data, 1);
        assert!(n < data.len() + data.len() / 10);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let c = Bwz::new(1);
        assert!(c.decompress_to_vec(b"junk").is_err());
        let data = b"hello bwz hello bwz ".repeat(50);
        let compressed = c.compress_to_vec(&data);
        for cut in [0, 3, 10, compressed.len() / 2] {
            assert!(c.decompress_to_vec(&compressed[..cut]).is_err());
        }
    }

    #[test]
    fn corrupt_primary_index_detected() {
        let c = Bwz::new(1);
        let data = b"abcdefgh".repeat(100);
        let mut compressed = c.compress_to_vec(&data);
        // Flip bits in the primary index field (after the 10-byte
        // header, second 32-bit bit-field). Must error or produce wrong
        // output, never panic.
        compressed[14] ^= 0xFF;
        let _ = c.decompress_to_vec(&compressed);
    }
}
