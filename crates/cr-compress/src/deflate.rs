//! `gz` — a DEFLATE-family codec: LZSS over a 32 KiB window with
//! hash-chain match finding and lazy matching, followed by per-block
//! canonical Huffman coding of a literal/length alphabet and a distance
//! alphabet with DEFLATE's extra-bits bucketing. Levels 1–9 trade chain
//! depth and lazy evaluation for ratio, mirroring `gzip`'s levels.
//!
//! The container is this crate's own (byte header + one continuous bit
//! stream of blocks), not RFC 1951 — both directions are implemented
//! here, so wire compatibility is not needed.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{Decoder, Encoder};
use crate::lz::{tokenize, LzParams, Token};
use crate::{Codec, CodecError};

const MAGIC: u8 = 0x47; // 'G'
const BLOCK_SIZE: usize = 1 << 18;
const WINDOW: usize = 1 << 15;
const MAX_MATCH: usize = 258;
const EOB: usize = 256;
const NUM_LITLEN: usize = 286;
const NUM_DIST: usize = 30;
const CODE_LEN_BITS: u32 = 4;
const MAX_CODE_LEN: u32 = 15;

/// Length-code bucketing: `(base_length, extra_bits)` for codes
/// 257..=285 mapped to indices 0..=28.
fn length_table() -> [(u32, u32); 29] {
    let mut t = [(0u32, 0u32); 29];
    let mut len = 3u32;
    for (i, slot) in t.iter_mut().enumerate() {
        let extra = if i < 8 {
            0
        } else {
            (i as u32 - 4) / 4
        };
        *slot = (len, extra);
        len += 1 << extra;
    }
    // Code 285 is the special "length 258, 0 extra bits" case.
    t[28] = (258, 0);
    t
}

/// Distance-code bucketing: `(base_distance, extra_bits)` for codes
/// 0..=29.
fn dist_table() -> [(u32, u32); 30] {
    let mut t = [(0u32, 0u32); 30];
    let mut dist = 1u32;
    for (i, slot) in t.iter_mut().enumerate() {
        let extra = if i < 4 { 0 } else { (i as u32 - 2) / 2 };
        *slot = (dist, extra);
        dist += 1 << extra;
    }
    t
}

/// Finds the code index for a length, returning `(index, extra_value)`.
#[inline]
fn length_code(tables: &[(u32, u32); 29], len: u32) -> (usize, u32) {
    debug_assert!((3..=258).contains(&len));
    if len == 258 {
        return (28, 0);
    }
    // Binary search over bases.
    let mut idx = match tables.binary_search_by_key(&len, |&(b, _)| b) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    if idx == 28 {
        idx = 27; // 258 handled above; bucket 27 ends at 257
    }
    (idx, len - tables[idx].0)
}

/// Finds the code index for a distance, returning `(index, extra_value)`.
#[inline]
fn dist_code(tables: &[(u32, u32); 30], dist: u32) -> (usize, u32) {
    debug_assert!(dist >= 1);
    let idx = match tables.binary_search_by_key(&dist, |&(b, _)| b) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    (idx, dist - tables[idx].0)
}

/// The `gz` codec at a given level (1..=9).
#[derive(Debug, Clone, Copy)]
pub struct Deflate {
    level: u32,
}

impl Deflate {
    /// Creates the codec; `level` must be in `1..=9`.
    pub fn new(level: u32) -> Self {
        assert!((1..=9).contains(&level), "gz level must be 1..=9");
        Deflate { level }
    }

    fn lz_params(&self) -> LzParams {
        let (max_chain, nice_len, lazy) = match self.level {
            1 => (8, 16, false),
            2 => (16, 32, false),
            3 => (32, 32, false),
            4 => (32, 64, true),
            5 => (64, 96, true),
            6 => (128, 128, true),
            7 => (256, 196, true),
            8 => (512, 258, true),
            _ => (1024, 258, true),
        };
        LzParams {
            window: WINDOW,
            max_match: MAX_MATCH,
            max_chain,
            nice_len,
            lazy,
        }
    }
}

fn write_lengths(w: &mut BitWriter, lengths: &[u32]) {
    for &l in lengths {
        debug_assert!(l <= MAX_CODE_LEN);
        w.write_bits(l as u64, CODE_LEN_BITS);
    }
}

fn read_lengths(
    r: &mut BitReader<'_>,
    n: usize,
) -> Result<Vec<u32>, CodecError> {
    (0..n)
        .map(|_| r.read_bits(CODE_LEN_BITS).map(|v| v as u32))
        .collect()
}

fn compress_impl(codec: &Deflate, input: &[u8], out: &mut Vec<u8>) {
    out.push(MAGIC);
    out.push(codec.level as u8);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    if input.is_empty() {
        return;
    }

    let ltab = length_table();
    let dtab = dist_table();
    let params = codec.lz_params();
    let mut w = BitWriter::new();
    let mut tokens = Vec::new();

    for block in input.chunks(BLOCK_SIZE) {
        tokens.clear();
        {
            let mut t = cr_obs::stage::timer(cr_obs::stage::Stage::Tokenize);
            tokenize(block, params, &mut tokens);
            if let Some(t) = t.as_mut() {
                t.add_bytes(block.len() as u64);
            }
        }
        let mut entropy_t =
            cr_obs::stage::timer(cr_obs::stage::Stage::Entropy);

        // Frequency pass.
        let mut lit_freq = vec![0u64; NUM_LITLEN];
        let mut dist_freq = vec![0u64; NUM_DIST];
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    lit_freq[257 + length_code(&ltab, len).0] += 1;
                    dist_freq[dist_code(&dtab, dist).0] += 1;
                }
            }
        }
        lit_freq[EOB] += 1;

        let (lit_enc, lit_lens) =
            Encoder::from_freqs(&lit_freq, MAX_CODE_LEN);
        let (dist_enc, dist_lens) =
            Encoder::from_freqs(&dist_freq, MAX_CODE_LEN);
        write_lengths(&mut w, &lit_lens);
        write_lengths(&mut w, &dist_lens);

        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_enc.write(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let (lc, lextra) = length_code(&ltab, len);
                    lit_enc.write(&mut w, 257 + lc);
                    if ltab[lc].1 > 0 {
                        w.write_bits(lextra as u64, ltab[lc].1);
                    }
                    let (dc, dextra) = dist_code(&dtab, dist);
                    dist_enc.write(&mut w, dc);
                    if dtab[dc].1 > 0 {
                        w.write_bits(dextra as u64, dtab[dc].1);
                    }
                }
            }
        }
        lit_enc.write(&mut w, EOB);
        if let Some(t) = entropy_t.as_mut() {
            t.add_bytes(block.len() as u64);
        }
        drop(entropy_t);
    }
    out.extend_from_slice(&w.finish());
}

fn decompress_impl(input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    if input.len() < 10 || input[0] != MAGIC {
        return Err(CodecError::new("bad gz header"));
    }
    let total = u64::from_le_bytes(input[2..10].try_into().unwrap()) as usize;
    out.reserve(total);
    if total == 0 {
        return Ok(());
    }
    let ltab = length_table();
    let dtab = dist_table();
    let mut r = BitReader::new(&input[10..]);

    while out.len() < total {
        let block_start = out.len();
        let block_limit = (total - block_start).min(BLOCK_SIZE);
        let lit_lens = read_lengths(&mut r, NUM_LITLEN)?;
        let dist_lens = read_lengths(&mut r, NUM_DIST)?;
        let lit_dec = Decoder::from_lengths(&lit_lens)?;
        let dist_dec = Decoder::from_lengths(&dist_lens)?;

        loop {
            let sym = lit_dec.read(&mut r)? as usize;
            if sym == EOB {
                break;
            }
            if sym < 256 {
                out.push(sym as u8);
            } else {
                let lc = sym - 257;
                if lc >= 29 {
                    return Err(CodecError::new("invalid length code"));
                }
                let (base, extra) = ltab[lc];
                let len = base + r.read_bits(extra)? as u32;
                let dc = dist_dec.read(&mut r)? as usize;
                if dc >= NUM_DIST {
                    return Err(CodecError::new("invalid distance code"));
                }
                let (dbase, dextra) = dtab[dc];
                let dist = (dbase + r.read_bits(dextra)? as u32) as usize;
                let within = out.len() - block_start;
                if dist == 0 || dist > within {
                    return Err(CodecError::new("distance out of block"));
                }
                let start = out.len() - dist;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            if out.len() - block_start > block_limit {
                return Err(CodecError::new("block overruns declared size"));
            }
        }
        if out.len() - block_start != block_limit {
            return Err(CodecError::new("block size mismatch"));
        }
    }
    Ok(())
}

impl Codec for Deflate {
    fn name(&self) -> &'static str {
        "gz"
    }

    fn level(&self) -> u32 {
        self.level
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        compress_impl(self, input, out);
    }

    fn compress_append(&self, input: &[u8], out: &mut Vec<u8>) {
        compress_impl(self, input, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        out.clear();
        decompress_impl(input, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_level(data: &[u8], level: u32) -> usize {
        let c = Deflate::new(level);
        let compressed = c.compress_to_vec(data);
        let restored = c.decompress_to_vec(&compressed).unwrap();
        assert_eq!(restored, data, "level {level}");
        compressed.len()
    }

    fn round_trip(data: &[u8]) -> usize {
        round_trip_level(data, 6)
    }

    #[test]
    fn bucket_tables_match_deflate_spec() {
        let lt = length_table();
        assert_eq!(lt[0], (3, 0));
        assert_eq!(lt[7], (10, 0));
        assert_eq!(lt[8], (11, 1));
        assert_eq!(lt[27], (227, 5));
        assert_eq!(lt[28], (258, 0));
        let dt = dist_table();
        assert_eq!(dt[0], (1, 0));
        assert_eq!(dt[3], (4, 0));
        assert_eq!(dt[4], (5, 1));
        assert_eq!(dt[29], (24_577, 13));
    }

    #[test]
    fn code_lookup_inverts_tables() {
        let lt = length_table();
        for len in 3..=258u32 {
            let (idx, extra) = length_code(&lt, len);
            assert_eq!(lt[idx].0 + extra, len, "len {len}");
            assert!(extra < (1 << lt[idx].1) || lt[idx].1 == 0);
        }
        let dt = dist_table();
        for dist in (1..=32_768u32).step_by(7) {
            let (idx, extra) = dist_code(&dt, dist);
            assert_eq!(dt[idx].0 + extra, dist, "dist {dist}");
        }
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"x");
        round_trip(b"ab");
    }

    #[test]
    fn text_compresses_well() {
        let data = b"It involves saving the state of the application \
                     required to resume the application to stable storage."
            .repeat(200);
        let n = round_trip(&data);
        assert!(n < data.len() / 10, "{n} of {}", data.len());
    }

    #[test]
    fn all_levels_round_trip() {
        let data: Vec<u8> = (0..50_000u32)
            .flat_map(|i| ((i as f64 / 100.0).sin() as f32).to_le_bytes())
            .collect();
        let mut sizes = Vec::new();
        for level in 1..=9 {
            sizes.push(round_trip_level(&data, level));
        }
        // Higher levels never much worse than level 1.
        assert!(*sizes.last().unwrap() <= sizes[0] + sizes[0] / 20);
    }

    #[test]
    fn multi_block_inputs() {
        // Exceeds BLOCK_SIZE to exercise block framing.
        let data = b"0123456789abcdef".repeat(40_000); // 640 KB
        assert!(data.len() > BLOCK_SIZE);
        let n = round_trip(&data);
        assert!(n < data.len() / 20);
    }

    #[test]
    fn incompressible_data_survives() {
        let mut x = 0xDEADBEEFu64;
        let data: Vec<u8> = (0..300_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect();
        let n = round_trip(&data);
        // Huffman on random bytes: small overhead only.
        assert!(n < data.len() + data.len() / 10);
    }

    #[test]
    fn zeros_compress_to_almost_nothing() {
        let data = vec![0u8; 1 << 20];
        let n = round_trip(&data);
        assert!(n < 2048, "1 MiB of zeros -> {n} bytes");
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let c = Deflate::new(6);
        assert!(c.decompress_to_vec(b"nope").is_err());
        let data = b"some compressible payload ".repeat(100);
        let compressed = c.compress_to_vec(&data);
        for cut in [0, 1, 9, 10, compressed.len() / 2] {
            assert!(
                c.decompress_to_vec(&compressed[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn corrupt_bitstream_is_an_error_not_a_panic() {
        let c = Deflate::new(3);
        let data = b"abcdefgh".repeat(1000);
        let mut compressed = c.compress_to_vec(&data);
        let len = compressed.len();
        for i in (10..len).step_by(97) {
            compressed[i] ^= 0x55;
            let _ = c.decompress_to_vec(&compressed); // must not panic
            compressed[i] ^= 0x55;
        }
    }

    #[test]
    #[should_panic(expected = "gz level")]
    fn invalid_level_panics() {
        let _ = Deflate::new(0);
    }
}
