//! `lzf` — a byte-oriented greedy LZ77 codec in the LZ4 family: single
//! hash-table match finder, 64 KiB window, token/extension encoding of
//! literal runs and matches, no entropy stage. Very fast, modest ratio —
//! the profile of the paper's `lz4(1)`.
//!
//! The hot loop borrows three tricks from the reference encoders:
//! a thread-local hash table revalidated by an epoch base (no 256 KiB
//! memset per call — it matters when NDP blocks are 4 KiB), `u64`
//! word-at-a-time match extension, and LZ4-style skip acceleration that
//! probes less often the longer an incompressible run gets.

use std::cell::RefCell;

use crate::lz::common_prefix_from;
use crate::{Codec, CodecError};

const MAGIC: u8 = 0x4C;
const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65_535;
const HASH_BITS: u32 = 16;
/// Probe count doubling interval for skip acceleration (LZ4 uses 6).
const SKIP_SHIFT: u32 = 6;
/// Upper bound on the probe stride in incompressible runs.
const MAX_STEP: usize = 32;

/// The `lzf` codec. Only level 1 exists, matching `lz4(1)` in the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lzf;

impl Lzf {
    /// Creates the codec.
    pub fn new() -> Self {
        Lzf
    }
}

#[inline]
fn hash(v: u32) -> usize {
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32(data: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap())
}

/// Emits a run-length in token-nibble + 255-extension form.
#[inline]
fn push_len(out: &mut Vec<u8>, mut len: usize) {
    // Caller already encoded min(len, 15) in the token nibble.
    len -= 15;
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

/// Thread-local hash table with epoch revalidation: entries store
/// `base + position`; anything below `base` is stale (from an earlier
/// input) and reads as empty, so reuse needs no clearing.
struct LzfState {
    table: Vec<u32>,
    base: u32,
}

impl LzfState {
    fn prepare(&mut self, len: usize) {
        if self.table.is_empty() {
            self.table = vec![0u32; 1 << HASH_BITS];
        }
        if (self.base as u64) + (len as u64) + 1 >= u32::MAX as u64 {
            self.table.iter_mut().for_each(|t| *t = 0);
            self.base = 1;
        }
    }
}

thread_local! {
    static TLS_STATE: RefCell<LzfState> = const {
        RefCell::new(LzfState {
            table: Vec::new(),
            base: 1,
        })
    };
}

fn compress_impl(input: &[u8], out: &mut Vec<u8>) {
    out.push(MAGIC);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    if input.is_empty() {
        return;
    }
    TLS_STATE.with(|s| compress_body(&mut s.borrow_mut(), input, out));
}

fn compress_body(state: &mut LzfState, input: &[u8], out: &mut Vec<u8>) {
    state.prepare(input.len());
    let base = state.base;
    let table = &mut state.table;
    let mut pos = 0usize;
    let mut literal_start = 0usize;
    let end = input.len();
    // Last few bytes are always emitted as literals (no 4-byte read).
    let match_limit = end.saturating_sub(MIN_MATCH);
    // Failed probes since the last match; drives the skip stride.
    let mut probes = 0u32;

    while pos <= match_limit && end - pos >= MIN_MATCH {
        let h = hash(read_u32(input, pos));
        let cand = table[h];
        table[h] = base + pos as u32;
        let found = cand >= base && {
            let c = (cand - base) as usize;
            c < pos
                && pos - c <= MAX_OFFSET
                && read_u32(input, c) == read_u32(input, pos)
        };
        if !found {
            // Skip acceleration: on a long literal run, step further
            // between probes. Worst case a later match starts a few
            // bytes late; incompressible data stops costing one probe
            // per byte.
            let step =
                (1 + (probes >> SKIP_SHIFT) as usize).min(MAX_STEP);
            probes += 1;
            pos += step;
            continue;
        }
        probes = 0;
        let cand = (cand - base) as usize;
        // Extend the match 8 bytes at a time.
        let len = MIN_MATCH
            + common_prefix_from(
                input,
                cand + MIN_MATCH,
                pos + MIN_MATCH,
                end - pos - MIN_MATCH,
            );

        // Emit sequence: literals since literal_start, then the match.
        let lit_len = pos - literal_start;
        let tok_lit = lit_len.min(15);
        let tok_match = (len - MIN_MATCH).min(15);
        out.push(((tok_lit as u8) << 4) | tok_match as u8);
        if lit_len >= 15 {
            push_len(out, lit_len);
        }
        out.extend_from_slice(&input[literal_start..pos]);
        out.extend_from_slice(&((pos - cand) as u16).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            push_len(out, len - MIN_MATCH);
        }

        // Insert a couple of positions inside the match to keep the
        // table warm without paying per-byte cost.
        let insert_to = (pos + len).min(match_limit);
        let mut p = pos + 1;
        while p < insert_to {
            table[hash(read_u32(input, p))] = base + p as u32;
            p += 3;
        }

        pos += len;
        literal_start = pos;
    }

    // Trailing literals: token with match nibble 0xF+sentinel? Use a
    // final sequence marked by literal-only token (match part unused:
    // offset 0 signals end).
    let lit_len = end - literal_start;
    let tok_lit = lit_len.min(15);
    out.push(((tok_lit as u8) << 4) | 0x0F);
    if lit_len >= 15 {
        push_len(out, lit_len);
    }
    out.extend_from_slice(&input[literal_start..end]);
    out.extend_from_slice(&0u16.to_le_bytes()); // offset 0 = terminator

    // Retire this input's position range; stale entries now read empty.
    state.base += input.len() as u32;
}

fn read_len(
    input: &[u8],
    pos: &mut usize,
    base: usize,
) -> Result<usize, CodecError> {
    let mut len = base;
    loop {
        let b = *input
            .get(*pos)
            .ok_or_else(|| CodecError::new("truncated length"))?;
        *pos += 1;
        len += b as usize;
        if b != 255 {
            return Ok(len);
        }
    }
}

fn decompress_impl(input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    if input.first() != Some(&MAGIC) {
        return Err(CodecError::new("bad lzf magic"));
    }
    if input.len() < 9 {
        return Err(CodecError::new("truncated lzf header"));
    }
    let total = u64::from_le_bytes(input[1..9].try_into().unwrap()) as usize;
    out.reserve(total);
    let mut pos = 9usize;
    if total == 0 {
        return Ok(());
    }

    loop {
        let token = *input
            .get(pos)
            .ok_or_else(|| CodecError::new("truncated token"))?;
        pos += 1;
        // Literals.
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len = read_len(input, &mut pos, 15)?;
        }
        let lit_end = pos
            .checked_add(lit_len)
            .ok_or_else(|| CodecError::new("literal overflow"))?;
        if lit_end > input.len() {
            return Err(CodecError::new("literals past end of input"));
        }
        out.extend_from_slice(&input[pos..lit_end]);
        pos = lit_end;

        // Offset (0 terminates the stream).
        if pos + 2 > input.len() {
            return Err(CodecError::new("truncated offset"));
        }
        let offset =
            u16::from_le_bytes(input[pos..pos + 2].try_into().unwrap())
                as usize;
        pos += 2;
        if offset == 0 {
            break;
        }

        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len = read_len(input, &mut pos, 15)?;
        }
        match_len += MIN_MATCH;
        if offset > out.len() {
            return Err(CodecError::new("match offset before stream start"));
        }
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }

    if out.len() != total {
        return Err(CodecError::new(format!(
            "length mismatch: expected {total}, got {}",
            out.len()
        )));
    }
    Ok(())
}

impl Codec for Lzf {
    fn name(&self) -> &'static str {
        "lzf"
    }

    fn level(&self) -> u32 {
        1
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        compress_impl(input, out);
    }

    fn compress_append(&self, input: &[u8], out: &mut Vec<u8>) {
        compress_impl(input, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        out.clear();
        decompress_impl(input, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let c = Lzf::new();
        let compressed = c.compress_to_vec(data);
        let restored = c.decompress_to_vec(&compressed).unwrap();
        assert_eq!(restored, data);
        compressed.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(round_trip(b""), 9);
    }

    #[test]
    fn short_inputs() {
        for n in 1..20 {
            let data: Vec<u8> = (0..n).map(|i| i as u8).collect();
            round_trip(&data);
        }
    }

    #[test]
    fn compresses_runs() {
        let data = vec![7u8; 100_000];
        let n = round_trip(&data);
        assert!(n < 1000, "compressed {n}");
    }

    #[test]
    fn compresses_repeated_patterns() {
        let data = b"checkpoint_restart_".repeat(5000);
        let n = round_trip(&data);
        assert!(n < data.len() / 10, "compressed {n} of {}", data.len());
    }

    #[test]
    fn long_literal_runs_round_trip() {
        // Incompressible: forces the 15+255 extension path for literals.
        let mut x = 1u64;
        let data: Vec<u8> = (0..70_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        let n = round_trip(&data);
        // At most a tiny expansion on random data.
        assert!(n < data.len() + data.len() / 100 + 64);
    }

    #[test]
    fn long_match_extension_path() {
        // One very long run: exercises 15+255*k match length extension.
        let mut data = b"prefix".to_vec();
        data.extend(std::iter::repeat_n(b'x', 100_000));
        data.extend_from_slice(b"suffix");
        round_trip(&data);
    }

    #[test]
    fn offsets_beyond_window_are_not_used() {
        // A pattern that repeats at > 64 KiB distance only: must still
        // round-trip (as literals or closer matches).
        let mut data = vec![0u8; 200_000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = ((i / 3) % 251) as u8;
        }
        round_trip(&data);
    }

    #[test]
    fn rejects_bad_magic() {
        let c = Lzf::new();
        assert!(c.decompress_to_vec(b"XYZ").is_err());
    }

    #[test]
    fn rejects_truncation() {
        let c = Lzf::new();
        let data = b"hello world hello world hello world".repeat(10);
        let compressed = c.compress_to_vec(&data);
        for cut in [5, 9, 10, compressed.len() / 2, compressed.len() - 1] {
            assert!(
                c.decompress_to_vec(&compressed[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn rejects_corrupt_offset() {
        let c = Lzf::new();
        // Handcrafted: magic + len 4 + token (0 literals, match) +
        // offset 9 pointing before stream start.
        let mut bad = vec![MAGIC];
        bad.extend_from_slice(&4u64.to_le_bytes());
        bad.push(0x00);
        bad.extend_from_slice(&9u16.to_le_bytes());
        assert!(c.decompress_to_vec(&bad).is_err());
    }

    #[test]
    fn warm_table_output_matches_cold() {
        // The epoch base must make a reused table behave exactly like a
        // fresh one, for any interleaving of inputs.
        let c = Lzf::new();
        let a = b"alpha beta gamma ".repeat(300);
        let b = vec![0x5Au8; 10_000];
        let cold_a = c.compress_to_vec(&a);
        let cold_b = c.compress_to_vec(&b);
        for _ in 0..4 {
            assert_eq!(c.compress_to_vec(&a), cold_a);
            assert_eq!(c.compress_to_vec(&b), cold_b);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        let c = Lzf::new();
        let mut x = 99u64;
        for len in [0usize, 1, 5, 9, 64, 300] {
            let junk: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    (x >> 33) as u8
                })
                .collect();
            let _ = c.decompress_to_vec(&junk); // may fail, must not panic
        }
    }
}
