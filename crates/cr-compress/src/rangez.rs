//! `rz` — an xz-family codec: large-window LZ77 with deep hash chains,
//! entropy-coded by an adaptive binary range coder (LZMA-style) with
//! context modelling — order-1 literal contexts, bit-tree match lengths,
//! and distance slots with direct bits. Slow and strong, matching the
//! paper's `xz` profile.

use crate::lz::{tokenize, LzParams, Token};
use crate::{Codec, CodecError};

const MAGIC: u8 = 0x52; // 'R'
const PROB_BITS: u32 = 11;
const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;
const MIN_MATCH: u32 = 3;

// ---------------------------------------------------------------------
// Binary range coder
// ---------------------------------------------------------------------

struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl RangeEncoder {
    fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut cs = self.cache_size;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                cs -= 1;
                if cs == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    #[inline]
    fn encode_bit(&mut self, prob: &mut u16, bit: u32) {
        let bound = (self.range >> PROB_BITS) * (*prob as u32);
        if bit == 0 {
            self.range = bound;
            *prob += ((1 << PROB_BITS) - *prob) >> MOVE_BITS;
        } else {
            self.low += bound as u64;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
        }
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes `count` bits of `value` (MSB first) at probability 1/2.
    #[inline]
    fn encode_direct(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit == 1 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.shift_low();
                self.range <<= 8;
            }
        }
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    data: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.len() < 5 {
            return Err(CodecError::new("range stream too short"));
        }
        let mut code = 0u32;
        // First byte is the encoder's initial zero cache byte.
        for &b in &data[1..5] {
            code = (code << 8) | b as u32;
        }
        Ok(RangeDecoder {
            code,
            range: u32::MAX,
            data,
            pos: 5,
        })
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zeros; corruption is caught by the
        // framing checks of the caller.
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    #[inline]
    fn decode_bit(&mut self, prob: &mut u16) -> u32 {
        let bound = (self.range >> PROB_BITS) * (*prob as u32);
        let bit;
        if self.code < bound {
            self.range = bound;
            *prob += ((1 << PROB_BITS) - *prob) >> MOVE_BITS;
            bit = 0;
        } else {
            self.code -= bound;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
            bit = 1;
        }
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
        bit
    }

    #[inline]
    fn decode_direct(&mut self, count: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..count {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.code = (self.code << 8) | self.next_byte() as u32;
                self.range <<= 8;
            }
        }
        value
    }
}

// ---------------------------------------------------------------------
// Bit-tree models
// ---------------------------------------------------------------------

/// Adaptive bit-tree over `BITS` bits (MSB first).
struct BitTree {
    probs: Vec<u16>,
    bits: u32,
}

impl BitTree {
    fn new(bits: u32) -> Self {
        BitTree {
            probs: vec![PROB_INIT; 1 << bits],
            bits,
        }
    }

    fn encode(&mut self, enc: &mut RangeEncoder, value: u32) {
        debug_assert!(value < (1 << self.bits));
        let mut node = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (value >> i) & 1;
            enc.encode_bit(&mut self.probs[node], bit);
            node = (node << 1) | bit as usize;
        }
    }

    fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let mut node = 1usize;
        for _ in 0..self.bits {
            let bit = dec.decode_bit(&mut self.probs[node]);
            node = (node << 1) | bit as usize;
        }
        node as u32 - (1 << self.bits)
    }
}

/// Full adaptive model state shared by encode and decode.
struct Model {
    is_match: Vec<u16>,
    /// Order-1 literal model: one 8-bit tree per previous byte.
    literals: Vec<BitTree>,
    len_tree: BitTree,
    slot_tree: BitTree,
}

impl Model {
    fn new() -> Self {
        Model {
            is_match: vec![PROB_INIT; 2],
            literals: (0..256).map(|_| BitTree::new(8)).collect(),
            len_tree: BitTree::new(8),
            slot_tree: BitTree::new(6),
        }
    }
}

/// Distance -> (slot, extra_bits, extra_value); LZMA-style slots.
#[inline]
fn dist_slot(dist: u32) -> (u32, u32, u32) {
    debug_assert!(dist >= 1);
    let d = dist - 1;
    if d < 4 {
        return (d, 0, 0);
    }
    let bits = 31 - d.leading_zeros();
    let slot = 2 * bits + ((d >> (bits - 1)) & 1);
    let extra_bits = bits - 1;
    let extra = d & ((1 << extra_bits) - 1);
    (slot, extra_bits, extra)
}

/// Inverse of [`dist_slot`]: reconstructs the distance base and the
/// number of extra bits from the slot.
#[inline]
fn slot_base(slot: u32) -> (u32, u32) {
    if slot < 4 {
        return (slot + 1, 0);
    }
    let bits = slot / 2;
    let extra_bits = bits - 1;
    let base = ((2 + (slot & 1)) << extra_bits) + 1;
    (base, extra_bits)
}

/// The `rz` codec at a given level.
#[derive(Debug, Clone, Copy)]
pub struct Rangez {
    level: u32,
}

impl Rangez {
    /// Creates the codec; `level` must be in `1..=9`.
    pub fn new(level: u32) -> Self {
        assert!((1..=9).contains(&level), "rz level must be 1..=9");
        Rangez { level }
    }

    fn lz_params(&self) -> LzParams {
        let (window_bits, max_chain, nice_len, lazy) = match self.level {
            1 => (20, 24, 48, false),
            2 => (20, 48, 64, true),
            3 => (21, 64, 96, true),
            4 => (21, 96, 128, true),
            5 => (22, 128, 160, true),
            6 => (22, 192, 258, true),
            7 => (23, 320, 258, true),
            8 => (23, 512, 258, true),
            _ => (23, 1024, 258, true),
        };
        LzParams {
            window: 1 << window_bits,
            max_match: 258,
            max_chain,
            nice_len,
            lazy,
        }
    }
}

fn compress_impl(codec: &Rangez, input: &[u8], out: &mut Vec<u8>) {
    out.push(MAGIC);
    out.push(codec.level as u8);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    if input.is_empty() {
        return;
    }

    let mut tokens = Vec::new();
    tokenize(input, codec.lz_params(), &mut tokens);

    let mut enc = RangeEncoder::new();
    let mut model = Model::new();
    let mut prev_byte = 0u8;
    let mut pos = 0usize;

    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                enc.encode_bit(&mut model.is_match[0], 0);
                model.literals[prev_byte as usize].encode(&mut enc, b as u32);
                prev_byte = b;
                pos += 1;
            }
            Token::Match { len, dist } => {
                enc.encode_bit(&mut model.is_match[0], 1);
                model.len_tree.encode(&mut enc, len - MIN_MATCH);
                let (slot, extra_bits, extra) = dist_slot(dist);
                model.slot_tree.encode(&mut enc, slot);
                if extra_bits > 0 {
                    enc.encode_direct(extra, extra_bits);
                }
                pos += len as usize;
                prev_byte = input[pos - 1];
            }
        }
    }
    out.extend_from_slice(&enc.finish());
}

fn decompress_impl(input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    if input.len() < 10 || input[0] != MAGIC {
        return Err(CodecError::new("bad rz header"));
    }
    let total = u64::from_le_bytes(input[2..10].try_into().unwrap()) as usize;
    out.reserve(total);
    if total == 0 {
        return Ok(());
    }
    let mut dec = RangeDecoder::new(&input[10..])?;
    let mut model = Model::new();
    let mut prev_byte = 0u8;

    while out.len() < total {
        if dec.decode_bit(&mut model.is_match[0]) == 0 {
            let b = model.literals[prev_byte as usize].decode(&mut dec) as u8;
            out.push(b);
            prev_byte = b;
        } else {
            let len = model.len_tree.decode(&mut dec) + MIN_MATCH;
            let slot = model.slot_tree.decode(&mut dec);
            let (base, extra_bits) = slot_base(slot);
            let dist = (base + dec.decode_direct(extra_bits)) as usize;
            if dist > out.len() {
                return Err(CodecError::new("rz distance before start"));
            }
            if out.len() + len as usize > total {
                return Err(CodecError::new("rz output overrun"));
            }
            let start = out.len() - dist;
            for i in 0..len as usize {
                let b = out[start + i];
                out.push(b);
            }
            prev_byte = *out.last().expect("non-empty after match");
        }
    }
    Ok(())
}

impl Codec for Rangez {
    fn name(&self) -> &'static str {
        "rz"
    }

    fn level(&self) -> u32 {
        self.level
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        compress_impl(self, input, out);
    }

    fn compress_append(&self, input: &[u8], out: &mut Vec<u8>) {
        compress_impl(self, input, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        out.clear();
        decompress_impl(input, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_slot_round_trips_all_small_and_sampled_large() {
        for dist in 1..=4096u32 {
            let (slot, extra_bits, extra) = dist_slot(dist);
            let (base, eb) = slot_base(slot);
            assert_eq!(eb, extra_bits, "dist {dist}");
            assert_eq!(base + extra, dist, "dist {dist}");
        }
        for dist in (1..=(1u32 << 23)).step_by(40_507) {
            let (slot, extra_bits, extra) = dist_slot(dist);
            let (base, eb) = slot_base(slot);
            assert_eq!(eb, extra_bits);
            assert_eq!(base + extra, dist);
        }
    }

    #[test]
    fn range_coder_bit_round_trip() {
        // Encode a biased bit sequence through a single adaptive prob.
        let bits: Vec<u32> = (0..10_000)
            .map(|i| ((i * i + i / 3) % 7 == 0) as u32)
            .collect();
        let mut enc = RangeEncoder::new();
        let mut p = PROB_INIT;
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let data = enc.finish();
        // Biased input must compress below 1 bit/symbol.
        assert!(data.len() < bits.len() / 8);
        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut p = PROB_INIT;
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn range_coder_direct_bits_round_trip() {
        let values: Vec<(u32, u32)> = (0..2000)
            .map(|i| {
                let bits = 1 + (i % 24) as u32;
                (
                    (i as u32).wrapping_mul(2654435761) & ((1 << bits) - 1),
                    bits,
                )
            })
            .collect();
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v, "width {n}");
        }
    }

    #[test]
    fn bit_tree_round_trip() {
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(8);
        let values: Vec<u32> = (0..5000).map(|i| (i * 37) % 256).collect();
        for &v in &values {
            tree.encode(&mut enc, v);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut tree = BitTree::new(8);
        for &v in &values {
            assert_eq!(tree.decode(&mut dec), v);
        }
    }

    fn round_trip_level(data: &[u8], level: u32) -> usize {
        let c = Rangez::new(level);
        let compressed = c.compress_to_vec(data);
        let restored = c.decompress_to_vec(&compressed).unwrap();
        assert_eq!(restored, data, "level {level}");
        compressed.len()
    }

    #[test]
    fn empty_and_tiny() {
        round_trip_level(b"", 1);
        round_trip_level(b"q", 1);
        round_trip_level(b"qrs", 6);
    }

    #[test]
    fn text_compresses_strongly() {
        let data = b"near data processing offloads checkpoint writes \
                     from the host processor to the storage device. "
            .repeat(300);
        let n = round_trip_level(&data, 1);
        assert!(n < data.len() / 15, "{n} of {}", data.len());
    }

    #[test]
    fn beats_or_matches_own_level1_at_level6() {
        let data: Vec<u8> = (0..40_000u32)
            .flat_map(|i| ((i as f64 / 50.0).cos() as f32).to_le_bytes())
            .collect();
        let n1 = round_trip_level(&data, 1);
        let n6 = round_trip_level(&data, 6);
        assert!(n6 <= n1 + n1 / 50, "level6 {n6} vs level1 {n1}");
    }

    #[test]
    fn long_range_matches_are_found() {
        // Two identical 200 kB halves: distance ~200k needs the large
        // window.
        let half: Vec<u8> = (0..200_000u64)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let mut data = half.clone();
        data.extend_from_slice(&half);
        let n = round_trip_level(&data, 6);
        assert!(
            n < data.len() * 3 / 5,
            "long-range redundancy not exploited: {n} of {}",
            data.len()
        );
    }

    #[test]
    fn incompressible_data_survives() {
        let mut x = 17u64;
        let data: Vec<u8> = (0..120_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 52) as u8
            })
            .collect();
        let n = round_trip_level(&data, 1);
        assert!(n < data.len() + data.len() / 8);
    }

    #[test]
    fn rejects_garbage() {
        let c = Rangez::new(1);
        assert!(c.decompress_to_vec(b"??").is_err());
        assert!(c.decompress_to_vec(&[MAGIC, 1, 9, 0, 0, 0]).is_err());
    }

    #[test]
    fn corrupt_stream_never_panics() {
        let c = Rangez::new(1);
        let data = b"checkpoint restart ".repeat(200);
        let mut compressed = c.compress_to_vec(&data);
        let len = compressed.len();
        for i in (10..len).step_by(53) {
            compressed[i] ^= 0xA5;
            let _ = c.decompress_to_vec(&compressed);
            compressed[i] ^= 0xA5;
        }
    }
}
