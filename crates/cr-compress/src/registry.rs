//! Registry of codec instances, including the seven utility/level
//! combinations of the paper's compression study (§5.1.2).

use crate::bwz::Bwz;
use crate::deflate::Deflate;
use crate::lzf::Lzf;
use crate::rangez::Rangez;
use crate::Codec;

/// Returns a codec by family name (`"lzf"`, `"gz"`, `"bwz"`, `"rz"`)
/// and level. `None` for unknown names or unsupported levels.
pub fn by_name(name: &str, level: u32) -> Option<Box<dyn Codec>> {
    match (name, level) {
        ("lzf", 1) => Some(Box::new(Lzf::new())),
        ("gz", 1..=9) => Some(Box::new(Deflate::new(level))),
        ("bwz", 1..=9) => Some(Box::new(Bwz::new(level))),
        ("rz", 1..=9) => Some(Box::new(Rangez::new(level))),
        _ => None,
    }
}

/// The study's seven codec/level combinations, in the column order of
/// Table 2, with each paper utility mapped to its in-crate family:
/// gzip→gz, bzip2→bwz, xz→rz, lz4→lzf.
pub fn study_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Deflate::new(1)),
        Box::new(Deflate::new(6)),
        Box::new(Bwz::new(1)),
        Box::new(Bwz::new(9)),
        Box::new(Rangez::new(1)),
        Box::new(Rangez::new(6)),
        Box::new(Lzf::new()),
    ]
}

/// The paper utility name each study codec stands in for, aligned with
/// [`study_codecs`] and [`cr_core`-style labels]: `gzip(1)`, `gzip(6)`,
/// `bzip2(1)`, `bzip2(9)`, `xz(1)`, `xz(6)`, `lz4(1)`.
pub fn study_paper_labels() -> [&'static str; 7] {
    [
        "gzip(1)",
        "gzip(6)",
        "bzip2(1)",
        "bzip2(9)",
        "xz(1)",
        "xz(6)",
        "lz4(1)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_codecs() {
        for (name, level) in
            [("lzf", 1), ("gz", 1), ("gz", 9), ("bwz", 5), ("rz", 6)]
        {
            let c = by_name(name, level).unwrap();
            assert_eq!(c.name(), name);
            assert_eq!(c.level(), level);
        }
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(by_name("zip", 1).is_none());
        assert!(by_name("gz", 0).is_none());
        assert!(by_name("gz", 10).is_none());
        assert!(by_name("lzf", 2).is_none());
    }

    #[test]
    fn study_set_matches_paper_columns() {
        let codecs = study_codecs();
        let labels = study_paper_labels();
        assert_eq!(codecs.len(), 7);
        assert_eq!(labels.len(), 7);
        let own: Vec<String> = codecs.iter().map(|c| c.label()).collect();
        assert_eq!(
            own,
            ["gz(1)", "gz(6)", "bwz(1)", "bwz(9)", "rz(1)", "rz(6)", "lzf(1)"]
        );
    }

    #[test]
    fn every_study_codec_round_trips() {
        let data = b"every codec must round trip this. ".repeat(300);
        for c in study_codecs() {
            let comp = c.compress_to_vec(&data);
            let back = c.decompress_to_vec(&comp).unwrap();
            assert_eq!(back, data, "{}", c.label());
        }
    }
}
