//! Multi-threaded block-parallel compression, in the style of `pbzip2`
//! (which the paper's §3.5 host-compression numbers are based on: 64
//! threads at ~10 MB/s each reach the ~640 MB/s needed to overlap the
//! I/O write).
//!
//! [`ParallelCodec`] wraps any [`Codec`]: the input is split into
//! fixed-size chunks, each chunk is compressed independently on a
//! worker thread, and the results are concatenated into a framed
//! container. Decompression is likewise chunk-parallel. The wrapper is
//! itself a `Codec`, so it can be measured by the §5 harness or plugged
//! into the NDP engine.
//!
//! ## Lock-free pipeline
//!
//! Workers never queue behind a mutex. Chunks are claimed with an
//! atomic counter and every result lands in a pre-sized slot owned
//! exclusively by its claimant (the raw-view idiom also used by
//! `cr_sim::par::par_map`), so adding workers adds no serialization
//! beyond the claim fetch-add. [`ParallelCodec::compress_stream`] goes
//! further: a consumer emits each framed chunk the moment it (and its
//! predecessors) are ready, while later chunks are still compressing —
//! the shape an NDP drain wants, where frames leave for the NIC as they
//! finish. Chunk output buffers are recycled through a small pool, so a
//! steady-state drain performs no per-chunk allocation.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use cr_obs::{Bus, Source};

use crate::{Codec, CodecError};

const MAGIC: &[u8; 4] = b"PAR1";
/// Upper bound on pooled chunk buffers kept across calls.
const POOL_CAP: usize = 64;

/// A block-parallel wrapper around any codec.
pub struct ParallelCodec {
    inner: Box<dyn Codec>,
    threads: usize,
    /// Workers actually spawned: `threads` capped at the machine's
    /// available parallelism. Oversubscribing a core only adds context
    /// switches (the container bytes are identical either way), so the
    /// cap is pure win.
    workers: usize,
    chunk_size: usize,
    /// Recycled per-chunk output buffers (cleared, capacity kept).
    pool: Mutex<Vec<Vec<u8>>>,
    /// Observability bus; disabled by default. Codec work is unclocked
    /// (`t = 0.0`) — spans mark structure, not duration.
    bus: Bus,
}

impl ParallelCodec {
    /// Wraps `inner`, using `threads` workers and `chunk_size`-byte
    /// chunks (1 MiB is a good default; pbzip2 uses its block size).
    pub fn new(inner: Box<dyn Codec>, threads: usize, chunk_size: usize) -> Self {
        assert!(threads >= 1);
        assert!(chunk_size >= 4096, "chunks too small to be worthwhile");
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ParallelCodec {
            inner,
            threads,
            workers: threads.min(cores),
            chunk_size,
            pool: Mutex::new(Vec::new()),
            bus: Bus::disabled(),
        }
    }

    /// Attaches an observability bus: each `compress_stream` /
    /// `decompress` call emits a causal span. Observation never changes
    /// the container bytes.
    pub fn set_bus(&mut self, bus: &Bus) {
        self.bus = bus.clone();
    }

    /// Wraps with one worker per available core.
    pub fn with_available_parallelism(inner: Box<dyn Codec>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::new(inner, threads, 1 << 20)
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Configured chunk size in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn take_buf(&self) -> Vec<u8> {
        self.pool.lock().unwrap().pop().unwrap_or_default()
    }

    fn recycle_buf(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }

    /// Runs `f` over `jobs` on up to `self.threads` workers, preserving
    /// order, without any locking: an atomic counter hands out indices
    /// and each worker writes the uniquely-claimed input and output
    /// slots through raw views.
    fn run_jobs<J, R, F>(&self, jobs: Vec<J>, f: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> R + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers <= 1 {
            return jobs.into_iter().map(f).collect();
        }
        let mut jobs: Vec<Option<J>> = jobs.into_iter().map(Some).collect();
        let next = AtomicUsize::new(0);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);

        {
            let jobs_view = SendPtr(jobs.as_mut_ptr());
            let out_view = SendPtr(out.as_mut_ptr());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let f = &f;
                    let next = &next;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // SAFETY: index i is claimed exactly once across
                        // all workers and is in-bounds; both vectors
                        // outlive the scope and the main thread does not
                        // touch them until the scope joins.
                        let job = unsafe {
                            (*jobs_view.get().add(i)).take().expect("job")
                        };
                        let r = f(job);
                        unsafe {
                            *out_view.get().add(i) = Some(r);
                        }
                    });
                }
            });
        }

        out.into_iter().map(|r| r.expect("slot filled")).collect()
    }

    /// Compresses `input` chunk-parallel, handing each framed chunk
    /// (`[u32 len][payload]`) to `emit` in order *as soon as it and its
    /// predecessors are done* — the framed prefix of the container is
    /// streaming out while the tail is still being compressed.
    ///
    /// `emit` receives exactly the container body: concatenating the
    /// header written by [`Codec::compress`] with every emitted frame
    /// reproduces `compress`'s output byte for byte.
    pub fn compress_stream(
        &self,
        input: &[u8],
        emit: &mut dyn FnMut(&[u8]),
    ) {
        // Codec work is unclocked; the guard's drop closes the span on
        // every return path.
        let _span = self.bus.span(Source::Codec, "parallel_compress", 0.0);
        let chunks: Vec<&[u8]> = input.chunks(self.chunk_size).collect();
        let n = chunks.len();
        if n == 0 {
            return;
        }
        let workers = self.workers.min(n);
        if workers <= 1 {
            // Sequential fast path: one reused buffer, zero coordination.
            let mut buf = self.take_buf();
            for chunk in chunks {
                self.inner.compress(chunk, &mut buf);
                let mut t = cr_obs::stage::timer(cr_obs::stage::Stage::Frame);
                emit(&(buf.len() as u32).to_le_bytes());
                emit(&buf);
                if let Some(t) = t.as_mut() {
                    t.add_bytes(4 + buf.len() as u64);
                }
            }
            self.recycle_buf(buf);
            return;
        }

        let slots: Vec<Slot> = (0..n).map(|_| Slot::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let slots = &slots;
                let next = &next;
                let chunks = &chunks;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut buf = self.take_buf();
                    self.inner.compress(chunks[i], &mut buf);
                    slots[i].fill(buf);
                });
            }

            // This thread is the consumer: emit frames in order as they
            // become ready, overlapping with the workers still running.
            for slot in &slots {
                let buf = slot.wait_take();
                let mut t = cr_obs::stage::timer(cr_obs::stage::Stage::Frame);
                emit(&(buf.len() as u32).to_le_bytes());
                emit(&buf);
                if let Some(t) = t.as_mut() {
                    t.add_bytes(4 + buf.len() as u64);
                }
                self.recycle_buf(buf);
            }
        });
    }
}

/// A single-producer single-consumer result slot: the claiming worker
/// stores the buffer then flips `ready` (release); the consumer
/// observes `ready` (acquire) before taking the buffer.
struct Slot {
    ready: AtomicBool,
    buf: UnsafeCell<Option<Vec<u8>>>,
}

// SAFETY: the release/acquire pair on `ready` orders the single write
// of `buf` before the single read; no other access exists.
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Self {
        Slot {
            ready: AtomicBool::new(false),
            buf: UnsafeCell::new(None),
        }
    }

    fn fill(&self, buf: Vec<u8>) {
        // SAFETY: exactly one worker claims this slot's index, and the
        // consumer does not read until `ready` is set below.
        unsafe {
            *self.buf.get() = Some(buf);
        }
        self.ready.store(true, Ordering::Release);
    }

    fn wait_take(&self) -> Vec<u8> {
        let mut spins = 0u32;
        while !self.ready.load(Ordering::Acquire) {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Oversubscribed (e.g. single-core machines): give the
                // producer the CPU instead of burning it.
                std::thread::yield_now();
            }
        }
        // SAFETY: `ready` is set exactly once, after the buffer write.
        unsafe { (*self.buf.get()).take().expect("slot filled") }
    }
}

/// A `Send + Copy` wrapper for raw slot pointers shared across workers;
/// soundness argument at the use sites in `run_jobs`.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `SendPtr` — edition-2021 disjoint capture would otherwise
    /// capture the raw pointer field, which is not `Send`.
    fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl Codec for ParallelCodec {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn level(&self) -> u32 {
        self.inner.level()
    }

    fn label(&self) -> String {
        format!("par{}x-{}", self.threads, self.inner.label())
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        self.compress_append(input, out);
    }

    fn compress_append(&self, input: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.chunk_size as u32).to_le_bytes());
        self.compress_stream(input, &mut |frame| {
            out.extend_from_slice(frame);
        });
    }

    fn decompress(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let _span =
            self.bus.span(Source::Codec, "parallel_decompress", 0.0);
        out.clear();
        if input.len() < 16 || &input[0..4] != MAGIC {
            return Err(CodecError::new("bad parallel container"));
        }
        let total =
            u64::from_le_bytes(input[4..12].try_into().unwrap()) as usize;
        let chunk_size =
            u32::from_le_bytes(input[12..16].try_into().unwrap()) as usize;
        if chunk_size == 0 {
            return Err(CodecError::new("zero chunk size"));
        }

        // Slice out the chunk frames.
        let mut frames: Vec<&[u8]> = Vec::new();
        let mut pos = 16usize;
        while pos < input.len() {
            if pos + 4 > input.len() {
                return Err(CodecError::new("truncated chunk header"));
            }
            let len = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap())
                as usize;
            pos += 4;
            if pos + len > input.len() {
                return Err(CodecError::new("chunk overruns container"));
            }
            frames.push(&input[pos..pos + len]);
            pos += len;
        }
        let expected_chunks = total.div_ceil(chunk_size);
        if total > 0 && frames.len() != expected_chunks {
            return Err(CodecError::new(format!(
                "expected {expected_chunks} chunks, found {}",
                frames.len()
            )));
        }

        let results = self.run_jobs(frames, |frame| {
            self.inner.decompress_to_vec(frame)
        });
        for (i, r) in results.into_iter().enumerate() {
            let part = r?;
            let expect = chunk_size.min(total - i * chunk_size);
            if part.len() != expect {
                return Err(CodecError::new("chunk length mismatch"));
            }
            out.extend_from_slice(&part);
        }
        if out.len() != total {
            return Err(CodecError::new("parallel container size mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::Deflate;
    use crate::lzf::Lzf;

    fn par(threads: usize) -> ParallelCodec {
        ParallelCodec::new(Box::new(Deflate::new(1)), threads, 16 << 10)
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((i / 13) % 251) as u8 ^ (i % 7) as u8)
            .collect()
    }

    #[test]
    fn round_trip_multi_chunk() {
        let data = sample(200_000); // ~13 chunks
        for threads in [1, 2, 4, 8] {
            let c = par(threads);
            let compressed = c.compress_to_vec(&data);
            let restored = c.decompress_to_vec(&compressed).unwrap();
            assert_eq!(restored, data, "threads {threads}");
        }
    }

    #[test]
    fn output_is_thread_count_independent() {
        let data = sample(150_000);
        let one = par(1).compress_to_vec(&data);
        let eight = par(8).compress_to_vec(&data);
        assert_eq!(one, eight, "container must be deterministic");
    }

    #[test]
    fn adversarial_chunk_counts_match_single_thread() {
        // Regression test for the old mutex-serialized job runner: every
        // thread count must produce the single-thread container for
        // chunk counts around the worker count (0, 1, n-1, n, n+1, and a
        // remainder chunk), and repeated calls (warm buffer pool, warm
        // thread-local codec state) must not perturb the bytes.
        let chunk = 4096usize;
        for nchunks in [1usize, 2, 3, 7, 8, 9, 16, 33] {
            for tail in [0usize, 1, chunk - 1] {
                let len = (nchunks - 1) * chunk + tail.max(1);
                let data = sample(len);
                let baseline = ParallelCodec::new(
                    Box::new(Lzf::new()),
                    1,
                    chunk,
                )
                .compress_to_vec(&data);
                for threads in [2usize, 3, 8] {
                    let c = ParallelCodec::new(
                        Box::new(Lzf::new()),
                        threads,
                        chunk,
                    );
                    for round in 0..2 {
                        let got = c.compress_to_vec(&data);
                        assert_eq!(
                            got, baseline,
                            "nchunks {nchunks} tail {tail} \
                             threads {threads} round {round}"
                        );
                    }
                    assert_eq!(
                        c.decompress_to_vec(&baseline).unwrap(),
                        data
                    );
                }
            }
        }
    }

    #[test]
    fn compress_stream_frames_match_container_body() {
        let data = sample(123_456);
        for threads in [1, 4] {
            let c = par(threads);
            let mut streamed = Vec::new();
            let mut frames = 0usize;
            c.compress_stream(&data, &mut |part| {
                streamed.extend_from_slice(part);
                frames += 1;
            });
            // Each chunk emits a length frame and a payload frame.
            assert_eq!(frames, 2 * data.len().div_ceil(16 << 10));
            let container = c.compress_to_vec(&data);
            assert_eq!(&container[16..], &streamed[..], "threads {threads}");
        }
    }

    #[test]
    fn observed_codec_emits_spans_without_changing_bytes() {
        let data = sample(100_000);
        let plain = par(4).compress_to_vec(&data);
        let mut observed = par(4);
        let bus = Bus::with_sink(cr_obs::VecSink::new());
        observed.set_bus(&bus);
        let container = observed.compress_to_vec(&data);
        assert_eq!(container, plain, "observation perturbed the bytes");
        let mut back = Vec::new();
        observed.decompress(&container, &mut back).unwrap();
        assert_eq!(back, data);
        let events = bus.drain();
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e.kind {
                cr_obs::EventKind::SpanOpen { name, .. } => Some(name),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["parallel_compress", "parallel_decompress"]);
        // Every open has a matching close.
        let closes = events
            .iter()
            .filter(|e| {
                matches!(e.kind, cr_obs::EventKind::SpanClose { .. })
            })
            .count();
        assert_eq!(closes, 2);
    }

    #[test]
    fn compress_stream_empty_input_emits_nothing() {
        let c = par(4);
        let mut calls = 0usize;
        c.compress_stream(b"", &mut |_| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn empty_and_single_chunk() {
        let c = par(4);
        for len in [0usize, 1, 100, (16 << 10) - 1, 16 << 10] {
            let data = sample(len);
            let compressed = c.compress_to_vec(&data);
            assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn label_reflects_parallelism() {
        assert_eq!(par(4).label(), "par4x-gz(1)");
        assert_eq!(par(4).name(), "gz");
    }

    #[test]
    fn parallel_speedup_on_compressible_data() {
        // Wall-clock speedup is environment-dependent; just check the
        // parallel path is not pathologically slower and round-trips.
        let data = sample(2 << 20);
        let seq = ParallelCodec::new(Box::new(Deflate::new(6)), 1, 256 << 10);
        let parl = ParallelCodec::new(Box::new(Deflate::new(6)), 4, 256 << 10);
        let t0 = std::time::Instant::now();
        let a = seq.compress_to_vec(&data);
        let t_seq = t0.elapsed();
        let t1 = std::time::Instant::now();
        let b = parl.compress_to_vec(&data);
        let t_par = t1.elapsed();
        assert_eq!(a, b);
        assert!(
            t_par < t_seq * 3,
            "parallel {t_par:?} absurdly slower than serial {t_seq:?}"
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let c = par(2);
        assert!(c.decompress_to_vec(b"XXXX").is_err());
        let data = sample(100_000);
        let compressed = c.compress_to_vec(&data);
        for cut in [4, 15, 16, 20, compressed.len() / 2] {
            assert!(
                c.decompress_to_vec(&compressed[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn inner_codec_can_differ() {
        let c = ParallelCodec::new(Box::new(Lzf::new()), 3, 8 << 10);
        let data = sample(80_000);
        let compressed = c.compress_to_vec(&data);
        assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
    }

    #[test]
    fn with_available_parallelism_constructs() {
        let c = ParallelCodec::with_available_parallelism(Box::new(Lzf::new()));
        let data = sample(50_000);
        let compressed = c.compress_to_vec(&data);
        assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
    }
}
