//! Multi-threaded block-parallel compression, in the style of `pbzip2`
//! (which the paper's §3.5 host-compression numbers are based on: 64
//! threads at ~10 MB/s each reach the ~640 MB/s needed to overlap the
//! I/O write).
//!
//! [`ParallelCodec`] wraps any [`Codec`]: the input is split into
//! fixed-size chunks, each chunk is compressed independently on a
//! worker thread, and the results are concatenated into a framed
//! container. Decompression is likewise chunk-parallel. The wrapper is
//! itself a `Codec`, so it can be measured by the §5 harness or plugged
//! into the NDP engine.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{Codec, CodecError};

const MAGIC: &[u8; 4] = b"PAR1";

/// A block-parallel wrapper around any codec.
pub struct ParallelCodec {
    inner: Box<dyn Codec>,
    threads: usize,
    chunk_size: usize,
}

impl ParallelCodec {
    /// Wraps `inner`, using `threads` workers and `chunk_size`-byte
    /// chunks (1 MiB is a good default; pbzip2 uses its block size).
    pub fn new(inner: Box<dyn Codec>, threads: usize, chunk_size: usize) -> Self {
        assert!(threads >= 1);
        assert!(chunk_size >= 4096, "chunks too small to be worthwhile");
        ParallelCodec {
            inner,
            threads,
            chunk_size,
        }
    }

    /// Wraps with one worker per available core.
    pub fn with_available_parallelism(inner: Box<dyn Codec>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::new(inner, threads, 1 << 20)
    }

    /// Runs `f` over `jobs` on up to `self.threads` workers, preserving
    /// order. `f` must be infallible per job or return a Result that we
    /// propagate.
    fn run_jobs<J, R, F>(&self, jobs: Vec<J>, f: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> R + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            return jobs.into_iter().map(f).collect();
        }
        let jobs: Vec<Option<J>> = jobs.into_iter().map(Some).collect();
        let jobs = std::sync::Mutex::new(jobs);
        let next = AtomicUsize::new(0);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let out_mutex = std::sync::Mutex::new(&mut out);

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let f = &f;
                let jobs = &jobs;
                let next = &next;
                let out_mutex = &out_mutex;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs.lock().unwrap()[i].take().expect("job");
                    let r = f(job);
                    out_mutex.lock().unwrap()[i] = Some(r);
                });
            }
        })
        .expect("compression worker panicked");

        out.into_iter().map(|r| r.expect("slot filled")).collect()
    }
}

impl Codec for ParallelCodec {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn level(&self) -> u32 {
        self.inner.level()
    }

    fn label(&self) -> String {
        format!("par{}x-{}", self.threads, self.inner.label())
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.chunk_size as u32).to_le_bytes());

        let chunks: Vec<&[u8]> = input.chunks(self.chunk_size).collect();
        let compressed =
            self.run_jobs(chunks, |chunk| self.inner.compress_to_vec(chunk));
        for c in compressed {
            out.extend_from_slice(&(c.len() as u32).to_le_bytes());
            out.extend_from_slice(&c);
        }
    }

    fn decompress(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        out.clear();
        if input.len() < 16 || &input[0..4] != MAGIC {
            return Err(CodecError::new("bad parallel container"));
        }
        let total =
            u64::from_le_bytes(input[4..12].try_into().unwrap()) as usize;
        let chunk_size =
            u32::from_le_bytes(input[12..16].try_into().unwrap()) as usize;
        if chunk_size == 0 {
            return Err(CodecError::new("zero chunk size"));
        }

        // Slice out the chunk frames.
        let mut frames: Vec<&[u8]> = Vec::new();
        let mut pos = 16usize;
        while pos < input.len() {
            if pos + 4 > input.len() {
                return Err(CodecError::new("truncated chunk header"));
            }
            let len = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap())
                as usize;
            pos += 4;
            if pos + len > input.len() {
                return Err(CodecError::new("chunk overruns container"));
            }
            frames.push(&input[pos..pos + len]);
            pos += len;
        }
        let expected_chunks = total.div_ceil(chunk_size);
        if total > 0 && frames.len() != expected_chunks {
            return Err(CodecError::new(format!(
                "expected {expected_chunks} chunks, found {}",
                frames.len()
            )));
        }

        let results = self.run_jobs(frames, |frame| {
            self.inner.decompress_to_vec(frame)
        });
        for (i, r) in results.into_iter().enumerate() {
            let part = r?;
            let expect = chunk_size.min(total - i * chunk_size);
            if part.len() != expect {
                return Err(CodecError::new("chunk length mismatch"));
            }
            out.extend_from_slice(&part);
        }
        if out.len() != total {
            return Err(CodecError::new("parallel container size mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::Deflate;
    use crate::lzf::Lzf;

    fn par(threads: usize) -> ParallelCodec {
        ParallelCodec::new(Box::new(Deflate::new(1)), threads, 16 << 10)
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((i / 13) % 251) as u8 ^ (i % 7) as u8)
            .collect()
    }

    #[test]
    fn round_trip_multi_chunk() {
        let data = sample(200_000); // ~13 chunks
        for threads in [1, 2, 4, 8] {
            let c = par(threads);
            let compressed = c.compress_to_vec(&data);
            let restored = c.decompress_to_vec(&compressed).unwrap();
            assert_eq!(restored, data, "threads {threads}");
        }
    }

    #[test]
    fn output_is_thread_count_independent() {
        let data = sample(150_000);
        let one = par(1).compress_to_vec(&data);
        let eight = par(8).compress_to_vec(&data);
        assert_eq!(one, eight, "container must be deterministic");
    }

    #[test]
    fn empty_and_single_chunk() {
        let c = par(4);
        for len in [0usize, 1, 100, (16 << 10) - 1, 16 << 10] {
            let data = sample(len);
            let compressed = c.compress_to_vec(&data);
            assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn label_reflects_parallelism() {
        assert_eq!(par(4).label(), "par4x-gz(1)");
        assert_eq!(par(4).name(), "gz");
    }

    #[test]
    fn parallel_speedup_on_compressible_data() {
        // Wall-clock speedup is environment-dependent; just check the
        // parallel path is not pathologically slower and round-trips.
        let data = sample(2 << 20);
        let seq = ParallelCodec::new(Box::new(Deflate::new(6)), 1, 256 << 10);
        let parl = ParallelCodec::new(Box::new(Deflate::new(6)), 4, 256 << 10);
        let t0 = std::time::Instant::now();
        let a = seq.compress_to_vec(&data);
        let t_seq = t0.elapsed();
        let t1 = std::time::Instant::now();
        let b = parl.compress_to_vec(&data);
        let t_par = t1.elapsed();
        assert_eq!(a, b);
        assert!(
            t_par < t_seq * 3,
            "parallel {t_par:?} absurdly slower than serial {t_seq:?}"
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let c = par(2);
        assert!(c.decompress_to_vec(b"XXXX").is_err());
        let data = sample(100_000);
        let compressed = c.compress_to_vec(&data);
        for cut in [4, 15, 16, 20, compressed.len() / 2] {
            assert!(
                c.decompress_to_vec(&compressed[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn inner_codec_can_differ() {
        let c = ParallelCodec::new(Box::new(Lzf::new()), 3, 8 << 10);
        let data = sample(80_000);
        let compressed = c.compress_to_vec(&data);
        assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
    }

    #[test]
    fn with_available_parallelism_constructs() {
        let c = ParallelCodec::with_available_parallelism(Box::new(Lzf::new()));
        let data = sample(50_000);
        let compressed = c.compress_to_vec(&data);
        assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
    }
}
