//! Measurement harness for the compression study (§5): compression
//! factor and single-thread compression/decompression speed of a codec
//! on a data set, the quantities reported in Table 2.

use std::time::Instant;

use crate::{compression_factor, Codec};

/// One measurement of a codec on one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Input size, bytes.
    pub input_bytes: usize,
    /// Compressed size, bytes.
    pub compressed_bytes: usize,
    /// Compression factor `1 − compressed/uncompressed`.
    pub factor: f64,
    /// Single-thread compression speed, bytes/s of input consumed.
    pub compress_rate: f64,
    /// Single-thread decompression speed, bytes/s of output produced.
    pub decompress_rate: f64,
}

/// Compresses and decompresses `data` once, timing both directions and
/// verifying the round trip.
///
/// # Panics
///
/// Panics if the codec fails to reproduce its input — a measurement of a
/// broken codec would be meaningless.
pub fn measure(codec: &dyn Codec, data: &[u8]) -> Measurement {
    let mut compressed = Vec::new();
    let t0 = Instant::now();
    codec.compress(data, &mut compressed);
    let compress_secs = t0.elapsed().as_secs_f64();

    let mut restored = Vec::new();
    let t1 = Instant::now();
    codec
        .decompress(&compressed, &mut restored)
        .expect("measurement input failed to decompress");
    let decompress_secs = t1.elapsed().as_secs_f64();
    assert!(restored == data, "codec {} corrupted data", codec.label());

    Measurement {
        input_bytes: data.len(),
        compressed_bytes: compressed.len(),
        factor: compression_factor(data.len(), compressed.len()),
        compress_rate: rate(data.len(), compress_secs),
        decompress_rate: rate(data.len(), decompress_secs),
    }
}

/// Averages measurements over several inputs (the paper measures three
/// checkpoints per mini-app and reports per-app aggregates). Rates are
/// byte-weighted; the factor is computed over the pooled sizes.
pub fn measure_many<'a>(
    codec: &dyn Codec,
    inputs: impl IntoIterator<Item = &'a [u8]>,
) -> Measurement {
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    let mut comp_secs = 0.0;
    let mut decomp_secs = 0.0;
    for data in inputs {
        let mut compressed = Vec::new();
        let t0 = Instant::now();
        codec.compress(data, &mut compressed);
        comp_secs += t0.elapsed().as_secs_f64();
        let mut restored = Vec::new();
        let t1 = Instant::now();
        codec
            .decompress(&compressed, &mut restored)
            .expect("measurement input failed to decompress");
        decomp_secs += t1.elapsed().as_secs_f64();
        assert!(restored == data, "codec {} corrupted data", codec.label());
        total_in += data.len();
        total_out += compressed.len();
    }
    Measurement {
        input_bytes: total_in,
        compressed_bytes: total_out,
        factor: compression_factor(total_in, total_out),
        compress_rate: rate(total_in, comp_secs),
        decompress_rate: rate(total_in, decomp_secs),
    }
}

impl Measurement {
    /// Compression throughput in decimal MB/s (the paper's unit),
    /// via the workspace-shared converter.
    pub fn compress_mb_per_s(&self) -> f64 {
        self.compress_rate / 1e6
    }

    /// Decompression throughput in decimal MB/s.
    pub fn decompress_mb_per_s(&self) -> f64 {
        self.decompress_rate / 1e6
    }
}

/// Division-safe bytes/s via the workspace-shared units helper, so this
/// crate and `cr_bench::perf` agree on edge-case semantics (0 bytes →
/// 0.0 even at zero elapsed; nonzero bytes at zero elapsed → ∞).
fn rate(bytes: usize, secs: f64) -> f64 {
    cr_obs::units::bytes_per_s(bytes as u64, secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lzf::Lzf;

    #[test]
    fn measure_reports_consistent_fields() {
        let data = b"measure me measure me measure me ".repeat(1000);
        let m = measure(&Lzf::new(), &data);
        assert_eq!(m.input_bytes, data.len());
        assert!(m.compressed_bytes < data.len());
        assert!((m.factor
            - (1.0 - m.compressed_bytes as f64 / m.input_bytes as f64))
            .abs()
            < 1e-12);
        assert!(m.compress_rate > 0.0);
        assert!(m.decompress_rate > 0.0);
    }

    #[test]
    fn measure_many_pools_sizes() {
        let a = b"aaaaaaaaaaaaaaaaaaaaaaaa".repeat(100);
        let b = b"bcdefghijklmnopqrstuvwxy".repeat(100);
        let inputs: Vec<&[u8]> = vec![&a, &b];
        let m = measure_many(&Lzf::new(), inputs);
        assert_eq!(m.input_bytes, a.len() + b.len());
        assert!(m.factor > 0.0);
    }

    #[test]
    fn empty_input_measures_cleanly() {
        let m = measure(&Lzf::new(), b"");
        assert_eq!(m.input_bytes, 0);
        assert_eq!(m.factor, 0.0);
        // Regression: zero bytes must rate as 0.0 even if the coarse
        // clock reports zero elapsed (previously NaN-or-∞ territory).
        assert!(m.compress_rate == 0.0 || m.compress_rate.is_finite());
        assert_eq!(rate(0, 0.0), 0.0);
        // Nonzero work in unmeasurably little time is ∞, not a panic.
        assert!(rate(1, 0.0).is_infinite());
    }

    #[test]
    fn mb_accessors_share_workspace_units() {
        let data = b"units units units units units units ".repeat(500);
        let m = measure(&Lzf::new(), &data);
        // Same decimal-MB definition as cr_obs::units (and therefore
        // as cr_bench::perf): bytes/s divided by 1e6.
        assert!((m.compress_mb_per_s() - m.compress_rate / 1e6).abs() < 1e-12);
        assert!(
            (m.decompress_mb_per_s() - m.decompress_rate / 1e6).abs() < 1e-12
        );
    }
}
