//! # cr-compress — from-scratch lossless codecs for checkpoint data
//!
//! The paper's compression study (§5) measures four utilities — lz4,
//! gzip, bzip2 and xz — on checkpoint images of seven Mantevo mini-apps.
//! This crate implements one codec from each *algorithm family*, entirely
//! from scratch, so the study can be reproduced without the original
//! binaries:
//!
//! | Paper utility | This crate | Family |
//! |---|---|---|
//! | lz4(1)   | [`lzf::Lzf`]        | greedy byte-oriented LZ77, 64 KiB window |
//! | gzip(1/6)| [`deflate::Deflate`]| LZSS + canonical Huffman, hash chains, lazy matching |
//! | bzip2(1/9)| [`bwz::Bwz`]       | BWT + MTF + zero-RLE + Huffman, 100–900 KB blocks |
//! | xz(1/6)  | [`rangez::Rangez`]  | large-window LZ + adaptive binary range coder |
//!
//! The container formats are this crate's own (each codec implements both
//! directions, so interoperability with the original tools is not a
//! goal); what is preserved is the *behavioural profile* — the
//! speed/ratio ordering that Tables 2 and 3 of the paper depend on:
//! lzf fastest/weakest … rangez slowest/strongest.
//!
//! All codecs implement the [`Codec`] trait and round-trip any byte
//! sequence (enforced by unit and property tests). [`registry`] lists
//! the paper's seven utility/level combinations; [`measure`] provides
//! the §5 measurement harness.
//!
//! ```
//! use cr_compress::{registry, Codec};
//!
//! let codec = registry::by_name("gz", 1).unwrap();
//! let data = b"abcabcabcabcabcabc".repeat(100);
//! let mut compressed = Vec::new();
//! codec.compress(&data, &mut compressed);
//! assert!(compressed.len() < data.len());
//! let mut out = Vec::new();
//! codec.decompress(&compressed, &mut out).unwrap();
//! assert_eq!(out, data);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bitio;
pub mod bwz;
pub mod deflate;
pub mod huffman;
pub mod lz;
pub mod lzf;
pub mod measure;
pub mod parallel;
pub mod rangez;
pub mod registry;

use std::fmt;

/// Error produced when decompressing malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable description of the corruption.
    pub reason: String,
}

impl CodecError {
    /// Creates an error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        CodecError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.reason)
    }
}

impl std::error::Error for CodecError {}

/// A lossless block codec: compresses a byte slice into a self-contained
/// container and restores it exactly.
pub trait Codec: Send + Sync {
    /// Short family name (`"lzf"`, `"gz"`, `"bwz"`, `"rz"`).
    fn name(&self) -> &'static str;

    /// Effort level this instance is configured for.
    fn level(&self) -> u32;

    /// Compresses `input`, appending to `out` (which is cleared first).
    fn compress(&self, input: &[u8], out: &mut Vec<u8>);

    /// Compresses `input`, appending the container to `out` *without*
    /// clearing it. This is the zero-copy entry point for callers that
    /// frame compressed blocks inside a larger buffer (the NDP engine
    /// writes `[raw_len][comp_len][payload]` directly into an NVM
    /// region): no intermediate per-block `Vec` is needed.
    ///
    /// The default routes through a scratch compression and one copy;
    /// codecs override it to write in place.
    fn compress_append(&self, input: &[u8], out: &mut Vec<u8>) {
        let mut tmp = Vec::new();
        self.compress(input, &mut tmp);
        out.extend_from_slice(&tmp);
    }

    /// Decompresses `input`, appending to `out` (which is cleared
    /// first). Fails on malformed input but must never panic on
    /// arbitrary bytes.
    fn decompress(&self, input: &[u8], out: &mut Vec<u8>)
        -> Result<(), CodecError>;

    /// `name(level)` label matching the paper's notation.
    fn label(&self) -> String {
        format!("{}({})", self.name(), self.level())
    }

    /// Convenience: compress into a fresh vector.
    fn compress_to_vec(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress(input, &mut out);
        out
    }

    /// Convenience: decompress into a fresh vector.
    fn decompress_to_vec(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress(input, &mut out)?;
        Ok(out)
    }
}

/// Compression factor as the paper defines it:
/// `1 − compressed/uncompressed`. Zero-length input yields factor 0.
pub fn compression_factor(uncompressed: usize, compressed: usize) -> f64 {
    if uncompressed == 0 {
        return 0.0;
    }
    1.0 - compressed as f64 / uncompressed as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_factor_definition() {
        assert_eq!(compression_factor(100, 30), 0.7);
        assert_eq!(compression_factor(100, 100), 0.0);
        assert_eq!(compression_factor(0, 0), 0.0);
        // Expansion gives a negative factor.
        assert!(compression_factor(100, 120) < 0.0);
    }

    #[test]
    fn codec_error_display() {
        let e = CodecError::new("truncated stream");
        assert_eq!(e.to_string(), "codec error: truncated stream");
    }
}
