//! Length-limited canonical Huffman coding shared by the `gz` and `bwz`
//! codecs.
//!
//! Code lengths are computed with the package-merge algorithm, which is
//! *optimal* under a maximum-length constraint (no post-hoc fixups).
//! Codes are assigned canonically (by length, then symbol) and emitted
//! bit-reversed so they can be written LSB-first through
//! [`crate::bitio::BitWriter`]; the decoder uses a flat
//! `2^max_len`-entry lookup table.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Maximum supported code length (table size `2^15` = 32 Ki entries).
pub const MAX_CODE_LEN: u32 = 15;

/// Computes optimal length-limited code lengths for `freqs` via
/// package-merge. Symbols with zero frequency get length 0. `max_len`
/// must satisfy `2^max_len >= used symbols`.
pub fn build_lengths(freqs: &[u64], max_len: u32) -> Vec<u32> {
    assert!((1..=MAX_CODE_LEN).contains(&max_len));
    let used: Vec<u16> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, _)| i as u16)
        .collect();
    let mut lengths = vec![0u32; freqs.len()];
    match used.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs one bit on the wire.
            lengths[used[0] as usize] = 1;
            return lengths;
        }
        m => assert!(
            (m as u64) <= 1u64 << max_len,
            "alphabet of {m} does not fit in {max_len}-bit codes"
        ),
    }

    // Package-merge. An item is (weight, constituent original symbols).
    type Item = (u64, Vec<u16>);
    let originals: Vec<Item> = {
        let mut v: Vec<Item> = used
            .iter()
            .map(|&s| (freqs[s as usize], vec![s]))
            .collect();
        v.sort_by_key(|(w, _)| *w);
        v
    };

    let mut prev: Vec<Item> = Vec::new();
    for _level in 0..max_len {
        // Packages from the previous (deeper) level: pair adjacent items.
        let mut packages: Vec<Item> = Vec::with_capacity(prev.len() / 2);
        let mut it = prev.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            let mut syms = a.1;
            syms.extend_from_slice(&b.1);
            packages.push((a.0 + b.0, syms));
        }
        // Merge originals and packages by weight (both sorted).
        let mut merged =
            Vec::with_capacity(originals.len() + packages.len());
        let (mut i, mut j) = (0, 0);
        while i < originals.len() && j < packages.len() {
            if originals[i].0 <= packages[j].0 {
                merged.push(originals[i].clone());
                i += 1;
            } else {
                merged.push(std::mem::take(&mut packages[j]));
                j += 1;
            }
        }
        merged.extend_from_slice(&originals[i..]);
        for p in packages.drain(j..) {
            merged.push(p);
        }
        prev = merged;
    }

    // Select the 2m-2 cheapest items; each inclusion of a symbol adds one
    // to its code length.
    let take = 2 * used.len() - 2;
    for (_, syms) in prev.into_iter().take(take) {
        for s in syms {
            lengths[s as usize] += 1;
        }
    }
    debug_assert!(kraft_ok(&lengths));
    lengths
}

/// Checks the Kraft inequality `sum 2^-len <= 1` (equality for a
/// complete code).
fn kraft_ok(lengths: &[u32]) -> bool {
    let sum: f64 = lengths
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| 0.5f64.powi(l as i32))
        .sum();
    sum <= 1.0 + 1e-9
}

/// Assigns canonical codes (by length, then symbol index), returned
/// bit-reversed for LSB-first emission. Zero-length symbols get code 0.
fn canonical_codes(lengths: &[u32]) -> Vec<u32> {
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mut count = vec![0u32; max as usize + 1];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = vec![0u32; max as usize + 2];
    let mut code = 0u32;
    for len in 1..=max {
        code = (code + count[len as usize - 1]) << 1;
        next[len as usize] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next[l as usize];
                next[l as usize] += 1;
                reverse_bits(c, l)
            }
        })
        .collect()
}

#[inline]
fn reverse_bits(code: u32, len: u32) -> u32 {
    code.reverse_bits() >> (32 - len)
}

/// Canonical Huffman encoder: per-symbol (reversed code, length).
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<u32>,
    lengths: Vec<u32>,
}

impl Encoder {
    /// Builds an encoder from code lengths.
    pub fn from_lengths(lengths: &[u32]) -> Self {
        Encoder {
            codes: canonical_codes(lengths),
            lengths: lengths.to_vec(),
        }
    }

    /// Builds optimal lengths from frequencies and the encoder in one
    /// step; also returns the lengths (for the stream header).
    pub fn from_freqs(freqs: &[u64], max_len: u32) -> (Self, Vec<u32>) {
        let lengths = build_lengths(freqs, max_len);
        (Self::from_lengths(&lengths), lengths)
    }

    /// Emits the code for `sym`.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, sym: usize) {
        let len = self.lengths[sym];
        debug_assert!(len > 0, "encoding symbol {sym} with no code");
        w.write_bits(self.codes[sym] as u64, len);
    }

    /// Code length of `sym` (0 = unused).
    pub fn length(&self, sym: usize) -> u32 {
        self.lengths[sym]
    }
}

/// Canonical Huffman decoder backed by a flat `2^max_len` lookup table.
#[derive(Debug)]
pub struct Decoder {
    /// `table[peeked_bits] = (symbol, code_len)`; `code_len == 0` marks
    /// an invalid prefix.
    table: Vec<(u16, u8)>,
    max_len: u32,
}

impl Decoder {
    /// Builds a decoder from code lengths; rejects oversubscribed
    /// (invalid) length sets so malformed streams cannot cause panics.
    pub fn from_lengths(lengths: &[u32]) -> Result<Self, CodecError> {
        let max = lengths.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return Ok(Decoder {
                table: Vec::new(),
                max_len: 0,
            });
        }
        if max > MAX_CODE_LEN {
            return Err(CodecError::new("code length exceeds maximum"));
        }
        // Kraft check with integers.
        let mut kraft: u64 = 0;
        for &l in lengths {
            if l > 0 {
                kraft += 1u64 << (MAX_CODE_LEN - l.min(MAX_CODE_LEN));
            }
        }
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(CodecError::new("oversubscribed Huffman code"));
        }

        let codes = canonical_codes(lengths);
        let mut table = vec![(0u16, 0u8); 1usize << max];
        for (sym, (&len, &code)) in
            lengths.iter().zip(codes.iter()).enumerate()
        {
            if len == 0 {
                continue;
            }
            // The reversed code occupies the low `len` bits of the peek;
            // fill every table slot whose low bits match.
            let step = 1usize << len;
            let mut idx = code as usize;
            while idx < table.len() {
                table[idx] = (sym as u16, len as u8);
                idx += step;
            }
        }
        Ok(Decoder {
            table,
            max_len: max,
        })
    }

    /// Decodes one symbol.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        if self.max_len == 0 {
            return Err(CodecError::new("decoding with empty code"));
        }
        let peek = r.peek_bits(self.max_len) as usize;
        let (sym, len) = self.table[peek];
        if len == 0 {
            return Err(CodecError::new("invalid Huffman prefix"));
        }
        r.consume(len as u32)?;
        Ok(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], message: &[usize]) {
        let (enc, lengths) = Encoder::from_freqs(freqs, MAX_CODE_LEN);
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        for &s in message {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in message {
            assert_eq!(dec.read(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn two_symbols() {
        round_trip(&[5, 3], &[0, 1, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn single_symbol_code() {
        let lengths = build_lengths(&[0, 7, 0], 15);
        assert_eq!(lengths, vec![0, 1, 0]);
        round_trip(&[0, 7, 0], &[1, 1, 1]);
    }

    #[test]
    fn empty_alphabet() {
        let lengths = build_lengths(&[0, 0, 0], 15);
        assert!(lengths.iter().all(|&l| l == 0));
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let bytes = [0u8; 1];
        let mut r = BitReader::new(&bytes);
        assert!(dec.read(&mut r).is_err());
    }

    #[test]
    fn skewed_frequencies_give_short_codes_to_common_symbols() {
        let freqs = [1000, 10, 10, 10, 1];
        let lengths = build_lengths(&freqs, 15);
        assert!(lengths[0] < lengths[4]);
        assert!(lengths[0] == 1);
    }

    #[test]
    fn length_limit_is_respected() {
        // Fibonacci-ish frequencies force deep optimal trees; limiting
        // to 5 bits must still produce a valid code for 20 symbols.
        let mut freqs = vec![0u64; 20];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_lengths(&freqs, 5);
        assert!(lengths.iter().all(|&l| l <= 5 && l > 0));
        assert!(kraft_ok(&lengths));
        let msg: Vec<usize> = (0..20).chain((0..20).rev()).collect();
        let (enc, lens) = Encoder::from_freqs(&freqs, 5);
        let dec = Decoder::from_lengths(&lens).unwrap();
        let mut w = BitWriter::new();
        for &s in &msg {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.read(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn package_merge_is_optimal_without_limit() {
        // Against a known case: freqs 1,1,2,3,5. Huffman merges
        // (1+1)=2, (2+2)=4, (3+4)=7, (5+7)=12; total internal weight
        // (= weighted code length) is 2+4+7+12 = 25 bits.
        let freqs = [1u64, 1, 2, 3, 5];
        let lengths = build_lengths(&freqs, 15);
        let cost: u64 = freqs
            .iter()
            .zip(lengths.iter())
            .map(|(&f, &l)| f * l as u64)
            .sum();
        assert_eq!(cost, 25, "lengths = {lengths:?}");
    }

    #[test]
    fn full_byte_alphabet_round_trip() {
        let freqs: Vec<u64> = (0..256).map(|i| 1 + (i as u64 * 7) % 97).collect();
        let msg: Vec<usize> = (0..4096).map(|i| (i * 31) % 256).collect();
        round_trip(&freqs, &msg);
    }

    #[test]
    fn oversubscribed_code_rejected() {
        // Three symbols of length 1 violate Kraft.
        let lengths = [1u32, 1, 1];
        assert!(Decoder::from_lengths(&lengths).is_err());
    }

    #[test]
    fn overlong_code_rejected() {
        let lengths = [16u32, 1];
        assert!(Decoder::from_lengths(&lengths).is_err());
    }

    #[test]
    fn invalid_prefix_detected_on_incomplete_code() {
        // Lengths {2} only: peeking other patterns must error, not panic.
        let lengths = [2u32, 2, 2]; // kraft = 3/4 < 1, incomplete
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        // Code 11 (reversed) is not assigned; must surface as error.
        let res = dec.read(&mut r);
        assert!(res.is_err() || res.unwrap() < 3);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs: Vec<u64> = (1..=30).map(|i| i * i).collect();
        let lengths = build_lengths(&freqs, 15);
        let codes = canonical_codes(&lengths);
        // Un-reverse and check pairwise prefix-freedom.
        let items: Vec<(u32, u32)> = codes
            .iter()
            .zip(lengths.iter())
            .filter(|(_, &l)| l > 0)
            .map(|(&c, &l)| (reverse_bits(c, l), l))
            .collect();
        for (i, &(ca, la)) in items.iter().enumerate() {
            for &(cb, lb) in items.iter().skip(i + 1) {
                let l = la.min(lb);
                assert_ne!(
                    ca >> (la - l),
                    cb >> (lb - l),
                    "codes share a prefix"
                );
            }
        }
    }
}
