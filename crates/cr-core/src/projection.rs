//! §3 scaling study: projecting an exascale system from the Titan Cray
//! XK7 (Table 1) and deriving C/R requirements (§3.2–3.3).
//!
//! The projection is implemented as *rules*, not hard-coded numbers: the
//! Titan baseline plus the cited technology-trend assumptions reproduce
//! every row of Table 1, and the derived quantities of §3.3 (required
//! commit time, commit bandwidth, per-node I/O bandwidth) follow from
//! Daly's model.

use crate::daly;
use crate::units::*;

/// The petascale baseline system being scaled (§3.1).
#[derive(Debug, Clone, Copy)]
pub struct TitanBaseline {
    /// Number of compute nodes.
    pub node_count: u32,
    /// Per-node peak performance, flop/s.
    pub node_peak: f64,
    /// Per-node memory, bytes (CPU 32 GB + GPU 6 GB).
    pub node_memory: f64,
    /// Interconnect bandwidth per node, bytes/s.
    pub interconnect_bw: f64,
    /// Aggregate file-system bandwidth, bytes/s.
    pub io_bw: f64,
    /// Observed system MTTI, seconds (9 failures/day -> 160 min).
    pub mtti: f64,
}

impl TitanBaseline {
    /// Titan Cray XK7 as described in §3.1.
    pub fn titan() -> Self {
        Self {
            node_count: 18_688,
            node_peak: 1.44 * TFLOPS,
            node_memory: 38.0 * GB,
            interconnect_bw: 20.0 * GB,
            io_bw: 1000.0 * GB,
            mtti: 160.0 * MINUTE,
        }
    }

    /// System peak performance, flop/s.
    pub fn system_peak(&self) -> f64 {
        self.node_count as f64 * self.node_peak
    }

    /// Total system memory, bytes.
    pub fn system_memory(&self) -> f64 {
        self.node_count as f64 * self.node_memory
    }
}

/// The scaling assumptions of §3.1–3.2, with the paper's values as
/// defaults. Every assumption cites a technology trend; see the paper.
#[derive(Debug, Clone, Copy)]
pub struct ScalingAssumptions {
    /// Target system peak, flop/s (1 exaflop).
    pub target_peak: f64,
    /// Projected per-node peak, flop/s (10 TF, Corona nanophotonics
    /// projection \[34\]).
    pub node_peak: f64,
    /// CPU core count per node (16 -> 64).
    pub cpu_cores: u32,
    /// Memory per CPU core maintained from Titan, bytes (2 GB/core).
    pub memory_per_core: f64,
    /// GPU memory per node, bytes (conservatively doubled to 12 GB).
    pub gpu_memory: f64,
    /// Projected interconnect bandwidth, bytes/s (50 GB/s \[28\]).
    pub interconnect_bw: f64,
    /// Factor applied to Titan's aggregate I/O bandwidth (10x,
    /// conservative vs \[35\]).
    pub io_bw_factor: f64,
    /// Per-socket mean time to failure, seconds (5 years, Schroeder &
    /// Gibson \[4\]).
    pub socket_mttf: f64,
    /// Rounded-up system MTTI actually used in the evaluation, seconds
    /// (30 min, the optimistic assumption of §3.2).
    pub assumed_mtti: f64,
    /// Fraction of physical memory that must be checkpointed (§3.3: 80%).
    pub checkpoint_fraction: f64,
    /// Target progress rate used for requirement derivations (§3.3: 90%).
    pub target_progress: f64,
}

impl Default for ScalingAssumptions {
    fn default() -> Self {
        Self {
            target_peak: 1.0 * EFLOPS,
            node_peak: 10.0 * TFLOPS,
            cpu_cores: 64,
            memory_per_core: 2.0 * GB,
            gpu_memory: 12.0 * GB,
            interconnect_bw: 50.0 * GB,
            io_bw_factor: 10.0,
            socket_mttf: 5.0 * YEAR,
            assumed_mtti: 30.0 * MINUTE,
            checkpoint_fraction: 0.8,
            target_progress: 0.9,
        }
    }
}

/// The projected exascale system (Table 1) plus §3.3 derived C/R
/// requirements.
#[derive(Debug, Clone, Copy)]
pub struct ExascaleProjection {
    /// Number of compute nodes (100 000).
    pub node_count: u32,
    /// System peak, flop/s (1 exaflop).
    pub system_peak: f64,
    /// Per-node peak, flop/s (10 TF).
    pub node_peak: f64,
    /// Per-node memory, bytes (140 GB).
    pub node_memory: f64,
    /// Total system memory, bytes (14 PB).
    pub system_memory: f64,
    /// Interconnect bandwidth, bytes/s (50 GB/s).
    pub interconnect_bw: f64,
    /// Aggregate I/O bandwidth, bytes/s (10 TB/s).
    pub io_bw: f64,
    /// System MTTF from the socket model, seconds (~26.28 min).
    pub derived_mtti: f64,
    /// Rounded MTTI used by the evaluation, seconds (30 min).
    pub mtti: f64,
    /// Checkpoint size per node, bytes (112 GB).
    pub checkpoint_bytes: f64,
    /// Required checkpoint commit time for the target progress, seconds
    /// (~9 s, from Daly: delta ~ M/200 for 90%).
    pub required_commit_time: f64,
    /// Required per-node commit bandwidth, bytes/s (~12.44 GB/s).
    pub required_commit_bw: f64,
    /// Effective per-node share of global I/O bandwidth, bytes/s
    /// (100 MB/s).
    pub io_bw_per_node: f64,
}

impl ExascaleProjection {
    /// Projects the exascale system from a baseline using the given
    /// assumptions (§3.1–3.3).
    pub fn project(
        base: &TitanBaseline,
        assume: &ScalingAssumptions,
    ) -> Self {
        // Node count: remaining factor after per-node scaling, rounded
        // to the round figure the paper uses (the 5.35x factor lands on
        // 99 573 nodes; the paper rounds to 100 000).
        let raw_nodes = assume.target_peak / assume.node_peak;
        let node_count = round_to_leading_digits(raw_nodes, 1) as u32;

        let node_memory = assume.cpu_cores as f64 * assume.memory_per_core
            + assume.gpu_memory;
        let system_memory = node_count as f64 * node_memory;
        let io_bw = base.io_bw * assume.io_bw_factor;

        // MTTI: one socket per node, failures independent.
        let derived_mtti = assume.socket_mttf / node_count as f64;
        let mtti = assume.assumed_mtti;

        let checkpoint_bytes = assume.checkpoint_fraction * node_memory;
        // Required commit time for the target progress rate: invert the
        // Figure 1 curve (delta = M / ratio).
        let ratio = daly::ratio_for_progress(assume.target_progress);
        let required_commit_time = mtti / ratio;
        let required_commit_bw = checkpoint_bytes / required_commit_time;

        Self {
            node_count,
            system_peak: node_count as f64 * assume.node_peak,
            node_peak: assume.node_peak,
            node_memory,
            system_memory,
            interconnect_bw: assume.interconnect_bw,
            io_bw,
            derived_mtti,
            mtti,
            checkpoint_bytes,
            required_commit_time,
            required_commit_bw,
            io_bw_per_node: io_bw / node_count as f64,
        }
    }

    /// The paper's projection: Titan baseline, default assumptions.
    pub fn paper_default() -> Self {
        Self::project(&TitanBaseline::titan(), &ScalingAssumptions::default())
    }

    /// System-level checkpoint commit bandwidth requirement, bytes/s
    /// (§3.3: ~1.244 PB/s).
    pub fn system_commit_bw(&self) -> f64 {
        self.required_commit_bw * self.node_count as f64
    }

    /// Time to write one node's checkpoint to its share of global I/O
    /// (§3.4: ~18.67 min).
    pub fn t_io_per_node(&self) -> f64 {
        self.checkpoint_bytes / self.io_bw_per_node
    }

    /// Converts the projection into the [`crate::params::SystemParams`]
    /// used by the models, with the evaluation's 15 GB/s local NVM.
    pub fn to_system_params(&self) -> crate::params::SystemParams {
        crate::params::SystemParams {
            mtti: self.mtti,
            checkpoint_bytes: self.checkpoint_bytes,
            local_bw: 15.0 * GB,
            io_bw_per_node: self.io_bw_per_node,
        }
    }
}

/// Rounds `x` to `digits` significant decimal digits (used to mimic the
/// paper's round-figure node count).
fn round_to_leading_digits(x: f64, digits: u32) -> f64 {
    assert!(x > 0.0 && digits >= 1);
    let mag = x.log10().floor() as i32 - (digits as i32 - 1);
    let scale = 10f64.powi(mag);
    (x / scale).round() * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_baseline_matches_table1() {
        let t = TitanBaseline::titan();
        assert!((t.system_peak() / PFLOPS - 26.9).abs() < 0.2); // "27 PF"
        assert!((t.system_memory() / TB - 710.0).abs() < 1.0);
    }

    #[test]
    fn projection_reproduces_table1() {
        let p = ExascaleProjection::paper_default();
        assert_eq!(p.node_count, 100_000);
        assert!((p.system_peak / EFLOPS - 1.0).abs() < 1e-9);
        assert_eq!(p.node_memory, 140.0 * GB);
        assert!((p.system_memory / PB - 14.0).abs() < 1e-9);
        assert_eq!(p.io_bw, 10.0 * TB);
        assert_eq!(p.mtti, 30.0 * MINUTE);
    }

    #[test]
    fn mtti_derivation_matches_sec32() {
        // 5-year socket MTTF over 100k nodes -> ~26.28 minutes.
        let p = ExascaleProjection::paper_default();
        assert!(
            (p.derived_mtti / MINUTE - 26.28).abs() < 0.05,
            "derived MTTI = {} min",
            p.derived_mtti / MINUTE
        );
        // The evaluation rounds up to 30 minutes.
        assert!(p.mtti > p.derived_mtti);
    }

    #[test]
    fn commit_requirements_match_sec33() {
        let p = ExascaleProjection::paper_default();
        // Checkpoint size: 80% of 140 GB = 112 GB.
        assert_eq!(p.checkpoint_bytes, 112.0 * GB);
        // Commit time ~ 9 s (M/200 rule).
        assert!(
            (p.required_commit_time - 9.0).abs() < 0.7,
            "commit time = {}",
            p.required_commit_time
        );
        // Commit bandwidth ~ 12.44 GB/s per node.
        assert!(
            (p.required_commit_bw / GB - 12.44).abs() < 1.0,
            "commit bw = {}",
            p.required_commit_bw / GB
        );
        // System-wide ~1.244 PB/s, far above the 10 TB/s I/O bandwidth.
        assert!(p.system_commit_bw() > 100.0 * p.io_bw);
    }

    #[test]
    fn per_node_io_write_takes_18_minutes() {
        let p = ExascaleProjection::paper_default();
        assert_eq!(p.io_bw_per_node, 100.0 * MB);
        assert!(
            (p.t_io_per_node() / MINUTE - 18.67).abs() < 0.05,
            "t_io = {} min",
            p.t_io_per_node() / MINUTE
        );
    }

    #[test]
    fn to_system_params_round_trips() {
        let p = ExascaleProjection::paper_default();
        let s = p.to_system_params();
        let table4 = crate::params::SystemParams::exascale_default();
        assert_eq!(s.mtti, table4.mtti);
        assert_eq!(s.checkpoint_bytes, table4.checkpoint_bytes);
        assert_eq!(s.io_bw_per_node, table4.io_bw_per_node);
        assert_eq!(s.local_bw, table4.local_bw);
    }

    #[test]
    fn custom_assumptions_flow_through() {
        // Halving node peak doubles node count and halves per-node I/O.
        let assume = ScalingAssumptions {
            node_peak: 5.0 * TFLOPS,
            ..Default::default()
        };
        let p = ExascaleProjection::project(&TitanBaseline::titan(), &assume);
        assert_eq!(p.node_count, 200_000);
        assert_eq!(p.io_bw_per_node, 50.0 * MB);
    }

    #[test]
    fn rounding_helper() {
        assert_eq!(round_to_leading_digits(99_573.0, 1), 100_000.0);
        assert_eq!(round_to_leading_digits(123.0, 2), 120.0);
        assert_eq!(round_to_leading_digits(0.0456, 1), 0.05);
    }
}
