//! Exact Markov-renewal analytic model of multilevel checkpoint/restart.
//!
//! This is the paper's "performance model" (§6.1.1): Daly's analytical
//! model extended to model multilevel checkpointing faithfully (distinct
//! bandwidths and frequencies per level, configurable probability of
//! local-recovery success) and to model NDP offload (I/O checkpointing
//! and compression off the critical path).
//!
//! ## Model
//!
//! Execution is a renewal process over *checkpoint cycles*. One cycle is
//! `k` *segments* (τ of compute followed by a local-NVM commit δ_L), plus —
//! for `Local + I/O-Host` — a host-blocking global-I/O commit at the end.
//! Failures arrive as a Poisson process with mean `M` (the system MTTI)
//! and can interrupt **any** activity, including restores.
//!
//! On a failure the system recovers: with probability `p_local` the
//! failure is survivable from locally-saved checkpoints (local/partner
//! level), otherwise recovery must come from the last checkpoint durable
//! on global I/O. A restore is itself an activity that can be
//! interrupted, in which case the recovery level is re-sampled
//! (memorylessness).
//!
//! * Local recovery returns execution to the start of the interrupted
//!   activity (the newest local checkpoint is always the previous
//!   segment's).
//! * I/O recovery returns execution to the last I/O-durable checkpoint —
//!   the cycle boundary, possibly the *previous* cycle boundary under the
//!   pipelined NDP drain-lag model.
//!
//! The expected wall time from each cycle state to cycle completion obeys
//! a linear recurrence; solving it yields the *exact* expected cycle time
//! under the model above (for single-level configurations it reduces
//! algebraically to Daly's complete model — see the tests). Bucket
//! decompositions (checkpoint/restore by level) are exact expectations;
//! the rerun split between levels uses a proportional attribution
//! documented on [`solve_cycle`].

use crate::breakdown::Breakdown;
use crate::daly::{expected_time_before_interrupt, survival_prob};
use crate::params::{derive_costs, DrainLagModel, Strategy, SystemParams};

/// Expected time spent in the *compute prefix* of an interrupted
/// activity: `E[min(X, exec) | X < a]` for `X ~ Exp(1/M)`.
///
/// An activity of duration `a` starts with `exec` seconds of computation
/// (possibly 0) followed by checkpoint writing; given the activity is
/// interrupted, this is the expected share of the wasted time that was
/// computation.
fn expected_exec_overlap(a: f64, exec: f64, mtti: f64) -> f64 {
    debug_assert!((0.0..=a).contains(&exec));
    if a == 0.0 || exec == 0.0 {
        return 0.0;
    }
    let q_a = survival_prob(a, mtti);
    let denom = 1.0 - q_a;
    if denom < 1e-300 {
        return exec.min(mtti); // a << M: failure density ~uniform prefix
    }
    let q_e = survival_prob(exec, mtti);
    (mtti * (1.0 - q_e) - exec * q_a) / denom
}

/// Outcome of the per-failure recovery sub-process.
///
/// A recovery *episode* starts with a failure whose survivability is
/// sampled (`p_local`). Local restores can themselves be interrupted;
/// a new failure re-samples survivability — but once any failure in the
/// episode is *not* locally survivable, node-local state is gone and
/// every further attempt must restore from I/O (**absorbing I/O
/// mode**). This matters: with long I/O restore times a large fraction
/// of episodes are dragged into I/O mode by secondary failures.
#[derive(Debug, Clone, Copy)]
struct Recovery {
    /// Probability that the episode ends with a local restore.
    pi_local: f64,
    /// Expected time per episode spent in local-restore attempts.
    restore_local: f64,
    /// Expected time per episode spent in I/O-restore attempts.
    restore_io: f64,
    /// Expected duration of an all-I/O episode (used when no local
    /// checkpoint exists at failure time).
    io_only_time: f64,
}

impl Recovery {
    /// Total expected episode duration.
    fn total(&self) -> f64 {
        self.restore_local + self.restore_io
    }
}

/// Solves the recovery episode (see [`Recovery`]).
fn solve_recovery(p_local: f64, r_local: f64, r_io: f64, mtti: f64) -> Recovery {
    let q_l = survival_prob(r_local, mtti);
    let q_io = survival_prob(r_io, mtti);
    assert!(
        q_io > 0.0 || p_local >= 1.0,
        "recovery can never succeed: restore times vastly exceed MTTI"
    );
    let w_l = expected_time_before_interrupt(r_local, mtti);

    // Absorbing I/O mode: repeat the I/O restore until it completes
    // (Daly's restart factor): E = M (e^{r_io/M} - 1).
    let io_only_time = if p_local >= 1.0 && r_io == 0.0 {
        0.0
    } else {
        mtti * (r_io / mtti).exp_m1()
    };

    // Local mode: attempt the local restore; interruption re-samples
    // survivability — stay local with prob p_local, fall into I/O mode
    // otherwise.
    let denom = 1.0 - (1.0 - q_l) * p_local;
    debug_assert!(denom > 0.0);
    // P(episode in local mode ends locally).
    let p_ends_local = q_l / denom;
    // E[local-restore time while in local mode].
    let local_time = (q_l * r_local + (1.0 - q_l) * w_l) / denom;
    // E[I/O time after falling out of local mode].
    let io_after_local =
        (1.0 - q_l) * (1.0 - p_local) * io_only_time / denom;

    Recovery {
        pi_local: p_local * p_ends_local,
        restore_local: p_local * local_time,
        restore_io: p_local * io_after_local
            + (1.0 - p_local) * io_only_time,
        io_only_time,
    }
}

/// Which bucket the non-compute tail of an activity belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TailBucket {
    /// Local-NVM checkpoint commit.
    CkptLocal,
    /// Host-blocking global-I/O checkpoint commit.
    CkptIo,
}

/// One state of the cycle chain: a single interruptible activity.
#[derive(Debug, Clone, Copy)]
struct StateSpec {
    /// Total activity duration.
    a: f64,
    /// Compute prefix duration (0 for a pure I/O-write state).
    exec: f64,
    /// Bucket of the `a - exec` checkpoint tail.
    tail: TailBucket,
    /// Net completed work lost if a failure here is recovered from I/O,
    /// in seconds of compute.
    lost_on_io: f64,
    /// Number of *extra full cycles* that must be re-executed after an
    /// I/O recovery here (pipelined NDP drain lag rolling into the
    /// previous cycle). Charged as a bounded redo constant — after an
    /// I/O restore the restore point itself is durable, so the redo
    /// cannot recursively roll back further; the redo cost is therefore
    /// approximated by a cycle re-executed under local-only retries
    /// (the discrete-event simulator models the pipeline exactly).
    extra_cycles: f64,
}

/// Per-bucket expected values accumulated from cycle start to completion.
#[derive(Debug, Clone, Copy, Default)]
struct BucketTotals {
    total: f64,
    exec: f64,
    ckpt_local: f64,
    ckpt_io: f64,
    restore_local: f64,
    restore_io: f64,
    /// Net work lost to failures recovered locally (partial attempts).
    raw_lost_local: f64,
    /// Net work lost to failures recovered from I/O (partial attempts
    /// plus rolled-back completed segments).
    raw_lost_io: f64,
}

const N_BUCKETS: usize = 8;

impl BucketTotals {
    fn from_array(v: [f64; N_BUCKETS]) -> Self {
        BucketTotals {
            total: v[0],
            exec: v[1],
            ckpt_local: v[2],
            ckpt_io: v[3],
            restore_local: v[4],
            restore_io: v[5],
            raw_lost_local: v[6],
            raw_lost_io: v[7],
        }
    }
}

/// Full solution of the cycle chain for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleSolution {
    /// Expected breakdown per cycle (compute = work_per_cycle exactly).
    pub breakdown: Breakdown,
    /// Expected wall-clock time per completed cycle.
    pub cycle_time: f64,
    /// Net useful work per cycle (`k · τ`).
    pub work_per_cycle: f64,
    /// Locally-saved : I/O-saved checkpoint ratio in force.
    pub ratio: u32,
    /// Compute interval between local checkpoints in force.
    pub interval: f64,
}

impl CycleSolution {
    /// Progress rate (efficiency) of the configuration.
    pub fn progress_rate(&self) -> f64 {
        self.breakdown.progress_rate()
    }
}

/// Solves the Markov-renewal chain for a `(system, strategy)` pair.
///
/// Returns exact expected per-cycle wall time and bucket decomposition.
/// The split of rerun time between "caused by local recovery" and
/// "caused by I/O recovery" attributes the total re-execution time
/// (`exec − k·τ`, an exact expectation) proportionally to the expected
/// net work lost to each recovery level; this matches the
/// discrete-event simulator's per-second labeling to within a few
/// percent in all evaluated regimes (see the cross-validation
/// integration tests).
///
/// # Panics
///
/// Panics if the configuration diverges (expected cycle time infinite),
/// which under this model requires restore times enormously larger than
/// the MTTI.
pub fn solve_cycle(sys: &SystemParams, strat: &Strategy) -> CycleSolution {
    let d = derive_costs(sys, strat);
    let mtti = sys.mtti;
    let tau = d.interval;
    let k = effective_k(strat, d.ratio);

    let recovery = solve_recovery(d.p_local, d.restore_local, d.restore_io, mtti);

    // Build the chain states.
    let mut states: Vec<StateSpec> = Vec::with_capacity(k as usize + 1);
    let drain_lag_segments = drain_lag_segments(strat, &d);
    for i in 0..k {
        let rolled_back_cycles =
            if i < drain_lag_segments { 1.0 } else { 0.0 };
        states.push(StateSpec {
            a: tau + d.delta_local,
            exec: tau,
            tail: TailBucket::CkptLocal,
            lost_on_io: (i as f64 + rolled_back_cycles * k as f64) * tau,
            extra_cycles: rolled_back_cycles,
        });
    }
    if d.t_io_host > 0.0 {
        // Host-blocking I/O commit at end of cycle (IoOnly folds the I/O
        // write into the single segment's tail instead).
        states.push(StateSpec {
            a: d.t_io_host,
            exec: 0.0,
            tail: TailBucket::CkptIo,
            lost_on_io: k as f64 * tau,
            extra_cycles: 0.0,
        });
    }

    let redo_cycle = if drain_lag_segments > 0 {
        local_only_cycle_costs(
            k,
            tau + d.delta_local,
            tau,
            mtti,
            d.restore_local,
        )
    } else {
        [0.0; N_BUCKETS]
    };
    let totals = solve_chain(&states, mtti, recovery, redo_cycle);
    let work_per_cycle = k as f64 * tau;

    // Exact identity check: buckets partition total time.
    let bucket_sum = totals.exec
        + totals.ckpt_local
        + totals.ckpt_io
        + totals.restore_local
        + totals.restore_io;
    debug_assert!(
        (bucket_sum - totals.total).abs() <= 1e-6 * totals.total.max(1.0),
        "bucket accounting mismatch: {bucket_sum} vs {}",
        totals.total
    );

    let rerun_total = (totals.exec - work_per_cycle).max(0.0);
    let lost_sum = totals.raw_lost_local + totals.raw_lost_io;
    let (rerun_local, rerun_io) = if lost_sum > 0.0 {
        let io_share = totals.raw_lost_io / lost_sum;
        (rerun_total * (1.0 - io_share), rerun_total * io_share)
    } else {
        (rerun_total, 0.0)
    };

    let breakdown = Breakdown {
        compute: work_per_cycle,
        checkpoint_local: totals.ckpt_local,
        checkpoint_io: totals.ckpt_io,
        restore_local: totals.restore_local,
        restore_io: totals.restore_io,
        rerun_local,
        rerun_io,
    };
    debug_assert!(breakdown.validate().is_ok());

    CycleSolution {
        breakdown,
        cycle_time: totals.total,
        work_per_cycle,
        ratio: k,
        interval: tau,
    }
}

/// Evaluates a configuration, returning the expected execution-time
/// breakdown (per cycle; all derived ratios are scale-free).
pub fn evaluate(sys: &SystemParams, strat: &Strategy) -> Breakdown {
    solve_cycle(sys, strat).breakdown
}

/// Progress rate (efficiency) of a configuration under the analytic
/// model.
pub fn progress_rate(sys: &SystemParams, strat: &Strategy) -> f64 {
    solve_cycle(sys, strat).progress_rate()
}

/// The number of segments per cycle for the chain.
fn effective_k(strat: &Strategy, derived_ratio: u32) -> u32 {
    match strat {
        // Single-level strategies have one segment per cycle.
        Strategy::IoOnly { .. } | Strategy::LocalOnly { .. } => 1,
        _ => derived_ratio,
    }
}

/// How many segments of drain-pipeline lag apply to I/O rollback targets.
fn drain_lag_segments(strat: &Strategy, d: &crate::params::DerivedCosts) -> u32 {
    match strat {
        Strategy::LocalIoNdp {
            drain_lag: DrainLagModel::Pipelined,
            ..
        } => {
            // The cycle-start checkpoint finishes draining after
            // ceil(drain_time / tau) segments of the cycle; failures
            // before that roll back to the previous cycle's checkpoint.
            ((d.ndp_drain_time / d.interval).ceil() as u32).min(d.ratio)
        }
        _ => 0,
    }
}

/// Backward pass over the chain, solving all buckets simultaneously.
///
/// Two linked unknowns describe a cycle:
///
/// * `E_0` — expected remaining cost from a *normal* cycle start (a
///   local checkpoint exists);
/// * `X` (= `E_0io`) — expected remaining cost from a cycle start
///   reached by an **I/O recovery**: the restored image is the only
///   durable copy, so until the first local commit completes every
///   failure must recover from I/O again, whatever its survivability.
///
/// For state `i` with duration `a_i`, survival `q_i`, episode outcome
/// `π_l` (local: retry in place) and `1 − π_l` (I/O: restart the cycle
/// in the exposed state, plus a bounded `extra_i`-cycle redo constant
/// under pipelined drain lag):
///
/// ```text
/// E_i = c_i + q_i·E_{i+1} + (1−q_i)·π_l·E_i
///           + (1−q_i)·(1−π_l)·(X + extra_i·REDO)
/// X   = c_x + q_0·E_1 + (1−q_0)·X
/// ```
///
/// Writing `E_i = α_i + β_i·X` and eliminating backwards leaves a
/// linear system in `(E_0, X)` per bucket; the coefficient scalars are
/// bucket-independent, so a single pass carries one `α` vector per
/// bucket.
fn solve_chain(
    states: &[StateSpec],
    mtti: f64,
    rec: Recovery,
    redo_cycle: [f64; N_BUCKETS],
) -> BucketTotals {
    assert!(!states.is_empty());
    let pi_l = rec.pi_local;

    let mut alpha = [0.0f64; N_BUCKETS];
    let mut beta = 0.0f64;
    // Coefficients of E_1 (the state after states[0]), captured during
    // the backward pass for the X equation.
    let mut alpha1 = [0.0f64; N_BUCKETS];
    let mut beta1 = 0.0f64;

    for (idx, spec) in states.iter().enumerate().rev() {
        let q = survival_prob(spec.a, mtti);
        let fail = 1.0 - q;
        let w_fail = expected_time_before_interrupt(spec.a, mtti);
        let exec_overlap = expected_exec_overlap(spec.a, spec.exec, mtti);
        let tail_fail = (w_fail - exec_overlap).max(0.0);

        // Per-visit constant cost for each bucket.
        let mut c = [0.0f64; N_BUCKETS];
        // total
        c[0] = q * spec.a + fail * (w_fail + rec.total());
        // exec
        c[1] = q * spec.exec + fail * exec_overlap;
        // ckpt tails
        let tail_cost = q * (spec.a - spec.exec) + fail * tail_fail;
        match spec.tail {
            TailBucket::CkptLocal => c[2] = tail_cost,
            TailBucket::CkptIo => c[3] = tail_cost,
        }
        // restores
        c[4] = fail * rec.restore_local;
        c[5] = fail * rec.restore_io;
        // raw lost work by recovery level
        c[6] = fail * pi_l * exec_overlap;
        c[7] = fail * (1.0 - pi_l) * (exec_overlap + spec.lost_on_io);
        // Bounded extra-cycle redo under pipelined drain lag.
        if spec.extra_cycles > 0.0 {
            let w = fail * (1.0 - pi_l) * spec.extra_cycles;
            for b in 0..N_BUCKETS {
                c[b] += w * redo_cycle[b];
            }
        }

        let a_coef = 1.0 - fail * pi_l;
        let bx_coef = fail * (1.0 - pi_l);
        debug_assert!(a_coef > 0.0);

        for b in 0..N_BUCKETS {
            alpha[b] = (c[b] + q * alpha[b]) / a_coef;
        }
        beta = (q * beta + bx_coef) / a_coef;
        if idx == 1 {
            alpha1 = alpha;
            beta1 = beta;
        }
    }
    // (For single-state chains E_1 is completion: zero coefficients.)

    // X's own state: the states[0] activity under all-I/O recovery,
    // rolling back to itself (the restore point is I/O-durable), no
    // completed work lost.
    let spec0 = states[0];
    let q0 = survival_prob(spec0.a, mtti);
    let fail0 = 1.0 - q0;
    let w_fail0 = expected_time_before_interrupt(spec0.a, mtti);
    let ov0 = expected_exec_overlap(spec0.a, spec0.exec, mtti);
    let mut cx = [0.0f64; N_BUCKETS];
    cx[0] = q0 * spec0.a + fail0 * (w_fail0 + rec.io_only_time);
    cx[1] = q0 * spec0.exec + fail0 * ov0;
    let tail0 = q0 * (spec0.a - spec0.exec) + fail0 * (w_fail0 - ov0).max(0.0);
    match spec0.tail {
        TailBucket::CkptLocal => cx[2] = tail0,
        TailBucket::CkptIo => cx[3] = tail0,
    }
    cx[5] = fail0 * rec.io_only_time;
    cx[7] = fail0 * ov0;

    // Solve:
    //   E_0 = α_0 + β_0 X
    //   X (q0 (1 - β_1)) = c_x + q0 α_1
    //
    // β_1 is the probability of re-entering the exposed state before
    // completing the cycle; it approaches (but never reaches) 1 for
    // configurations whose completion probability underflows. Clamp so
    // such configurations report astronomically large — but finite —
    // cycle times (progress ≈ 0) instead of failing.
    let x_coef = (q0 * (1.0 - beta1)).max(1e-300);

    let mut out = [0.0f64; N_BUCKETS];
    for b in 0..N_BUCKETS {
        let x = (cx[b] + q0 * alpha1[b]) / x_coef;
        out[b] = alpha[b] + beta * x;
    }
    BucketTotals::from_array(out)
}

/// Expected per-cycle bucket costs of re-executing one full cycle of
/// `k` segments under local-only retries (the bounded pipelined-lag
/// redo constant).
fn local_only_cycle_costs(
    k: u32,
    a: f64,
    exec: f64,
    mtti: f64,
    r_local: f64,
) -> [f64; N_BUCKETS] {
    let q = survival_prob(a, mtti);
    let fail = 1.0 - q;
    let w_fail = expected_time_before_interrupt(a, mtti);
    let ov = expected_exec_overlap(a, exec, mtti);
    // Per-failure local recovery (Daly restart factor).
    let r_cost = mtti * (r_local / mtti).exp_m1();
    let mut c = [0.0f64; N_BUCKETS];
    c[0] = q * a + fail * (w_fail + r_cost);
    c[1] = q * exec + fail * ov;
    c[2] = q * (a - exec) + fail * (w_fail - ov).max(0.0);
    c[4] = fail * r_cost;
    // Lost-work attribution stays with the triggering I/O recovery.
    let scale = k as f64 / q;
    c.map(|v| v * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompressionSpec;


    fn sys() -> SystemParams {
        SystemParams::exascale_default()
    }

    #[test]
    fn exec_overlap_limits() {
        // No exec prefix -> 0.
        assert_eq!(expected_exec_overlap(10.0, 0.0, 100.0), 0.0);
        // Whole activity is exec -> equals conditional interrupt time.
        let a = 7.0;
        let m = 50.0;
        let full = expected_exec_overlap(a, a, m);
        let wf = expected_time_before_interrupt(a, m);
        assert!((full - wf).abs() < 1e-12);
        // Overlap is monotone in the prefix and bounded by it.
        let mut last = 0.0;
        for exec in [1.0, 2.0, 4.0, 6.0] {
            let e = expected_exec_overlap(a, exec, m);
            assert!(e >= last && e <= exec);
            last = e;
        }
    }

    #[test]
    fn recovery_reduces_to_daly_restart_factor() {
        // With p_local = 1, E_rec = M(e^{R/M} - 1) (derived in the module
        // docs; this is the source of Daly's e^{R/M} factor).
        let m = 1800.0;
        let r = 9.0;
        let rec = solve_recovery(1.0, r, 0.0, m);
        let expected = m * ((r / m).exp() - 1.0);
        assert!((rec.total() - expected).abs() < 1e-9 * expected);
        assert_eq!(rec.pi_local, 1.0);
        assert_eq!(rec.restore_io, 0.0);
    }

    #[test]
    fn single_level_matches_daly_exactly() {
        // LocalOnly with a fixed interval must reproduce Daly's complete
        // model: E_cycle = M e^{R/M} (e^{(tau+delta)/M} - 1).
        let sys = sys();
        let tau = 150.0;
        let strat = Strategy::LocalOnly {
            interval: Some(tau),
        };
        let sol = solve_cycle(&sys, &strat);
        let delta = sys.delta_local();
        let m = sys.mtti;
        let daly =
            m * (delta / m).exp() * (((tau + delta) / m).exp() - 1.0);
        assert!(
            (sol.cycle_time - daly).abs() < 1e-6 * daly,
            "chain {} vs daly {}",
            sol.cycle_time,
            daly
        );
    }

    #[test]
    fn io_only_matches_daly_exactly() {
        let sys = sys();
        let strat = Strategy::IoOnly {
            interval: None,
            compression: None,
        };
        let sol = solve_cycle(&sys, &strat);
        let t_io = sys.t_io_uncompressed();
        let tau = sol.interval;
        let m = sys.mtti;
        let daly = m * (t_io / m).exp() * (((tau + t_io) / m).exp() - 1.0);
        assert!(
            (sol.cycle_time - daly).abs() < 1e-6 * daly,
            "chain {} vs daly {}",
            sol.cycle_time,
            daly
        );
        // IoOnly on the exascale system is catastrophically slow
        // (Sec. 3.3: required bandwidth outpaces I/O by >100x).
        assert!(sol.progress_rate() < 0.35, "{}", sol.progress_rate());
    }

    #[test]
    fn local_only_hits_ninety_percent_bound() {
        // Sec. 3.4/6.4: the system is sized for ~90% progress when all
        // checkpoints go to local NVM at 15 GB/s.
        let strat = Strategy::LocalOnly { interval: None };
        let p = progress_rate(&sys(), &strat);
        assert!((p - 0.90).abs() < 0.01, "progress = {p}");
    }

    #[test]
    fn multilevel_between_io_only_and_local_only() {
        let s = sys();
        let io_only = progress_rate(
            &s,
            &Strategy::IoOnly {
                interval: None,
                compression: None,
            },
        );
        let local_only =
            progress_rate(&s, &Strategy::LocalOnly { interval: None });
        let multi =
            progress_rate(&s, &Strategy::local_io_host(20, 0.8, None));
        assert!(
            io_only < multi && multi < local_only,
            "io={io_only} multi={multi} local={local_only}"
        );
    }

    #[test]
    fn ndp_beats_host_at_same_settings() {
        let s = sys();
        for p_local in [0.2, 0.5, 0.8, 0.96] {
            let host = progress_rate(
                &s,
                &Strategy::local_io_host(20, p_local, None),
            );
            let ndp =
                progress_rate(&s, &Strategy::local_io_ndp(p_local, None));
            assert!(
                ndp > host,
                "p_local={p_local}: ndp {ndp} <= host {host}"
            );
        }
    }

    #[test]
    fn compression_helps_host_io() {
        let s = sys();
        let plain = progress_rate(&s, &Strategy::local_io_host(20, 0.8, None));
        let comp = progress_rate(
            &s,
            &Strategy::local_io_host(
                20,
                0.8,
                Some(CompressionSpec::gzip1_host()),
            ),
        );
        assert!(comp > plain, "comp {comp} <= plain {plain}");
    }

    #[test]
    fn ndp_with_compression_approaches_local_bound() {
        // Sec. 6.4: with NDP + compression the progress rate approaches
        // the 90% single-level bound.
        let s = sys();
        let strat = Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: None,
            p_local: 0.96,
            compression: Some(CompressionSpec::gzip1_ndp()),
            drain_lag: DrainLagModel::Ignore,
        };
        let sol = solve_cycle(&s, &strat);
        let p = sol.progress_rate();
        assert!(p > 0.86 && p < 0.91, "progress = {p}");
        // No host-blocking I/O checkpoint time at all.
        assert_eq!(sol.breakdown.checkpoint_io, 0.0);
    }

    #[test]
    fn paper_rerun_io_for_ndp_no_compression() {
        // Sec. 6.4: for Local + I/O-N at 4% I/O recoveries, "Rerun I/O"
        // is ~1.2% of execution time under the paper's (lag-free)
        // accounting.
        let s = sys();
        let strat = Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: None,
            p_local: 0.96,
            compression: None,
            drain_lag: DrainLagModel::Ignore,
        };
        let b = evaluate(&s, &strat);
        let f = b.as_fractions();
        assert!(
            (f.rerun_io - 0.012).abs() < 0.006,
            "rerun_io fraction = {}",
            f.rerun_io
        );
    }

    #[test]
    fn pipelined_lag_costs_more_than_ignored_lag() {
        let s = sys();
        let mk = |lag| Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: None,
            p_local: 0.85,
            compression: None,
            drain_lag: lag,
        };
        let ignore = progress_rate(&s, &mk(DrainLagModel::Ignore));
        let pipe = progress_rate(&s, &mk(DrainLagModel::Pipelined));
        assert!(pipe < ignore, "pipelined {pipe} >= ignored {ignore}");
        // ... but only modestly: the drain lag is bounded by one cycle.
        assert!(ignore - pipe < 0.09, "gap {}", ignore - pipe);
    }

    #[test]
    fn progress_improves_with_p_local() {
        let s = sys();
        let mut last = 0.0;
        for p_local in [0.2, 0.5, 0.8, 0.96] {
            let p =
                progress_rate(&s, &Strategy::local_io_host(30, p_local, None));
            assert!(p > last, "p_local {p_local}: {p} <= {last}");
            last = p;
        }
    }

    #[test]
    fn breakdown_buckets_partition_cycle_time() {
        let s = sys();
        for strat in [
            Strategy::local_io_host(12, 0.8, None),
            Strategy::local_io_host(12, 0.5, Some(CompressionSpec::gzip1_host())),
            Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp())),
            Strategy::IoOnly {
                interval: None,
                compression: None,
            },
            Strategy::LocalOnly { interval: None },
        ] {
            let sol = solve_cycle(&s, &strat);
            let b = sol.breakdown;
            assert!(
                (b.total() - sol.cycle_time).abs()
                    < 1e-6 * sol.cycle_time,
                "{strat:?}: total {} != cycle {}",
                b.total(),
                sol.cycle_time
            );
            b.validate().unwrap();
        }
    }

    #[test]
    fn no_failures_limit_is_pure_overhead_ratio() {
        // With an enormous MTTI the model reduces to
        // progress = k·tau / (k·(tau+delta) + t_io).
        let s = SystemParams {
            mtti: 1e12,
            ..sys()
        };
        let k = 10;
        let sol = solve_cycle(&s, &Strategy::local_io_host(k, 0.8, None));
        let tau = 150.0;
        let delta = s.delta_local();
        let t_io = s.t_io_uncompressed();
        let expected =
            (k as f64 * tau) / (k as f64 * (tau + delta) + t_io);
        assert!(
            (sol.progress_rate() - expected).abs() < 1e-6,
            "{} vs {}",
            sol.progress_rate(),
            expected
        );
    }

    #[test]
    fn headline_claim_shape_51_to_78() {
        // Sec. 6.3: averaged over p_local in {20,50,80,96}%, multilevel
        // with compression ~51% -> NDP with compression ~78%.
        // We reproduce the *shape*: a gap of tens of percentage points.
        let s = sys();
        let p_locals = [0.2, 0.5, 0.8, 0.96];
        let avg = |mk: &dyn Fn(f64) -> Strategy| -> f64 {
            p_locals
                .iter()
                .map(|&p| {
                    // Use each configuration's empirically optimal ratio
                    // for the host, as the paper does.
                    progress_rate(&s, &mk(p))
                })
                .sum::<f64>()
                / p_locals.len() as f64
        };
        let host_c = avg(&|p| {
            crate::ratio_opt::best_host_strategy(
                &s,
                p,
                Some(CompressionSpec::gzip1_host()),
            )
            .0
        });
        let ndp_c = avg(&|p| {
            Strategy::local_io_ndp(p, Some(CompressionSpec::gzip1_ndp()))
        });
        assert!(
            host_c > 0.35 && host_c < 0.68,
            "host+comp avg = {host_c}"
        );
        assert!(ndp_c > 0.70, "ndp+comp avg = {ndp_c}");
        assert!(
            ndp_c - host_c > 0.10,
            "gap too small: {host_c} -> {ndp_c}"
        );
    }
}
