//! Empirical optimisation of the locally-saved : I/O-saved checkpoint
//! ratio (§6.2, Figures 4 and 5).
//!
//! For `Local + I/O-Host`, saving I/O checkpoints more often raises
//! checkpoint time but lowers rerun time after I/O recoveries; the
//! optimum ratio is found by scanning. For `Local + I/O-NDP`, writing to
//! I/O more often costs the host nothing, so the best ratio is simply the
//! smallest sustainable one (computed in [`crate::params::derive_costs`]).

use crate::breakdown::Breakdown;
use crate::cache::{solve_cycle_cached, solve_cycle_many};
use crate::params::{CompressionSpec, Strategy, SystemParams};

/// Default upper bound of the ratio scan. At the paper's 150 s local
/// interval this corresponds to I/O checkpoints over 8 hours apart —
/// far beyond any useful operating point.
pub const MAX_RATIO: u32 = 400;

/// Progress rate of `Local + I/O-Host` for every ratio in `1..=max`
/// (Figure 4's x-axis sweep). Returns `(ratio, breakdown)` pairs.
pub fn host_overhead_sweep(
    sys: &SystemParams,
    p_local: f64,
    compression: Option<CompressionSpec>,
    max: u32,
) -> Vec<(u32, Breakdown)> {
    let pairs: Vec<(SystemParams, Strategy)> = (1..=max)
        .map(|ratio| {
            (*sys, Strategy::local_io_host(ratio, p_local, compression))
        })
        .collect();
    (1..=max)
        .zip(solve_cycle_many(&pairs))
        .map(|(ratio, sol)| (ratio, sol.breakdown))
        .collect()
}

/// Finds the ratio maximising progress rate for `Local + I/O-Host` with
/// an explicit local interval (`None` = Daly optimum for the local
/// level, used by the §6.5 sensitivity sweeps where the hardware
/// varies). Returns `(best_ratio, best_progress)`.
pub fn best_host_ratio_at(
    sys: &SystemParams,
    p_local: f64,
    compression: Option<CompressionSpec>,
    interval: Option<f64>,
) -> (u32, f64) {
    let mut best = (1u32, f64::MIN);
    for ratio in 1..=MAX_RATIO {
        let strat = Strategy::LocalIoHost {
            interval,
            ratio,
            p_local,
            compression,
        };
        let p = solve_cycle_cached(sys, &strat).progress_rate();
        if p > best.1 {
            best = (ratio, p);
        }
    }
    best
}

/// [`best_host_ratio_at`] with the paper's Table 4 interval (150 s).
pub fn best_host_ratio(
    sys: &SystemParams,
    p_local: f64,
    compression: Option<CompressionSpec>,
) -> (u32, f64) {
    best_host_ratio_at(sys, p_local, compression, Some(150.0))
}

/// Builds the empirically-optimal `Local + I/O-Host` strategy with an
/// explicit local interval. Returns the strategy and its progress rate.
pub fn best_host_strategy_at(
    sys: &SystemParams,
    p_local: f64,
    compression: Option<CompressionSpec>,
    interval: Option<f64>,
) -> (Strategy, f64) {
    let (ratio, progress) =
        best_host_ratio_at(sys, p_local, compression, interval);
    (
        Strategy::LocalIoHost {
            interval,
            ratio,
            p_local,
            compression,
        },
        progress,
    )
}

/// Builds the empirically-optimal `Local + I/O-Host` strategy for a
/// configuration at the paper's 150 s local interval, as the paper does
/// for all `Local + I/O-Host` data points. Returns the strategy and its
/// progress rate.
pub fn best_host_strategy(
    sys: &SystemParams,
    p_local: f64,
    compression: Option<CompressionSpec>,
) -> (Strategy, f64) {
    best_host_strategy_at(sys, p_local, compression, Some(150.0))
}

/// The NDP drain ratio in force for a `Local + I/O-NDP` configuration
/// (Figure 5's NDP series: one value per compression factor, independent
/// of `p_local`).
pub fn ndp_ratio(
    sys: &SystemParams,
    compression: Option<CompressionSpec>,
) -> u32 {
    let strat = Strategy::local_io_ndp(0.5, compression);
    crate::params::derive_costs(sys, &strat).ratio
}

/// One row of the Figure 5 data: optimal ratios for a compression factor
/// across recovery probabilities, plus the (probability-independent) NDP
/// ratio.
#[derive(Debug, Clone)]
pub struct RatioRow {
    /// Compression factor this row was computed for (`None` = no
    /// compression).
    pub factor: Option<f64>,
    /// `(p_local, optimal host ratio)` pairs.
    pub host: Vec<(f64, u32)>,
    /// NDP drain ratio.
    pub ndp: u32,
}

/// Computes the Figure 5 table: optimal locally-saved : I/O-saved ratios
/// for host configurations at each `p_local`, and the NDP ratio, for a
/// set of compression factors (use `None` for the uncompressed column).
pub fn figure5_table(
    sys: &SystemParams,
    p_locals: &[f64],
    factors: &[Option<f64>],
) -> Vec<RatioRow> {
    factors
        .iter()
        .map(|&factor| {
            let host_comp =
                factor.map(CompressionSpec::gzip1_host_with_factor);
            let ndp_comp =
                factor.map(CompressionSpec::gzip1_ndp_with_factor);
            RatioRow {
                factor,
                host: p_locals
                    .iter()
                    .map(|&p| (p, best_host_ratio(sys, p, host_comp).0))
                    .collect(),
                ndp: ndp_ratio(sys, ndp_comp),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemParams {
        SystemParams::exascale_default()
    }

    #[test]
    fn overhead_sweep_has_interior_optimum() {
        // Fig. 4: total overhead decreases, reaches a minimum, then
        // increases again as I/O checkpoints become rarer.
        let sweep = host_overhead_sweep(&sys(), 0.8, None, 200);
        let progresses: Vec<f64> =
            sweep.iter().map(|(_, b)| b.progress_rate()).collect();
        let (best_idx, _) = progresses
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            best_idx > 0 && best_idx < progresses.len() - 1,
            "optimum at boundary: idx {best_idx}"
        );
        // Clearly better than both extremes.
        assert!(progresses[best_idx] > progresses[0] + 0.02);
        assert!(
            progresses[best_idx]
                > progresses[progresses.len() - 1] + 0.01
        );
    }

    #[test]
    fn best_ratio_increases_with_p_local() {
        // Fig. 5: the more failures recover locally, the rarer I/O
        // checkpoints should be.
        let r20 = best_host_ratio(&sys(), 0.2, None).0;
        let r96 = best_host_ratio(&sys(), 0.96, None).0;
        assert!(
            r96 > r20,
            "ratio at 96% ({r96}) should exceed ratio at 20% ({r20})"
        );
    }

    #[test]
    fn best_ratio_decreases_with_compression() {
        // Fig. 5: higher compression factor -> cheaper I/O checkpoints
        // -> lower optimal ratio.
        let plain = best_host_ratio(&sys(), 0.8, None).0;
        let comp = best_host_ratio(
            &sys(),
            0.8,
            Some(CompressionSpec::gzip1_host()),
        )
        .0;
        assert!(
            comp < plain,
            "compressed ratio {comp} should be below plain {plain}"
        );
    }

    #[test]
    fn ndp_ratio_is_independent_of_p_local_and_small() {
        let s = sys();
        let plain = ndp_ratio(&s, None);
        let comp = ndp_ratio(&s, Some(CompressionSpec::gzip1_ndp()));
        assert_eq!(plain, 8);
        assert_eq!(comp, 3);
        // NDP writes to I/O much more often than the host optimum.
        let host = best_host_ratio(&s, 0.8, None).0;
        assert!(plain < host);
    }

    #[test]
    fn figure5_table_shape() {
        let rows = figure5_table(
            &sys(),
            &[0.2, 0.8],
            &[None, Some(0.728)],
        );
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.host.len(), 2);
            assert!(row.ndp >= 1);
        }
        // Compressed row has uniformly lower-or-equal host ratios.
        for (a, b) in rows[0].host.iter().zip(rows[1].host.iter()) {
            assert!(b.1 <= a.1);
        }
    }
}
