//! # cr-core — checkpoint/restart performance models
//!
//! Core library of the `ndp-checkpoint` workspace, reproducing the
//! analytical machinery of *"Leveraging Near Data Processing for
//! High-Performance Checkpoint/Restart"* (Agrawal, Loh & Tuck, SC'17).
//!
//! The crate provides, bottom to top:
//!
//! * [`units`] — byte/time constants and conversion helpers shared by the
//!   whole workspace.
//! * [`daly`] — Daly's first- and higher-order optimum checkpoint interval
//!   and expected-runtime model for single-level checkpoint/restart
//!   (Figure 1 of the paper).
//! * [`projection`] — the §3 scaling study: programmatic projection of an
//!   exascale system from the Titan Cray XK7 (Table 1), the MTTI
//!   projection (§3.2), and derived commit-time requirements (§3.3).
//! * [`params`] — configuration types describing a system under study and
//!   the checkpoint/restart strategy applied to it (`I/O Only`,
//!   `Local + I/O-Host`, `Local + I/O-NDP`, each with or without
//!   compression — §6.1.2).
//! * [`breakdown`] — the four-way overhead decomposition of execution time
//!   (compute / checkpoint / restore / rerun, each split by storage level —
//!   §6.2).
//! * [`analytic`] — an exact Markov-renewal analytic model of multilevel
//!   checkpointing with and without NDP offload. This is the paper's
//!   "performance model" (§6.1.1), implemented as a closed-form/numeric
//!   hybrid: activities succeed or fail under exponential failures and the
//!   expected wall time per checkpoint cycle is solved from a linear
//!   recurrence.
//! * [`ndp_sizing`] — §4.4/§5.3 equations sizing the NDP: required
//!   compression speed, number of NDP cores, smallest achievable I/O
//!   checkpoint interval (Table 3).
//! * [`ratio_opt`] — empirical optimisation of the locally-saved :
//!   I/O-saved checkpoint ratio (Figures 4 and 5).
//!
//! The sibling crate `cr-sim` implements a discrete-event Monte-Carlo
//! simulator of the same configurations; the two are cross-validated in
//! the workspace integration tests.
//!
//! ## Quick start
//!
//! ```
//! use cr_core::prelude::*;
//!
//! // The paper's projected exascale system (Table 1 / Table 4).
//! let sys = SystemParams::exascale_default();
//!
//! // Multilevel checkpointing, host writes to global I/O, 80% of
//! // failures recoverable from node-local NVM, no compression.
//! let strat = Strategy::local_io_host(12, 0.8, None);
//! let outcome = analytic::evaluate(&sys, &strat);
//! assert!(outcome.progress_rate() > 0.0 && outcome.progress_rate() < 1.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod analytic;
pub mod breakdown;
pub mod cache;
pub mod daly;
pub mod ndp_sizing;
pub mod optimize;
pub mod par;
pub mod params;
pub mod projection;
pub mod ratio_opt;
pub mod units;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::analytic;
    pub use crate::breakdown::Breakdown;
    pub use crate::cache::{
        solve_cycle_cached, solve_cycle_many, CycleCache,
    };
    pub use crate::daly;
    pub use crate::par::{par_map_chunked, par_map_in};
    pub use crate::ndp_sizing::{self, NdpSizing};
    pub use crate::params::{
        CompressionSpec, DrainLagModel, Strategy, SystemParams,
    };
    pub use crate::projection::{ExascaleProjection, TitanBaseline};
    pub use crate::ratio_opt;
    pub use crate::units::*;
}
