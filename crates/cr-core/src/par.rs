//! Chunk-claiming, work-stealing parallel map with deterministic output
//! order.
//!
//! This is the fan-out primitive for every sweep in the workspace:
//! simulator replicas, chaos episodes, and analytic parameter grids. A
//! flat atomic-counter queue (the previous design) is fine when every
//! item costs the same, but chaos episodes and mixed-length sweeps are
//! heavily skewed — a worker that draws a long item stalls the tail
//! while the counter runs dry. Here each worker is dealt a contiguous
//! range up front and **claims small chunks from its own front**; an
//! idle worker **steals the back half** of a victim's remaining range.
//! Results always land at their input index, so output order — and
//! therefore every downstream fold — is deterministic regardless of
//! scheduling.
//!
//! ## Memory safety
//!
//! Output slots are `MaybeUninit<R>` cells written exactly once: every
//! index is claimed by exactly one worker (ranges are disjoint by
//! construction and only ever split, never duplicated). A completion
//! bitmap records which slots were initialized; if a worker panics, the
//! panic propagates out of [`std::thread::scope`] and a drop guard frees
//! exactly the initialized slots — no leaks, no double drops, and the
//! `Vec<Option<R>>`-with-raw-pointer pattern this replaces is gone.

use std::cell::UnsafeCell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default worker count: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Applies `f` to every item in parallel with work stealing, preserving
/// input order in the output. Spawns up to
/// `min(items.len(), available_parallelism)` workers.
///
/// Panics in `f` propagate to the caller after all workers stop (the
/// remaining workers abandon unclaimed work as soon as they observe the
/// abort flag).
pub fn par_map_chunked<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_in(default_threads(), items, f)
}

/// [`par_map_chunked`] with an explicit worker count (used by the bench
/// harness thread sweeps and the N-thread-vs-1-thread determinism
/// tests). `threads <= 1` runs inline on the caller's thread.
pub fn par_map_in<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    assert!(
        n <= u32::MAX as usize,
        "par_map_in supports at most u32::MAX items"
    );

    // Per-worker range deques, packed (start, end) half-open in one
    // atomic word so claim and steal are single CAS operations.
    let queues: Vec<AtomicU64> = (0..threads)
        .map(|w| {
            let lo = (n * w / threads) as u32;
            let hi = (n * (w + 1) / threads) as u32;
            AtomicU64::new(pack(lo, hi))
        })
        .collect();

    let mut slots: Vec<UnsafeCell<MaybeUninit<R>>> =
        (0..n).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let done: Vec<AtomicU64> =
        (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
    let abort = AtomicBool::new(false);

    // Frees initialized-but-unharvested slots if a worker panic unwinds
    // through the caller. Disarmed on the success path.
    let mut guard = CleanupGuard {
        slots: &mut slots,
        done: &done,
        armed: true,
    };

    {
        let shared = Shared {
            queues: &queues,
            slots: SlotView(guard.slots),
            done: &done,
            abort: &abort,
        };
        std::thread::scope(|scope| {
            for w in 0..threads {
                let f = &f;
                let shared = &shared;
                scope.spawn(move || shared.work(w, items, f));
            }
        });
    }

    // All workers joined without panicking: every slot is initialized.
    guard.armed = false;
    debug_assert!(done
        .iter()
        .enumerate()
        .all(|(i, w)| w.load(Ordering::Relaxed)
            == full_mask(n - i * 64)));
    let slots = std::mem::take(guard.slots);
    // SAFETY: `UnsafeCell<MaybeUninit<R>>` has the same layout as `R`
    // and every element was initialized exactly once by a worker.
    unsafe {
        let mut slots = ManuallyDrop::new(slots);
        Vec::from_raw_parts(
            slots.as_mut_ptr() as *mut R,
            slots.len(),
            slots.capacity(),
        )
    }
}

#[inline]
fn pack(start: u32, end: u32) -> u64 {
    ((start as u64) << 32) | end as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

fn full_mask(remaining: usize) -> u64 {
    if remaining >= 64 {
        u64::MAX
    } else {
        (1u64 << remaining) - 1
    }
}

/// Shared view of the output buffer. Sound because range bookkeeping
/// guarantees each index is claimed — and therefore written — exactly
/// once, and workers only read foreign queue words, never foreign slots.
struct SlotView<'a, R>(&'a [UnsafeCell<MaybeUninit<R>>]);
unsafe impl<R: Send> Sync for SlotView<'_, R> {}

struct Shared<'a, R> {
    queues: &'a [AtomicU64],
    slots: SlotView<'a, R>,
    done: &'a [AtomicU64],
    abort: &'a AtomicBool,
}

impl<R> Shared<'_, R> {
    fn work<T, F>(&self, w: usize, items: &[T], f: &F)
    where
        F: Fn(&T) -> R,
    {
        // If `f` panics, tell the other workers to stop claiming work so
        // the panic surfaces promptly instead of after the whole sweep.
        let _abort_guard = AbortOnPanic(self.abort);
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return;
            }
            let Some((lo, hi)) = self.claim_front(w) else {
                if !self.steal_into(w) {
                    return;
                }
                continue;
            };
            for i in lo..hi {
                let i = i as usize;
                let r = f(&items[i]);
                // SAFETY: index `i` was claimed exactly once (by this
                // worker); the slot buffer outlives the scope.
                unsafe { (*self.slots.0[i].get()).write(r) };
                self.done[i / 64]
                    .fetch_or(1u64 << (i % 64), Ordering::Release);
            }
        }
    }

    /// Claims a chunk from the front of worker `w`'s own range:
    /// 1/8th of what remains (min 1), so granularity tightens toward the
    /// tail and stealers always find meaningful back halves early on.
    fn claim_front(&self, w: usize) -> Option<(u32, u32)> {
        let q = &self.queues[w];
        let mut cur = q.load(Ordering::Acquire);
        loop {
            let (start, end) = unpack(cur);
            if start >= end {
                return None;
            }
            let len = end - start;
            let take = (len / 8).max(1);
            match q.compare_exchange_weak(
                cur,
                pack(start + take, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((start, start + take)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Steals the back half of some victim's range into worker `w`'s
    /// (empty) queue. Returns false when every queue is empty — the
    /// only termination condition, so no claimed index is ever dropped.
    fn steal_into(&self, w: usize) -> bool {
        let n = self.queues.len();
        for off in 1..n {
            let v = (w + off) % n;
            let q = &self.queues[v];
            let mut cur = q.load(Ordering::Acquire);
            loop {
                let (start, end) = unpack(cur);
                if start >= end {
                    break; // victim empty, try next
                }
                let len = end - start;
                let mid = start + len / 2; // thief takes [mid, end)
                match q.compare_exchange_weak(
                    cur,
                    pack(start, mid),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // Only the owner installs into its own queue,
                        // and it is empty here, so a plain store is
                        // race-free (thieves CAS against stale values).
                        self.queues[w]
                            .store(pack(mid, end), Ordering::Release);
                        return true;
                    }
                    Err(seen) => cur = seen,
                }
            }
        }
        false
    }
}

struct AbortOnPanic<'a>(&'a AtomicBool);
impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

struct CleanupGuard<'a, R> {
    slots: &'a mut Vec<UnsafeCell<MaybeUninit<R>>>,
    done: &'a [AtomicU64],
    armed: bool,
}

impl<R> Drop for CleanupGuard<'_, R> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for (i, cell) in self.slots.iter_mut().enumerate() {
            let bit = self.done[i / 64].load(Ordering::Acquire);
            if bit & (1u64 << (i % 64)) != 0 {
                // SAFETY: the completion bit is set only after the slot
                // was fully written, and no worker is still running
                // (scope joined before the unwind reached us).
                unsafe { cell.get_mut().assume_init_drop() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map_chunked(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map_chunked(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map_chunked(&[41], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 / 7.0).collect();
        let seq = par_map_in(1, &items, |x| x.sin());
        for threads in [2, 3, 4, 8] {
            let par = par_map_in(threads, &items, |x| x.sin());
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_work_is_still_complete() {
        // Heavily skewed cost: the last items are ~1000x the first, so
        // completion requires stealing to visit every range.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_in(4, &items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i as u64);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 64);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_in(16, &[1, 2, 3], |&x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn panic_propagates_without_leaks_or_double_drops() {
        static CREATED: AtomicUsize = AtomicUsize::new(0);
        static DROPPED: AtomicUsize = AtomicUsize::new(0);

        struct Tracked(#[allow(dead_code)] usize);
        impl Tracked {
            fn new(v: usize) -> Self {
                CREATED.fetch_add(1, Ordering::SeqCst);
                Tracked(v)
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPPED.fetch_add(1, Ordering::SeqCst);
            }
        }

        let items: Vec<usize> = (0..256).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_in(4, &items, |&x| {
                if x == 137 {
                    panic!("worker panic on item {x}");
                }
                Tracked::new(x)
            })
        });
        assert!(result.is_err(), "worker panic must propagate");
        // Every constructed result was dropped exactly once by the
        // cleanup guard — the old Vec<Option<R>> pattern would instead
        // die on `expect("slot not filled")` or leak.
        assert_eq!(
            CREATED.load(Ordering::SeqCst),
            DROPPED.load(Ordering::SeqCst)
        );
        assert!(CREATED.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn results_match_sequential_under_stealing() {
        let items: Vec<u64> = (0..4096).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        let par = par_map_in(8, &items, |&x| x.wrapping_mul(x));
        assert_eq!(seq, par);
    }
}
