//! Configuration types: the system under study and the C/R strategy.
//!
//! [`SystemParams`] captures the hardware-facing quantities of Table 1 /
//! Table 4 of the paper (per compute node); [`Strategy`] captures the
//! checkpoint/restart policy of §6.1.2, including compression placement.
//! Both the analytic model (`cr_core::analytic`) and the discrete-event
//! simulator (`cr-sim`) consume these types, so a single configuration
//! value can be evaluated by both backends.

use crate::units::*;

/// Hardware-facing parameters of one compute node in the system under
/// study. All values follow the paper's evaluation setup (Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// System mean time to interrupt, seconds (paper: 30 min).
    pub mtti: f64,
    /// Checkpoint size per compute node, bytes (paper: 112 GB = 80 % of
    /// the node's 140 GB memory).
    pub checkpoint_bytes: f64,
    /// Node-local NVM read/write bandwidth, bytes/s (paper: 15 GB/s).
    pub local_bw: f64,
    /// Effective per-node bandwidth to global I/O, bytes/s (paper:
    /// 10 TB/s system ÷ 100 000 nodes = 100 MB/s).
    pub io_bw_per_node: f64,
}

impl SystemParams {
    /// The paper's projected exascale evaluation system (Table 4).
    pub fn exascale_default() -> Self {
        Self {
            mtti: 30.0 * MINUTE,
            checkpoint_bytes: 112.0 * GB,
            local_bw: 15.0 * GB,
            io_bw_per_node: 100.0 * MB,
        }
    }

    /// Time for the host to write one uncompressed checkpoint to local
    /// NVM (`δ_local`).
    pub fn delta_local(&self) -> f64 {
        self.checkpoint_bytes / self.local_bw
    }

    /// Time to move one *uncompressed* checkpoint over the per-node I/O
    /// bandwidth.
    pub fn t_io_uncompressed(&self) -> f64 {
        self.checkpoint_bytes / self.io_bw_per_node
    }

    /// Returns a copy with a different MTTI (sensitivity sweeps, Fig. 9).
    pub fn with_mtti(mut self, mtti: f64) -> Self {
        self.mtti = mtti;
        self
    }

    /// Returns a copy with a different checkpoint size (Fig. 8).
    pub fn with_checkpoint_bytes(mut self, bytes: f64) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }

    /// Returns a copy with a different local NVM bandwidth
    /// (`L-2GBps` vs `L-15GBps` configurations of §6.5).
    pub fn with_local_bw(mut self, bw: f64) -> Self {
        self.local_bw = bw;
        self
    }
}

/// Compression behaviour attached to the I/O level of a strategy.
///
/// `factor` follows the paper's definition
/// `1 − compressed_size / uncompressed_size` (so gzip(1) averages 0.728).
/// Rates are expressed in **uncompressed** bytes per second at the site
/// doing the work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionSpec {
    /// Compression factor in `[0, 1)`.
    pub factor: f64,
    /// Compression throughput of the compressing site (host cores for
    /// `Local + I/O-Host`, NDP cores for `Local + I/O-NDP`), in
    /// uncompressed bytes/s.
    pub compress_rate: f64,
    /// Decompression throughput on restore (performed by the host,
    /// pipelined with the I/O read — §4.3), in uncompressed bytes/s.
    pub decompress_rate: f64,
}

impl CompressionSpec {
    /// gzip(1) on 4 NDP cores: 440.4 MB/s compression (Table 3/4),
    /// average factor 72.8 % (Table 2), 16 GB/s host decompression
    /// (Table 4).
    pub fn gzip1_ndp() -> Self {
        Self {
            factor: 0.728,
            compress_rate: 440.4 * MB,
            decompress_rate: 16.0 * GB,
        }
    }

    /// gzip(1) on 64 host threads: §3.5's example of 640 MB/s aggregate
    /// host-side compression, same factor and restore pipeline.
    pub fn gzip1_host() -> Self {
        Self {
            factor: 0.728,
            compress_rate: 640.0 * MB,
            decompress_rate: 16.0 * GB,
        }
    }

    /// Same rates as [`CompressionSpec::gzip1_ndp`] but with an
    /// application-specific compression factor (Table 2 column for a
    /// particular mini-app).
    pub fn gzip1_ndp_with_factor(factor: f64) -> Self {
        Self {
            factor,
            ..Self::gzip1_ndp()
        }
    }

    /// Same rates as [`CompressionSpec::gzip1_host`] but with an
    /// application-specific compression factor.
    pub fn gzip1_host_with_factor(factor: f64) -> Self {
        Self {
            factor,
            ..Self::gzip1_host()
        }
    }

    /// `compressed_size / uncompressed_size` — the residual fraction.
    pub fn residual(&self) -> f64 {
        1.0 - self.factor
    }
}

/// How the model accounts for the latency between a checkpoint being
/// written to local NVM and its compressed image being durable on global
/// I/O under NDP offload (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainLagModel {
    /// Ignore the drain pipeline latency: a checkpoint selected for I/O
    /// counts as I/O-recoverable as soon as it is selected. This matches
    /// the paper's accounting (its "Rerun I/O" of 1.2 % for
    /// `Local + I/O-N` is only reproducible without lag).
    Ignore,
    /// Model the full pipeline: a checkpoint only becomes
    /// I/O-recoverable once the NDP finishes compressing and shipping
    /// it, so I/O recoveries roll back further.
    #[default]
    Pipelined,
}

/// A checkpoint/restart strategy (§6.1.2 configurations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// All checkpoints are written synchronously to global I/O
    /// (single-level baseline). `interval` of `None` selects Daly's
    /// optimum compute interval.
    IoOnly {
        /// Compute interval between checkpoints; `None` = Daly optimum.
        interval: Option<f64>,
        /// Optional host-side compression of every checkpoint.
        compression: Option<CompressionSpec>,
    },
    /// All checkpoints are written to node-local NVM only (the 90 %
    /// reference bound of §3.4; offers no protection against local
    /// storage loss, used as an upper bound).
    LocalOnly {
        /// Compute interval between checkpoints; `None` = Daly optimum.
        interval: Option<f64>,
    },
    /// Multilevel checkpointing: every checkpoint goes to local NVM,
    /// every `ratio`-th additionally to global I/O *by the host*
    /// (blocking). Optional host-side compression of I/O checkpoints.
    LocalIoHost {
        /// Compute interval between local checkpoints (paper: 150 s);
        /// `None` = Daly optimum for the local level.
        interval: Option<f64>,
        /// Locally-saved : I/O-saved checkpoint ratio (`k ≥ 1`).
        ratio: u32,
        /// Probability that a failure is recoverable from locally-saved
        /// checkpoints (local + partner levels).
        p_local: f64,
        /// Optional compression of I/O-level checkpoints on the host.
        compression: Option<CompressionSpec>,
    },
    /// Multilevel checkpointing with NDP offload: every checkpoint goes
    /// to local NVM; the NDP asynchronously compresses (optionally) and
    /// drains every `k`-th checkpoint to global I/O off the critical
    /// path (§4.2).
    LocalIoNdp {
        /// Compute interval between local checkpoints (paper: 150 s);
        /// `None` = Daly optimum for the local level.
        interval: Option<f64>,
        /// Locally-saved : I/O-saved ratio. `None` = as frequent as the
        /// drain pipeline sustains (§6.2: "as frequently as possible").
        ratio: Option<u32>,
        /// Probability that a failure is recoverable from locally-saved
        /// checkpoints.
        p_local: f64,
        /// Optional compression of I/O-level checkpoints on the NDP.
        compression: Option<CompressionSpec>,
        /// Drain-latency accounting (see [`DrainLagModel`]).
        drain_lag: DrainLagModel,
    },
}

impl Strategy {
    /// Convenience constructor for `Local + I/O-Host`.
    pub fn local_io_host(
        ratio: u32,
        p_local: f64,
        compression: Option<CompressionSpec>,
    ) -> Self {
        Strategy::LocalIoHost {
            interval: Some(150.0),
            ratio,
            p_local,
            compression,
        }
    }

    /// Convenience constructor for `Local + I/O-NDP` with an
    /// automatically chosen (fastest sustainable) drain ratio.
    pub fn local_io_ndp(
        p_local: f64,
        compression: Option<CompressionSpec>,
    ) -> Self {
        Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: None,
            p_local,
            compression,
            drain_lag: DrainLagModel::default(),
        }
    }

    /// The compression spec attached to the I/O level, if any.
    pub fn compression(&self) -> Option<CompressionSpec> {
        match self {
            Strategy::IoOnly { compression, .. }
            | Strategy::LocalIoHost { compression, .. }
            | Strategy::LocalIoNdp { compression, .. } => *compression,
            Strategy::LocalOnly { .. } => None,
        }
    }

    /// The configured compute interval, if fixed.
    pub fn interval(&self) -> Option<f64> {
        match self {
            Strategy::IoOnly { interval, .. }
            | Strategy::LocalOnly { interval }
            | Strategy::LocalIoHost { interval, .. }
            | Strategy::LocalIoNdp { interval, .. } => *interval,
        }
    }

    /// Short label used by the repro binaries, mirroring the paper's
    /// configuration names.
    pub fn label(&self) -> String {
        match self {
            Strategy::IoOnly { compression, .. } => {
                if compression.is_some() {
                    "I/O Only (comp)".into()
                } else {
                    "I/O Only".into()
                }
            }
            Strategy::LocalOnly { .. } => "Local Only".into(),
            Strategy::LocalIoHost {
                p_local,
                compression,
                ..
            } => {
                let c = if compression.is_some() { "C" } else { "" };
                format!("Local({:.0}%) + I/O-H{}", p_local * 100.0, c)
            }
            Strategy::LocalIoNdp {
                p_local,
                compression,
                ..
            } => {
                let c = if compression.is_some() { "C" } else { "" };
                format!("Local({:.0}%) + I/O-N{}", p_local * 100.0, c)
            }
        }
    }
}

/// Costs derived from a `(SystemParams, Strategy)` pair; shared by the
/// analytic model and the simulator so the two backends agree on the
/// meaning of every configuration.
#[derive(Debug, Clone, Copy)]
pub struct DerivedCosts {
    /// Compute interval between (local) checkpoints, seconds.
    pub interval: f64,
    /// Host time to commit one checkpoint to local NVM, seconds.
    pub delta_local: f64,
    /// Host-blocking time to commit one checkpoint to global I/O
    /// (`IoOnly` / `LocalIoHost` only; 0 under NDP), seconds.
    pub t_io_host: f64,
    /// Restore time from a locally-saved checkpoint, seconds.
    pub restore_local: f64,
    /// Restore time from an I/O-saved checkpoint (pipelined with host
    /// decompression when compressed — §4.3), seconds.
    pub restore_io: f64,
    /// NDP end-to-end drain time for one checkpoint (compression
    /// pipelined with the NIC transfer — §4.2.2), seconds. Zero for
    /// non-NDP strategies.
    pub ndp_drain_time: f64,
    /// Effective locally-saved : I/O-saved ratio actually in force.
    pub ratio: u32,
    /// Probability that a failure can be recovered from local storage.
    pub p_local: f64,
}

/// Computes the derived per-activity costs for a configuration.
///
/// The formulas implement §3.5 (host compression overlapped with the I/O
/// write), §4.2.2 (NDP compression pipelined with the NIC transfer,
/// bounded by both the NDP compression rate and the I/O bandwidth) and
/// §4.3 (restore pipelined with host decompression).
pub fn derive_costs(sys: &SystemParams, strat: &Strategy) -> DerivedCosts {
    let s = sys.checkpoint_bytes;
    let delta_local = sys.delta_local();
    let io_bw = sys.io_bw_per_node;

    let io_commit = |comp: &Option<CompressionSpec>| -> f64 {
        match comp {
            None => s / io_bw,
            // Compression overlapped with the write: bounded by the
            // slower of producing compressed bytes and shipping them.
            Some(c) => (s / c.compress_rate).max(s * c.residual() / io_bw),
        }
    };
    let io_restore = |comp: &Option<CompressionSpec>| -> f64 {
        match comp {
            None => s / io_bw,
            // Retrieval pipelined with host decompression (§4.3).
            Some(c) => {
                (s * c.residual() / io_bw).max(s / c.decompress_rate)
            }
        }
    };

    match *strat {
        Strategy::IoOnly {
            interval,
            compression,
        } => {
            let t_io = io_commit(&compression);
            let tau = interval
                .unwrap_or_else(|| crate::daly::optimum_interval(sys.mtti, t_io));
            DerivedCosts {
                interval: tau,
                delta_local: 0.0,
                t_io_host: t_io,
                restore_local: 0.0,
                restore_io: io_restore(&compression),
                ndp_drain_time: 0.0,
                ratio: 1,
                p_local: 0.0,
            }
        }
        Strategy::LocalOnly { interval } => {
            let tau = interval.unwrap_or_else(|| {
                crate::daly::optimum_interval(sys.mtti, delta_local)
            });
            DerivedCosts {
                interval: tau,
                delta_local,
                t_io_host: 0.0,
                restore_local: delta_local,
                restore_io: delta_local,
                ndp_drain_time: 0.0,
                ratio: u32::MAX,
                p_local: 1.0,
            }
        }
        Strategy::LocalIoHost {
            interval,
            ratio,
            p_local,
            compression,
        } => {
            assert!(ratio >= 1, "ratio must be at least 1");
            assert!((0.0..=1.0).contains(&p_local));
            let tau = interval.unwrap_or_else(|| {
                crate::daly::optimum_interval(sys.mtti, delta_local)
            });
            DerivedCosts {
                interval: tau,
                delta_local,
                t_io_host: io_commit(&compression),
                restore_local: delta_local,
                restore_io: io_restore(&compression),
                ndp_drain_time: 0.0,
                ratio,
                p_local,
            }
        }
        Strategy::LocalIoNdp {
            interval,
            ratio,
            p_local,
            compression,
            ..
        } => {
            assert!((0.0..=1.0).contains(&p_local));
            let tau = interval.unwrap_or_else(|| {
                crate::daly::optimum_interval(sys.mtti, delta_local)
            });
            // Drain rate in uncompressed bytes/s: limited by the NDP
            // compression speed and by the I/O bandwidth expressed in
            // uncompressed terms (§4.4).
            let drain_rate = match &compression {
                None => io_bw,
                Some(c) => c.compress_rate.min(io_bw / c.residual()),
            };
            let drain_time = s / drain_rate;
            // Smallest sustainable ratio: the NDP gets ~tau of NVM/NIC
            // time per segment (paused while the host writes), so
            // draining one checkpoint per k segments requires
            // k * tau >= drain_time.
            let min_ratio = (drain_time / tau).ceil().max(1.0) as u32;
            let ratio = match ratio {
                Some(r) => {
                    assert!(
                        r >= min_ratio,
                        "requested NDP ratio {r} cannot be sustained; \
                         minimum is {min_ratio}"
                    );
                    r
                }
                None => min_ratio,
            };
            DerivedCosts {
                interval: tau,
                delta_local,
                t_io_host: 0.0,
                restore_local: delta_local,
                restore_io: io_restore(&compression),
                ndp_drain_time: drain_time,
                ratio,
                p_local,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exascale_defaults_match_table4() {
        let s = SystemParams::exascale_default();
        assert_eq!(s.mtti, 1800.0);
        assert_eq!(s.checkpoint_bytes, 112.0 * GB);
        // delta_local = 112/15 ~ 7.47 s.
        assert!((s.delta_local() - 7.4667).abs() < 1e-3);
        // Uncompressed I/O write: 1120 s = 18.67 min (Sec. 3.4).
        assert!((s.t_io_uncompressed() - 1120.0).abs() < 1e-9);
    }

    #[test]
    fn host_io_commit_is_overlap_bound() {
        let sys = SystemParams::exascale_default();
        let c = CompressionSpec::gzip1_host();
        let strat = Strategy::local_io_host(10, 0.8, Some(c));
        let d = derive_costs(&sys, &strat);
        // 112 GB * 0.272 / 100 MB/s = 304.6 s (I/O bound, since the host
        // compresses at 640 MB/s > the 367 MB/s needed).
        let expected = 112.0 * GB * c.residual() / (100.0 * MB);
        assert!((d.t_io_host - expected).abs() < 1e-6);
        assert!(d.t_io_host > 112.0 * GB / c.compress_rate);
    }

    #[test]
    fn ndp_uncompressed_ratio_is_eight() {
        // Sec. 6.4: NDP drains uncompressed checkpoints at the I/O
        // bandwidth; 1120 s per drain over 150 s segments -> every 8th.
        let sys = SystemParams::exascale_default();
        let strat = Strategy::local_io_ndp(0.85, None);
        let d = derive_costs(&sys, &strat);
        assert_eq!(d.ratio, 8);
        assert_eq!(d.t_io_host, 0.0);
        assert!((d.ndp_drain_time - 1120.0).abs() < 1e-9);
    }

    #[test]
    fn ndp_compressed_ratio_drops_to_three() {
        // gzip(1): drain limited by IO bw in uncompressed terms:
        // 100 MB/s / 0.272 = 367.6 MB/s < 440.4 MB/s NDP rate.
        // 112 GB / 367.6 MB/s ~ 304.6 s -> ceil(304.6/150) = 3.
        let sys = SystemParams::exascale_default();
        let strat = Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp()));
        let d = derive_costs(&sys, &strat);
        assert_eq!(d.ratio, 3);
        assert!((d.ndp_drain_time - 304.64).abs() < 0.1);
    }

    #[test]
    fn compressed_restore_is_pipelined_max() {
        let sys = SystemParams::exascale_default();
        let c = CompressionSpec::gzip1_ndp();
        let strat = Strategy::local_io_ndp(0.85, Some(c));
        let d = derive_costs(&sys, &strat);
        let io_read = 112.0 * GB * c.residual() / (100.0 * MB);
        let decomp = 112.0 * GB / (16.0 * GB);
        assert!((d.restore_io - io_read.max(decomp)).abs() < 1e-9);
        // The I/O read dominates at 100 MB/s.
        assert!(io_read > decomp);
    }

    #[test]
    #[should_panic(expected = "cannot be sustained")]
    fn unsustainable_ndp_ratio_panics() {
        let sys = SystemParams::exascale_default();
        let strat = Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: Some(1), // needs >= 8 uncompressed
            p_local: 0.85,
            compression: None,
            drain_lag: DrainLagModel::default(),
        };
        let _ = derive_costs(&sys, &strat);
    }

    #[test]
    fn io_only_uses_daly_interval() {
        let sys = SystemParams::exascale_default();
        let strat = Strategy::IoOnly {
            interval: None,
            compression: None,
        };
        let d = derive_costs(&sys, &strat);
        let expected = crate::daly::optimum_interval(sys.mtti, 1120.0);
        assert!((d.interval - expected).abs() < 1e-9);
        assert_eq!(d.p_local, 0.0);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(
            Strategy::local_io_host(10, 0.8, None).label(),
            "Local(80%) + I/O-H"
        );
        assert_eq!(
            Strategy::local_io_ndp(0.96, Some(CompressionSpec::gzip1_ndp()))
                .label(),
            "Local(96%) + I/O-NC"
        );
    }

    #[test]
    fn sensitivity_builders_modify_single_field() {
        let s = SystemParams::exascale_default()
            .with_mtti(60.0 * MINUTE)
            .with_checkpoint_bytes(14.0 * GB)
            .with_local_bw(2.0 * GB);
        assert_eq!(s.mtti, 3600.0);
        assert_eq!(s.checkpoint_bytes, 14.0 * GB);
        assert_eq!(s.local_bw, 2.0 * GB);
        assert_eq!(s.io_bw_per_node, 100.0 * MB);
    }
}
