//! Memoized cycle solving for dense parameter sweeps.
//!
//! The joint policy searches ([`crate::optimize`]) and ratio scans
//! ([`crate::ratio_opt`]) evaluate the same `(SystemParams, Strategy)`
//! cycles over and over: a `best_host_policy` call alone solves 2 800
//! cycles, and the sensitivity sweeps revisit identical configurations
//! across figures. [`CycleCache`] memoizes [`solve_cycle`] keyed on the
//! **exact bit patterns** of every `f64` in the configuration — the only
//! quantization that can guarantee a cache hit returns a result
//! bit-identical to an uncached solve (a property test holds this over a
//! seeded parameter grid). [`solve_cycle_many`] batches grid evaluation:
//! duplicates are solved once and large unique sets fan out over the
//! work-stealing executor ([`crate::par`]).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::analytic::{solve_cycle, CycleSolution};
use crate::params::{
    CompressionSpec, DrainLagModel, Strategy, SystemParams,
};

/// Entry cap for the thread-local cache behind [`solve_cycle_cached`]:
/// past this the cache is cleared (a full sensitivity sweep touches
/// ~20 k distinct cycles, so eviction is rare in practice).
const GLOBAL_CACHE_CAP: usize = 1 << 16;

/// Hashable mirror of a `(SystemParams, Strategy)` pair with every
/// `f64` replaced by its IEEE-754 bit pattern. Two configurations map
/// to the same key **iff** `solve_cycle` would see bit-identical
/// inputs, so memoization can never change a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CycleKey {
    sys: [u64; 4],
    strat: StratKey,
}

type CompKey = [u64; 3];

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StratKey {
    IoOnly {
        interval: Option<u64>,
        compression: Option<CompKey>,
    },
    LocalOnly {
        interval: Option<u64>,
    },
    LocalIoHost {
        interval: Option<u64>,
        ratio: u32,
        p_local: u64,
        compression: Option<CompKey>,
    },
    LocalIoNdp {
        interval: Option<u64>,
        ratio: Option<u32>,
        p_local: u64,
        compression: Option<CompKey>,
        pipelined: bool,
    },
}

fn comp_key(c: &Option<CompressionSpec>) -> Option<CompKey> {
    c.map(|c| {
        [
            c.factor.to_bits(),
            c.compress_rate.to_bits(),
            c.decompress_rate.to_bits(),
        ]
    })
}

impl CycleKey {
    fn new(sys: &SystemParams, strat: &Strategy) -> Self {
        let sys_key = [
            sys.mtti.to_bits(),
            sys.checkpoint_bytes.to_bits(),
            sys.local_bw.to_bits(),
            sys.io_bw_per_node.to_bits(),
        ];
        let strat_key = match *strat {
            Strategy::IoOnly {
                interval,
                compression,
            } => StratKey::IoOnly {
                interval: interval.map(f64::to_bits),
                compression: comp_key(&compression),
            },
            Strategy::LocalOnly { interval } => StratKey::LocalOnly {
                interval: interval.map(f64::to_bits),
            },
            Strategy::LocalIoHost {
                interval,
                ratio,
                p_local,
                compression,
            } => StratKey::LocalIoHost {
                interval: interval.map(f64::to_bits),
                ratio,
                p_local: p_local.to_bits(),
                compression: comp_key(&compression),
            },
            Strategy::LocalIoNdp {
                interval,
                ratio,
                p_local,
                compression,
                drain_lag,
            } => StratKey::LocalIoNdp {
                interval: interval.map(f64::to_bits),
                ratio,
                p_local: p_local.to_bits(),
                compression: comp_key(&compression),
                pipelined: drain_lag == DrainLagModel::Pipelined,
            },
        };
        CycleKey {
            sys: sys_key,
            strat: strat_key,
        }
    }
}

/// A memo table over [`solve_cycle`] results.
#[derive(Debug, Default)]
pub struct CycleCache {
    map: HashMap<CycleKey, CycleSolution>,
    hits: u64,
    misses: u64,
}

impl CycleCache {
    /// New empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the cycle for `(sys, strat)`, returning the memoized
    /// solution when this exact configuration was solved before. The
    /// hit path is bit-identical to calling [`solve_cycle`] directly.
    pub fn solve(
        &mut self,
        sys: &SystemParams,
        strat: &Strategy,
    ) -> CycleSolution {
        let key = CycleKey::new(sys, strat);
        if let Some(sol) = self.map.get(&key) {
            self.hits += 1;
            return *sol;
        }
        self.misses += 1;
        let sol = solve_cycle(sys, strat);
        self.map.insert(key, sol);
        sol
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (actual solves) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct configurations held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no configuration has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all cached solutions (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

thread_local! {
    static GLOBAL: RefCell<CycleCache> = RefCell::new(CycleCache::new());
}

/// [`solve_cycle`] through a thread-local [`CycleCache`], so repeated
/// policy searches and sweeps over the same configurations stop
/// re-solving identical cycles. Falls back to a direct solve if the
/// thread-local is unavailable (e.g. during thread teardown).
pub fn solve_cycle_cached(
    sys: &SystemParams,
    strat: &Strategy,
) -> CycleSolution {
    GLOBAL
        .try_with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() >= GLOBAL_CACHE_CAP {
                cache.clear();
            }
            cache.solve(sys, strat)
        })
        .unwrap_or_else(|_| solve_cycle(sys, strat))
}

/// Hit/miss counters of this thread's [`solve_cycle_cached`] cache
/// (`(hits, misses)`) — surfaced so the bench harness can report the
/// measured hit rate of a grid search.
pub fn global_cache_stats() -> (u64, u64) {
    GLOBAL
        .try_with(|cache| {
            let cache = cache.borrow();
            (cache.hits(), cache.misses())
        })
        .unwrap_or((0, 0))
}

/// Minimum number of *unique* configurations before
/// [`solve_cycle_many`] fans out over worker threads; below this a
/// single solve (~µs) is cheaper than waking workers.
const PAR_SOLVE_THRESHOLD: usize = 256;

/// Solves a batch of configurations, in input order.
///
/// Duplicate configurations (bit-identical, per [`CycleCache`] keying)
/// are solved once. Large unique sets are solved in parallel on the
/// work-stealing executor; the output is index-addressed either way, so
/// the result order is deterministic.
pub fn solve_cycle_many(
    pairs: &[(SystemParams, Strategy)],
) -> Vec<CycleSolution> {
    let mut first_of: HashMap<CycleKey, usize> = HashMap::new();
    let mut unique: Vec<usize> = Vec::new();
    let mut slot_of: Vec<usize> = Vec::with_capacity(pairs.len());
    for (i, (sys, strat)) in pairs.iter().enumerate() {
        let key = CycleKey::new(sys, strat);
        let slot = *first_of.entry(key).or_insert_with(|| {
            unique.push(i);
            unique.len() - 1
        });
        slot_of.push(slot);
    }
    let solved: Vec<CycleSolution> = if unique.len() >= PAR_SOLVE_THRESHOLD
    {
        crate::par::par_map_chunked(&unique, |&i| {
            solve_cycle(&pairs[i].0, &pairs[i].1)
        })
    } else {
        unique
            .iter()
            .map(|&i| solve_cycle(&pairs[i].0, &pairs[i].1))
            .collect()
    };
    slot_of.into_iter().map(|s| solved[s]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemParams {
        SystemParams::exascale_default()
    }

    /// Seeded xorshift so the property grid is reproducible without
    /// pulling the simulator's RNG into cr-core.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn assert_identical(a: &CycleSolution, b: &CycleSolution) {
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.cycle_time.to_bits(), b.cycle_time.to_bits());
        assert_eq!(
            a.work_per_cycle.to_bits(),
            b.work_per_cycle.to_bits()
        );
        assert_eq!(a.ratio, b.ratio);
        assert_eq!(a.interval.to_bits(), b.interval.to_bits());
    }

    #[test]
    fn hit_path_is_bit_identical_over_seeded_grid() {
        // Property test: for a seeded grid of randomized systems and
        // strategies, the cached solve (both the miss that fills the
        // entry and the hit that returns it) equals the direct solve
        // bit for bit.
        let mut rng = XorShift(0x5EED_0001);
        let mut cache = CycleCache::new();
        for _ in 0..200 {
            let s = SystemParams {
                mtti: 600.0 + 5400.0 * rng.unit(),
                checkpoint_bytes: (14.0 + 200.0 * rng.unit()) * 1e9,
                local_bw: (2.0 + 28.0 * rng.unit()) * 1e9,
                io_bw_per_node: (50.0 + 450.0 * rng.unit()) * 1e6,
            };
            let comp = if rng.next().is_multiple_of(2) {
                Some(CompressionSpec::gzip1_ndp_with_factor(
                    0.3 + 0.6 * rng.unit(),
                ))
            } else {
                None
            };
            let p_local = 0.2 + 0.75 * rng.unit();
            let strat = match rng.next() % 4 {
                0 => Strategy::IoOnly {
                    interval: None,
                    compression: comp,
                },
                1 => Strategy::LocalOnly { interval: None },
                2 => Strategy::LocalIoHost {
                    interval: Some(100.0 + 200.0 * rng.unit()),
                    ratio: 1 + (rng.next() % 50) as u32,
                    p_local,
                    compression: comp,
                },
                _ => Strategy::LocalIoNdp {
                    interval: Some(100.0 + 200.0 * rng.unit()),
                    ratio: None,
                    p_local,
                    compression: comp,
                    drain_lag: DrainLagModel::default(),
                },
            };
            let direct = solve_cycle(&s, &strat);
            let miss = cache.solve(&s, &strat);
            let hit = cache.solve(&s, &strat);
            assert_identical(&direct, &miss);
            assert_identical(&direct, &hit);
        }
        assert_eq!(cache.hits(), 200);
        assert_eq!(cache.misses(), 200);
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let mut cache = CycleCache::new();
        let a = cache.solve(&sys(), &Strategy::local_io_host(10, 0.8, None));
        let b = cache.solve(&sys(), &Strategy::local_io_host(11, 0.8, None));
        assert_ne!(
            a.breakdown.progress_rate(),
            b.breakdown.progress_rate()
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn nan_interval_never_matches_itself_harmlessly() {
        // to_bits keying treats NaN as an ordinary pattern: two NaN
        // intervals with the same payload are the "same" config, which
        // is exactly what bit-identical replay wants. Just ensure no
        // panic and stable behavior.
        let k1 = CycleKey::new(
            &sys(),
            &Strategy::LocalOnly {
                interval: Some(f64::NAN),
            },
        );
        let k2 = CycleKey::new(
            &sys(),
            &Strategy::LocalOnly {
                interval: Some(f64::NAN),
            },
        );
        assert_eq!(k1, k2);
    }

    #[test]
    fn cached_global_path_matches_direct() {
        let strat = Strategy::local_io_ndp(0.85, None);
        let direct = solve_cycle(&sys(), &strat);
        let c1 = solve_cycle_cached(&sys(), &strat);
        let c2 = solve_cycle_cached(&sys(), &strat);
        assert_identical(&direct, &c1);
        assert_identical(&direct, &c2);
    }

    #[test]
    fn many_matches_singles_and_dedupes() {
        let base = sys();
        let mut pairs = Vec::new();
        for ratio in 1..=40u32 {
            pairs.push((
                base,
                Strategy::local_io_host(ratio, 0.8, None),
            ));
        }
        // Duplicates of the first config interleaved.
        for _ in 0..10 {
            pairs.push((base, Strategy::local_io_host(1, 0.8, None)));
        }
        let many = solve_cycle_many(&pairs);
        assert_eq!(many.len(), pairs.len());
        for (i, (s, strat)) in pairs.iter().enumerate() {
            assert_identical(&many[i], &solve_cycle(s, strat));
        }
    }

    #[test]
    fn many_parallel_threshold_path_is_deterministic() {
        // Enough unique configs to cross the parallel threshold.
        let base = sys();
        let pairs: Vec<(SystemParams, Strategy)> = (0..600u32)
            .map(|i| {
                (
                    base.with_mtti(900.0 + i as f64),
                    Strategy::local_io_host(1 + i % 30, 0.8, None),
                )
            })
            .collect();
        let a = solve_cycle_many(&pairs);
        let b = solve_cycle_many(&pairs);
        for (x, y) in a.iter().zip(&b) {
            assert_identical(x, y);
        }
    }
}
