//! Execution-time breakdown of an application running under C/R.
//!
//! §6.2 of the paper decomposes total execution time into *compute*,
//! *checkpoint*, *restore* and *rerun* components; §6.4 further splits
//! the overhead components by the storage level involved (local NVM vs
//! global I/O). [`Breakdown`] is that seven-way decomposition, produced
//! by both the analytic model and the discrete-event simulator.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Seven-way decomposition of application wall-clock time, in seconds.
///
/// Invariant: every field is non-negative, and
/// `total() = compute + checkpoint + restore + rerun` accounts for all
/// wall time. `progress_rate()` is `compute / total()`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Useful (first-time) computation.
    pub compute: f64,
    /// Writing checkpoints to node-local storage (incl. interrupted
    /// attempts).
    pub checkpoint_local: f64,
    /// Host-blocking time writing checkpoints to global I/O (incl.
    /// interrupted attempts). Zero under NDP offload.
    pub checkpoint_io: f64,
    /// Restoring from locally-saved checkpoints (incl. interrupted
    /// attempts).
    pub restore_local: f64,
    /// Restoring from I/O-saved checkpoints (incl. interrupted
    /// attempts).
    pub restore_io: f64,
    /// Re-executing lost work after recoveries from local checkpoints.
    pub rerun_local: f64,
    /// Re-executing lost work after recoveries from I/O checkpoints.
    pub rerun_io: f64,
}

impl Breakdown {
    /// A zeroed breakdown.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total checkpoint time across levels.
    pub fn checkpoint(&self) -> f64 {
        self.checkpoint_local + self.checkpoint_io
    }

    /// Total restore time across levels.
    pub fn restore(&self) -> f64 {
        self.restore_local + self.restore_io
    }

    /// Total rerun time across levels.
    pub fn rerun(&self) -> f64 {
        self.rerun_local + self.rerun_io
    }

    /// Total C/R overhead (everything except useful compute).
    pub fn overhead(&self) -> f64 {
        self.checkpoint() + self.restore() + self.rerun()
    }

    /// Total wall-clock time.
    pub fn total(&self) -> f64 {
        self.compute + self.overhead()
    }

    /// Progress rate / efficiency: fraction of wall time doing useful
    /// work. Returns 0 for an empty breakdown.
    pub fn progress_rate(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.compute / t
        }
    }

    /// All components scaled so that `compute == 1` (Figure 4a / 7-left
    /// normalization). Panics if compute is zero.
    pub fn normalized_to_compute(&self) -> Self {
        assert!(self.compute > 0.0, "cannot normalize: compute time is 0");
        self.scaled(1.0 / self.compute)
    }

    /// All components scaled so that `total() == 1` (Figure 4b / 7-right
    /// percentage view). Panics if total is zero.
    pub fn as_fractions(&self) -> Self {
        let t = self.total();
        assert!(t > 0.0, "cannot take fractions of an empty breakdown");
        self.scaled(1.0 / t)
    }

    /// Every component multiplied by `s`.
    pub fn scaled(&self, s: f64) -> Self {
        Self {
            compute: self.compute * s,
            checkpoint_local: self.checkpoint_local * s,
            checkpoint_io: self.checkpoint_io * s,
            restore_local: self.restore_local * s,
            restore_io: self.restore_io * s,
            rerun_local: self.rerun_local * s,
            rerun_io: self.rerun_io * s,
        }
    }

    /// Checks internal sanity: all fields finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("compute", self.compute),
            ("checkpoint_local", self.checkpoint_local),
            ("checkpoint_io", self.checkpoint_io),
            ("restore_local", self.restore_local),
            ("restore_io", self.restore_io),
            ("rerun_local", self.rerun_local),
            ("rerun_io", self.rerun_io),
        ];
        for (name, v) in fields {
            if !v.is_finite() {
                return Err(format!("{name} is not finite: {v}"));
            }
            if v < -1e-9 {
                return Err(format!("{name} is negative: {v}"));
            }
        }
        Ok(())
    }
}

impl Add for Breakdown {
    type Output = Breakdown;
    fn add(self, rhs: Breakdown) -> Breakdown {
        Breakdown {
            compute: self.compute + rhs.compute,
            checkpoint_local: self.checkpoint_local + rhs.checkpoint_local,
            checkpoint_io: self.checkpoint_io + rhs.checkpoint_io,
            restore_local: self.restore_local + rhs.restore_local,
            restore_io: self.restore_io + rhs.restore_io,
            rerun_local: self.rerun_local + rhs.rerun_local,
            rerun_io: self.rerun_io + rhs.rerun_io,
        }
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.as_fractions();
        write!(
            f,
            "progress {:5.1}% | ckpt L {:4.1}% IO {:4.1}% | restore L {:4.1}% IO {:4.1}% | rerun L {:4.1}% IO {:4.1}%",
            self.progress_rate() * 100.0,
            p.checkpoint_local * 100.0,
            p.checkpoint_io * 100.0,
            p.restore_local * 100.0,
            p.restore_io * 100.0,
            p.rerun_local * 100.0,
            p.rerun_io * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Breakdown {
        Breakdown {
            compute: 100.0,
            checkpoint_local: 10.0,
            checkpoint_io: 5.0,
            restore_local: 2.0,
            restore_io: 3.0,
            rerun_local: 4.0,
            rerun_io: 6.0,
        }
    }

    #[test]
    fn totals_and_progress() {
        let b = sample();
        assert_eq!(b.checkpoint(), 15.0);
        assert_eq!(b.restore(), 5.0);
        assert_eq!(b.rerun(), 10.0);
        assert_eq!(b.overhead(), 30.0);
        assert_eq!(b.total(), 130.0);
        assert!((b.progress_rate() - 100.0 / 130.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_progress_is_zero() {
        assert_eq!(Breakdown::zero().progress_rate(), 0.0);
    }

    #[test]
    fn normalization_invariants() {
        let b = sample();
        let n = b.normalized_to_compute();
        assert!((n.compute - 1.0).abs() < 1e-12);
        assert!((n.total() - 1.3).abs() < 1e-12);
        let f = b.as_fractions();
        assert!((f.total() - 1.0).abs() < 1e-12);
        // Progress rate is scale-invariant.
        assert!((f.progress_rate() - b.progress_rate()).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates_componentwise() {
        let mut a = sample();
        a += sample();
        assert_eq!(a.compute, 200.0);
        assert_eq!(a.total(), 260.0);
    }

    #[test]
    fn validate_rejects_nan_and_negative() {
        let mut b = sample();
        b.rerun_io = f64::NAN;
        assert!(b.validate().is_err());
        let mut b = sample();
        b.compute = -1.0;
        assert!(b.validate().is_err());
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn display_contains_progress() {
        let s = format!("{}", sample());
        assert!(s.contains("progress"), "{s}");
        assert!(s.contains("76.9%"), "{s}");
    }
}
