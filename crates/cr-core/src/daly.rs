//! Daly's analytical model for single-level checkpoint/restart.
//!
//! Implements the two models the paper builds on:
//!
//! * J. T. Daly, *"A higher order estimate of the optimum checkpoint
//!   interval for restart dumps"*, FGCS 22 (2006) — the optimum compute
//!   interval between checkpoints ([`optimum_interval`]) and the expected
//!   total wall time of an application under exponential failures
//!   ([`expected_wall_time`]).
//! * J. T. Daly, *"Quantifying checkpoint efficiency"* (2007) — progress
//!   rate (efficiency) as a function of the MTTI-to-commit-time ratio
//!   `M/δ` ([`optimal_progress_rate`], Figure 1 of the SC'17 paper).
//!
//! All functions take the system MTTI `M`, the checkpoint commit time `δ`
//! (both in seconds), and where relevant a restart cost `R`. Following
//! footnote 2 of the paper, restore time is assumed equal to commit time
//! unless stated otherwise.

/// Probability that an activity of duration `a` completes without being
/// interrupted, under exponentially distributed failures with mean `mtti`.
///
/// This is `exp(-a / M)`. An `a` of zero always succeeds; an infinite
/// `mtti` means failures never occur.
pub fn survival_prob(a: f64, mtti: f64) -> f64 {
    debug_assert!(a >= 0.0, "activity duration must be non-negative");
    debug_assert!(mtti > 0.0, "MTTI must be positive");
    (-a / mtti).exp()
}

/// Expected time elapsed before the interrupt, *given* that an activity of
/// duration `a` is interrupted (exponential failures with mean `mtti`).
///
/// For `X ~ Exp(1/M)`, this is `E[X | X < a] = M - a·e^{-a/M} / (1 - e^{-a/M})`.
/// As `a → 0` the value tends to `a/2`; as `a → ∞` it tends to `M`.
pub fn expected_time_before_interrupt(a: f64, mtti: f64) -> f64 {
    debug_assert!(a >= 0.0 && mtti > 0.0);
    if a == 0.0 {
        return 0.0;
    }
    let x = a / mtti;
    if x < 1e-9 {
        // Series expansion avoids catastrophic cancellation for tiny x:
        // E = a/2 - a·x/12 + O(x^2).
        return a * (0.5 - x / 12.0);
    }
    // 1 - e^{-x} via exp_m1 avoids cancellation for small x.
    let one_minus_q = -(-x).exp_m1();
    let q = (-x).exp();
    mtti - a * q / one_minus_q
}

/// Daly's first-order optimum checkpoint interval `sqrt(2 δ M) - δ`.
///
/// Valid for `δ < M/2`; for larger `δ` Daly recommends `τ = M`.
pub fn optimum_interval_first_order(mtti: f64, delta: f64) -> f64 {
    debug_assert!(mtti > 0.0 && delta >= 0.0);
    if delta >= 2.0 * mtti {
        return mtti;
    }
    ((2.0 * delta * mtti).sqrt() - delta).max(delta.min(mtti))
}

/// Daly's higher-order optimum checkpoint interval (FGCS 2006, eq. 37):
///
/// ```text
/// τ_opt = sqrt(2δM) · [1 + (1/3)·sqrt(δ/2M) + (1/9)·(δ/2M)] − δ    (δ < 2M)
/// τ_opt = M                                                        (δ ≥ 2M)
/// ```
pub fn optimum_interval(mtti: f64, delta: f64) -> f64 {
    debug_assert!(mtti > 0.0 && delta >= 0.0);
    if delta == 0.0 {
        // No commit cost: checkpoint continuously; any positive interval
        // works. Return M as the natural scale.
        return mtti;
    }
    if delta >= 2.0 * mtti {
        return mtti;
    }
    let half_ratio = delta / (2.0 * mtti);
    let tau = (2.0 * delta * mtti).sqrt()
        * (1.0 + half_ratio.sqrt() / 3.0 + half_ratio / 9.0)
        - delta;
    tau.max(1e-12)
}

/// Daly's expected total wall time (FGCS 2006, "complete model"):
///
/// ```text
/// T_w = M · e^{R/M} · (e^{(τ+δ)/M} − 1) · T_s / τ
/// ```
///
/// where `T_s` is the failure-free solve time, `τ` the compute interval
/// between checkpoints, `δ` the commit time, and `R` the restart cost.
pub fn expected_wall_time(
    solve_time: f64,
    mtti: f64,
    delta: f64,
    restart: f64,
    tau: f64,
) -> f64 {
    debug_assert!(solve_time >= 0.0 && mtti > 0.0 && tau > 0.0);
    debug_assert!(delta >= 0.0 && restart >= 0.0);
    mtti * (restart / mtti).exp()
        * ((tau + delta) / mtti).exp_m1()
        * (solve_time / tau)
}

/// Progress rate (efficiency) for a given compute interval `tau`:
/// `T_s / T_w`, independent of `T_s`.
pub fn progress_rate(mtti: f64, delta: f64, restart: f64, tau: f64) -> f64 {
    1.0 / (expected_wall_time(1.0, mtti, delta, restart, tau))
}

/// Progress rate at Daly's higher-order optimum interval, with restart
/// cost equal to the commit time (paper footnote 2).
pub fn optimal_progress_rate(mtti: f64, delta: f64) -> f64 {
    if delta == 0.0 {
        return 1.0;
    }
    let tau = optimum_interval(mtti, delta);
    progress_rate(mtti, delta, delta, tau)
}

/// One point of the Figure 1 curve: progress rate as a function of the
/// ratio `M/δ`. The curve is scale-free, so `M` is fixed at 1 and
/// `δ = 1/ratio`.
pub fn progress_for_ratio(m_over_delta: f64) -> f64 {
    debug_assert!(m_over_delta > 0.0);
    optimal_progress_rate(1.0, 1.0 / m_over_delta)
}

/// Generates the Figure 1 curve over logarithmically spaced `M/δ` ratios.
///
/// Returns `(ratio, progress_rate)` pairs for `points` samples between
/// `lo` and `hi` (inclusive, both must be positive).
pub fn figure1_curve(lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
    assert!(lo > 0.0 && hi > lo && points >= 2);
    let log_lo = lo.ln();
    let log_hi = hi.ln();
    (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            let ratio = (log_lo + t * (log_hi - log_lo)).exp();
            (ratio, progress_for_ratio(ratio))
        })
        .collect()
}

/// Finds the `M/δ` ratio needed to reach a target progress rate, by
/// bisection on the monotone Figure 1 curve.
pub fn ratio_for_progress(target: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&target),
        "target progress must be in (0, 1)"
    );
    let (mut lo, mut hi) = (1e-3f64, 1e9f64);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if progress_for_ratio(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn survival_prob_limits() {
        assert!((survival_prob(0.0, 100.0) - 1.0).abs() < TOL);
        assert!(survival_prob(1e12, 1.0) < 1e-300);
        // One MTTI of exposure -> e^{-1}.
        assert!((survival_prob(50.0, 50.0) - (-1.0f64).exp()).abs() < TOL);
    }

    #[test]
    fn expected_time_before_interrupt_limits() {
        // Tiny activity: conditional mean ~ a/2.
        let a = 1e-6;
        let e = expected_time_before_interrupt(a, 1.0);
        assert!((e - a / 2.0).abs() < 1e-12);
        // Huge activity: conditional mean -> MTTI.
        let e = expected_time_before_interrupt(1e9, 42.0);
        assert!((e - 42.0).abs() < 1e-6);
        // Must always be below both a and M.
        for &a in &[0.1, 1.0, 10.0, 100.0] {
            let e = expected_time_before_interrupt(a, 7.0);
            assert!(e < a && e < 7.0, "a={a}: e={e}");
        }
    }

    #[test]
    fn expected_time_series_matches_exact_near_crossover() {
        // The series branch and exact branch must agree at the switch point.
        let mtti = 1.0f64;
        let a = 1.001e-9 * mtti;
        let exact = {
            let q = (-(a / mtti)).exp();
            mtti - a * q / (1.0 - q)
        };
        let approx = expected_time_before_interrupt(a, mtti);
        assert!((exact - approx).abs() / exact < 1e-6);
    }

    #[test]
    fn optimum_interval_reproduces_paper_example() {
        // M = 30 min, delta = 9 s: the paper derives tau ~ 3 min (~M/10).
        // sqrt(2*9*1800) * (1 + 0.05/3 + 0.0025/9) - 9 = 174.05.
        let tau = optimum_interval(30.0 * 60.0, 9.0);
        assert!(
            (tau - 174.05).abs() < 0.05,
            "tau = {tau}, expected ~174 s (~3 min)"
        );
    }

    #[test]
    fn paper_rule_of_thumb_delta_m_over_200_gives_90pct() {
        // Paper Sec. 3.3: commit time ~ M/200 yields ~90% progress.
        let p = optimal_progress_rate(200.0, 1.0);
        assert!((p - 0.90).abs() < 0.005, "progress = {p}");
    }

    #[test]
    fn progress_monotone_in_ratio() {
        let mut last = 0.0;
        for &r in &[1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0] {
            let p = progress_for_ratio(r);
            assert!(p > last, "ratio {r}: {p} <= {last}");
            last = p;
        }
        assert!(last < 1.0);
    }

    #[test]
    fn higher_order_beats_or_ties_first_order() {
        for &(m, d) in &[(1800.0, 9.0), (1800.0, 100.0), (600.0, 60.0)] {
            let t_hi = optimum_interval(m, d);
            let t_lo = optimum_interval_first_order(m, d);
            let p_hi = progress_rate(m, d, d, t_hi);
            let p_lo = progress_rate(m, d, d, t_lo);
            assert!(
                p_hi >= p_lo - 1e-6,
                "m={m} d={d}: higher-order {p_hi} < first-order {p_lo}"
            );
        }
    }

    #[test]
    fn optimum_is_a_local_maximum_of_progress() {
        let (m, d) = (1800.0, 9.0);
        let tau = optimum_interval(m, d);
        let p = progress_rate(m, d, d, tau);
        for eps in [0.9, 0.95, 1.05, 1.1] {
            let p2 = progress_rate(m, d, d, tau * eps);
            assert!(p2 <= p + 1e-9, "perturbed {eps}: {p2} > {p}");
        }
    }

    #[test]
    fn wall_time_scales_linearly_with_solve_time() {
        let t1 = expected_wall_time(100.0, 1800.0, 9.0, 9.0, 172.0);
        let t2 = expected_wall_time(200.0, 1800.0, 9.0, 9.0, 172.0);
        assert!((t2 / t1 - 2.0).abs() < TOL);
    }

    #[test]
    fn no_failure_limit_recovers_simple_overhead() {
        // With M -> infinity, wall time -> T_s * (tau + delta) / tau.
        let wall = expected_wall_time(1000.0, 1e15, 10.0, 10.0, 100.0);
        assert!((wall - 1000.0 * 110.0 / 100.0).abs() < 1e-3);
    }

    #[test]
    fn ratio_for_progress_inverts_curve() {
        for &target in &[0.5, 0.75, 0.9, 0.95] {
            let r = ratio_for_progress(target);
            let p = progress_for_ratio(r);
            assert!((p - target).abs() < 1e-6, "target {target}: got {p}");
        }
        // Paper: 90% needs M/delta ~ 200.
        let r90 = ratio_for_progress(0.90);
        assert!((r90 - 200.0).abs() < 15.0, "r90 = {r90}");
    }

    #[test]
    fn figure1_curve_is_monotone_and_bounded() {
        let curve = figure1_curve(1.0, 1e4, 64);
        assert_eq!(curve.len(), 64);
        for win in curve.windows(2) {
            assert!(win[1].1 >= win[0].1);
        }
        for &(_, p) in &curve {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn degenerate_delta_zero_is_perfect_progress() {
        assert_eq!(optimal_progress_rate(100.0, 0.0), 1.0);
    }

    #[test]
    fn huge_delta_clamps_interval_to_mtti() {
        assert_eq!(optimum_interval(10.0, 100.0), 10.0);
        assert_eq!(optimum_interval_first_order(10.0, 100.0), 10.0);
    }
}
