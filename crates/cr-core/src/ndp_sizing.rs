//! Sizing the NDP for compression (§4.4, §5.3, Tables 2–3).
//!
//! Includes the paper's measured Table 2 data (compression factor and
//! single-thread speed per mini-app and utility) as reference constants,
//! and the §4.4 equations that turn a (factor, speed) pair plus the
//! system's I/O bandwidth into: the required compression rate, the number
//! of NDP cores needed to reach it, and the smallest achievable
//! checkpoint-to-I/O interval (Table 3).

use crate::params::SystemParams;
#[cfg(test)]
use crate::units::MB;

/// Compression behaviour of one utility at one level, averaged over the
/// mini-app corpus (Table 2's "Average" row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityProfile {
    /// Utility name, e.g. `"gzip"`.
    pub name: &'static str,
    /// Compression level used.
    pub level: u32,
    /// Average compression factor `1 − compressed/uncompressed`.
    pub avg_factor: f64,
    /// Average single-thread compression speed, bytes/s.
    pub avg_speed: f64,
}

impl UtilityProfile {
    /// Formats as the paper does: `gzip(1)`.
    pub fn label(&self) -> String {
        format!("{}({})", self.name, self.level)
    }
}

/// Per-mini-app compression measurements for one utility (Table 2 cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppUtilityDatum {
    /// Compression factor.
    pub factor: f64,
    /// Single-thread compression speed, bytes/s.
    pub speed: f64,
}

/// One row of Table 2: a mini-app and its measurements for all seven
/// utility/level combinations, in the order of [`PAPER_UTILITIES`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiniAppRow {
    /// Mini-app name.
    pub name: &'static str,
    /// Total collected checkpoint data, bytes.
    pub checkpoint_data: f64,
    /// Measurements in `PAPER_UTILITIES` order.
    pub data: [AppUtilityDatum; 7],
}

/// The seven utility/level combinations studied (§5.1.2), with Table 2's
/// average factors and speeds.
pub const PAPER_UTILITIES: [UtilityProfile; 7] = [
    UtilityProfile { name: "gzip", level: 1, avg_factor: 0.728, avg_speed: 110.1e6 },
    UtilityProfile { name: "gzip", level: 6, avg_factor: 0.747, avg_speed: 50.6e6 },
    UtilityProfile { name: "bzip2", level: 1, avg_factor: 0.755, avg_speed: 12.1e6 },
    UtilityProfile { name: "bzip2", level: 9, avg_factor: 0.763, avg_speed: 10.5e6 },
    UtilityProfile { name: "xz", level: 1, avg_factor: 0.806, avg_speed: 25.3e6 },
    UtilityProfile { name: "xz", level: 6, avg_factor: 0.833, avg_speed: 4.8e6 },
    UtilityProfile { name: "lz4", level: 1, avg_factor: 0.648, avg_speed: 441.9e6 },
];

/// Convenience: look up a paper utility profile by name and level.
pub fn paper_utility(name: &str, level: u32) -> Option<UtilityProfile> {
    PAPER_UTILITIES
        .iter()
        .copied()
        .find(|u| u.name == name && u.level == level)
}

macro_rules! datum {
    ($f:expr, $s:expr) => {
        AppUtilityDatum { factor: $f, speed: $s * 1e6 }
    };
}

/// Table 2 of the paper: per-mini-app compression factor and
/// single-thread speed for each utility (speeds in MB/s in the source).
pub const PAPER_TABLE2: [MiniAppRow; 7] = [
    MiniAppRow {
        name: "CoMD",
        checkpoint_data: 25.07e9,
        data: [
            datum!(0.842, 153.7), datum!(0.844, 92.3), datum!(0.851, 32.5),
            datum!(0.850, 30.4), datum!(0.860, 23.5), datum!(0.862, 8.2),
            datum!(0.828, 658.3),
        ],
    },
    MiniAppRow {
        name: "HPCCG",
        checkpoint_data: 45.92e9,
        data: [
            datum!(0.884, 150.7), datum!(0.923, 61.6), datum!(0.924, 5.9),
            datum!(0.936, 4.6), datum!(0.969, 47.5), datum!(0.987, 7.4),
            datum!(0.816, 447.8),
        ],
    },
    MiniAppRow {
        name: "miniFE",
        checkpoint_data: 52.31e9,
        data: [
            datum!(0.715, 84.5), datum!(0.776, 24.1), datum!(0.807, 10.7),
            datum!(0.823, 10.1), datum!(0.876, 18.3), datum!(0.911, 1.6),
            datum!(0.548, 253.9),
        ],
    },
    MiniAppRow {
        name: "miniMD",
        checkpoint_data: 23.94e9,
        data: [
            datum!(0.570, 52.2), datum!(0.584, 27.7), datum!(0.591, 10.0),
            datum!(0.595, 9.2), datum!(0.634, 8.0), datum!(0.679, 2.5),
            datum!(0.470, 345.3),
        ],
    },
    MiniAppRow {
        name: "miniSmac",
        checkpoint_data: 28.11e9,
        data: [
            datum!(0.350, 37.3), datum!(0.355, 24.4), datum!(0.314, 6.9),
            datum!(0.324, 6.0), datum!(0.475, 5.1), datum!(0.488, 2.6),
            datum!(0.241, 342.7),
        ],
    },
    MiniAppRow {
        name: "miniAero",
        checkpoint_data: 0.78e9,
        data: [
            datum!(0.843, 138.5), datum!(0.857, 61.2), datum!(0.866, 12.0),
            datum!(0.871, 8.2), datum!(0.881, 28.4), datum!(0.928, 4.3),
            datum!(0.805, 567.9),
        ],
    },
    MiniAppRow {
        name: "pHPCCG",
        checkpoint_data: 46.18e9,
        data: [
            datum!(0.891, 154.0), datum!(0.891, 63.2), datum!(0.931, 6.8),
            datum!(0.940, 4.8), datum!(0.947, 45.9), datum!(0.973, 7.0),
            datum!(0.824, 477.7),
        ],
    },
];

/// The gzip(1) compression factor per mini-app (Figure 6 drives each
/// mini-app's configuration with its own factor).
pub fn gzip1_factor(app_name: &str) -> Option<f64> {
    PAPER_TABLE2
        .iter()
        .find(|r| r.name == app_name)
        .map(|r| r.data[0].factor)
}

/// Result of sizing the NDP for one compression utility (one row of
/// Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdpSizing {
    /// Compression rate that saturates the I/O write bandwidth:
    /// `(uncompressed/compressed) × io_bw` (§4.4). Rates above this are
    /// wasted; rates below `io_bw` are useless.
    pub required_rate: f64,
    /// Number of NDP cores needed: `ceil(required_rate / single-thread
    /// speed)`.
    pub cores: u32,
    /// Smallest achievable checkpoint-to-I/O interval: the time to ship
    /// one compressed checkpoint at the I/O bandwidth.
    pub min_interval: f64,
}

/// Applies the §4.4 sizing equations for a utility with average
/// compression `factor` and single-thread speed `thread_speed` on a
/// system with per-node I/O bandwidth and checkpoint size from `sys`.
pub fn size_ndp(sys: &SystemParams, factor: f64, thread_speed: f64) -> NdpSizing {
    assert!((0.0..1.0).contains(&factor), "factor must be in [0,1)");
    assert!(thread_speed > 0.0);
    let residual = 1.0 - factor;
    let required_rate = sys.io_bw_per_node / residual;
    let cores = (required_rate / thread_speed).ceil() as u32;
    let min_interval = sys.checkpoint_bytes * residual / sys.io_bw_per_node;
    NdpSizing {
        required_rate,
        cores,
        min_interval,
    }
}

/// Computes Table 3: NDP sizing for every paper utility.
pub fn table3(sys: &SystemParams) -> Vec<(UtilityProfile, NdpSizing)> {
    PAPER_UTILITIES
        .iter()
        .map(|u| (*u, size_ndp(sys, u.avg_factor, u.avg_speed)))
        .collect()
}

/// The aggregate compression rate achieved by `cores` NDP cores running
/// a utility with the given single-thread speed, capped by the rate that
/// saturates I/O (§4.4: faster compression "would not help").
pub fn effective_ndp_rate(
    sys: &SystemParams,
    factor: f64,
    thread_speed: f64,
    cores: u32,
) -> f64 {
    let saturation = sys.io_bw_per_node / (1.0 - factor);
    (cores as f64 * thread_speed).min(saturation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemParams {
        SystemParams::exascale_default()
    }

    #[test]
    fn table2_averages_match_paper() {
        // The paper's "Average" row: factor 72.8%..83.3%, speeds
        // 110.1 .. 4.8 MB/s. Check the stored per-app data averages to
        // the published averages within rounding.
        for (i, util) in PAPER_UTILITIES.iter().enumerate() {
            let n = PAPER_TABLE2.len() as f64;
            let favg: f64 =
                PAPER_TABLE2.iter().map(|r| r.data[i].factor).sum::<f64>() / n;
            let savg: f64 =
                PAPER_TABLE2.iter().map(|r| r.data[i].speed).sum::<f64>() / n;
            assert!(
                (favg - util.avg_factor).abs() < 0.01,
                "{}: factor avg {favg} vs {}",
                util.label(),
                util.avg_factor
            );
            assert!(
                (savg - util.avg_speed).abs() / util.avg_speed < 0.02,
                "{}: speed avg {savg} vs {}",
                util.label(),
                util.avg_speed
            );
        }
    }

    #[test]
    fn sizing_reproduces_table3_gzip1() {
        let s = size_ndp(&sys(), 0.728, 110.1 * MB);
        // Required ~367 MB/s, 4 cores, 305 s interval.
        assert!((s.required_rate / MB - 367.6).abs() < 2.0);
        assert_eq!(s.cores, 4);
        assert!((s.min_interval - 304.6).abs() < 2.0);
    }

    #[test]
    fn sizing_reproduces_table3_all_rows() {
        // (required MB/s, cores, interval s) from Table 3.
        let expected = [
            (367.0, 4, 305.0),
            (395.0, 8, 283.0),
            (407.0, 34, 275.0),
            (421.0, 41, 266.0),
            (515.0, 21, 217.0),
            (596.0, 125, 188.0),
            (283.0, 1, 395.0),
        ];
        for ((util, sizing), (req, cores, interval)) in
            table3(&sys()).iter().zip(expected.iter())
        {
            assert!(
                (sizing.required_rate / MB - req).abs() < 0.01 * req,
                "{}: required {} vs {req}",
                util.label(),
                sizing.required_rate / MB
            );
            assert_eq!(
                sizing.cores, *cores,
                "{}: cores {} vs {cores}",
                util.label(),
                sizing.cores
            );
            assert!(
                (sizing.min_interval - interval).abs() < 0.01 * interval,
                "{}: interval {} vs {interval}",
                util.label(),
                sizing.min_interval
            );
        }
    }

    #[test]
    fn effective_rate_saturates_at_io_limit() {
        let s = sys();
        // gzip(1) on 4 cores: 440.4 MB/s raw but saturation is 367.6.
        let rate = effective_ndp_rate(&s, 0.728, 110.1 * MB, 4);
        assert!((rate / MB - 367.6).abs() < 1.0);
        // 1 core: below saturation, raw rate applies.
        let rate1 = effective_ndp_rate(&s, 0.728, 110.1 * MB, 1);
        assert!((rate1 / MB - 110.1).abs() < 1e-9);
    }

    #[test]
    fn gzip1_factor_lookup() {
        assert!((gzip1_factor("CoMD").unwrap() - 0.842).abs() < 1e-9);
        assert!((gzip1_factor("miniSmac").unwrap() - 0.350).abs() < 1e-9);
        assert!(gzip1_factor("nope").is_none());
    }

    #[test]
    fn paper_utility_lookup() {
        let u = paper_utility("xz", 6).unwrap();
        assert_eq!(u.avg_factor, 0.833);
        assert!(paper_utility("xz", 3).is_none());
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn sizing_rejects_factor_one() {
        let _ = size_ndp(&sys(), 1.0, 1.0);
    }
}
