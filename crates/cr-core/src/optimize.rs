//! Joint optimisation of checkpointing policy: the locally-saved :
//! I/O-saved ratio *and* the local checkpoint interval together.
//!
//! The paper fixes the interval at Daly's single-level optimum and
//! optimizes the ratio empirically (§6.1.3, §6.2). For deployments off
//! the paper's design point (slow NVM, unusual MTTI), the two knobs
//! interact: rarer I/O checkpoints shift the optimum interval. This
//! module searches both, for host and NDP configurations.

use crate::cache::solve_cycle_cached;
use crate::daly;
use crate::params::{CompressionSpec, Strategy, SystemParams};

/// Result of a joint policy search.
#[derive(Debug, Clone, Copy)]
pub struct PolicyChoice {
    /// The optimised strategy.
    pub strategy: Strategy,
    /// Its progress rate under the analytic model.
    pub progress: f64,
    /// The local checkpoint interval chosen, seconds.
    pub interval: f64,
    /// The locally-saved : I/O-saved ratio chosen.
    pub ratio: u32,
}

/// Multipliers applied to Daly's optimum interval to form the candidate
/// grid (the response surface is flat near the optimum, so a coarse
/// multiplicative grid suffices — see the `repro_ablations` interval
/// study).
pub const INTERVAL_MULTIPLIERS: [f64; 7] =
    [0.5, 0.7, 0.85, 1.0, 1.2, 1.5, 2.0];

/// Interval candidates for a system, as a fixed-size array: the joint
/// searches call this inside their grid loops, so it must not allocate.
fn interval_candidates(sys: &SystemParams) -> [f64; 7] {
    let tau_opt = daly::optimum_interval(sys.mtti, sys.delta_local());
    INTERVAL_MULTIPLIERS.map(|m| tau_opt * m)
}

/// Jointly optimises interval and ratio for `Local + I/O-Host`.
pub fn best_host_policy(
    sys: &SystemParams,
    p_local: f64,
    compression: Option<CompressionSpec>,
) -> PolicyChoice {
    let mut best: Option<PolicyChoice> = None;
    for &tau in &interval_candidates(sys) {
        let (ratio, progress) = crate::ratio_opt::best_host_ratio_at(
            sys,
            p_local,
            compression,
            Some(tau),
        );
        if best.map(|b| progress > b.progress).unwrap_or(true) {
            best = Some(PolicyChoice {
                strategy: Strategy::LocalIoHost {
                    interval: Some(tau),
                    ratio,
                    p_local,
                    compression,
                },
                progress,
                interval: tau,
                ratio,
            });
        }
    }
    best.expect("candidate grid is non-empty")
}

/// Jointly optimises the interval for `Local + I/O-NDP` (the ratio is
/// always the fastest sustainable one).
pub fn best_ndp_policy(
    sys: &SystemParams,
    p_local: f64,
    compression: Option<CompressionSpec>,
) -> PolicyChoice {
    let mut best: Option<PolicyChoice> = None;
    for &tau in &interval_candidates(sys) {
        let strategy = Strategy::LocalIoNdp {
            interval: Some(tau),
            ratio: None,
            p_local,
            compression,
            drain_lag: Default::default(),
        };
        let sol = solve_cycle_cached(sys, &strategy);
        let progress = sol.progress_rate();
        if best.map(|b| progress > b.progress).unwrap_or(true) {
            best = Some(PolicyChoice {
                strategy,
                progress,
                interval: tau,
                ratio: sol.ratio,
            });
        }
    }
    best.expect("candidate grid is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::*;

    #[test]
    fn joint_search_beats_or_ties_fixed_interval() {
        // On the default system, 150 s is near-optimal; the joint search
        // must do at least as well.
        let sys = SystemParams::exascale_default();
        let fixed =
            crate::ratio_opt::best_host_strategy(&sys, 0.85, None).1;
        let joint = best_host_policy(&sys, 0.85, None);
        assert!(
            joint.progress >= fixed - 1e-9,
            "joint {} < fixed {fixed}",
            joint.progress
        );
    }

    #[test]
    fn joint_ndp_search_beats_or_ties_fixed_interval() {
        // Same regression, NDP side, through the memoized solver: the
        // 7-candidate grid must never do worse than the paper's fixed
        // 150 s interval.
        let sys = SystemParams::exascale_default();
        let fixed = crate::analytic::progress_rate(
            &sys,
            &Strategy::local_io_ndp(0.85, None),
        );
        let joint = best_ndp_policy(&sys, 0.85, None);
        assert!(
            joint.progress >= fixed - 1e-9,
            "joint {} < fixed {fixed}",
            joint.progress
        );
    }

    #[test]
    fn candidate_grid_matches_multipliers() {
        let sys = SystemParams::exascale_default();
        let tau_opt =
            crate::daly::optimum_interval(sys.mtti, sys.delta_local());
        let grid = interval_candidates(&sys);
        assert_eq!(grid.len(), INTERVAL_MULTIPLIERS.len());
        for (c, m) in grid.iter().zip(INTERVAL_MULTIPLIERS) {
            assert_eq!(*c, tau_opt * m);
        }
    }

    #[test]
    fn slow_nvm_prefers_longer_intervals() {
        // With a 2 GB/s NVM the 56 s commit forces intervals far above
        // 150 s.
        let sys = SystemParams::exascale_default().with_local_bw(2.0 * GB);
        let joint = best_host_policy(&sys, 0.85, None);
        assert!(
            joint.interval > 250.0,
            "interval {} too short for 56 s commits",
            joint.interval
        );
    }

    #[test]
    fn ndp_policy_reports_sustainable_ratio() {
        let sys = SystemParams::exascale_default();
        let choice =
            best_ndp_policy(&sys, 0.85, Some(CompressionSpec::gzip1_ndp()));
        assert!(choice.ratio >= 1);
        assert!(choice.progress > 0.8);
        // Longer intervals lower the sustainable ratio bound, so the
        // chosen ratio stays small.
        assert!(choice.ratio <= 4, "ratio {}", choice.ratio);
    }

    #[test]
    fn ndp_beats_host_after_joint_optimisation() {
        // The paper's conclusion must survive giving the host its best
        // possible policy.
        let sys = SystemParams::exascale_default();
        for p_local in [0.5, 0.85, 0.96] {
            let host = best_host_policy(
                &sys,
                p_local,
                Some(CompressionSpec::gzip1_host()),
            );
            let ndp = best_ndp_policy(
                &sys,
                p_local,
                Some(CompressionSpec::gzip1_ndp()),
            );
            assert!(
                ndp.progress > host.progress,
                "p={p_local}: ndp {} <= host {}",
                ndp.progress,
                host.progress
            );
        }
    }
}
