//! Shared unit constants and conversion helpers.
//!
//! The whole workspace uses plain `f64` quantities with documented units:
//! **seconds** for time, **bytes** for sizes, **bytes/second** for
//! bandwidths and processing rates. Sizes in the paper are decimal
//! (1 GB = 10⁹ bytes): Titan's 38 GB/node × 18 688 nodes is quoted as
//! 710 TB, which only holds with decimal prefixes.

/// One kilobyte (decimal), in bytes.
pub const KB: f64 = 1e3;
/// One megabyte (decimal), in bytes.
pub const MB: f64 = 1e6;
/// One gigabyte (decimal), in bytes.
pub const GB: f64 = 1e9;
/// One terabyte (decimal), in bytes.
pub const TB: f64 = 1e12;
/// One petabyte (decimal), in bytes.
pub const PB: f64 = 1e15;

/// One kibibyte, in bytes (used for in-memory buffer sizing).
pub const KIB: usize = 1024;
/// One mebibyte, in bytes (used for in-memory buffer sizing).
pub const MIB: usize = 1024 * 1024;

/// One minute, in seconds.
pub const MINUTE: f64 = 60.0;
/// One hour, in seconds.
pub const HOUR: f64 = 3600.0;
/// One day, in seconds.
pub const DAY: f64 = 24.0 * HOUR;
/// One (Julian) year, in seconds.
pub const YEAR: f64 = 365.25 * DAY;

/// One teraflop/s, in flop/s.
pub const TFLOPS: f64 = 1e12;
/// One petaflop/s, in flop/s.
pub const PFLOPS: f64 = 1e15;
/// One exaflop/s, in flop/s.
pub const EFLOPS: f64 = 1e18;

/// Formats a byte count with an adaptive decimal prefix, e.g. `112 GB`.
pub fn fmt_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    let (scaled, suffix) = if abs >= PB {
        (bytes / PB, "PB")
    } else if abs >= TB {
        (bytes / TB, "TB")
    } else if abs >= GB {
        (bytes / GB, "GB")
    } else if abs >= MB {
        (bytes / MB, "MB")
    } else if abs >= KB {
        (bytes / KB, "KB")
    } else {
        (bytes, "B")
    };
    if (scaled - scaled.round()).abs() < 5e-3 {
        format!("{} {}", scaled.round() as i64, suffix)
    } else {
        format!("{:.2} {}", scaled, suffix)
    }
}

/// Formats a duration in seconds adaptively (`9 s`, `18.7 min`, `2.1 h`).
pub fn fmt_secs(secs: f64) -> String {
    let abs = secs.abs();
    if abs >= DAY {
        format!("{:.2} d", secs / DAY)
    } else if abs >= HOUR {
        format!("{:.2} h", secs / HOUR)
    } else if abs >= MINUTE {
        format!("{:.2} min", secs / MINUTE)
    } else if abs >= 1.0 {
        format!("{:.2} s", secs)
    } else {
        format!("{:.1} ms", secs * 1e3)
    }
}

/// Formats a rate in bytes/second with an adaptive decimal prefix.
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    format!("{}/s", fmt_bytes(bytes_per_sec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_prefixes_scale_by_thousand() {
        assert_eq!(GB / MB, 1000.0);
        assert_eq!(TB / GB, 1000.0);
        assert_eq!(PB / TB, 1000.0);
    }

    #[test]
    fn titan_memory_uses_decimal_prefixes() {
        // 38 GB/node * 18688 nodes ~= 710 TB, as quoted in Table 1.
        let total = 38.0 * GB * 18_688.0;
        assert!((total / TB - 710.1).abs() < 0.2);
    }

    #[test]
    fn fmt_bytes_picks_prefix() {
        assert_eq!(fmt_bytes(112.0 * GB), "112 GB");
        assert_eq!(fmt_bytes(14.0 * PB), "14 PB");
        assert_eq!(fmt_bytes(1.5 * MB), "1.50 MB");
        assert_eq!(fmt_bytes(12.0), "12 B");
    }

    #[test]
    fn fmt_secs_picks_unit() {
        assert_eq!(fmt_secs(9.0), "9.00 s");
        assert_eq!(fmt_secs(30.0 * MINUTE), "30.00 min");
        assert_eq!(fmt_secs(0.5), "500.0 ms");
    }

    #[test]
    fn fmt_rate_appends_per_second() {
        assert_eq!(fmt_rate(100.0 * MB), "100 MB/s");
    }
}
