//! # cr-rand — dependency-free deterministic random streams
//!
//! A from-scratch ChaCha8 generator with the small sampling surface the
//! workspace needs (uniform `f64`, ranges, byte fills). The workspace
//! builds with no registry access, so this replaces the `rand` +
//! `rand_chacha` pair; streams are deterministic in the seed but make no
//! compatibility promise with any external crate's byte streams.
//!
//! ChaCha8 is used for the same reason `rand_chacha` was: excellent
//! statistical quality at a throughput far above what Monte-Carlo
//! sampling or synthetic-workload generation can consume, with cheap
//! constant-time seeking via the block counter (not exposed here).
//!
//! ```
//! use cr_rand::ChaCha8;
//!
//! let mut a = ChaCha8::seed_from_u64(7);
//! let mut b = ChaCha8::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

/// The ChaCha quarter-round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic ChaCha8 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8 {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    input: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means exhausted.
    idx: usize,
}

impl ChaCha8 {
    /// Builds a generator from a 32-byte key (all-zero nonce, counter 0).
    pub fn from_key(key: [u8; 32]) -> Self {
        let mut input = [0u32; 16];
        // "expand 32-byte k"
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for i in 0..8 {
            input[4 + i] =
                u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8 {
            input,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Derives the 256-bit key from a 64-bit seed with a SplitMix64
    /// expansion (each output word avalanched independently).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut key = [0u8; 32];
        let mut s = seed;
        for chunk in key.chunks_exact_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_key(key)
    }

    /// Generates the next keystream block into `buf`.
    fn refill(&mut self) {
        let mut x = self.input;
        for _ in 0..4 {
            // One double round: four column rounds, four diagonal rounds.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(self.input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.buf = x;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let ctr = (self.input[12] as u64 | ((self.input[13] as u64) << 32))
            .wrapping_add(1);
        self.input[12] = ctr as u32;
        self.input[13] = (ctr >> 32) as u32;
    }

    /// Next uniform 32-bit word.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Next uniform 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + self.gen_f64() * (hi - lo)
    }

    /// Fills `dest` with uniform random bytes.
    pub fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8::seed_from_u64(42);
        let mut b = ChaCha8::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8::seed_from_u64(1);
        let mut b = ChaCha8::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chacha20_test_vector_structure() {
        // RFC 8439's test vectors are for 20 rounds; for 8 rounds we
        // check the published ChaCha8 keystream for the all-zero
        // key/nonce (first words of the eSTREAM reference output).
        let mut rng = ChaCha8::from_key([0u8; 32]);
        let first = rng.next_u32();
        // Reference first keystream bytes of ChaCha8 with zero key and
        // zero nonce: 3e00ef2f... (eSTREAM "Set 6, vector 0"-style runs
        // differ in nonce; we assert determinism + non-triviality and
        // the avalanche between consecutive blocks instead.)
        assert_ne!(first, 0);
        let mut block2 = ChaCha8::from_key([0u8; 32]);
        for _ in 0..16 {
            block2.next_u32();
        }
        assert_ne!(first, block2.next_u32());
    }

    #[test]
    fn f64_is_in_unit_interval_and_well_spread() {
        let mut rng = ChaCha8::seed_from_u64(9);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = ChaCha8::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut rng = ChaCha8::seed_from_u64(5);
        for len in [0usize, 1, 3, 4, 5, 63, 64, 65, 1000] {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf);
            if len >= 64 {
                // Vanishingly unlikely to stay zero.
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn byte_histogram_is_flat() {
        let mut rng = ChaCha8::seed_from_u64(11);
        let mut buf = vec![0u8; 256 * 1024];
        rng.fill(&mut buf);
        let mut hist = [0u32; 256];
        for &b in &buf {
            hist[b as usize] += 1;
        }
        let expect = (buf.len() / 256) as f64;
        for (v, count) in hist.iter().enumerate() {
            let dev = (*count as f64 - expect).abs() / expect;
            assert!(dev < 0.15, "byte {v}: count {count} vs {expect}");
        }
    }
}
