//! Global, lock-free per-stage profiling for the checkpoint hot path.
//!
//! The codec pipeline the paper cares about has four stages:
//! **tokenize** (LZ matching), **entropy** (Huffman coding), **frame**
//! (building `[raw][comp][payload]` NDP frames), and **ship** (NIC →
//! I/O node). The simulation plane adds two more: **engine** (one
//! discrete-event replica run) and **solve** (analytic cycle-grid
//! solving). This module accumulates wall time and byte counts per
//! stage into process-global atomics, so instrumentation works
//! unchanged from `ParallelCodec` worker threads and simulator replica
//! workers, and costs one relaxed atomic load when disabled (the
//! default).
//!
//! Timing is observational only — nothing in the workspace reads these
//! counters to make a decision — so enabling the profiler cannot
//! change any computed result.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A hot-path pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// LZ match-finding over an input block.
    Tokenize,
    /// Entropy (Huffman) coding of the token stream.
    Entropy,
    /// Building framed NDP output (`[u32 raw][u32 comp][payload]`).
    Frame,
    /// Shipping frames over the NIC to the I/O node.
    Ship,
    /// One discrete-event simulator replica run (`cr-sim` engine).
    Engine,
    /// Analytic cycle solving for sweep grids (`cr-core`).
    Solve,
}

/// Total number of stages tracked.
pub const STAGE_COUNT: usize = 6;

/// All stages: codec pipeline first (in pipeline order), then the
/// simulation-plane stages.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::Tokenize,
    Stage::Entropy,
    Stage::Frame,
    Stage::Ship,
    Stage::Engine,
    Stage::Solve,
];

impl Stage {
    /// Stable lower-case name (JSON key in bench output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Tokenize => "tokenize",
            Stage::Entropy => "entropy",
            Stage::Frame => "frame",
            Stage::Ship => "ship",
            Stage::Engine => "engine",
            Stage::Solve => "solve",
        }
    }

    fn idx(self) -> usize {
        match self {
            Stage::Tokenize => 0,
            Stage::Entropy => 1,
            Stage::Frame => 2,
            Stage::Ship => 3,
            Stage::Engine => 4,
            Stage::Solve => 5,
        }
    }
}

struct Profile {
    enabled: AtomicBool,
    calls: [AtomicU64; STAGE_COUNT],
    nanos: [AtomicU64; STAGE_COUNT],
    bytes: [AtomicU64; STAGE_COUNT],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static PROFILE: Profile = Profile {
    enabled: AtomicBool::new(false),
    calls: [ZERO; STAGE_COUNT],
    nanos: [ZERO; STAGE_COUNT],
    bytes: [ZERO; STAGE_COUNT],
};

/// Turns the profiler on or off (process-global).
pub fn set_enabled(on: bool) {
    PROFILE.enabled.store(on, Ordering::Relaxed);
}

/// True if the profiler is on.
pub fn is_enabled() -> bool {
    PROFILE.enabled.load(Ordering::Relaxed)
}

/// Zeroes every stage counter (leaves the enable flag alone).
pub fn reset() {
    for i in 0..STAGE_COUNT {
        PROFILE.calls[i].store(0, Ordering::Relaxed);
        PROFILE.nanos[i].store(0, Ordering::Relaxed);
        PROFILE.bytes[i].store(0, Ordering::Relaxed);
    }
}

/// Records a completed stage execution directly (used by [`StageTimer`]
/// and by call sites that already know the elapsed time).
pub fn record(stage: Stage, nanos: u64, bytes: u64) {
    let i = stage.idx();
    PROFILE.calls[i].fetch_add(1, Ordering::Relaxed);
    PROFILE.nanos[i].fetch_add(nanos, Ordering::Relaxed);
    PROFILE.bytes[i].fetch_add(bytes, Ordering::Relaxed);
}

/// Starts a scoped timer for `stage`, or `None` when the profiler is
/// disabled — the disabled path is a single relaxed load. Attribute
/// bytes with [`StageTimer::add_bytes`]; the elapsed time is recorded
/// on drop.
pub fn timer(stage: Stage) -> Option<StageTimer> {
    if !is_enabled() {
        return None;
    }
    Some(StageTimer {
        stage,
        start: Instant::now(),
        bytes: 0,
    })
}

/// A scoped stage timer: measures from construction to drop.
#[derive(Debug)]
pub struct StageTimer {
    stage: Stage,
    start: Instant,
    bytes: u64,
}

impl StageTimer {
    /// Attributes `n` processed bytes to this stage execution.
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        record(self.stage, nanos, self.bytes);
    }
}

/// A point-in-time copy of one stage's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSnap {
    /// Which stage.
    pub stage: Stage,
    /// Completed executions.
    pub calls: u64,
    /// Total wall nanoseconds across executions (summed over threads,
    /// so overlapping workers can exceed wall time).
    pub nanos: u64,
    /// Total bytes attributed.
    pub bytes: u64,
}

impl StageSnap {
    /// Decimal-MB/s throughput of this stage (division-safe).
    pub fn mb_per_s(&self) -> f64 {
        crate::units::mb_per_s(self.bytes, self.nanos as f64 / 1e9)
    }
}

/// Snapshot of all stages, in [`STAGES`] order.
pub fn snapshot() -> [StageSnap; STAGE_COUNT] {
    let mut out = [StageSnap {
        stage: Stage::Tokenize,
        calls: 0,
        nanos: 0,
        bytes: 0,
    }; STAGE_COUNT];
    for (slot, stage) in out.iter_mut().zip(STAGES) {
        let i = stage.idx();
        *slot = StageSnap {
            stage,
            calls: PROFILE.calls[i].load(Ordering::Relaxed),
            nanos: PROFILE.nanos[i].load(Ordering::Relaxed),
            bytes: PROFILE.bytes[i].load(Ordering::Relaxed),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global, so the tests that mutate it run
    // under one lock to stay independent of test-thread scheduling.
    use std::sync::Mutex;
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_profiler_hands_out_no_timers() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        assert!(timer(Stage::Tokenize).is_none());
    }

    #[test]
    fn timer_records_calls_bytes_and_time() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        {
            let mut t = timer(Stage::Frame).expect("enabled");
            t.add_bytes(100);
        }
        record(Stage::Frame, 500, 50);
        set_enabled(false);
        let snap = snapshot();
        let frame = snap.iter().find(|s| s.stage == Stage::Frame).unwrap();
        assert_eq!(frame.calls, 2);
        assert_eq!(frame.bytes, 150);
        assert!(frame.nanos >= 500);
        // Untouched stages stay zero.
        let ship = snap.iter().find(|s| s.stage == Stage::Ship).unwrap();
        assert_eq!(ship.calls, 0);
    }

    #[test]
    fn snapshot_throughput_is_division_safe() {
        let s = StageSnap {
            stage: Stage::Ship,
            calls: 0,
            nanos: 0,
            bytes: 0,
        };
        assert_eq!(s.mb_per_s(), 0.0);
        let s2 = StageSnap {
            stage: Stage::Ship,
            calls: 1,
            nanos: 0,
            bytes: 10,
        };
        assert!(s2.mb_per_s().is_infinite());
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["tokenize", "entropy", "frame", "ship", "engine", "solve"]
        );
    }
}
