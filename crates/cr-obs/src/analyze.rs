//! Derived indicators: folds an event stream into the quantities the
//! paper argues about — NDP utilization, compress↔DMA overlap with host
//! compute, stall time attributable to NIC backpressure vs lock
//! contention, and per-level recovery-time breakdown — plus the
//! machinery behind the `crx obs diff` regression gate.
//!
//! Everything here is a pure fold over an event slice: same stream in,
//! same `indicators/v1` bytes out, so reports are directly comparable
//! across runs, machines, and CI.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::{Event, EventKind, Source};

/// A flat, sorted map of named indicator values with an
/// `indicators/v1` JSON rendering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndicatorReport {
    /// Free-form label identifying the run (seed, config, node).
    pub label: String,
    values: BTreeMap<String, f64>,
}

impl IndicatorReport {
    /// New empty report.
    pub fn new(label: &str) -> Self {
        IndicatorReport {
            label: label.to_string(),
            values: BTreeMap::new(),
        }
    }

    /// Sets indicator `key` (last write wins).
    pub fn set(&mut self, key: &str, v: f64) {
        self.values.insert(key.to_string(), v);
    }

    /// Indicator value, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// All values, sorted by key.
    pub fn values(&self) -> &BTreeMap<String, f64> {
        &self.values
    }

    /// Renders the report as an `indicators/v1` JSON document:
    ///
    /// ```json
    /// {
    ///   "schema": "indicators/v1",
    ///   "label": "...",
    ///   "indicators": { "name": 1.5, ... }
    /// }
    /// ```
    ///
    /// Keys are sorted and floats use Rust's shortest-roundtrip
    /// formatting (`null` for non-finite), so the same report always
    /// renders the same bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\n  \"schema\": \"indicators/v1\",\n  \"label\": \"");
        json::escape_into(&mut s, &self.label);
        s.push_str("\",\n  \"indicators\": {");
        let mut first = true;
        for (k, v) in &self.values {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str("\n    \"");
            json::escape_into(&mut s, k);
            s.push_str("\": ");
            if v.is_finite() {
                s.push_str(&format!("{v}"));
            } else {
                s.push_str("null");
            }
        }
        if !first {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parses an `indicators/v1` document (non-finite values render as
    /// `null` and are skipped on the way back in).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        match doc.get("schema").and_then(Value::as_str) {
            Some("indicators/v1") => {}
            other => return Err(format!("not indicators/v1: {other:?}")),
        }
        let label = doc
            .get("label")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let mut report = IndicatorReport::new(&label);
        let members = doc
            .get("indicators")
            .and_then(Value::as_obj)
            .ok_or("missing indicators object")?;
        for (k, v) in members {
            if let Some(n) = v.as_f64() {
                report.set(k, n);
            }
        }
        Ok(report)
    }
}

/// Merges per-node reports into one deterministic summary: for every
/// key present in any input, the merged report carries
/// `<key>_p10` / `<key>_p50` / `<key>_p90` (nearest-rank percentiles
/// over the nodes that have the key) and `<key>_mean`, plus a `nodes`
/// count. Input order does not matter — values are sorted before
/// ranking.
pub fn merge_percentiles(
    label: &str,
    reports: &[IndicatorReport],
) -> IndicatorReport {
    let mut merged = IndicatorReport::new(label);
    merged.set("nodes", reports.len() as f64);
    let mut keys: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for r in reports {
        for (k, v) in r.values() {
            keys.entry(k.as_str()).or_default().push(*v);
        }
    }
    for (k, mut vs) in keys {
        vs.sort_by(f64::total_cmp);
        let n = vs.len();
        let pick = |q: f64| vs[(((n - 1) as f64) * q).round() as usize];
        merged.set(&format!("{k}_p10"), pick(0.10));
        merged.set(&format!("{k}_p50"), pick(0.50));
        merged.set(&format!("{k}_p90"), pick(0.90));
        merged.set(
            &format!("{k}_mean"),
            vs.iter().sum::<f64>() / n as f64,
        );
    }
    merged
}

/// Folds an event stream into an [`IndicatorReport`].
///
/// Indicator groups are gated on the sources present in the stream, and
/// every key of a present group is emitted (zeros included) so a
/// pinned-seed report has a stable key set:
///
/// * **Simulator** (any [`Source::Sim`] event): wall time, per-kind
///   span time, `ndp_utilization` (drain time / wall), the compress↔DMA
///   `overlap_fraction` (drain activity overlapping host compute —
///   that overlap is exactly what the NDP offload buys), failure and
///   per-level recovery counts, and the per-level recovery-time
///   breakdown.
/// * **Node plane** (any `Ndp`/`Nvm`/`Remote`/`Faults` event): drain
///   job/byte/spill/retry counters, stall steps split by cause (NIC
///   backpressure vs spill exhaustion) with `lock_contention` counted
///   separately, pause windows, eviction and fault counts.
/// * **Causal spans** (any `SpanOpen`): open/close/unclosed counts and
///   the maximum graph depth.
pub fn analyze(label: &str, events: &[Event]) -> IndicatorReport {
    let mut report = IndicatorReport::new(label);
    let has_sim = events.iter().any(|e| e.source == Source::Sim);
    let has_node = events.iter().any(|e| {
        matches!(
            e.source,
            Source::Ndp | Source::Nvm | Source::Remote | Source::Faults
        )
    });
    let has_spans = events
        .iter()
        .any(|e| matches!(e.kind, EventKind::SpanOpen { .. }));
    if has_sim {
        analyze_sim(&mut report, events);
    }
    if has_node {
        analyze_node(&mut report, events);
    }
    if has_spans {
        analyze_spans(&mut report, events);
    }
    report
}

fn analyze_sim(report: &mut IndicatorReport, events: &[Event]) {
    let mut wall = 0f64;
    let mut compute = 0f64;
    let mut ckpt_local = 0f64;
    let mut ckpt_io = 0f64;
    let mut restore_local = 0f64;
    let mut restore_io = 0f64;
    let mut drain = 0f64;
    let mut interrupted = 0u64;
    let mut failures = [0u64; 2];
    let mut recoveries = [0u64; 2];
    let mut compute_iv: Vec<(f64, f64)> = Vec::new();
    let mut drain_iv: Vec<(f64, f64)> = Vec::new();
    for e in events {
        if e.source != Source::Sim {
            continue;
        }
        wall = wall.max(e.t);
        match e.kind {
            EventKind::Span {
                lane,
                span,
                t0,
                t1,
                interrupted: intr,
            } => {
                wall = wall.max(t1);
                let dt = t1 - t0;
                if intr {
                    interrupted += 1;
                }
                match (lane, span) {
                    ("host", "compute") => {
                        compute += dt;
                        compute_iv.push((t0, t1));
                    }
                    ("host", "ckpt_local") => ckpt_local += dt,
                    ("host", "ckpt_io") => ckpt_io += dt,
                    ("host", "restore_local") => restore_local += dt,
                    ("host", "restore_io") => restore_io += dt,
                    ("ndp", "drain") => {
                        drain += dt;
                        drain_iv.push((t0, t1));
                    }
                    _ => {}
                }
            }
            EventKind::Failure { level } => {
                failures[(level.clamp(1, 2) - 1) as usize] += 1;
            }
            EventKind::Recovery { level } => {
                recoveries[(level.clamp(1, 2) - 1) as usize] += 1;
            }
            _ => {}
        }
    }
    let overlap = interval_overlap(&mut compute_iv, &mut drain_iv);
    let frac = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    report.set("wall_time_s", wall);
    report.set("host_compute_s", compute);
    report.set("ckpt_local_s", ckpt_local);
    report.set("ckpt_io_s", ckpt_io);
    report.set("restore_local_s", restore_local);
    report.set("restore_io_s", restore_io);
    report.set("ndp_drain_s", drain);
    report.set("ndp_utilization", frac(drain, wall));
    report.set("overlap_s", overlap);
    report.set("overlap_fraction", frac(overlap, drain));
    report.set("spans_interrupted", interrupted as f64);
    report.set("failures", (failures[0] + failures[1]) as f64);
    report.set("failures_l2", failures[1] as f64);
    report.set("recoveries_l1", recoveries[0] as f64);
    report.set("recoveries_l2", recoveries[1] as f64);
    // Per-level recovery-time breakdown: restore time at each level,
    // total and mean per completed recovery.
    report.set("recovery_time_l1_s", restore_local);
    report.set("recovery_time_l2_s", restore_io);
    report.set(
        "recovery_mean_l1_s",
        frac(restore_local, recoveries[0] as f64),
    );
    report.set(
        "recovery_mean_l2_s",
        frac(restore_io, recoveries[1] as f64),
    );
}

/// Total overlap between two interval sets (sorted in place; a
/// two-pointer sweep after sorting, so emission order does not matter).
fn interval_overlap(a: &mut [(f64, f64)], b: &mut [(f64, f64)]) -> f64 {
    a.sort_by(|x, y| x.0.total_cmp(&y.0));
    b.sort_by(|x, y| x.0.total_cmp(&y.0));
    let (mut i, mut j, mut total) = (0usize, 0usize, 0f64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn analyze_node(report: &mut IndicatorReport, events: &[Event]) {
    let mut steps = 0f64;
    let mut started = 0u64;
    let mut completed = 0u64;
    let mut bytes_in = 0u64;
    let mut bytes_out = 0u64;
    let mut spills = 0u64;
    let mut spill_bytes = 0u64;
    let mut retries = 0u64;
    let mut degrades = 0u64;
    let mut cancels = 0u64;
    let mut stalls_nic = 0u64;
    let mut stalls_spill = 0u64;
    let mut pauses = 0u64;
    let mut pause_steps = 0f64;
    let mut pause_open: Option<f64> = None;
    let mut lock_contention = 0u64;
    let mut evictions = 0u64;
    let mut eviction_bytes = 0u64;
    let mut sealed = 0u64;
    let mut aborted = 0u64;
    let mut faults = 0u64;
    for e in events {
        if e.source == Source::Ndp {
            steps = steps.max(e.t);
        }
        match e.kind {
            EventKind::DrainStart { bytes, .. } => {
                started += 1;
                bytes_in += bytes;
            }
            EventKind::DrainComplete { bytes_out: b, .. } => {
                completed += 1;
                bytes_out += b;
            }
            EventKind::DrainSpill { bytes } => {
                spills += 1;
                spill_bytes += bytes;
            }
            EventKind::DrainRetry { .. } => retries += 1,
            EventKind::DrainDegrade { .. } => degrades += 1,
            EventKind::DrainCancel { .. } => cancels += 1,
            EventKind::DrainStall { cause } => match cause {
                "spill_full" => stalls_spill += 1,
                _ => stalls_nic += 1,
            },
            EventKind::DrainPause => {
                pauses += 1;
                pause_open.get_or_insert(e.t);
            }
            EventKind::DrainResume => {
                if let Some(t0) = pause_open.take() {
                    pause_steps += (e.t - t0).max(0.0);
                }
            }
            EventKind::LockContention => lock_contention += 1,
            EventKind::Eviction { bytes } => {
                evictions += 1;
                eviction_bytes += bytes;
            }
            EventKind::ObjectSeal { .. } => sealed += 1,
            EventKind::ObjectAbort { .. } => aborted += 1,
            EventKind::Fault { .. } => faults += 1,
            _ => {}
        }
    }
    if let Some(t0) = pause_open {
        // Unclosed pause: charge it up to the step horizon.
        pause_steps += (steps - t0).max(0.0);
    }
    let frac = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    report.set("ndp_steps", steps);
    report.set("drain_jobs_started", started as f64);
    report.set("drain_jobs_completed", completed as f64);
    report.set("drain_bytes_in", bytes_in as f64);
    report.set("drain_bytes_out", bytes_out as f64);
    report.set("drain_spills", spills as f64);
    report.set("drain_spill_bytes", spill_bytes as f64);
    report.set("drain_retries", retries as f64);
    report.set("drain_degrades", degrades as f64);
    report.set("drain_cancels", cancels as f64);
    // Stall attribution: NIC backpressure vs spill-region exhaustion,
    // with NVM allocation lock contention counted on its own axis.
    report.set("drain_stalls_nic", stalls_nic as f64);
    report.set("drain_stalls_spill", stalls_spill as f64);
    report.set("drain_stall_nic_fraction", frac(stalls_nic as f64, steps));
    report.set("drain_pauses", pauses as f64);
    report.set("drain_pause_steps", pause_steps);
    report.set("lock_contention", lock_contention as f64);
    report.set("evictions", evictions as f64);
    report.set("eviction_bytes", eviction_bytes as f64);
    report.set("objects_sealed", sealed as f64);
    report.set("objects_aborted", aborted as f64);
    report.set("faults_injected", faults as f64);
}

fn analyze_spans(report: &mut IndicatorReport, events: &[Event]) {
    let mut opened = 0u64;
    let mut closed = 0u64;
    let mut depth: BTreeMap<u64, u64> = BTreeMap::new();
    let mut max_depth = 0u64;
    for e in events {
        match e.kind {
            EventKind::SpanOpen { id, parent, .. } => {
                opened += 1;
                let d = depth.get(&parent).copied().unwrap_or(0) + 1;
                depth.insert(id, d);
                max_depth = max_depth.max(d);
            }
            EventKind::SpanClose { .. } => closed += 1,
            _ => {}
        }
    }
    report.set("spans_opened", opened as f64);
    report.set("spans_closed", closed as f64);
    report.set("spans_unclosed", opened.saturating_sub(closed) as f64);
    report.set("span_max_depth", max_depth as f64);
}

// ---------------------------------------------------------------------
// Regression diffing (the `crx obs diff` gate)
// ---------------------------------------------------------------------

/// Flattens every numeric leaf of a parsed JSON document into
/// dotted-key → value form (`histograms.lat.buckets[0].le`), booleans
/// as 0/1. Strings and nulls carry no numeric information and are
/// skipped — which also drops `schema`/`label` headers.
pub fn flatten_numbers(doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    flatten_into(doc, String::new(), &mut out);
    out
}

fn flatten_into(v: &Value, prefix: String, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Num(n) => {
            out.insert(prefix, *n);
        }
        Value::Bool(b) => {
            out.insert(prefix, if *b { 1.0 } else { 0.0 });
        }
        Value::Obj(members) => {
            for (k, child) in members {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(child, key, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten_into(child, format!("{prefix}[{i}]"), out);
            }
        }
        Value::Null | Value::Str(_) => {}
    }
}

/// One key that moved beyond tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Flattened key.
    pub key: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Relative deviation `|current − base| / max(|base|, ε)`.
    pub rel: f64,
}

/// Outcome of comparing two flattened snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Keys beyond tolerance, in key order.
    pub regressions: Vec<DiffEntry>,
    /// Baseline keys absent from the current snapshot (always a
    /// failure: a vanished metric is a silent regression).
    pub missing: Vec<String>,
    /// Current keys absent from the baseline (informational).
    pub added: Vec<String>,
    /// Keys compared.
    pub compared: usize,
}

impl DiffReport {
    /// True when the current snapshot passes the gate.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares `current` against `base` key by key. A key regresses when
/// its relative deviation exceeds its tolerance — `per_key` overrides
/// (longest exact match wins: an entry keyed `"indicators.ndp_utilization"`
/// applies to that key only), else `default_tol`.
pub fn diff_flat(
    base: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    default_tol: f64,
    per_key: &BTreeMap<String, f64>,
) -> DiffReport {
    let mut report = DiffReport::default();
    for (k, &b) in base {
        let Some(&c) = current.get(k) else {
            report.missing.push(k.clone());
            continue;
        };
        report.compared += 1;
        let tol = per_key.get(k).copied().unwrap_or(default_tol);
        let rel = (c - b).abs() / b.abs().max(1e-9);
        if rel > tol {
            report.regressions.push(DiffEntry {
                key: k.clone(),
                base: b,
                current: c,
                rel,
            });
        }
    }
    for k in current.keys() {
        if !base.contains_key(k) {
            report.added.push(k.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Source;

    fn sim_span(
        lane: &'static str,
        span: &'static str,
        t0: f64,
        t1: f64,
    ) -> Event {
        Event {
            t: t0,
            source: Source::Sim,
            kind: EventKind::Span {
                lane,
                span,
                t0,
                t1,
                interrupted: false,
            },
        }
    }

    #[test]
    fn sim_indicators_fold_utilization_and_overlap() {
        let events = vec![
            sim_span("host", "compute", 0.0, 100.0),
            sim_span("ndp", "drain", 50.0, 150.0),
            sim_span("host", "restore_local", 150.0, 160.0),
            Event {
                t: 150.0,
                source: Source::Sim,
                kind: EventKind::Failure { level: 1 },
            },
            Event {
                t: 160.0,
                source: Source::Sim,
                kind: EventKind::Recovery { level: 1 },
            },
        ];
        let r = analyze("t", &events);
        assert_eq!(r.get("wall_time_s"), Some(160.0));
        assert_eq!(r.get("ndp_drain_s"), Some(100.0));
        assert_eq!(r.get("ndp_utilization"), Some(100.0 / 160.0));
        // Drain [50,150] ∩ compute [0,100] = [50,100] → 50 s, half the
        // drain time.
        assert_eq!(r.get("overlap_s"), Some(50.0));
        assert_eq!(r.get("overlap_fraction"), Some(0.5));
        assert_eq!(r.get("recoveries_l1"), Some(1.0));
        assert_eq!(r.get("recovery_mean_l1_s"), Some(10.0));
        // No node events → no node keys.
        assert_eq!(r.get("drain_jobs_started"), None);
    }

    #[test]
    fn node_indicators_split_stall_causes() {
        let ev = |t: f64, kind: EventKind| Event {
            t,
            source: Source::Ndp,
            kind,
        };
        let events = vec![
            ev(1.0, EventKind::DrainStart { job: 1, bytes: 100 }),
            ev(
                2.0,
                EventKind::DrainStall {
                    cause: "nic_backpressure",
                },
            ),
            ev(
                3.0,
                EventKind::DrainStall {
                    cause: "spill_full",
                },
            ),
            ev(4.0, EventKind::DrainPause),
            ev(6.0, EventKind::DrainResume),
            ev(
                8.0,
                EventKind::DrainComplete {
                    job: 1,
                    bytes_out: 60,
                },
            ),
            Event {
                t: 0.0,
                source: Source::Nvm,
                kind: EventKind::LockContention,
            },
        ];
        let r = analyze("n", &events);
        assert_eq!(r.get("ndp_steps"), Some(8.0));
        assert_eq!(r.get("drain_stalls_nic"), Some(1.0));
        assert_eq!(r.get("drain_stalls_spill"), Some(1.0));
        assert_eq!(r.get("drain_stall_nic_fraction"), Some(1.0 / 8.0));
        assert_eq!(r.get("drain_pause_steps"), Some(2.0));
        assert_eq!(r.get("lock_contention"), Some(1.0));
        assert_eq!(r.get("drain_bytes_in"), Some(100.0));
        assert_eq!(r.get("drain_bytes_out"), Some(60.0));
    }

    #[test]
    fn span_indicators_track_depth_and_leaks() {
        let ev = |kind: EventKind| Event {
            t: 0.0,
            source: Source::Sim,
            kind,
        };
        let events = vec![
            ev(EventKind::SpanOpen {
                id: 1,
                parent: 0,
                name: "a",
            }),
            ev(EventKind::SpanOpen {
                id: 2,
                parent: 1,
                name: "b",
            }),
            ev(EventKind::SpanOpen {
                id: 3,
                parent: 2,
                name: "c",
            }),
            ev(EventKind::SpanClose { id: 3 }),
            ev(EventKind::SpanClose { id: 2 }),
        ];
        let r = analyze("s", &events);
        assert_eq!(r.get("spans_opened"), Some(3.0));
        assert_eq!(r.get("spans_closed"), Some(2.0));
        assert_eq!(r.get("spans_unclosed"), Some(1.0));
        assert_eq!(r.get("span_max_depth"), Some(3.0));
    }

    #[test]
    fn report_json_round_trips() {
        let mut r = IndicatorReport::new("node\"0");
        r.set("ndp_utilization", 0.75);
        r.set("weird", f64::NAN);
        r.set("drain_stalls_nic", 12.0);
        let text = r.to_json();
        assert_eq!(text, r.to_json(), "rendering is deterministic");
        let back = IndicatorReport::from_json(&text).unwrap();
        assert_eq!(back.label, "node\"0");
        assert_eq!(back.get("ndp_utilization"), Some(0.75));
        assert_eq!(back.get("drain_stalls_nic"), Some(12.0));
        // NaN rendered as null, skipped on re-read.
        assert_eq!(back.get("weird"), None);
    }

    #[test]
    fn merge_percentiles_is_order_independent() {
        let mk = |u: f64| {
            let mut r = IndicatorReport::new("n");
            r.set("ndp_utilization", u);
            r
        };
        let nodes = vec![mk(0.5), mk(0.9), mk(0.7)];
        let rev: Vec<_> = nodes.iter().rev().cloned().collect();
        let a = merge_percentiles("m", &nodes);
        let b = merge_percentiles("m", &rev);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.get("nodes"), Some(3.0));
        assert_eq!(a.get("ndp_utilization_p50"), Some(0.7));
        assert_eq!(a.get("ndp_utilization_p10"), Some(0.5));
        assert_eq!(a.get("ndp_utilization_p90"), Some(0.9));
        let mean = a.get("ndp_utilization_mean").unwrap();
        assert!((mean - 0.7).abs() < 1e-12);
    }

    #[test]
    fn diff_catches_a_ten_percent_utilization_regression() {
        let mut base = IndicatorReport::new("base");
        base.set("ndp_utilization", 0.80);
        base.set("wall_time_s", 1000.0);
        let mut cur = IndicatorReport::new("cur");
        cur.set("ndp_utilization", 0.72); // −10%
        cur.set("wall_time_s", 1000.0);
        let b = flatten_numbers(&json::parse(&base.to_json()).unwrap());
        let c = flatten_numbers(&json::parse(&cur.to_json()).unwrap());
        let d = diff_flat(&b, &c, 0.05, &BTreeMap::new());
        assert!(!d.ok());
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].key, "indicators.ndp_utilization");
        assert!((d.regressions[0].rel - 0.10).abs() < 1e-9);
        // Identical snapshots pass.
        let d2 = diff_flat(&b, &b.clone(), 0.05, &BTreeMap::new());
        assert!(d2.ok());
        assert_eq!(d2.compared, 2);
    }

    #[test]
    fn diff_flags_missing_keys_and_honors_overrides() {
        let mut base = BTreeMap::new();
        base.insert("a".to_string(), 1.0);
        base.insert("b".to_string(), 10.0);
        let mut cur = BTreeMap::new();
        cur.insert("b".to_string(), 13.0); // +30%
        cur.insert("c".to_string(), 5.0);
        let d = diff_flat(&base, &cur, 0.05, &BTreeMap::new());
        assert_eq!(d.missing, vec!["a"]);
        assert_eq!(d.added, vec!["c"]);
        assert_eq!(d.regressions.len(), 1);
        // Per-key tolerance loosens the gate for a noisy key.
        let mut tol = BTreeMap::new();
        tol.insert("b".to_string(), 0.5);
        let d2 = diff_flat(&base, &cur, 0.05, &tol);
        assert!(d2.regressions.is_empty());
        assert!(!d2.ok(), "missing key still fails");
    }

    #[test]
    fn flatten_handles_nested_docs() {
        let doc = json::parse(
            "{\"schema\":\"x\",\"a\":{\"b\":[{\"c\":1},{\"c\":2}]},\"d\":true}",
        )
        .unwrap();
        let flat = flatten_numbers(&doc);
        assert_eq!(flat.get("a.b[0].c"), Some(&1.0));
        assert_eq!(flat.get("a.b[1].c"), Some(&2.0));
        assert_eq!(flat.get("d"), Some(&1.0));
        assert!(!flat.contains_key("schema"));
    }
}
