//! Causal spans: deterministic span IDs with parent/child links, so an
//! event stream forms a span *graph* instead of flat marks.
//!
//! Producers open a span with [`crate::Bus::span`] (scoped: subsequent
//! spans opened on the same bus become children) or
//! [`crate::Bus::span_leaf`] (a leaf: it is parented under the current
//! scope but cannot itself acquire children — the right shape for
//! overlapping activities such as concurrent drain jobs, which are
//! siblings, not ancestors of one another). Both return a
//! [`SpanGuard`]; closing the guard emits the matching
//! [`crate::EventKind::SpanClose`].
//!
//! IDs are allocated from a per-bus counter starting at 1 (`0` means
//! "no parent" / "disabled"), so the same sequence of opens on the same
//! seed yields the same graph — the IDs are part of the deterministic
//! event stream, not wall-clock artifacts.

use crate::{Bus, Event, EventKind, Source};

/// Span bookkeeping shared by all clones of a [`Bus`]: the next ID and
/// the stack of currently-open *scoped* spans.
#[derive(Debug, Default)]
pub(crate) struct SpanState {
    next_id: u64,
    stack: Vec<u64>,
}

impl SpanState {
    /// Allocates an ID parented under the current scope and pushes it
    /// (scoped open).
    pub(crate) fn open_scoped(&mut self) -> (u64, u64) {
        let (id, parent) = self.open_leaf();
        self.stack.push(id);
        (id, parent)
    }

    /// Allocates an ID parented under the current scope without
    /// entering the scope stack (leaf open).
    pub(crate) fn open_leaf(&mut self) -> (u64, u64) {
        self.next_id += 1;
        let id = self.next_id;
        let parent = self.stack.last().copied().unwrap_or(0);
        (id, parent)
    }

    /// Removes `id` from the scope stack (no-op for leaf spans). Spans
    /// closed out of order are removed from the middle, so a straggling
    /// close can never corrupt an unrelated scope.
    pub(crate) fn close(&mut self, id: u64) {
        if let Some(pos) = self.stack.iter().rposition(|&s| s == id) {
            self.stack.remove(pos);
        }
    }
}

/// An open causal span. Close it explicitly with [`SpanGuard::close`]
/// at the producer's clock; a guard dropped while still open closes
/// itself at its opening timestamp (a zero-length span — visible in
/// the stream, never a leak).
///
/// Guards from a disabled bus carry ID `0` and do nothing.
#[derive(Debug)]
pub struct SpanGuard {
    bus: Bus,
    source: Source,
    id: u64,
    t_open: f64,
}

impl SpanGuard {
    pub(crate) fn noop() -> Self {
        SpanGuard {
            bus: Bus::disabled(),
            source: Source::Sim,
            id: 0,
            t_open: 0.0,
        }
    }

    pub(crate) fn open(
        bus: &Bus,
        source: Source,
        name: &'static str,
        t: f64,
        leaf: bool,
    ) -> Self {
        let Some(inner) = bus.inner() else {
            return SpanGuard::noop();
        };
        let (id, parent) = {
            let mut spans = inner.spans.lock().unwrap();
            if leaf {
                spans.open_leaf()
            } else {
                spans.open_scoped()
            }
        };
        bus.emit(Event {
            t,
            source,
            kind: EventKind::SpanOpen { id, parent, name },
        });
        SpanGuard {
            bus: bus.clone(),
            source,
            id,
            t_open: t,
        }
    }

    /// The span's ID (`0` for a guard from a disabled bus).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Closes the span at time `t`, emitting the
    /// [`EventKind::SpanClose`]. Idempotent: only the first close
    /// emits.
    pub fn close(&mut self, t: f64) {
        if self.id == 0 {
            return;
        }
        if let Some(inner) = self.bus.inner() {
            inner.spans.lock().unwrap().close(self.id);
        }
        self.bus.emit(Event {
            t,
            source: self.source,
            kind: EventKind::SpanClose { id: self.id },
        });
        self.id = 0;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let t = self.t_open;
        self.close(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecSink;

    fn open_close_pairs(events: &[Event]) -> Vec<(u64, u64, &'static str)> {
        events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SpanOpen { id, parent, name } => {
                    Some((id, parent, name))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn scoped_spans_nest() {
        let bus = Bus::with_sink(VecSink::new());
        let mut outer = bus.span(Source::Sim, "outer", 0.0);
        let mut inner = bus.span(Source::Sim, "inner", 1.0);
        inner.close(2.0);
        outer.close(3.0);
        let events = bus.drain();
        let opens = open_close_pairs(&events);
        assert_eq!(opens, vec![(1, 0, "outer"), (2, 1, "inner")]);
        // Closes in stream order, matching IDs.
        let closes: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SpanClose { id } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(closes, vec![2, 1]);
    }

    #[test]
    fn leaf_spans_do_not_become_parents() {
        let bus = Bus::with_sink(VecSink::new());
        let _outer = bus.span(Source::Sim, "outer", 0.0);
        let mut job_a = bus.span_leaf(Source::Ndp, "job", 1.0);
        let mut job_b = bus.span_leaf(Source::Ndp, "job", 2.0);
        job_a.close(5.0);
        job_b.close(6.0);
        drop(_outer);
        let events = bus.drain();
        let opens = open_close_pairs(&events);
        // Both jobs are siblings under "outer" — overlapping leaves
        // never parent each other.
        assert_eq!(opens, vec![(1, 0, "outer"), (2, 1, "job"), (3, 1, "job")]);
    }

    #[test]
    fn dropped_guard_closes_at_open_time() {
        let bus = Bus::with_sink(VecSink::new());
        {
            let _g = bus.span(Source::Sim, "leaky", 7.5);
        }
        let events = bus.drain();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1].kind, EventKind::SpanClose { id: 1 }));
        assert_eq!(events[1].t, 7.5);
    }

    #[test]
    fn close_is_idempotent() {
        let bus = Bus::with_sink(VecSink::new());
        let mut g = bus.span(Source::Sim, "once", 0.0);
        g.close(1.0);
        g.close(2.0);
        drop(g);
        assert_eq!(bus.drain().len(), 2);
    }

    #[test]
    fn disabled_bus_yields_noop_guards() {
        let bus = Bus::disabled();
        let mut g = bus.span(Source::Sim, "ghost", 0.0);
        assert_eq!(g.id(), 0);
        g.close(1.0);
        assert!(bus.drain().is_empty());
    }

    #[test]
    fn out_of_order_close_cannot_corrupt_the_scope() {
        let bus = Bus::with_sink(VecSink::new());
        let mut a = bus.span(Source::Sim, "a", 0.0);
        let mut b = bus.span(Source::Sim, "b", 1.0);
        // Close the *outer* first (out of order): the inner scope must
        // survive, and the next open parents under it.
        a.close(2.0);
        let c = bus.span(Source::Sim, "c", 3.0);
        b.close(4.0);
        let events = bus.drain();
        let opens = open_close_pairs(&events);
        assert_eq!(opens[2], (3, 2, "c"), "c parents under still-open b");
        drop(c);
    }

    #[test]
    fn ids_are_deterministic_per_bus() {
        let make = || {
            let bus = Bus::with_sink(VecSink::new());
            let mut x = bus.span(Source::Sim, "x", 0.0);
            let mut y = bus.span_leaf(Source::Ndp, "y", 1.0);
            y.close(2.0);
            x.close(3.0);
            let rendered: Vec<String> =
                bus.drain().iter().map(|e| e.json_line()).collect();
            rendered
        };
        assert_eq!(make(), make());
    }
}
