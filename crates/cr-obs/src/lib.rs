//! Deterministic observability plane for the checkpoint/restart stack.
//!
//! The paper's argument is about *where time goes* (the Fig. 3
//! timelines and the Figs. 4/7 overhead breakdowns), so the runtime
//! crates need a way to narrate what they are doing — failures, drain
//! stalls, NIC backpressure, retries — without perturbing the thing
//! being observed. This crate provides three small, dependency-free
//! pieces:
//!
//! 1. A structured **event bus** ([`Bus`]): producers emit [`Event`]s
//!    into a pluggable [`EventSink`] ([`VecSink`], bounded
//!    [`RingSink`], or eagerly-rendering [`JsonLinesSink`]). A
//!    disabled bus is the default and costs one branch per emission
//!    site; event construction is wrapped in a closure
//!    ([`Bus::emit_with`]) so a disabled bus never allocates.
//! 2. A **metrics registry** ([`metrics::Metrics`]): counters, gauges
//!    and log2-bucketed histograms, snapshotted to the `metrics/v1`
//!    JSON schema.
//! 3. A **stage profiler** ([`stage`]): global, lock-free
//!    tokenize/entropy/frame/ship timers the hot path can feed from
//!    any worker thread, off by default.
//!
//! Everything here is observational: emitting an event never draws
//! randomness, never changes control flow, and never feeds back into
//! the simulation or the drain engine, so enabled and disabled runs of
//! the same seed are bit-identical (a property the workspace tests
//! enforce).

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

pub mod analyze;
pub mod export;
pub mod json;
pub mod metrics;
pub mod span;
pub mod stage;
pub mod units;

pub use span::SpanGuard;

/// Where an [`Event`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The discrete-event simulator (`cr-sim::engine`).
    Sim,
    /// The NDP drain engine (`cr-node::ndp`).
    Ndp,
    /// The NVM store (`cr-node::nvm`).
    Nvm,
    /// The remote I/O node (`cr-node::remote`).
    Remote,
    /// The fault-injection plane (`cr-node::faults`).
    Faults,
    /// A compression codec (`cr-compress`).
    Codec,
    /// A bench harness or CLI driver.
    Bench,
}

impl Source {
    /// Stable lower-case name used in the JSON rendering.
    pub fn name(self) -> &'static str {
        match self {
            Source::Sim => "sim",
            Source::Ndp => "ndp",
            Source::Nvm => "nvm",
            Source::Remote => "remote",
            Source::Faults => "faults",
            Source::Codec => "codec",
            Source::Bench => "bench",
        }
    }
}

/// What happened. The taxonomy is closed on purpose: every producer in
/// the workspace emits one of these, so sinks and renderers can be
/// exhaustive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A simulator phase span on a timeline lane (Fig. 3 material).
    /// `lane` is `"host"` or `"ndp"`; `span` is one of `"compute"`,
    /// `"ckpt_local"`, `"ckpt_io"`, `"restore_local"`,
    /// `"restore_io"`, `"drain"`.
    Span {
        /// Timeline lane (`"host"` or `"ndp"`).
        lane: &'static str,
        /// Span kind name.
        span: &'static str,
        /// Span start (sim seconds).
        t0: f64,
        /// Span end (sim seconds).
        t1: f64,
        /// True if a failure cut the span short.
        interrupted: bool,
    },
    /// A point-in-time simulator mark (`"failure"`, `"io_durable"`).
    Mark {
        /// Mark kind name.
        mark: &'static str,
    },
    /// A failure fired in the simulator; `level` is the deepest
    /// checkpoint level the failure destroyed (1-based).
    Failure {
        /// Failure severity level.
        level: u32,
    },
    /// The simulator restored from checkpoint `level` after a failure.
    Recovery {
        /// Recovery level chosen (1-based).
        level: u32,
    },
    /// A drain job entered the NDP queue.
    DrainStart {
        /// Job (slot) id.
        job: u64,
        /// Raw bytes to drain.
        bytes: u64,
    },
    /// The drain engine was paused (host checkpoint in progress).
    DrainPause,
    /// The drain engine resumed.
    DrainResume,
    /// A compressed frame spilled to the side queue on NIC
    /// backpressure.
    DrainSpill {
        /// Spilled frame bytes.
        bytes: u64,
    },
    /// A transient fault triggered a bounded retry with backoff.
    DrainRetry {
        /// Fault site name (stable, from the fault plane taxonomy).
        site: &'static str,
        /// Attempt number (1-based).
        attempt: u32,
        /// Backoff before the retry, in drain steps.
        backoff_steps: u64,
    },
    /// The codec was degraded (e.g. to uncompressed frames) after
    /// repeated codec faults.
    DrainDegrade {
        /// Job (slot) id being degraded.
        job: u64,
    },
    /// A drain job was cancelled and its partial output discarded.
    DrainCancel {
        /// Job (slot) id cancelled.
        job: u64,
    },
    /// A drain job finished: the remote object is sealed.
    DrainComplete {
        /// Job (slot) id completed.
        job: u64,
        /// Compressed bytes shipped.
        bytes_out: u64,
    },
    /// The NVM store evicted a slot to make room.
    Eviction {
        /// Bytes freed by the eviction.
        bytes: u64,
    },
    /// An allocation failed because every slot was locked.
    LockContention,
    /// A remote object upload began.
    ObjectBegin {
        /// Remote object checkpoint id.
        key: u64,
    },
    /// A remote object was sealed (complete and CRC-stamped).
    ObjectSeal {
        /// Remote object checkpoint id.
        key: u64,
        /// Sealed payload bytes.
        bytes: u64,
    },
    /// A partial remote object was aborted and discarded.
    ObjectAbort {
        /// Remote object checkpoint id.
        key: u64,
    },
    /// A fault-plane site fired.
    Fault {
        /// Fault site name (stable).
        site: &'static str,
        /// Fault-plane step counter at the firing.
        step: u64,
    },
    /// A causal span opened (see [`span::SpanGuard`]). `parent` is the
    /// ID of the enclosing open span, `0` at the root.
    SpanOpen {
        /// Span ID (per-bus, dense from 1).
        id: u64,
        /// Enclosing span ID (`0` = root).
        parent: u64,
        /// Stable span name.
        name: &'static str,
    },
    /// A causal span closed.
    SpanClose {
        /// Span ID from the matching [`EventKind::SpanOpen`].
        id: u64,
    },
    /// The drain engine could not make progress this step.
    DrainStall {
        /// Stall cause: `"nic_backpressure"` (NIC full under the
        /// `Pause` policy) or `"spill_full"` (NVM compressed region
        /// exhausted).
        cause: &'static str,
    },
}

impl EventKind {
    /// Stable snake_case name of the event kind (used as the JSON
    /// `kind` field and as a metrics counter key).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Span { .. } => "span",
            EventKind::Mark { .. } => "mark",
            EventKind::Failure { .. } => "failure",
            EventKind::Recovery { .. } => "recovery",
            EventKind::DrainStart { .. } => "drain_start",
            EventKind::DrainPause => "drain_pause",
            EventKind::DrainResume => "drain_resume",
            EventKind::DrainSpill { .. } => "drain_spill",
            EventKind::DrainRetry { .. } => "drain_retry",
            EventKind::DrainDegrade { .. } => "drain_degrade",
            EventKind::DrainCancel { .. } => "drain_cancel",
            EventKind::DrainComplete { .. } => "drain_complete",
            EventKind::Eviction { .. } => "eviction",
            EventKind::LockContention => "lock_contention",
            EventKind::ObjectBegin { .. } => "object_begin",
            EventKind::ObjectSeal { .. } => "object_seal",
            EventKind::ObjectAbort { .. } => "object_abort",
            EventKind::Fault { .. } => "fault",
            EventKind::SpanOpen { .. } => "span_open",
            EventKind::SpanClose { .. } => "span_close",
            EventKind::DrainStall { .. } => "drain_stall",
        }
    }
}

/// One observability event.
///
/// `t` is the producer's native clock: simulated seconds for
/// `cr-sim`, drain steps for the NDP engine, the fault-plane step
/// counter for faults, and `0.0` for unclocked components (NVM,
/// remote). Sinks preserve emission order, which is the authoritative
/// interleaving; `t` is for rendering, not ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Producer-native timestamp (see type docs).
    pub t: f64,
    /// Producing subsystem.
    pub source: Source,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one line of JSON (no trailing newline).
    /// Field order is fixed, so same event stream ⇒ same bytes.
    pub fn json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t\":");
        push_f64(&mut s, self.t);
        s.push_str(",\"source\":\"");
        s.push_str(self.source.name());
        s.push_str("\",\"kind\":\"");
        s.push_str(self.kind.name());
        s.push('"');
        match &self.kind {
            EventKind::Span {
                lane,
                span,
                t0,
                t1,
                interrupted,
            } => {
                push_str_field(&mut s, "lane", lane);
                push_str_field(&mut s, "span", span);
                s.push_str(",\"t0\":");
                push_f64(&mut s, *t0);
                s.push_str(",\"t1\":");
                push_f64(&mut s, *t1);
                s.push_str(",\"interrupted\":");
                s.push_str(if *interrupted { "true" } else { "false" });
            }
            EventKind::Mark { mark } => {
                push_str_field(&mut s, "mark", mark);
            }
            EventKind::Failure { level } | EventKind::Recovery { level } => {
                s.push_str(",\"level\":");
                s.push_str(&level.to_string());
            }
            EventKind::DrainStart { job, bytes } => {
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "bytes", *bytes);
            }
            EventKind::DrainPause
            | EventKind::DrainResume
            | EventKind::LockContention => {}
            EventKind::DrainSpill { bytes } | EventKind::Eviction { bytes } => {
                push_u64(&mut s, "bytes", *bytes);
            }
            EventKind::DrainRetry {
                site,
                attempt,
                backoff_steps,
            } => {
                push_str_field(&mut s, "site", site);
                push_u64(&mut s, "attempt", *attempt as u64);
                push_u64(&mut s, "backoff_steps", *backoff_steps);
            }
            EventKind::DrainDegrade { job } | EventKind::DrainCancel { job } => {
                push_u64(&mut s, "job", *job);
            }
            EventKind::DrainComplete { job, bytes_out } => {
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "bytes_out", *bytes_out);
            }
            EventKind::ObjectBegin { key } | EventKind::ObjectAbort { key } => {
                push_u64(&mut s, "key", *key);
            }
            EventKind::ObjectSeal { key, bytes } => {
                push_u64(&mut s, "key", *key);
                push_u64(&mut s, "bytes", *bytes);
            }
            EventKind::Fault { site, step } => {
                push_str_field(&mut s, "site", site);
                push_u64(&mut s, "step", *step);
            }
            EventKind::SpanOpen { id, parent, name } => {
                push_u64(&mut s, "id", *id);
                push_u64(&mut s, "parent", *parent);
                push_str_field(&mut s, "name", name);
            }
            EventKind::SpanClose { id } => {
                push_u64(&mut s, "id", *id);
            }
            EventKind::DrainStall { cause } => {
                push_str_field(&mut s, "cause", cause);
            }
        }
        s.push('}');
        s
    }
}

fn push_u64(s: &mut String, key: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

/// Appends `,"key":"value"` with the value JSON-escaped — string
/// payloads (span/mark/site names) must never break the JSON-lines
/// stream, whatever characters they carry.
fn push_str_field(s: &mut String, key: &str, value: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":\"");
    json::escape_into(s, value);
    s.push('"');
}

/// Appends a JSON-safe rendering of `v`: Rust's shortest-roundtrip
/// formatting for finite values, `null` otherwise (JSON has no
/// infinities).
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        s.push_str(&format!("{v}"));
    } else {
        s.push_str("null");
    }
}

/// A destination for events. Sinks are driven under the bus's mutex,
/// so implementations need no interior synchronization.
pub trait EventSink: Send {
    /// Record one event.
    fn record(&mut self, ev: &Event);
    /// Take back whatever events the sink retained, clearing it.
    /// Sinks that render eagerly (e.g. [`JsonLinesSink`]) return an
    /// empty vector.
    fn drain(&mut self) -> Vec<Event>;
    /// Render the sink's retained content as JSON lines (one event
    /// per line). Does not clear the sink.
    fn render(&self) -> String;
    /// Events this sink discarded (bounded sinks overwrite under
    /// pressure). `0` for lossless sinks.
    fn dropped(&self) -> u64 {
        0
    }
}

/// An unbounded sink retaining every event, in order.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty sink with pre-reserved capacity — fleet runners size
    /// replicas' sinks from the previous replica's event count so the
    /// hot path stops paying growth reallocations.
    pub fn with_capacity(cap: usize) -> Self {
        VecSink {
            events: Vec::with_capacity(cap),
        }
    }
}

impl EventSink for VecSink {
    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }

    fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    fn render(&self) -> String {
        render_lines(self.events.iter())
    }
}

/// A bounded ring sink keeping the most recent `cap` events — the
/// flight-recorder shape: always on, bounded memory, drained after the
/// interesting thing happened.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<Event>,
    /// Total events ever recorded (including overwritten ones).
    seen: u64,
    /// Events overwritten (lost) because the ring was full.
    dropped: u64,
}

impl RingSink {
    /// New ring keeping at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "ring capacity must be at least 1");
        RingSink {
            cap,
            buf: VecDeque::with_capacity(cap),
            seen: 0,
            dropped: 0,
        }
    }

    /// Total events recorded over the sink's lifetime, including those
    /// already overwritten.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events lost to overwriting — the ring's flight-recorder shape
    /// means the *oldest* events go first; a nonzero count tells a
    /// consumer the retained window is not the whole story.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl EventSink for RingSink {
    fn record(&mut self, ev: &Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
        self.seen += 1;
    }

    fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }

    fn render(&self) -> String {
        render_lines(self.buf.iter())
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A sink that renders each event to a JSON line eagerly and keeps
/// only the text — the shape you want when the events are headed for
/// a file and need not be queried.
#[derive(Debug, Default)]
pub struct JsonLinesSink {
    lines: String,
    count: u64,
}

impl JsonLinesSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events rendered.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl EventSink for JsonLinesSink {
    fn record(&mut self, ev: &Event) {
        self.lines.push_str(&ev.json_line());
        self.lines.push('\n');
        self.count += 1;
    }

    fn drain(&mut self) -> Vec<Event> {
        Vec::new()
    }

    fn render(&self) -> String {
        self.lines.clone()
    }
}

fn render_lines<'a>(events: impl Iterator<Item = &'a Event>) -> String {
    let mut s = String::new();
    for ev in events {
        s.push_str(&ev.json_line());
        s.push('\n');
    }
    s
}

/// The event bus handed to producers.
///
/// A `Bus` is a cheap clone-able handle: clones share the same sink,
/// so one sink can collect a unified, ordered stream from every
/// subsystem of a node (NVM, drain engine, remote, faults). The
/// default bus is *disabled* — `emit_with` is one `Option` check and
/// the event closure never runs — which is what keeps instrumented
/// and uninstrumented runs bit-identical and nearly free.
#[derive(Clone, Default)]
pub struct Bus {
    inner: Option<Arc<BusInner>>,
}

/// State shared by all clones of one bus: the sink and the causal-span
/// bookkeeping. The two locks are disjoint and never held together
/// (span IDs are allocated before the open event is recorded).
struct BusInner {
    sink: Mutex<Box<dyn EventSink>>,
    spans: Mutex<span::SpanState>,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Bus(enabled)"
        } else {
            "Bus(disabled)"
        })
    }
}

impl Bus {
    /// The disabled bus: emissions are a branch and nothing more.
    pub fn disabled() -> Self {
        Bus { inner: None }
    }

    /// A bus writing into `sink`.
    pub fn with_sink(sink: impl EventSink + 'static) -> Self {
        Bus {
            inner: Some(Arc::new(BusInner {
                sink: Mutex::new(Box::new(sink)),
                spans: Mutex::new(span::SpanState::default()),
            })),
        }
    }

    pub(crate) fn inner(&self) -> Option<&Arc<BusInner>> {
        self.inner.as_ref()
    }

    /// True if a sink is attached.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits an already-built event.
    pub fn emit(&self, ev: Event) {
        if let Some(inner) = &self.inner {
            inner.sink.lock().unwrap().record(&ev);
        }
    }

    /// Emits the event produced by `f`, but only if the bus is
    /// enabled — the closure (and any allocation inside it) is never
    /// evaluated on a disabled bus. This is the form every hot-path
    /// producer uses.
    pub fn emit_with(&self, f: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            inner.sink.lock().unwrap().record(&f());
        }
    }

    /// Opens a *scoped* causal span: spans opened on this bus before
    /// the guard closes become its children. Returns a no-op guard on
    /// a disabled bus.
    pub fn span(
        &self,
        source: Source,
        name: &'static str,
        t: f64,
    ) -> SpanGuard {
        SpanGuard::open(self, source, name, t, false)
    }

    /// Opens a *leaf* causal span: parented under the current scope but
    /// never itself a parent — the right shape for overlapping
    /// activities (concurrent drain jobs are siblings, not nested).
    pub fn span_leaf(
        &self,
        source: Source,
        name: &'static str,
        t: f64,
    ) -> SpanGuard {
        SpanGuard::open(self, source, name, t, true)
    }

    /// Drains retained events out of the sink (empty for a disabled
    /// bus or an eagerly-rendering sink).
    pub fn drain(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.sink.lock().unwrap().drain(),
            None => Vec::new(),
        }
    }

    /// Renders the sink's retained content as JSON lines (empty for a
    /// disabled bus).
    pub fn render(&self) -> String {
        match &self.inner {
            Some(inner) => inner.sink.lock().unwrap().render(),
            None => String::new(),
        }
    }

    /// Events the sink discarded under pressure (`0` for lossless
    /// sinks or a disabled bus).
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.sink.lock().unwrap().dropped(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: EventKind) -> Event {
        Event {
            t,
            source: Source::Ndp,
            kind,
        }
    }

    #[test]
    fn disabled_bus_never_runs_the_closure() {
        let bus = Bus::disabled();
        let mut ran = false;
        bus.emit_with(|| {
            ran = true;
            ev(0.0, EventKind::DrainPause)
        });
        assert!(!ran);
        assert!(!bus.enabled());
        assert!(bus.drain().is_empty());
        assert!(bus.render().is_empty());
    }

    #[test]
    fn clones_share_one_sink_in_emission_order() {
        let bus = Bus::with_sink(VecSink::new());
        let clone = bus.clone();
        bus.emit(ev(1.0, EventKind::DrainStart { job: 1, bytes: 10 }));
        clone.emit(ev(2.0, EventKind::DrainComplete { job: 1, bytes_out: 4 }));
        bus.emit(ev(3.0, EventKind::DrainPause));
        let got = bus.drain();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].kind.name(), "drain_start");
        assert_eq!(got[1].kind.name(), "drain_complete");
        assert_eq!(got[2].kind.name(), "drain_pause");
        // Drained: a second drain is empty, even through the clone.
        assert!(clone.drain().is_empty());
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_events() {
        let mut ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.record(&ev(i as f64, EventKind::Eviction { bytes: i }));
        }
        assert_eq!(ring.seen(), 5);
        assert_eq!(ring.dropped(), 3);
        let got = ring.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].kind, EventKind::Eviction { bytes: 3 });
        assert_eq!(got[1].kind, EventKind::Eviction { bytes: 4 });
        // Draining empties the window but the loss record stays.
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn bus_surfaces_ring_drop_counts() {
        let bus = Bus::with_sink(RingSink::new(1));
        assert_eq!(bus.dropped(), 0);
        bus.emit(ev(0.0, EventKind::DrainPause));
        bus.emit(ev(1.0, EventKind::DrainResume));
        bus.emit(ev(2.0, EventKind::LockContention));
        assert_eq!(bus.dropped(), 2);
        // Lossless sinks report zero.
        let vec_bus = Bus::with_sink(VecSink::new());
        vec_bus.emit(ev(0.0, EventKind::DrainPause));
        assert_eq!(vec_bus.dropped(), 0);
        assert_eq!(Bus::disabled().dropped(), 0);
    }

    #[test]
    fn hostile_names_round_trip_through_json() {
        // String payloads can carry quotes, backslashes and control
        // characters; every rendered line must stay one valid JSON
        // document that parses back to the original payload.
        let hostile: &'static str = "we\"ird\\lane\nname\t\u{1}";
        let cases = vec![
            EventKind::Span {
                lane: hostile,
                span: hostile,
                t0: 0.0,
                t1: 1.0,
                interrupted: true,
            },
            EventKind::Mark { mark: hostile },
            EventKind::DrainRetry {
                site: hostile,
                attempt: 1,
                backoff_steps: 2,
            },
            EventKind::Fault {
                site: hostile,
                step: 3,
            },
            EventKind::SpanOpen {
                id: 1,
                parent: 0,
                name: hostile,
            },
            EventKind::DrainStall { cause: hostile },
        ];
        for kind in cases {
            let line = ev(1.5, kind).json_line();
            let doc = json::parse(&line)
                .unwrap_or_else(|e| panic!("invalid JSON {line}: {e}"));
            // Whichever field carries the hostile payload must decode
            // back to the original string.
            let fields = ["lane", "span", "mark", "site", "name", "cause"];
            let decoded = fields
                .iter()
                .filter_map(|f| doc.get(f).and_then(|v| v.as_str()))
                .find(|s| *s == hostile);
            assert!(decoded.is_some(), "payload lost in {line}");
        }
    }

    #[test]
    fn span_events_render_ids_and_parents() {
        let line = ev(
            2.0,
            EventKind::SpanOpen {
                id: 7,
                parent: 3,
                name: "recovery",
            },
        )
        .json_line();
        assert!(line.contains("\"id\":7"));
        assert!(line.contains("\"parent\":3"));
        assert!(line.contains("\"name\":\"recovery\""));
        let close = ev(3.0, EventKind::SpanClose { id: 7 }).json_line();
        assert!(close.contains("\"kind\":\"span_close\""));
        let stall = ev(
            4.0,
            EventKind::DrainStall {
                cause: "nic_backpressure",
            },
        )
        .json_line();
        assert!(stall.contains("\"cause\":\"nic_backpressure\""));
    }

    #[test]
    fn json_lines_are_deterministic_and_well_formed() {
        let e = ev(
            1.5,
            EventKind::DrainRetry {
                site: "nic_stall",
                attempt: 2,
                backoff_steps: 4,
            },
        );
        assert_eq!(
            e.json_line(),
            "{\"t\":1.5,\"source\":\"ndp\",\"kind\":\"drain_retry\",\
             \"site\":\"nic_stall\",\"attempt\":2,\"backoff_steps\":4}"
        );
        // Rendering twice gives identical bytes.
        assert_eq!(e.json_line(), e.json_line());
        // Non-finite timestamps degrade to null rather than invalid JSON.
        let bad = Event {
            t: f64::INFINITY,
            source: Source::Sim,
            kind: EventKind::Mark { mark: "failure" },
        };
        assert!(bad.json_line().starts_with("{\"t\":null,"));
    }

    #[test]
    fn json_sink_renders_eagerly_and_retains_nothing() {
        let bus = Bus::with_sink(JsonLinesSink::new());
        bus.emit(ev(0.0, EventKind::LockContention));
        bus.emit(ev(1.0, EventKind::DrainResume));
        let text = bus.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"kind\":\"lock_contention\""));
        assert!(bus.drain().is_empty());
    }

    #[test]
    fn every_kind_renders_its_payload_fields() {
        let kinds: Vec<(EventKind, &str)> = vec![
            (
                EventKind::Span {
                    lane: "host",
                    span: "compute",
                    t0: 0.0,
                    t1: 2.0,
                    interrupted: false,
                },
                "\"span\":\"compute\"",
            ),
            (EventKind::Mark { mark: "io_durable" }, "\"mark\":\"io_durable\""),
            (EventKind::Failure { level: 2 }, "\"level\":2"),
            (EventKind::Recovery { level: 1 }, "\"level\":1"),
            (EventKind::DrainSpill { bytes: 7 }, "\"bytes\":7"),
            (EventKind::DrainDegrade { job: 3 }, "\"job\":3"),
            (EventKind::DrainCancel { job: 4 }, "\"job\":4"),
            (EventKind::ObjectBegin { key: 9 }, "\"key\":9"),
            (EventKind::ObjectSeal { key: 9, bytes: 12 }, "\"bytes\":12"),
            (EventKind::ObjectAbort { key: 9 }, "\"key\":9"),
            (
                EventKind::Fault {
                    site: "nvm_torn_write",
                    step: 11,
                },
                "\"site\":\"nvm_torn_write\"",
            ),
        ];
        for (kind, needle) in kinds {
            let line = ev(0.0, kind).json_line();
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }
}
