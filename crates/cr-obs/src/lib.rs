//! Deterministic observability plane for the checkpoint/restart stack.
//!
//! The paper's argument is about *where time goes* (the Fig. 3
//! timelines and the Figs. 4/7 overhead breakdowns), so the runtime
//! crates need a way to narrate what they are doing — failures, drain
//! stalls, NIC backpressure, retries — without perturbing the thing
//! being observed. This crate provides three small, dependency-free
//! pieces:
//!
//! 1. A structured **event bus** ([`Bus`]): producers emit [`Event`]s
//!    into a pluggable [`EventSink`] ([`VecSink`], bounded
//!    [`RingSink`], or eagerly-rendering [`JsonLinesSink`]). A
//!    disabled bus is the default and costs one branch per emission
//!    site; event construction is wrapped in a closure
//!    ([`Bus::emit_with`]) so a disabled bus never allocates.
//! 2. A **metrics registry** ([`metrics::Metrics`]): counters, gauges
//!    and log2-bucketed histograms, snapshotted to the `metrics/v1`
//!    JSON schema.
//! 3. A **stage profiler** ([`stage`]): global, lock-free
//!    tokenize/entropy/frame/ship timers the hot path can feed from
//!    any worker thread, off by default.
//!
//! Everything here is observational: emitting an event never draws
//! randomness, never changes control flow, and never feeds back into
//! the simulation or the drain engine, so enabled and disabled runs of
//! the same seed are bit-identical (a property the workspace tests
//! enforce).

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

pub mod metrics;
pub mod stage;
pub mod units;

/// Where an [`Event`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The discrete-event simulator (`cr-sim::engine`).
    Sim,
    /// The NDP drain engine (`cr-node::ndp`).
    Ndp,
    /// The NVM store (`cr-node::nvm`).
    Nvm,
    /// The remote I/O node (`cr-node::remote`).
    Remote,
    /// The fault-injection plane (`cr-node::faults`).
    Faults,
    /// A bench harness or CLI driver.
    Bench,
}

impl Source {
    /// Stable lower-case name used in the JSON rendering.
    pub fn name(self) -> &'static str {
        match self {
            Source::Sim => "sim",
            Source::Ndp => "ndp",
            Source::Nvm => "nvm",
            Source::Remote => "remote",
            Source::Faults => "faults",
            Source::Bench => "bench",
        }
    }
}

/// What happened. The taxonomy is closed on purpose: every producer in
/// the workspace emits one of these, so sinks and renderers can be
/// exhaustive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A simulator phase span on a timeline lane (Fig. 3 material).
    /// `lane` is `"host"` or `"ndp"`; `span` is one of `"compute"`,
    /// `"ckpt_local"`, `"ckpt_io"`, `"restore_local"`,
    /// `"restore_io"`, `"drain"`.
    Span {
        /// Timeline lane (`"host"` or `"ndp"`).
        lane: &'static str,
        /// Span kind name.
        span: &'static str,
        /// Span start (sim seconds).
        t0: f64,
        /// Span end (sim seconds).
        t1: f64,
        /// True if a failure cut the span short.
        interrupted: bool,
    },
    /// A point-in-time simulator mark (`"failure"`, `"io_durable"`).
    Mark {
        /// Mark kind name.
        mark: &'static str,
    },
    /// A failure fired in the simulator; `level` is the deepest
    /// checkpoint level the failure destroyed (1-based).
    Failure {
        /// Failure severity level.
        level: u32,
    },
    /// The simulator restored from checkpoint `level` after a failure.
    Recovery {
        /// Recovery level chosen (1-based).
        level: u32,
    },
    /// A drain job entered the NDP queue.
    DrainStart {
        /// Job (slot) id.
        job: u64,
        /// Raw bytes to drain.
        bytes: u64,
    },
    /// The drain engine was paused (host checkpoint in progress).
    DrainPause,
    /// The drain engine resumed.
    DrainResume,
    /// A compressed frame spilled to the side queue on NIC
    /// backpressure.
    DrainSpill {
        /// Spilled frame bytes.
        bytes: u64,
    },
    /// A transient fault triggered a bounded retry with backoff.
    DrainRetry {
        /// Fault site name (stable, from the fault plane taxonomy).
        site: &'static str,
        /// Attempt number (1-based).
        attempt: u32,
        /// Backoff before the retry, in drain steps.
        backoff_steps: u64,
    },
    /// The codec was degraded (e.g. to uncompressed frames) after
    /// repeated codec faults.
    DrainDegrade {
        /// Job (slot) id being degraded.
        job: u64,
    },
    /// A drain job was cancelled and its partial output discarded.
    DrainCancel {
        /// Job (slot) id cancelled.
        job: u64,
    },
    /// A drain job finished: the remote object is sealed.
    DrainComplete {
        /// Job (slot) id completed.
        job: u64,
        /// Compressed bytes shipped.
        bytes_out: u64,
    },
    /// The NVM store evicted a slot to make room.
    Eviction {
        /// Bytes freed by the eviction.
        bytes: u64,
    },
    /// An allocation failed because every slot was locked.
    LockContention,
    /// A remote object upload began.
    ObjectBegin {
        /// Remote object checkpoint id.
        key: u64,
    },
    /// A remote object was sealed (complete and CRC-stamped).
    ObjectSeal {
        /// Remote object checkpoint id.
        key: u64,
        /// Sealed payload bytes.
        bytes: u64,
    },
    /// A partial remote object was aborted and discarded.
    ObjectAbort {
        /// Remote object checkpoint id.
        key: u64,
    },
    /// A fault-plane site fired.
    Fault {
        /// Fault site name (stable).
        site: &'static str,
        /// Fault-plane step counter at the firing.
        step: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the event kind (used as the JSON
    /// `kind` field and as a metrics counter key).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Span { .. } => "span",
            EventKind::Mark { .. } => "mark",
            EventKind::Failure { .. } => "failure",
            EventKind::Recovery { .. } => "recovery",
            EventKind::DrainStart { .. } => "drain_start",
            EventKind::DrainPause => "drain_pause",
            EventKind::DrainResume => "drain_resume",
            EventKind::DrainSpill { .. } => "drain_spill",
            EventKind::DrainRetry { .. } => "drain_retry",
            EventKind::DrainDegrade { .. } => "drain_degrade",
            EventKind::DrainCancel { .. } => "drain_cancel",
            EventKind::DrainComplete { .. } => "drain_complete",
            EventKind::Eviction { .. } => "eviction",
            EventKind::LockContention => "lock_contention",
            EventKind::ObjectBegin { .. } => "object_begin",
            EventKind::ObjectSeal { .. } => "object_seal",
            EventKind::ObjectAbort { .. } => "object_abort",
            EventKind::Fault { .. } => "fault",
        }
    }
}

/// One observability event.
///
/// `t` is the producer's native clock: simulated seconds for
/// `cr-sim`, drain steps for the NDP engine, the fault-plane step
/// counter for faults, and `0.0` for unclocked components (NVM,
/// remote). Sinks preserve emission order, which is the authoritative
/// interleaving; `t` is for rendering, not ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Producer-native timestamp (see type docs).
    pub t: f64,
    /// Producing subsystem.
    pub source: Source,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one line of JSON (no trailing newline).
    /// Field order is fixed, so same event stream ⇒ same bytes.
    pub fn json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t\":");
        push_f64(&mut s, self.t);
        s.push_str(",\"source\":\"");
        s.push_str(self.source.name());
        s.push_str("\",\"kind\":\"");
        s.push_str(self.kind.name());
        s.push('"');
        match &self.kind {
            EventKind::Span {
                lane,
                span,
                t0,
                t1,
                interrupted,
            } => {
                s.push_str(",\"lane\":\"");
                s.push_str(lane);
                s.push_str("\",\"span\":\"");
                s.push_str(span);
                s.push_str("\",\"t0\":");
                push_f64(&mut s, *t0);
                s.push_str(",\"t1\":");
                push_f64(&mut s, *t1);
                s.push_str(",\"interrupted\":");
                s.push_str(if *interrupted { "true" } else { "false" });
            }
            EventKind::Mark { mark } => {
                s.push_str(",\"mark\":\"");
                s.push_str(mark);
                s.push('"');
            }
            EventKind::Failure { level } | EventKind::Recovery { level } => {
                s.push_str(",\"level\":");
                s.push_str(&level.to_string());
            }
            EventKind::DrainStart { job, bytes } => {
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "bytes", *bytes);
            }
            EventKind::DrainPause
            | EventKind::DrainResume
            | EventKind::LockContention => {}
            EventKind::DrainSpill { bytes } | EventKind::Eviction { bytes } => {
                push_u64(&mut s, "bytes", *bytes);
            }
            EventKind::DrainRetry {
                site,
                attempt,
                backoff_steps,
            } => {
                s.push_str(",\"site\":\"");
                s.push_str(site);
                s.push('"');
                push_u64(&mut s, "attempt", *attempt as u64);
                push_u64(&mut s, "backoff_steps", *backoff_steps);
            }
            EventKind::DrainDegrade { job } | EventKind::DrainCancel { job } => {
                push_u64(&mut s, "job", *job);
            }
            EventKind::DrainComplete { job, bytes_out } => {
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "bytes_out", *bytes_out);
            }
            EventKind::ObjectBegin { key } | EventKind::ObjectAbort { key } => {
                push_u64(&mut s, "key", *key);
            }
            EventKind::ObjectSeal { key, bytes } => {
                push_u64(&mut s, "key", *key);
                push_u64(&mut s, "bytes", *bytes);
            }
            EventKind::Fault { site, step } => {
                s.push_str(",\"site\":\"");
                s.push_str(site);
                s.push('"');
                push_u64(&mut s, "step", *step);
            }
        }
        s.push('}');
        s
    }
}

fn push_u64(s: &mut String, key: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

/// Appends a JSON-safe rendering of `v`: Rust's shortest-roundtrip
/// formatting for finite values, `null` otherwise (JSON has no
/// infinities).
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        s.push_str(&format!("{v}"));
    } else {
        s.push_str("null");
    }
}

/// A destination for events. Sinks are driven under the bus's mutex,
/// so implementations need no interior synchronization.
pub trait EventSink: Send {
    /// Record one event.
    fn record(&mut self, ev: &Event);
    /// Take back whatever events the sink retained, clearing it.
    /// Sinks that render eagerly (e.g. [`JsonLinesSink`]) return an
    /// empty vector.
    fn drain(&mut self) -> Vec<Event>;
    /// Render the sink's retained content as JSON lines (one event
    /// per line). Does not clear the sink.
    fn render(&self) -> String;
}

/// An unbounded sink retaining every event, in order.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }

    fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    fn render(&self) -> String {
        render_lines(self.events.iter())
    }
}

/// A bounded ring sink keeping the most recent `cap` events — the
/// flight-recorder shape: always on, bounded memory, drained after the
/// interesting thing happened.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<Event>,
    /// Total events ever recorded (including overwritten ones).
    seen: u64,
}

impl RingSink {
    /// New ring keeping at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "ring capacity must be at least 1");
        RingSink {
            cap,
            buf: VecDeque::with_capacity(cap),
            seen: 0,
        }
    }

    /// Total events recorded over the sink's lifetime, including those
    /// already overwritten.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl EventSink for RingSink {
    fn record(&mut self, ev: &Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(*ev);
        self.seen += 1;
    }

    fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }

    fn render(&self) -> String {
        render_lines(self.buf.iter())
    }
}

/// A sink that renders each event to a JSON line eagerly and keeps
/// only the text — the shape you want when the events are headed for
/// a file and need not be queried.
#[derive(Debug, Default)]
pub struct JsonLinesSink {
    lines: String,
    count: u64,
}

impl JsonLinesSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events rendered.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl EventSink for JsonLinesSink {
    fn record(&mut self, ev: &Event) {
        self.lines.push_str(&ev.json_line());
        self.lines.push('\n');
        self.count += 1;
    }

    fn drain(&mut self) -> Vec<Event> {
        Vec::new()
    }

    fn render(&self) -> String {
        self.lines.clone()
    }
}

fn render_lines<'a>(events: impl Iterator<Item = &'a Event>) -> String {
    let mut s = String::new();
    for ev in events {
        s.push_str(&ev.json_line());
        s.push('\n');
    }
    s
}

/// The event bus handed to producers.
///
/// A `Bus` is a cheap clone-able handle: clones share the same sink,
/// so one sink can collect a unified, ordered stream from every
/// subsystem of a node (NVM, drain engine, remote, faults). The
/// default bus is *disabled* — `emit_with` is one `Option` check and
/// the event closure never runs — which is what keeps instrumented
/// and uninstrumented runs bit-identical and nearly free.
#[derive(Clone, Default)]
pub struct Bus {
    sink: Option<Arc<Mutex<dyn EventSink>>>,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.sink.is_some() {
            "Bus(enabled)"
        } else {
            "Bus(disabled)"
        })
    }
}

impl Bus {
    /// The disabled bus: emissions are a branch and nothing more.
    pub fn disabled() -> Self {
        Bus { sink: None }
    }

    /// A bus writing into `sink`.
    pub fn with_sink(sink: impl EventSink + 'static) -> Self {
        Bus {
            sink: Some(Arc::new(Mutex::new(sink))),
        }
    }

    /// True if a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an already-built event.
    pub fn emit(&self, ev: Event) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().record(&ev);
        }
    }

    /// Emits the event produced by `f`, but only if the bus is
    /// enabled — the closure (and any allocation inside it) is never
    /// evaluated on a disabled bus. This is the form every hot-path
    /// producer uses.
    pub fn emit_with(&self, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().record(&f());
        }
    }

    /// Drains retained events out of the sink (empty for a disabled
    /// bus or an eagerly-rendering sink).
    pub fn drain(&self) -> Vec<Event> {
        match &self.sink {
            Some(sink) => sink.lock().unwrap().drain(),
            None => Vec::new(),
        }
    }

    /// Renders the sink's retained content as JSON lines (empty for a
    /// disabled bus).
    pub fn render(&self) -> String {
        match &self.sink {
            Some(sink) => sink.lock().unwrap().render(),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: EventKind) -> Event {
        Event {
            t,
            source: Source::Ndp,
            kind,
        }
    }

    #[test]
    fn disabled_bus_never_runs_the_closure() {
        let bus = Bus::disabled();
        let mut ran = false;
        bus.emit_with(|| {
            ran = true;
            ev(0.0, EventKind::DrainPause)
        });
        assert!(!ran);
        assert!(!bus.enabled());
        assert!(bus.drain().is_empty());
        assert!(bus.render().is_empty());
    }

    #[test]
    fn clones_share_one_sink_in_emission_order() {
        let bus = Bus::with_sink(VecSink::new());
        let clone = bus.clone();
        bus.emit(ev(1.0, EventKind::DrainStart { job: 1, bytes: 10 }));
        clone.emit(ev(2.0, EventKind::DrainComplete { job: 1, bytes_out: 4 }));
        bus.emit(ev(3.0, EventKind::DrainPause));
        let got = bus.drain();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].kind.name(), "drain_start");
        assert_eq!(got[1].kind.name(), "drain_complete");
        assert_eq!(got[2].kind.name(), "drain_pause");
        // Drained: a second drain is empty, even through the clone.
        assert!(clone.drain().is_empty());
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_events() {
        let mut ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.record(&ev(i as f64, EventKind::Eviction { bytes: i }));
        }
        assert_eq!(ring.seen(), 5);
        let got = ring.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].kind, EventKind::Eviction { bytes: 3 });
        assert_eq!(got[1].kind, EventKind::Eviction { bytes: 4 });
    }

    #[test]
    fn json_lines_are_deterministic_and_well_formed() {
        let e = ev(
            1.5,
            EventKind::DrainRetry {
                site: "nic_stall",
                attempt: 2,
                backoff_steps: 4,
            },
        );
        assert_eq!(
            e.json_line(),
            "{\"t\":1.5,\"source\":\"ndp\",\"kind\":\"drain_retry\",\
             \"site\":\"nic_stall\",\"attempt\":2,\"backoff_steps\":4}"
        );
        // Rendering twice gives identical bytes.
        assert_eq!(e.json_line(), e.json_line());
        // Non-finite timestamps degrade to null rather than invalid JSON.
        let bad = Event {
            t: f64::INFINITY,
            source: Source::Sim,
            kind: EventKind::Mark { mark: "failure" },
        };
        assert!(bad.json_line().starts_with("{\"t\":null,"));
    }

    #[test]
    fn json_sink_renders_eagerly_and_retains_nothing() {
        let bus = Bus::with_sink(JsonLinesSink::new());
        bus.emit(ev(0.0, EventKind::LockContention));
        bus.emit(ev(1.0, EventKind::DrainResume));
        let text = bus.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"kind\":\"lock_contention\""));
        assert!(bus.drain().is_empty());
    }

    #[test]
    fn every_kind_renders_its_payload_fields() {
        let kinds: Vec<(EventKind, &str)> = vec![
            (
                EventKind::Span {
                    lane: "host",
                    span: "compute",
                    t0: 0.0,
                    t1: 2.0,
                    interrupted: false,
                },
                "\"span\":\"compute\"",
            ),
            (EventKind::Mark { mark: "io_durable" }, "\"mark\":\"io_durable\""),
            (EventKind::Failure { level: 2 }, "\"level\":2"),
            (EventKind::Recovery { level: 1 }, "\"level\":1"),
            (EventKind::DrainSpill { bytes: 7 }, "\"bytes\":7"),
            (EventKind::DrainDegrade { job: 3 }, "\"job\":3"),
            (EventKind::DrainCancel { job: 4 }, "\"job\":4"),
            (EventKind::ObjectBegin { key: 9 }, "\"key\":9"),
            (EventKind::ObjectSeal { key: 9, bytes: 12 }, "\"bytes\":12"),
            (EventKind::ObjectAbort { key: 9 }, "\"key\":9"),
            (
                EventKind::Fault {
                    site: "nvm_torn_write",
                    step: 11,
                },
                "\"site\":\"nvm_torn_write\"",
            ),
        ];
        for (kind, needle) in kinds {
            let line = ev(0.0, kind).json_line();
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }
}
