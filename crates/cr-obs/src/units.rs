//! Shared throughput unit conversions.
//!
//! The paper reports compression and drain rates in **decimal**
//! megabytes per second (1 MB = 10⁶ bytes). Both `cr_bench::perf` and
//! `cr_compress::measure` delegate here so the bench harness and the
//! Table 2 reproduction can never diverge on units, and so the
//! division-by-zero edge (coarse clocks measuring `elapsed == 0`) is
//! handled once:
//!
//! * zero bytes → `0.0` regardless of elapsed time (including the
//!   `0 / 0` case, which naive division turns into `NaN` or a bogus
//!   `∞` rate);
//! * nonzero bytes in zero (or negative) time → `f64::INFINITY`,
//!   signalling "too fast for this clock" rather than a crash or a
//!   garbage number.

/// Bytes per second, division-safe (see module docs for the edges).
pub fn bytes_per_s(bytes: u64, secs: f64) -> f64 {
    if bytes == 0 {
        0.0
    } else if secs <= 0.0 {
        f64::INFINITY
    } else {
        bytes as f64 / secs
    }
}

/// Decimal megabytes per second (1 MB = 10⁶ bytes), division-safe.
pub fn mb_per_s(bytes: u64, secs: f64) -> f64 {
    bytes_per_s(bytes, secs) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_megabytes_match_the_paper() {
        // 64 MB in 0.1 s = 640 MB/s — the §3.5 host-compression rate.
        assert_eq!(mb_per_s(64_000_000, 0.1), 640.0);
        assert_eq!(bytes_per_s(1_000_000, 1.0), 1e6);
    }

    #[test]
    fn zero_elapsed_with_work_is_infinite_not_nan() {
        assert!(mb_per_s(1, 0.0).is_infinite());
        assert!(bytes_per_s(123, -1.0).is_infinite());
    }

    #[test]
    fn zero_bytes_is_zero_even_with_zero_elapsed() {
        // The 0/0 case a coarse clock can produce: must be 0, not NaN
        // and not infinity (no work happened).
        assert_eq!(mb_per_s(0, 0.0), 0.0);
        assert_eq!(bytes_per_s(0, 0.0), 0.0);
        assert_eq!(mb_per_s(0, 1.0), 0.0);
    }
}
