//! Metrics registry: counters, gauges, and log2-bucketed histograms,
//! snapshotted to the `metrics/v1` JSON schema.
//!
//! The registry is deliberately simple and deterministic: names are
//! stored in `BTreeMap`s so iteration (and therefore the JSON
//! snapshot) is in sorted order, and histogram bucketing is integer
//! bit math (`leading_zeros`), so bucket boundaries are identical on
//! every platform — no float log, no libm variance.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`, up to bucket 64 for
/// values in `[2^63, u64::MAX]`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed log2-bucket histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Bucket index for a value: `0` for 0, else `64 - leading_zeros`,
/// i.e. one plus the position of the highest set bit. Pure integer
/// math, so platform-independent by construction.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`: `0` for bucket 0, `2^i - 1`
/// for `1 ≤ i ≤ 63`, and `u64::MAX` for bucket 64.
pub fn bucket_bound(i: usize) -> u64 {
    debug_assert!(i < HIST_BUCKETS);
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Hist {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Quantile estimate with **bucket-midpoint semantics**: the
    /// observation of rank `⌈q·count⌉` (1-based, clamped to
    /// `[1, count]`) is located in its bucket, and the estimate
    /// returned is that bucket's midpoint — `0.0` for bucket 0 and
    /// `(2^(i-1) + 2^i − 1) / 2` for bucket `i ≥ 1`. The true value is
    /// within 2× of the estimate, which is the resolution log2 buckets
    /// buy.
    ///
    /// `q` is clamped to `[0, 1]`; `q = 0` is the smallest recorded
    /// bucket's midpoint and `q = 1` the largest. Returns `None` for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_midpoint(i));
            }
        }
        // Unreachable: cum reaches self.count by construction.
        None
    }
}

/// Midpoint of bucket `i` in `f64`: `0.0` for bucket 0, else the mean
/// of the bucket's inclusive bounds `[2^(i-1), 2^i − 1]`.
fn bucket_midpoint(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        let lo = 2f64.powi(i as i32 - 1);
        let hi = 2f64.powi(i as i32) - 1.0;
        (lo + hi) / 2.0
    }
}

/// A named registry of counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Hist>,
}

impl Metrics {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (created at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().observe(v);
    }

    /// Counter value (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Renders the registry as a `metrics/v1` JSON document:
    ///
    /// ```json
    /// {
    ///   "schema": "metrics/v1",
    ///   "label": "...",
    ///   "counters": { "name": 3, ... },
    ///   "gauges": { "name": 1.5, ... },
    ///   "histograms": {
    ///     "name": { "count": 4, "sum": 10,
    ///               "buckets": [ { "le": 3, "count": 4 } ] }
    ///   }
    /// }
    /// ```
    ///
    /// Keys are sorted, empty buckets are omitted, and non-finite
    /// gauges render as `null`, so the same registry always produces
    /// the same bytes.
    pub fn to_json(&self, label: &str) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\n  \"schema\": \"metrics/v1\",\n  \"label\": \"");
        push_escaped(&mut s, label);
        s.push_str("\",\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            push_key(&mut s, &mut first, name, 4);
            s.push_str(&v.to_string());
        }
        close_obj(&mut s, first, 2);
        s.push_str(",\n  \"gauges\": {");
        let mut first = true;
        for (name, v) in &self.gauges {
            push_key(&mut s, &mut first, name, 4);
            if v.is_finite() {
                s.push_str(&format!("{v}"));
            } else {
                s.push_str("null");
            }
        }
        close_obj(&mut s, first, 2);
        s.push_str(",\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.hists {
            push_key(&mut s, &mut first, name, 4);
            s.push_str("{ \"count\": ");
            s.push_str(&h.count.to_string());
            s.push_str(", \"sum\": ");
            s.push_str(&h.sum.to_string());
            s.push_str(", \"buckets\": [");
            let mut bfirst = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !bfirst {
                    s.push_str(", ");
                }
                bfirst = false;
                s.push_str("{ \"le\": ");
                s.push_str(&bucket_bound(i).to_string());
                s.push_str(", \"count\": ");
                s.push_str(&c.to_string());
                s.push_str(" }");
            }
            s.push_str("] }");
        }
        close_obj(&mut s, first, 2);
        s.push_str("\n}\n");
        s
    }
}

fn push_key(s: &mut String, first: &mut bool, name: &str, indent: usize) {
    if !*first {
        s.push(',');
    }
    *first = false;
    s.push('\n');
    for _ in 0..indent {
        s.push(' ');
    }
    s.push('"');
    push_escaped(s, name);
    s.push_str("\": ");
}

fn close_obj(s: &mut String, empty: bool, indent: usize) {
    if !empty {
        s.push('\n');
        for _ in 0..indent {
            s.push(' ');
        }
    }
    s.push('}');
}

/// Minimal JSON string escaping, shared with the event writer.
fn push_escaped(s: &mut String, raw: &str) {
    crate::json::escape_into(s, raw);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // The boundary cases that would differ if bucketing used a
        // float log: exact powers of two land in the bucket whose
        // *lower* bound they are.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_cover_the_domain_without_gaps() {
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(63), (1u64 << 63) - 1);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value's bucket bound is ≥ the value, and the previous
        // bucket's bound is < the value.
        for v in [1u64, 2, 3, 4, 1000, 1 << 33, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_bound(i) >= v);
            assert!(bucket_bound(i - 1) < v);
        }
    }

    #[test]
    fn histogram_counts_and_sums() {
        let mut h = Hist::new();
        for v in [0u64, 1, 1, 5, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1031);
        assert_eq!(h.bucket(0), 1); // the 0
        assert_eq!(h.bucket(1), 2); // the 1s
        assert_eq!(h.bucket(3), 1); // 5 ∈ [4,7]
        assert_eq!(h.bucket(11), 1); // 1024 ∈ [1024, 2047]
    }

    #[test]
    fn quantile_boundaries_and_midpoints() {
        let mut h = Hist::new();
        // Observations: 0, 1, 5, 5, 1024 → sorted ranks 1..=5.
        for v in [0u64, 1, 5, 5, 1024] {
            h.observe(v);
        }
        // q=0 clamps to rank 1 → the 0 observation → bucket 0 midpoint.
        assert_eq!(h.quantile(0.0), Some(0.0));
        // q=0.5 → rank 3 → a 5 → bucket [4,7] midpoint 5.5.
        assert_eq!(h.quantile(0.5), Some(5.5));
        // q=1 → rank 5 → 1024 → bucket [1024,2047] midpoint 1535.5.
        assert_eq!(h.quantile(1.0), Some(1535.5));
        // Out-of-range q clamps rather than panics.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Hist::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn quantile_single_observation_is_its_bucket_midpoint() {
        let mut h = Hist::new();
        h.observe(6); // bucket [4,7], midpoint 5.5
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(5.5));
        }
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let mut m = Metrics::new();
        m.inc("z_last", 2);
        m.inc("a_first", 1);
        m.gauge("ratio", 1.5);
        m.gauge("weird", f64::INFINITY);
        m.observe("lat", 3);
        m.observe("lat", 300);
        let a = m.to_json("test");
        let b = m.to_json("test");
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"metrics/v1\""));
        // Sorted keys: a_first before z_last.
        assert!(a.find("a_first").unwrap() < a.find("z_last").unwrap());
        assert!(a.contains("\"weird\": null"));
        assert!(a.contains("\"count\": 2, \"sum\": 303"));
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let m = Metrics::new();
        assert!(m.is_empty());
        let j = m.to_json("empty");
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"gauges\": {}"));
        assert!(j.contains("\"histograms\": {}"));
    }

    #[test]
    fn counter_and_gauge_accessors() {
        let mut m = Metrics::new();
        m.inc("hits", 1);
        m.inc("hits", 4);
        m.gauge("mb_s", 12.5);
        assert_eq!(m.counter("hits"), 5);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauge_value("mb_s"), Some(12.5));
        assert!(m.hist("absent").is_none());
    }
}
