//! Minimal JSON support shared by the observability plane: string
//! escaping for the hand-rolled writers, and a small recursive-descent
//! parser used by the regression gate (`crx obs diff`), the exporters'
//! round-trip tests, and `indicators/v1` loading.
//!
//! The parser is deliberately small and strict-enough: it accepts the
//! JSON this workspace writes (objects, arrays, strings with escapes,
//! numbers, booleans, null) and rejects malformed input with a byte
//! offset. Object key order is preserved, so a parse → render →
//! parse round trip is stable.

/// Appends `raw` to `s` with JSON string escaping (quotes, backslash,
/// and control characters). The writers in this crate all funnel
/// through here so every emitted string is valid JSON regardless of
/// its content.
pub fn escape_into(s: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
}

/// A parsed JSON value. Object members keep their textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in textual order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Errors carry the byte offset of the problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The slice is valid UTF-8 because the whole input is.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8".to_string())?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("bad \\u escape at byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "bad escape '\\{}' at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or("truncated \\u escape")?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit at byte {}", self.pos))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit()
                || b == b'-'
                || b == b'+'
                || b == b'.'
                || b == b'e'
                || b == b'E'
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8".to_string())?;
        token
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_hostile_strings() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
        let v = parse("{\"a\": [1, 2], \"b\": {\"c\": false}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap(),
            &Value::Bool(false)
        );
    }

    #[test]
    fn escape_then_parse_round_trips() {
        for raw in ["plain", "q\"b", "back\\slash", "nl\n tab\t", "\u{1}\u{1f}"] {
            let mut doc = String::from("\"");
            escape_into(&mut doc, raw);
            doc.push('"');
            assert_eq!(parse(&doc).unwrap(), Value::Str(raw.to_string()), "{raw:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::Str("Aé".into())
        );
        // Surrogate pair (U+1F600).
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
            "1 2", "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
