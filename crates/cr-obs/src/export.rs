//! Chrome trace-event export: renders an event stream (or several
//! per-node streams) as a JSON document loadable in `chrome://tracing`
//! and Perfetto.
//!
//! Mapping:
//!
//! * Simulator timeline spans ([`EventKind::Span`]) become duration
//!   pairs (`"B"`/`"E"`, cat `"sim"`) on a host or NDP track.
//! * Point events (marks, failures, recoveries, drain/NVM/remote/fault
//!   activity) become instants (`"i"`) on per-source tracks.
//! * Causal spans ([`EventKind::SpanOpen`]/[`EventKind::SpanClose`])
//!   become async pairs (`"b"`/`"e"`, cat `"causal"`) so overlapping
//!   spans (concurrent drain jobs) render as parallel arrows. A span
//!   still open at end of stream gets a synthetic close at the last
//!   timestamp, so the document is always balanced.
//!
//! In the merged multi-node view each input stream becomes one `pid`.
//! Rows are sorted by `(pid, tid, ts, phase)` with closes before opens
//! at equal timestamps, and the sort is stable on emission order — the
//! same streams always render the same bytes.

use crate::json::{self, Value};
use crate::{Event, EventKind, Source};
use std::collections::BTreeMap;

/// Track (tid) layout inside one process (node).
fn source_tid(source: Source) -> u32 {
    match source {
        Source::Sim => 3, // instants; sim spans use tids 1/2 per lane
        Source::Ndp => 4,
        Source::Nvm => 5,
        Source::Remote => 6,
        Source::Faults => 7,
        Source::Bench => 8,
        Source::Codec => 9,
    }
}

/// Async (causal) spans get their own track block per source so the
/// arrows do not overprint the instant tracks.
fn causal_tid(source: Source) -> u32 {
    10 + source_tid(source)
}

const HOST_TID: u32 = 1;
const NDP_TID: u32 = 2;

struct Row {
    pid: usize,
    tid: u32,
    ts: f64,
    /// `b'B'`, `b'E'`, `b'b'`, `b'e'`, or `b'i'`.
    phase: u8,
    name: String,
    cat: &'static str,
    /// Async pair id (`0` = none; made unique across pids).
    id: u64,
    /// `Some(interrupted)` on sim-span `B` rows.
    interrupted: Option<bool>,
    seq: usize,
}

fn phase_rank(phase: u8) -> u8 {
    match phase {
        b'E' | b'e' => 0,
        b'B' | b'b' => 1,
        _ => 2,
    }
}

/// Exports one event stream (single-node view). See the module docs
/// for the mapping.
pub fn chrome_trace(events: &[Event]) -> String {
    chrome_trace_merged(&[events])
}

/// Exports several per-node event streams into one merged trace;
/// stream `i` renders as process `i`. Deterministic: same streams,
/// same bytes.
pub fn chrome_trace_merged(nodes: &[&[Event]]) -> String {
    let mut rows: Vec<Row> = Vec::new();
    let mut seq = 0usize;
    for (pid, events) in nodes.iter().enumerate() {
        // Open causal spans: unique id → (name, source) for the
        // matching close.
        let mut open: BTreeMap<u64, (String, Source)> = BTreeMap::new();
        let mut max_ts = 0f64;
        for e in *events {
            let ts = e.t * 1e6;
            max_ts = max_ts.max(ts);
            seq += 1;
            match e.kind {
                EventKind::Span {
                    lane,
                    span,
                    t0,
                    t1,
                    interrupted,
                } => {
                    let tid = if lane == "ndp" { NDP_TID } else { HOST_TID };
                    let (ts0, ts1) = (t0 * 1e6, t1 * 1e6);
                    max_ts = max_ts.max(ts1);
                    rows.push(Row {
                        pid,
                        tid,
                        ts: ts0,
                        phase: b'B',
                        name: span.to_string(),
                        cat: "sim",
                        id: 0,
                        interrupted: Some(interrupted),
                        seq,
                    });
                    rows.push(Row {
                        pid,
                        tid,
                        ts: ts1,
                        phase: b'E',
                        name: span.to_string(),
                        cat: "sim",
                        id: 0,
                        interrupted: None,
                        seq,
                    });
                }
                EventKind::SpanOpen { id, name, .. } => {
                    let uid = unique_async_id(pid, id);
                    open.insert(uid, (name.to_string(), e.source));
                    rows.push(Row {
                        pid,
                        tid: causal_tid(e.source),
                        ts,
                        phase: b'b',
                        name: name.to_string(),
                        cat: "causal",
                        id: uid,
                        interrupted: None,
                        seq,
                    });
                }
                EventKind::SpanClose { id } => {
                    let uid = unique_async_id(pid, id);
                    // An unmatched close (span opened before the ring
                    // window) has no name to pair with; drop it rather
                    // than emit an unbalanced "e".
                    if let Some((name, source)) = open.remove(&uid) {
                        rows.push(Row {
                            pid,
                            tid: causal_tid(source),
                            ts,
                            phase: b'e',
                            name,
                            cat: "causal",
                            id: uid,
                            interrupted: None,
                            seq,
                        });
                    }
                }
                _ => {
                    rows.push(Row {
                        pid,
                        tid: source_tid(e.source),
                        ts,
                        phase: b'i',
                        name: e.kind.name().to_string(),
                        cat: e.source.name(),
                        id: 0,
                        interrupted: None,
                        seq,
                    });
                }
            }
        }
        // Balance: close every still-open causal span at the horizon.
        for (uid, (name, source)) in open {
            seq += 1;
            rows.push(Row {
                pid,
                tid: causal_tid(source),
                ts: max_ts,
                phase: b'e',
                name,
                cat: "causal",
                id: uid,
                interrupted: None,
                seq,
            });
        }
    }
    rows.sort_by(|a, b| {
        (a.pid, a.tid)
            .cmp(&(b.pid, b.tid))
            .then(a.ts.total_cmp(&b.ts))
            .then(phase_rank(a.phase).cmp(&phase_rank(b.phase)))
            .then(a.seq.cmp(&b.seq))
    });
    render(&rows)
}

/// Async pair ids must be unique across the whole document (Chrome
/// matches `b`/`e` on `(cat, id)` regardless of pid), so fold the pid
/// into the high bits.
fn unique_async_id(pid: usize, span_id: u64) -> u64 {
    ((pid as u64) << 32) | (span_id & 0xFFFF_FFFF)
}

fn render(rows: &[Row]) -> String {
    let mut s = String::with_capacity(rows.len() * 96 + 64);
    s.push_str("{\"traceEvents\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n{\"name\":\"");
        json::escape_into(&mut s, &r.name);
        s.push_str("\",\"cat\":\"");
        s.push_str(r.cat);
        s.push_str("\",\"ph\":\"");
        s.push(r.phase as char);
        s.push_str("\",\"ts\":");
        if r.ts.is_finite() {
            s.push_str(&format!("{}", r.ts));
        } else {
            s.push('0');
        }
        s.push_str(&format!(",\"pid\":{},\"tid\":{}", r.pid, r.tid));
        if r.id != 0 {
            s.push_str(&format!(",\"id\":{}", r.id));
        }
        if r.phase == b'i' {
            s.push_str(",\"s\":\"t\"");
        }
        if let Some(intr) = r.interrupted {
            s.push_str(",\"args\":{\"interrupted\":");
            s.push_str(if intr { "true" } else { "false" });
            s.push('}');
        }
        s.push('}');
    }
    s.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    s
}

/// Structural validity check used by the tests and the `crx export`
/// smoke path: the document must parse, every `(pid, tid)` track must
/// have non-decreasing timestamps, duration (`B`/`E`) events must
/// balance as a stack per track, and async (`b`/`e`) events must
/// balance per `(cat, id)`.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut dur_stack: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut async_open: BTreeMap<(String, u64), u64> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let field = |k: &str| {
            e.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i}: missing {k}"))
        };
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?
            .to_string();
        let ts = field("ts")?;
        let pid = field("pid")? as u64;
        let tid = field("tid")? as u64;
        let track = (pid, tid);
        if let Some(&prev) = last_ts.get(&track) {
            if ts < prev {
                return Err(format!(
                    "event {i}: ts {ts} < {prev} on track {track:?}"
                ));
            }
        }
        last_ts.insert(track, ts);
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        match ph.as_str() {
            "B" => dur_stack.entry(track).or_default().push(name),
            "E" => {
                let top = dur_stack
                    .entry(track)
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: E without B"))?;
                if top != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" closes B \"{top}\""
                    ));
                }
            }
            "b" | "e" => {
                let cat = e
                    .get("cat")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                let id = field("id")? as u64;
                let slot = async_open.entry((cat, id)).or_insert(0);
                if ph == "b" {
                    *slot += 1;
                } else if *slot == 0 {
                    return Err(format!("event {i}: e without b (id {id})"));
                } else {
                    *slot -= 1;
                }
            }
            "i" => {}
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    for (track, stack) in dur_stack {
        if !stack.is_empty() {
            return Err(format!(
                "unbalanced B/E on track {track:?}: {stack:?}"
            ));
        }
    }
    for ((cat, id), open) in async_open {
        if open != 0 {
            return Err(format!("unclosed async span {cat}/{id}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_span(t0: f64, t1: f64, span: &'static str) -> Event {
        Event {
            t: t0,
            source: Source::Sim,
            kind: EventKind::Span {
                lane: "host",
                span,
                t0,
                t1,
                interrupted: false,
            },
        }
    }

    #[test]
    fn sim_spans_export_balanced_duration_pairs() {
        let events = vec![
            sim_span(0.0, 2.0, "compute"),
            sim_span(2.0, 2.5, "ckpt_local"),
            Event {
                t: 2.5,
                source: Source::Sim,
                kind: EventKind::Mark { mark: "io_durable" },
            },
        ];
        let text = chrome_trace(&events);
        validate_chrome_trace(&text).unwrap();
        assert_eq!(text, chrome_trace(&events), "deterministic bytes");
        let doc = json::parse(&text).unwrap();
        let rows = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 spans × (B+E) + 1 instant.
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn causal_spans_export_async_pairs_with_unique_ids() {
        let ev = |t: f64, kind: EventKind| Event {
            t,
            source: Source::Ndp,
            kind,
        };
        let node = vec![
            ev(
                1.0,
                EventKind::SpanOpen {
                    id: 1,
                    parent: 0,
                    name: "drain_job",
                },
            ),
            ev(5.0, EventKind::SpanClose { id: 1 }),
        ];
        // Two nodes with the *same* span id: merged ids must not
        // collide.
        let text = chrome_trace_merged(&[&node, &node]);
        validate_chrome_trace(&text).unwrap();
        let doc = json::parse(&text).unwrap();
        let rows = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ids: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.get("id").and_then(Value::as_f64))
            .collect();
        assert_eq!(ids.len(), 4);
        assert_ne!(ids[0], ids[2], "per-node ids are disambiguated");
        let pids: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.get("pid").and_then(Value::as_f64))
            .collect();
        assert!(pids.contains(&0.0) && pids.contains(&1.0));
    }

    #[test]
    fn unclosed_spans_get_synthetic_closes() {
        let events = vec![
            Event {
                t: 1.0,
                source: Source::Sim,
                kind: EventKind::SpanOpen {
                    id: 1,
                    parent: 0,
                    name: "replica",
                },
            },
            Event {
                t: 9.0,
                source: Source::Sim,
                kind: EventKind::Mark { mark: "failure" },
            },
        ];
        let text = chrome_trace(&events);
        validate_chrome_trace(&text).unwrap();
        // The synthetic close lands at the horizon (9 s → 9e6 µs).
        assert!(text.contains("\"ph\":\"e\""));
        assert!(text.contains("\"ts\":9000000"));
    }

    #[test]
    fn orphan_closes_are_dropped_not_unbalanced() {
        let events = vec![Event {
            t: 2.0,
            source: Source::Ndp,
            kind: EventKind::SpanClose { id: 77 },
        }];
        let text = chrome_trace(&events);
        validate_chrome_trace(&text).unwrap();
        assert!(!text.contains("\"ph\":\"e\""));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // E without B.
        let bad = "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"sim\",\
                   \"ph\":\"E\",\"ts\":1,\"pid\":0,\"tid\":1}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Non-monotone track.
        let bad2 = "{\"traceEvents\":[\
            {\"name\":\"a\",\"cat\":\"s\",\"ph\":\"i\",\"ts\":5,\"pid\":0,\"tid\":1},\
            {\"name\":\"b\",\"cat\":\"s\",\"ph\":\"i\",\"ts\":4,\"pid\":0,\"tid\":1}]}";
        assert!(validate_chrome_trace(bad2).is_err());
    }

    #[test]
    fn hostile_span_names_stay_valid_json() {
        let events = vec![Event {
            t: 0.0,
            source: Source::Sim,
            kind: EventKind::Span {
                lane: "host",
                span: "we\"ird\\name",
                t0: 0.0,
                t1: 1.0,
                interrupted: true,
            },
        }];
        let text = chrome_trace(&events);
        validate_chrome_trace(&text).unwrap();
    }
}
