//! # cr-workloads — synthetic checkpoint images of the Mantevo mini-apps
//!
//! The paper's compression study (§5.1.1) collects BLCR/OpenMPI
//! checkpoints of seven Mantevo mini-apps. Those checkpoints are process
//! memory images: solution arrays, particle data, mesh connectivity,
//! untouched heap pages. This crate generates synthetic images with the
//! same *kinds* of content, with per-app mixes tuned so each app's
//! relative compressibility reproduces the ordering of Table 2 (CoMD,
//! HPCCG, pHPCCG and miniAero highly compressible; miniFE intermediate;
//! miniMD lower; miniSMAC2D lowest).
//!
//! Images are deterministic in `(app, seed, bytes)`; MPI-rank variants
//! derive distinct seeds (§5.1.1 runs 16 ranks per app).
//!
//! ```
//! use cr_workloads::{by_name, CheckpointGenerator};
//!
//! let comd = by_name("CoMD").unwrap();
//! let image = comd.generate(1 << 20, 42);
//! assert_eq!(image.len(), 1 << 20);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod apps;
pub mod components;

pub use apps::{all_mini_apps, by_name, MiniApp};

/// A deterministic generator of synthetic checkpoint images.
pub trait CheckpointGenerator {
    /// Application name as used in Table 2 (e.g. `"CoMD"`).
    fn name(&self) -> &'static str;

    /// Generates exactly `bytes` bytes of checkpoint image for `seed`.
    fn generate(&self, bytes: usize, seed: u64) -> Vec<u8>;

    /// Generates the image of one MPI rank: same app, rank-specific
    /// seed (the paper checkpoints 16 ranks per app).
    fn generate_rank(&self, bytes: usize, seed: u64, rank: u32) -> Vec<u8> {
        self.generate(
            bytes,
            seed ^ (rank as u64).wrapping_mul(0xA076_1D64_78BD_642F),
        )
    }
}
