//! Building blocks for synthetic checkpoint images.
//!
//! A process checkpoint is a memory image; its compressibility comes from
//! identifiable content classes. Each function here emits one class into
//! a byte buffer:
//!
//! * [`zero_region`] — untouched/zeroed allocations (maximally
//!   compressible).
//! * [`lattice_positions`] — particle coordinates near a regular lattice
//!   with jitter of limited precision (high bytes shared, low mantissa
//!   bytes zeroed).
//! * [`smooth_field`] — PDE solution arrays: smooth functions sampled on
//!   a grid, quantized mantissa.
//! * [`stencil_indices`] — mesh connectivity: int32 indices with regular
//!   strides.
//! * [`gaussian_values`] — thermal velocities etc. with configurable
//!   retained precision.
//! * [`random_bytes`] — fully turbulent state (incompressible).
//!
//! `quant_bits` throughout is the number of *retained* f64 mantissa bits
//! (0–52): lower values zero more trailing bytes and compress better,
//! emulating fields whose physical precision is far below f64 epsilon.

use cr_rand::ChaCha8;

/// Deterministic RNG for a component, decorrelated from other components
/// of the same image by `salt`.
pub fn component_rng(seed: u64, salt: u64) -> ChaCha8 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 31;
    ChaCha8::seed_from_u64(z)
}

/// Masks an f64 to keep only the top `quant_bits` mantissa bits.
#[inline]
pub fn quantize(x: f64, quant_bits: u32) -> f64 {
    debug_assert!(quant_bits <= 52);
    let mask = !((1u64 << (52 - quant_bits)) - 1);
    f64::from_bits(x.to_bits() & mask)
}

/// Appends `len` zero bytes.
pub fn zero_region(out: &mut Vec<u8>, len: usize) {
    out.resize(out.len() + len, 0);
}

/// Appends `len` incompressible random bytes.
pub fn random_bytes(out: &mut Vec<u8>, len: usize, rng: &mut ChaCha8) {
    let start = out.len();
    out.resize(start + len, 0);
    rng.fill(&mut out[start..]);
}

/// Appends `n` f64 particle positions on a cubic lattice with quantized
/// jitter: `pos = cell_index * spacing + jitter`, jitter magnitude ~10%
/// of spacing, `quant_bits` retained.
pub fn lattice_positions(
    out: &mut Vec<u8>,
    n: usize,
    quant_bits: u32,
    rng: &mut ChaCha8,
) {
    let spacing = 1.0f64;
    let side = (n as f64).powf(1.0 / 3.0).ceil() as usize;
    let mut emitted = 0usize;
    'outer: for i in 0..side {
        for j in 0..side {
            for k in 0..side {
                if emitted >= n {
                    break 'outer;
                }
                for idx in [i, j, k] {
                    let jitter: f64 = (rng.gen_f64() - 0.5) * 0.1;
                    let x = quantize(idx as f64 * spacing + jitter, quant_bits);
                    out.extend_from_slice(&x.to_le_bytes());
                }
                emitted += 1;
            }
        }
    }
}

/// Appends `n` f64 samples of a smooth field (sum of low-frequency
/// modes), quantized.
pub fn smooth_field(
    out: &mut Vec<u8>,
    n: usize,
    quant_bits: u32,
    rng: &mut ChaCha8,
) {
    let a1: f64 = rng.gen_range(0.5, 2.0);
    let a2: f64 = rng.gen_range(0.1, 0.5);
    let f1: f64 = rng.gen_range(0.001, 0.01);
    let f2: f64 = rng.gen_range(0.01, 0.05);
    for i in 0..n {
        let t = i as f64;
        let v = a1 * (f1 * t).sin() + a2 * (f2 * t).cos();
        out.extend_from_slice(&quantize(v, quant_bits).to_le_bytes());
    }
}

/// Appends `n` int32 mesh-connectivity indices: a regular stencil walk
/// (`base + fixed offsets`), highly repetitive.
pub fn stencil_indices(out: &mut Vec<u8>, n: usize, stencil: &[i32]) {
    assert!(!stencil.is_empty());
    let mut base = 0i32;
    for i in 0..n {
        let off = stencil[i % stencil.len()];
        let idx = base.wrapping_add(off);
        out.extend_from_slice(&idx.to_le_bytes());
        if i % stencil.len() == stencil.len() - 1 {
            base = base.wrapping_add(1);
        }
    }
}

/// Appends `n` f64 Gaussian values (Box–Muller) with quantized mantissa.
pub fn gaussian_values(
    out: &mut Vec<u8>,
    n: usize,
    quant_bits: u32,
    rng: &mut ChaCha8,
) {
    let mut i = 0;
    while i < n {
        let u1: f64 = rng.gen_range(1e-12, 1.0);
        let u2: f64 = rng.gen_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
        for v in [r * c, r * s] {
            if i >= n {
                break;
            }
            out.extend_from_slice(&quantize(v, quant_bits).to_le_bytes());
            i += 1;
        }
    }
}

/// Appends a BLCR-like metadata page: process/rank/checkpoint ids and
/// padding (§4.2.1 of the paper describes this metadata).
pub fn metadata_page(out: &mut Vec<u8>, seed: u64, page: usize) {
    let start = out.len();
    out.extend_from_slice(b"BLCRMETA");
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&(seed >> 32).to_le_bytes());
    out.extend_from_slice(&(page as u64).to_le_bytes());
    // Pad to one 4 KiB page.
    out.resize(start + 4096, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_keeps_top_bits_only() {
        let x = std::f64::consts::PI;
        let q = quantize(x, 12);
        assert!((q - x).abs() < 1e-3);
        // Trailing 40 mantissa bits are zero.
        assert_eq!(q.to_bits() & ((1u64 << 40) - 1), 0);
        // Full precision is the identity.
        assert_eq!(quantize(x, 52), x);
    }

    #[test]
    fn zero_region_is_zeroed() {
        let mut v = vec![1u8];
        zero_region(&mut v, 100);
        assert_eq!(v.len(), 101);
        assert!(v[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn components_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        lattice_positions(&mut a, 500, 20, &mut component_rng(9, 1));
        lattice_positions(&mut b, 500, 20, &mut component_rng(9, 1));
        assert_eq!(a, b);
        let mut c = Vec::new();
        lattice_positions(&mut c, 500, 20, &mut component_rng(10, 1));
        assert_ne!(a, c);
    }

    #[test]
    fn component_sizes_are_exact() {
        let mut v = Vec::new();
        lattice_positions(&mut v, 123, 16, &mut component_rng(1, 2));
        assert_eq!(v.len(), 123 * 24); // 3 coords x 8 bytes
        let mut v = Vec::new();
        smooth_field(&mut v, 77, 10, &mut component_rng(1, 3));
        assert_eq!(v.len(), 77 * 8);
        let mut v = Vec::new();
        stencil_indices(&mut v, 55, &[-1, 0, 1]);
        assert_eq!(v.len(), 55 * 4);
        let mut v = Vec::new();
        gaussian_values(&mut v, 33, 20, &mut component_rng(1, 4));
        assert_eq!(v.len(), 33 * 8);
        let mut v = Vec::new();
        metadata_page(&mut v, 7, 0);
        assert_eq!(v.len(), 4096);
    }

    #[test]
    fn quantized_fields_have_zero_tail_bytes() {
        let mut v = Vec::new();
        smooth_field(&mut v, 1000, 12, &mut component_rng(5, 6));
        // With 12 retained mantissa bits, the low 5 bytes of each f64
        // are zero.
        let zero_frac = v.iter().filter(|&&b| b == 0).count() as f64
            / v.len() as f64;
        assert!(zero_frac > 0.55, "zero fraction {zero_frac}");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut v = Vec::new();
        gaussian_values(&mut v, 20_000, 52, &mut component_rng(2, 7));
        let vals: Vec<f64> = v
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / vals.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn stencil_indices_repeat() {
        let mut v = Vec::new();
        stencil_indices(&mut v, 1000, &[-10, -1, 0, 1, 10]);
        // The byte stream has period-ish structure: count distinct
        // 4-byte words, must be far below 1000.
        let mut words: Vec<[u8; 4]> = v
            .chunks_exact(4)
            .map(|c| c.try_into().unwrap())
            .collect();
        words.sort_unstable();
        words.dedup();
        assert!(words.len() < 300, "distinct words {}", words.len());
    }
}
