//! The seven Mantevo-style mini-app checkpoint generators.
//!
//! Each app is a *recipe*: a weighted mix of content classes from
//! [`crate::components`], laid out in allocation-sized chunks the way a
//! process heap interleaves its arrays. The weights and quantizations
//! are calibrated so the gzip-family compression factors reproduce the
//! per-app ordering of Table 2 of the paper (see the `table2`
//! integration test and EXPERIMENTS.md for measured values).

use crate::components::{
    component_rng, gaussian_values, lattice_positions, metadata_page,
    random_bytes, smooth_field, stencil_indices, zero_region,
};
use crate::CheckpointGenerator;

/// One content class with its quantization/shape parameters.
#[derive(Debug, Clone, Copy)]
pub enum Component {
    /// Untouched / zero-initialized memory.
    Zeros,
    /// Particle positions near a lattice; retained mantissa bits.
    Lattice(u32),
    /// Smooth solution field; retained mantissa bits.
    Smooth(u32),
    /// Mesh connectivity indices over a fixed stencil.
    Stencil(&'static [i32]),
    /// Gaussian-distributed values; retained mantissa bits.
    Gaussian(u32),
    /// Fully random (turbulent) state.
    Random,
}

impl Component {
    /// Appends roughly `bytes` of this class (rounded down to whole
    /// elements, at least one element).
    fn emit(
        &self,
        out: &mut Vec<u8>,
        bytes: usize,
        seed: u64,
        salt: u64,
    ) {
        let mut rng = component_rng(seed, salt);
        match *self {
            Component::Zeros => zero_region(out, bytes),
            Component::Lattice(q) => {
                lattice_positions(out, (bytes / 24).max(1), q, &mut rng)
            }
            Component::Smooth(q) => {
                smooth_field(out, (bytes / 8).max(1), q, &mut rng)
            }
            Component::Stencil(s) => {
                stencil_indices(out, (bytes / 4).max(1), s)
            }
            Component::Gaussian(q) => {
                gaussian_values(out, (bytes / 8).max(1), q, &mut rng)
            }
            Component::Random => random_bytes(out, bytes, &mut rng),
        }
    }
}

/// 27-point stencil offsets for a 30³ structured grid.
const STENCIL_27: &[i32] = &[
    -931, -930, -929, -901, -900, -899, -871, -870, -869, -31, -30, -29,
    -1, 0, 1, 29, 30, 31, 869, 870, 871, 899, 900, 901, 929, 930, 931,
];
/// 5-point stencil for a 2-D structured grid.
const STENCIL_5: &[i32] = &[-512, -1, 0, 1, 512];
/// Unstructured-ish face list (small irregular offsets).
const STENCIL_FACES: &[i32] = &[-97, -13, -7, 0, 7, 13, 97, 3, -3, 41];

/// A mini-app generator: name plus weighted recipe.
#[derive(Debug, Clone)]
pub struct MiniApp {
    name: &'static str,
    recipe: &'static [(u32, Component)],
}

/// Heap-allocation granularity: components are interleaved in chunks of
/// this many bytes per weight unit.
const CHUNK_PER_WEIGHT: usize = 64 * 1024;

impl CheckpointGenerator for MiniApp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn generate(&self, bytes: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(bytes + (64 << 10));
        metadata_page(&mut out, seed, 0);
        let mut round = 0u64;
        while out.len() < bytes {
            for (i, (weight, comp)) in self.recipe.iter().enumerate() {
                if out.len() >= bytes {
                    break;
                }
                let want = (*weight as usize * CHUNK_PER_WEIGHT)
                    .min(bytes - out.len() + 32);
                let salt = round
                    .wrapping_mul(1_000_003)
                    .wrapping_add(i as u64);
                comp.emit(&mut out, want, seed, salt);
            }
            round += 1;
        }
        out.truncate(bytes);
        out
    }
}

/// All seven mini-apps in the row order of Table 2.
pub fn all_mini_apps() -> Vec<MiniApp> {
    vec![
        // CoMD: classical MD. Lattice positions + low-precision
        // velocities + ghost-cell zero regions -> highly compressible
        // (gzip ~84%).
        MiniApp {
            name: "CoMD",
            recipe: &[
                (5, Component::Zeros),
                (6, Component::Lattice(10)),
                (4, Component::Gaussian(8)),
                (1, Component::Stencil(STENCIL_27)),
            ],
        },
        // HPCCG: conjugate gradient on a 27-pt stencil. Smooth vectors,
        // very regular sparse structure, big zero halos (gzip ~88%).
        MiniApp {
            name: "HPCCG",
            recipe: &[
                (6, Component::Zeros),
                (5, Component::Smooth(6)),
                (4, Component::Stencil(STENCIL_27)),
                (1, Component::Gaussian(16)),
            ],
        },
        // miniFE: implicit FE. Like HPCCG but with more full-precision
        // matrix coefficients (gzip ~71%).
        MiniApp {
            name: "miniFE",
            recipe: &[
                (3, Component::Zeros),
                (4, Component::Smooth(14)),
                (3, Component::Stencil(STENCIL_27)),
                (3, Component::Gaussian(28)),
            ],
        },
        // miniMD: LJ molecular dynamics; higher-entropy positions and
        // velocities (gzip ~57%).
        MiniApp {
            name: "miniMD",
            recipe: &[
                (2, Component::Zeros),
                (5, Component::Lattice(22)),
                (4, Component::Gaussian(18)),
                (1, Component::Random),
            ],
        },
        // miniSMAC2D: turbulent incompressible flow; mostly
        // full-precision fields (gzip ~35%).
        MiniApp {
            name: "miniSmac",
            recipe: &[
                (1, Component::Zeros),
                (3, Component::Smooth(28)),
                (2, Component::Stencil(STENCIL_5)),
                (8, Component::Gaussian(40)),
                (1, Component::Random),
            ],
        },
        // miniAero: unstructured RK4 aero solver; small checkpoint,
        // compressible fields (gzip ~84%).
        MiniApp {
            name: "miniAero",
            recipe: &[
                (5, Component::Zeros),
                (5, Component::Smooth(8)),
                (3, Component::Stencil(STENCIL_FACES)),
                (1, Component::Gaussian(10)),
            ],
        },
        // pHPCCG: HPCCG variant (gzip ~89%).
        MiniApp {
            name: "pHPCCG",
            recipe: &[
                (7, Component::Zeros),
                (5, Component::Smooth(6)),
                (4, Component::Stencil(STENCIL_27)),
                (1, Component::Gaussian(10)),
            ],
        },
    ]
}

/// Looks up a mini-app generator by its Table 2 name.
pub fn by_name(name: &str) -> Option<MiniApp> {
    all_mini_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_apps_with_table2_names() {
        let apps = all_mini_apps();
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            [
                "CoMD", "HPCCG", "miniFE", "miniMD", "miniSmac",
                "miniAero", "pHPCCG"
            ]
        );
    }

    #[test]
    fn exact_size_and_determinism() {
        for app in all_mini_apps() {
            let a = app.generate(1 << 20, 7);
            let b = app.generate(1 << 20, 7);
            assert_eq!(a.len(), 1 << 20, "{}", app.name());
            assert_eq!(a, b, "{} not deterministic", app.name());
            let c = app.generate(1 << 20, 8);
            assert_ne!(a, c, "{} ignores seed", app.name());
        }
    }

    #[test]
    fn ranks_differ() {
        let app = by_name("CoMD").unwrap();
        let r0 = app.generate_rank(1 << 18, 1, 0);
        let r1 = app.generate_rank(1 << 18, 1, 1);
        assert_ne!(r0, r1);
        assert_eq!(r0.len(), r1.len());
    }

    #[test]
    fn tiny_images_work() {
        for app in all_mini_apps() {
            for size in [1usize, 100, 4096, 5000] {
                let img = app.generate(size, 3);
                assert_eq!(img.len(), size, "{} size {size}", app.name());
            }
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("HPCCG").is_some());
        assert!(by_name("LAMMPS").is_none());
    }

    #[test]
    fn images_start_with_metadata() {
        let img = by_name("miniFE").unwrap().generate(1 << 16, 5);
        assert_eq!(&img[0..8], b"BLCRMETA");
    }

    #[test]
    fn compressibility_ordering_matches_table2() {
        // The key property: with the gz(1) codec, HPCCG-family apps
        // compress best, miniSmac worst, miniMD in between.
        use cr_compress::registry::by_name as codec;
        let gz = codec("gz", 1).unwrap();
        let factor = |app: &str| {
            let img = by_name(app).unwrap().generate(3 << 20, 11);
            let c = gz.compress_to_vec(&img);
            1.0 - c.len() as f64 / img.len() as f64
        };
        let hpccg = factor("HPCCG");
        let comd = factor("CoMD");
        let minife = factor("miniFE");
        let minimd = factor("miniMD");
        let minismac = factor("miniSmac");
        assert!(
            hpccg > minife && minife > minimd && minimd > minismac,
            "ordering violated: HPCCG {hpccg:.2} miniFE {minife:.2} \
             miniMD {minimd:.2} miniSmac {minismac:.2}"
        );
        assert!(comd > minife, "CoMD {comd:.2} <= miniFE {minife:.2}");
        // Absolute bands (loose): top apps > 75%, miniSmac < 50%.
        assert!(hpccg > 0.75, "HPCCG factor {hpccg}");
        assert!(minismac < 0.50, "miniSmac factor {minismac}");
    }
}
