//! Calibration probe: gz(1)/lzf compression factors of every synthetic
//! mini-app image against the paper's Table 2 targets. Used to tune the
//! workload recipes in `src/apps.rs`.

use cr_compress::{measure::measure, registry::study_codecs};
use cr_workloads::{all_mini_apps, CheckpointGenerator};

fn main() {
    let paper_gz1 = [0.842, 0.884, 0.715, 0.570, 0.350, 0.843, 0.891];
    let codecs = study_codecs();
    println!("{:10} {:>8} {:>8} | gz1 paper", "app", "gz(1)", "lzf");
    for (app, target) in all_mini_apps().iter().zip(paper_gz1) {
        let img = app.generate(6 << 20, 123);
        let mgz = measure(codecs[0].as_ref(), &img);
        let mlz = measure(codecs[6].as_ref(), &img);
        println!("{:10} {:7.1}% {:7.1}% | {:5.1}%  (gz speed {:.0} MB/s, lzf {:.0} MB/s)",
            app.name(), mgz.factor*100.0, mlz.factor*100.0, target*100.0,
            mgz.compress_rate/1e6, mlz.compress_rate/1e6);
    }
}
