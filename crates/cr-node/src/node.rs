//! The compute node: host-side checkpoint/restore API wired to the NVM
//! store, the NDP drain engine and the remote I/O node (§4.2).

use std::collections::HashMap;
use std::fmt;

use cr_compress::{registry, CodecError};

use crate::faults::{
    DegradePolicy, FaultPlane, FaultPlaneConfig, FaultSite, RetryPolicy,
};
use crate::metadata::CheckpointMeta;
use crate::ndp::{BackpressurePolicy, NdpEngine, StepOutcome};
use crate::nvm::{NvmError, NvmStore, Region, SlotId};
use crate::remote::IoNode;
use crate::vclock::VClock;

/// Node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Capacity of the NVM's uncompressed-checkpoint region, bytes.
    pub nvm_uncompressed: usize,
    /// Capacity of the NVM's compressed/spill region, bytes.
    pub nvm_compressed: usize,
    /// NIC transmit buffer depth, blocks.
    pub nic_blocks: usize,
    /// Drain/compression block size, bytes.
    pub block_size: usize,
    /// Codec for NDP compression: `(family, level)`, or `None` to drain
    /// uncompressed.
    pub codec: Option<(&'static str, u32)>,
    /// NIC backpressure policy (§4.2.2).
    pub policy: BackpressurePolicy,
    /// Every `drain_ratio`-th checkpoint is drained to global I/O.
    pub drain_ratio: u32,
    /// Incremental drains (§7 future work): `Some(policy)` makes the
    /// NDP diff consecutive drained checkpoints and ship only changed
    /// blocks.
    pub incremental: Option<crate::ndp::IncrementalPolicy>,
    /// Partner-level checkpointing (§3.4): every `n`-th checkpoint is
    /// replicated to a partner node's NVM, surviving loss of this node
    /// alone. `0` disables the partner level.
    pub partner_ratio: u32,
    /// Modeled node-to-partner interconnect bandwidth, bytes/s.
    pub interconnect_bw: f64,
    /// Modeled host↔NVM bandwidth, bytes/s.
    pub nvm_bandwidth: f64,
    /// Modeled per-node global-I/O bandwidth, bytes/s.
    pub io_bandwidth: f64,
    /// Modeled NDP compression throughput, bytes/s.
    pub ndp_compress_bw: f64,
    /// Modeled host decompression throughput on restore, bytes/s.
    pub host_decompress_bw: f64,
    /// Deterministic fault injection (`None` = no faults): the node
    /// threads this plane through NVM commits/reads, partner
    /// replication, the NDP drain engine, the NIC and the remote I/O
    /// path.
    pub faults: Option<FaultPlaneConfig>,
    /// Retry/backoff budget for transient drain failures.
    pub retry: RetryPolicy,
    /// Degradation policy once retries are exhausted or the codec
    /// fails.
    pub degrade: DegradePolicy,
}

impl NodeConfig {
    /// Paper-flavoured defaults scaled down for in-memory testing:
    /// 64 MiB NVM regions, 256 KiB blocks, gzip-family level 1, drain
    /// every 2nd checkpoint.
    pub fn small_test() -> Self {
        NodeConfig {
            nvm_uncompressed: 64 << 20,
            nvm_compressed: 64 << 20,
            nic_blocks: 8,
            block_size: 256 << 10,
            codec: Some(("gz", 1)),
            policy: BackpressurePolicy::Pause,
            drain_ratio: 2,
            incremental: None,
            partner_ratio: 0,
            interconnect_bw: 50e9,
            nvm_bandwidth: 15e9,
            io_bandwidth: 100e6,
            ndp_compress_bw: 440.4e6,
            host_decompress_bw: 16e9,
            faults: None,
            retry: RetryPolicy::default(),
            degrade: DegradePolicy::default(),
        }
    }
}

/// Where a restore was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreSource {
    /// Node-local NVM (fast path).
    LocalNvm,
    /// A partner node's NVM (§3.4 partner level).
    Partner,
    /// Remote I/O node (decompressed on the host, §4.3).
    RemoteIo,
}

/// A restored checkpoint.
#[derive(Debug)]
pub struct Restored {
    /// Checkpoint metadata (of the original, uncompressed checkpoint).
    pub meta: CheckpointMeta,
    /// The restored application state.
    pub data: Vec<u8>,
    /// Which level served the restore.
    pub source: RestoreSource,
}

/// Failure kinds the node can experience (§6.1: failures either are or
/// are not recoverable from locally-saved checkpoints; "locally-saved"
/// covers both the local and the partner level — §3.4 footnote 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Application/process failure: node-local state survives.
    LocalSurvivable,
    /// Node loss: NVM contents, pending drains and NIC contents are
    /// destroyed; partner-level copies and finalized remote objects
    /// survive.
    NodeLoss,
    /// Simultaneous loss of this node and its partner: only finalized
    /// remote objects survive.
    PairLoss,
}

/// Errors surfaced by node operations.
#[derive(Debug)]
pub enum NodeError {
    /// Operation referenced an unregistered application.
    UnknownApp(String),
    /// NVM store failure.
    Nvm(NvmError),
    /// No checkpoint available at any level.
    NoCheckpoint,
    /// Drain or restore codec failure.
    Codec(CodecError),
    /// Drain cannot progress (NIC blocked under `Pause`, or spill
    /// region full).
    DrainStalled,
    /// The only recoverable checkpoint failed checksum verification.
    Corrupt,
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::UnknownApp(a) => write!(f, "unknown app {a:?}"),
            NodeError::Nvm(e) => write!(f, "nvm: {e}"),
            NodeError::NoCheckpoint => write!(f, "no checkpoint available"),
            NodeError::Codec(e) => write!(f, "{e}"),
            NodeError::DrainStalled => write!(f, "drain stalled"),
            NodeError::Corrupt => {
                write!(f, "checkpoint failed integrity verification")
            }
        }
    }
}

impl std::error::Error for NodeError {}

impl From<NvmError> for NodeError {
    fn from(e: NvmError) -> Self {
        NodeError::Nvm(e)
    }
}

impl From<CodecError> for NodeError {
    fn from(e: CodecError) -> Self {
        NodeError::Codec(e)
    }
}

#[derive(Debug, Default)]
struct AppState {
    next_ckpt_id: u64,
    since_io: u32,
    since_partner: u32,
}

/// The compute node.
pub struct ComputeNode {
    cfg: NodeConfig,
    nvm: NvmStore,
    /// Replicas held on the partner node's NVM (present when
    /// `partner_ratio > 0`). Lives here for simulation convenience but
    /// is failure-domain-separate: only [`FailureKind::PairLoss`]
    /// destroys it.
    partner: Option<NvmStore>,
    ndp: NdpEngine,
    io: IoNode,
    apps: HashMap<String, AppState>,
    clock: VClock,
    faults: FaultPlane,
    host_ckpt_counter: u64,
    /// Checkpoints that failed integrity verification during restores
    /// (each one was skipped in favor of the next recovery level).
    corruptions_detected: u64,
}

impl ComputeNode {
    /// Builds a node from a configuration.
    pub fn new(cfg: NodeConfig) -> Self {
        let codec = cfg
            .codec
            .map(|(name, level)| {
                registry::by_name(name, level)
                    .unwrap_or_else(|| panic!("unknown codec {name}({level})"))
            });
        let mut ndp = NdpEngine::new(
            codec,
            cfg.policy,
            cfg.block_size,
            cfg.nic_blocks,
            cfg.ndp_compress_bw,
        );
        if let Some(policy) = cfg.incremental {
            ndp.enable_incremental(policy);
        }
        ndp.set_policies(cfg.retry, cfg.degrade);
        let partner = (cfg.partner_ratio > 0)
            .then(|| NvmStore::new(cfg.nvm_uncompressed, 0));
        let faults = cfg
            .faults
            .map(FaultPlane::new)
            .unwrap_or_else(FaultPlane::disabled);
        ComputeNode {
            nvm: NvmStore::new(cfg.nvm_uncompressed, cfg.nvm_compressed),
            partner,
            ndp,
            io: IoNode::new(cfg.io_bandwidth),
            apps: HashMap::new(),
            clock: VClock::default(),
            faults,
            host_ckpt_counter: 0,
            corruptions_detected: 0,
            cfg,
        }
    }

    /// Registers an application for checkpointing.
    pub fn register_app(&mut self, app_id: &str) {
        self.apps.entry(app_id.to_string()).or_default();
    }

    /// Takes a coordinated checkpoint of rank 0.
    pub fn checkpoint(
        &mut self,
        app_id: &str,
        data: &[u8],
    ) -> Result<SlotId, NodeError> {
        self.checkpoint_rank(app_id, 0, data)
    }

    /// Takes a checkpoint of one rank: pauses the NDP (§4.2.1), writes
    /// the image to the NVM uncompressed region, resumes the NDP, and
    /// hands every `drain_ratio`-th checkpoint to the NDP for draining
    /// (§4.2.2).
    pub fn checkpoint_rank(
        &mut self,
        app_id: &str,
        rank: u32,
        data: &[u8],
    ) -> Result<SlotId, NodeError> {
        if !self.apps.contains_key(app_id) {
            return Err(NodeError::UnknownApp(app_id.to_string()));
        }
        self.host_ckpt_counter += 1;
        let taken_at = self.host_ckpt_counter;
        let state = self.apps.get_mut(app_id).expect("checked above");
        let ckpt_id = state.next_ckpt_id;
        state.next_ckpt_id += 1;
        state.since_io += 1;
        let drain = state.since_io >= self.cfg.drain_ratio;
        if drain {
            state.since_io = 0;
        }
        let to_partner = if self.cfg.partner_ratio > 0 {
            state.since_partner += 1;
            let due = state.since_partner >= self.cfg.partner_ratio;
            if due {
                state.since_partner = 0;
            }
            due
        } else {
            false
        };

        let mut meta = CheckpointMeta::new(
            app_id,
            rank,
            ckpt_id,
            data.len() as u64,
            taken_at,
        );
        // End-to-end integrity: the original image's checksum travels
        // with the metadata through every level and encoding, so a
        // restore can verify the final reassembled bytes.
        meta.content_crc = crate::integrity::Crc64::of(data);

        // Host owns the NVM for the commit: NDP paused (§4.2.1).
        self.ndp.pause();
        let mut buf = self.nvm.take_buffer();
        buf.extend_from_slice(data);
        let result =
            self.nvm.write(Region::Uncompressed, meta.clone(), buf);
        VClock::charge(
            &mut self.clock.host_nvm,
            data.len(),
            self.cfg.nvm_bandwidth,
        );
        self.ndp.resume();
        let slot = result?;

        // Injected torn write: the commit "succeeded" but the stored
        // frame is damaged past its commit-time checksum. Detected by
        // verification at restore time, never served as fresh data.
        if self.faults.fire(FaultSite::NvmTornWrite) {
            let idx = self.faults.draw_index(data.len());
            let _ = self.nvm.tamper(slot, idx);
        }

        // Partner replication (§3.4): copy the checkpoint over the
        // interconnect to the partner node's NVM.
        if to_partner {
            if self.faults.fire(FaultSite::PartnerLoss) {
                // Replica lost in transit: the interconnect time is
                // spent but nothing lands on the partner.
                VClock::charge(
                    &mut self.clock.host_nvm,
                    data.len(),
                    self.cfg.interconnect_bw,
                );
            } else if let Some(partner) = &mut self.partner {
                let mut pbuf = partner.take_buffer();
                pbuf.extend_from_slice(data);
                partner.write(Region::Uncompressed, meta.clone(), pbuf)?;
                VClock::charge(
                    &mut self.clock.host_nvm,
                    data.len(),
                    self.cfg.interconnect_bw,
                );
            }
        }

        if drain {
            self.nvm.lock(slot)?;
            self.ndp.enqueue(slot, meta);
        }
        Ok(slot)
    }

    /// Performs one unit of NDP drain work, consulting the fault plane.
    pub fn ndp_step(&mut self) -> Result<StepOutcome, NodeError> {
        Ok(self.ndp.step_faulty(
            &mut self.nvm,
            &mut self.io,
            &mut self.clock,
            &mut self.faults,
        )?)
    }

    /// Runs the NDP until all queued drains complete.
    pub fn drain_all(&mut self) -> Result<(), NodeError> {
        loop {
            match self.ndp_step()? {
                StepOutcome::Idle => return Ok(()),
                StepOutcome::Stalled => return Err(NodeError::DrainStalled),
                StepOutcome::Paused => {
                    // drain_all is a host-driven pump; un-pause and
                    // continue.
                    self.ndp.resume();
                }
                _ => {}
            }
        }
    }

    /// Injects a failure (§4.2.3).
    pub fn inject_failure(&mut self, kind: FailureKind) {
        match kind {
            FailureKind::LocalSurvivable => {
                // Application aborted; storage intact. The NDP pauses
                // during the recovery that follows.
                self.ndp.pause();
            }
            FailureKind::NodeLoss => {
                self.nvm.wipe();
                self.ndp.reset();
                self.io.abort_incomplete();
            }
            FailureKind::PairLoss => {
                self.nvm.wipe();
                if let Some(partner) = &mut self.partner {
                    partner.wipe();
                }
                self.ndp.reset();
                self.io.abort_incomplete();
            }
        }
    }

    /// Restores the newest recoverable checkpoint of rank 0.
    pub fn restore(&mut self, app_id: &str) -> Result<Restored, NodeError> {
        self.restore_rank(app_id, 0)
    }

    /// Restores the newest recoverable checkpoint of one rank: local
    /// NVM first, falling back to the remote I/O node with host-side
    /// block decompression (§4.2.3, §4.3). Resumes the NDP afterwards.
    pub fn restore_rank(
        &mut self,
        app_id: &str,
        rank: u32,
    ) -> Result<Restored, NodeError> {
        if !self.apps.contains_key(app_id) {
            return Err(NodeError::UnknownApp(app_id.to_string()));
        }
        // The NDP pauses its I/O traffic during recovery (§4.2.3).
        self.ndp.pause();
        let result = self.restore_inner(app_id, rank);
        self.ndp.resume();
        result
    }

    fn restore_inner(
        &mut self,
        app_id: &str,
        rank: u32,
    ) -> Result<Restored, NodeError> {
        // Fast path: newest local checkpoint — verified before use, so
        // NVM bit-rot falls through to the partner/I-O levels instead
        // of restoring garbage.
        if let Some(id) = self
            .nvm
            .latest(Region::Uncompressed, app_id, rank)
            .map(|s| s.id)
        {
            // Injected silent bit-rot, surfacing exactly when the
            // restore reads the slot.
            if self.faults.fire(FaultSite::NvmReadRot) {
                let len = self.nvm.get(id).map_or(0, |s| s.data.len());
                let idx = self.faults.draw_index(len);
                let _ = self.nvm.tamper(id, idx);
            }
            let slot = self.nvm.get(id).expect("slot just listed");
            if slot.verify() {
                let data = slot.data.clone();
                let meta = slot.meta.clone();
                VClock::charge(
                    &mut self.clock.host_nvm,
                    data.len(),
                    self.cfg.nvm_bandwidth,
                );
                return Ok(Restored {
                    meta,
                    data,
                    source: RestoreSource::LocalNvm,
                });
            }
            self.corruptions_detected += 1;
        }

        // Partner level (§3.4): the partner node's replica survives
        // loss of this node alone; fetch it over the interconnect
        // (verified, falling through to I/O on corruption).
        let partner_id = self.partner.as_ref().and_then(|partner| {
            partner
                .latest(Region::Uncompressed, app_id, rank)
                .map(|s| s.id)
        });
        if let Some(pid) = partner_id {
            if self.faults.fire(FaultSite::NvmReadRot) {
                let partner = self.partner.as_mut().expect("id implies store");
                let len = partner.get(pid).map_or(0, |s| s.data.len());
                let idx = self.faults.draw_index(len);
                let _ = partner.tamper(pid, idx);
            }
        }
        let partner_hit = self.partner.as_ref().and_then(|partner| {
            partner_id.and_then(|pid| partner.get(pid)).map(|slot| {
                (slot.verify(), slot.meta.clone(), slot.data.clone())
            })
        });
        if let Some((ok, meta, data)) = partner_hit {
            if ok {
                VClock::charge(
                    &mut self.clock.restore_io,
                    data.len(),
                    self.cfg.interconnect_bw,
                );
                // Reseed the local NVM so later failures recover fast.
                let _ = self.nvm.write(
                    Region::Uncompressed,
                    meta.clone(),
                    data.clone(),
                );
                return Ok(Restored {
                    meta,
                    data,
                    source: RestoreSource::Partner,
                });
            }
            self.corruptions_detected += 1;
        }

        // Slow path: stream from remote I/O, decompressing block by
        // block on the host (pipelined restore, §4.3). Incremental
        // objects chain back to their base (§7); walk the chain to a
        // full image, then apply the deltas forward.
        let key = self
            .io
            .latest_complete(app_id, rank)
            .ok_or(NodeError::NoCheckpoint)?;
        let (meta, mut payload) = self.fetch_remote_payload(&key)?;
        let mut deltas: Vec<crate::incremental::IncrementalImage> =
            Vec::new();
        let mut cursor = meta.clone();
        const MAX_CHAIN: usize = 64;
        while let Some(base_id) = cursor.base {
            if deltas.len() >= MAX_CHAIN {
                return Err(
                    CodecError::new("incremental chain too long").into()
                );
            }
            deltas.push(
                crate::incremental::IncrementalImage::decode(&payload)
                    .map_err(CodecError::new)?,
            );
            let base_key = crate::remote::ObjectKey {
                app_id: app_id.to_string(),
                rank,
                ckpt_id: base_id,
            };
            let (base_meta, base_payload) =
                self.fetch_remote_payload(&base_key)?;
            cursor = base_meta;
            payload = base_payload;
        }
        // `payload` now holds the full base image; apply deltas from
        // oldest to newest.
        if payload.len() != cursor.size as usize {
            return Err(CodecError::new("restored size mismatch").into());
        }
        let mut data = payload;
        for incr in deltas.iter().rev() {
            data = crate::incremental::apply_incremental(&data, incr)
                .map_err(CodecError::new)?;
        }
        if data.len() != meta.size as usize {
            return Err(CodecError::new("restored size mismatch").into());
        }
        // End-to-end verification of the reassembled image against the
        // checksum taken at checkpoint time: catches any corruption the
        // per-object CRCs cannot (e.g. rot that slipped into the drain
        // source before shipping).
        if meta.content_crc != 0
            && crate::integrity::Crc64::of(&data) != meta.content_crc
        {
            self.corruptions_detected += 1;
            return Err(NodeError::Corrupt);
        }
        VClock::charge(
            &mut self.clock.restore_io,
            data.len(),
            self.cfg.host_decompress_bw,
        );

        // The restored image is written back to a fresh local
        // checkpoint so subsequent failures recover locally.
        let restored_meta = CheckpointMeta {
            codec: None,
            base: None,
            ..meta.clone()
        };
        let _ = self.nvm.write(
            Region::Uncompressed,
            restored_meta.clone(),
            data.clone(),
        );

        Ok(Restored {
            meta: restored_meta,
            data,
            source: RestoreSource::RemoteIo,
        })
    }

    /// Reads one remote object and decompresses its framed blocks into
    /// the raw payload (a full image, or an encoded incremental delta).
    fn fetch_remote_payload(
        &mut self,
        key: &crate::remote::ObjectKey,
    ) -> Result<(CheckpointMeta, Vec<u8>), NodeError> {
        let (meta, blob) = match self.io.read_verified(key) {
            Ok(x) => x,
            Err(crate::remote::RemoteError::Corrupt) => {
                self.corruptions_detected += 1;
                return Err(NodeError::Corrupt);
            }
            Err(_) => return Err(NodeError::NoCheckpoint),
        };
        VClock::charge(
            &mut self.clock.restore_io,
            blob.len(),
            self.cfg.io_bandwidth,
        );
        let codec = match &meta.codec {
            None => None,
            Some(label) => {
                // Parse "name(level)".
                let (name, rest) = label
                    .split_once('(')
                    .ok_or_else(|| CodecError::new("bad codec label"))?;
                let level: u32 = rest
                    .trim_end_matches(')')
                    .parse()
                    .map_err(|_| CodecError::new("bad codec level"))?;
                Some(registry::by_name(name, level).ok_or_else(|| {
                    CodecError::new(format!("unknown codec {label}"))
                })?)
            }
        };
        let mut data = Vec::with_capacity(meta.size as usize);
        let mut pos = 0usize;
        while pos < blob.len() {
            if pos + 8 > blob.len() {
                return Err(CodecError::new("truncated block frame").into());
            }
            let raw_len =
                u32::from_le_bytes(blob[pos..pos + 4].try_into().unwrap())
                    as usize;
            let comp_len = u32::from_le_bytes(
                blob[pos + 4..pos + 8].try_into().unwrap(),
            ) as usize;
            pos += 8;
            if pos + comp_len > blob.len() {
                return Err(
                    CodecError::new("block frame overruns blob").into()
                );
            }
            let payload = &blob[pos..pos + comp_len];
            pos += comp_len;
            match &codec {
                Some(c) => {
                    let mut part = Vec::with_capacity(raw_len);
                    c.decompress(payload, &mut part)?;
                    if part.len() != raw_len {
                        return Err(CodecError::new(
                            "block length mismatch",
                        )
                        .into());
                    }
                    data.extend_from_slice(&part);
                }
                None => data.extend_from_slice(payload),
            }
        }
        Ok((meta, data))
    }

    /// Virtual-time accounting so far.
    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    /// NDP engine statistics.
    pub fn ndp_stats(&self) -> crate::ndp::NdpStats {
        self.ndp.stats
    }

    /// Checkpoints skipped during restores because they failed
    /// integrity verification.
    pub fn corruptions_detected(&self) -> u64 {
        self.corruptions_detected
    }

    /// Fault injection: flip a bit in the newest local checkpoint of a
    /// rank (NVM bit-rot drill). Returns false if none exists.
    pub fn tamper_local(&mut self, app_id: &str, rank: u32) -> bool {
        let id = self
            .nvm
            .latest(Region::Uncompressed, app_id, rank)
            .map(|s| s.id);
        match id {
            Some(id) => self.nvm.tamper(id, 17).is_ok(),
            None => false,
        }
    }

    /// Fault injection: flip a bit in the newest finalized remote
    /// object of a rank (I/O-node bit-rot drill).
    pub fn tamper_remote(&mut self, app_id: &str, rank: u32) -> bool {
        match self.io.latest_complete(app_id, rank) {
            Some(key) => self.io.tamper(&key, 1023),
            None => false,
        }
    }

    /// Immutable access to the NVM store.
    pub fn nvm(&self) -> &NvmStore {
        &self.nvm
    }

    /// Immutable access to the partner node's replica store, if the
    /// partner level is enabled.
    pub fn partner(&self) -> Option<&NvmStore> {
        self.partner.as_ref()
    }

    /// Mutable access to the NDP's NIC buffer (scenario control:
    /// blocking the network emulates application traffic contention).
    pub fn nic_blocked(&mut self, blocked: bool) {
        self.ndp.nic.blocked = blocked;
    }

    /// Immutable access to the remote I/O node.
    pub fn io(&self) -> &IoNode {
        &self.io
    }

    /// Immutable access to the fault plane (fault log, per-site counts).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Mutable access to the fault plane. Chaos harnesses use this to
    /// quiesce injection (`set_active(false)`) around oracle restores.
    pub fn faults_mut(&mut self) -> &mut FaultPlane {
        &mut self.faults
    }

    /// The configuration in force.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Attach one observability bus to every subsystem of this node.
    ///
    /// The NVM store, drain engine, remote I/O node and fault plane all
    /// receive clones of the same bus, so their events interleave in one
    /// stream in emission order. Observation never perturbs behaviour: a
    /// disabled bus (the default) makes every emission a no-op.
    pub fn set_observer(&mut self, bus: &cr_obs::Bus) {
        self.nvm.set_bus(bus.clone());
        self.ndp.set_bus(bus.clone());
        self.io.set_bus(bus.clone());
        self.faults.set_bus(bus.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> ComputeNode {
        let mut n = ComputeNode::new(NodeConfig::small_test());
        n.register_app("app");
        n
    }

    fn payload(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| tag ^ (i % 251) as u8).collect()
    }

    #[test]
    fn local_restore_round_trip() {
        let mut n = node();
        let data = payload(1, 1 << 20);
        n.checkpoint("app", &data).unwrap();
        n.inject_failure(FailureKind::LocalSurvivable);
        let r = n.restore("app").unwrap();
        assert_eq!(r.source, RestoreSource::LocalNvm);
        assert_eq!(r.data, data);
    }

    #[test]
    fn remote_restore_round_trip_after_node_loss() {
        let mut n = node();
        let d1 = payload(1, 900_000);
        let d2 = payload(2, 900_000);
        n.checkpoint("app", &d1).unwrap();
        n.checkpoint("app", &d2).unwrap(); // 2nd -> drained (ratio 2)
        n.drain_all().unwrap();
        n.inject_failure(FailureKind::NodeLoss);
        let r = n.restore("app").unwrap();
        assert_eq!(r.source, RestoreSource::RemoteIo);
        assert_eq!(r.data, d2, "must recover the drained checkpoint");
        assert_eq!(r.meta.ckpt_id, 1);
    }

    #[test]
    fn node_loss_without_drain_loses_everything() {
        let mut n = node();
        n.checkpoint("app", &payload(1, 100_000)).unwrap();
        n.inject_failure(FailureKind::NodeLoss);
        assert!(matches!(
            n.restore("app").unwrap_err(),
            NodeError::NoCheckpoint
        ));
    }

    #[test]
    fn restore_prefers_newest_local() {
        let mut n = node();
        for i in 0..5u8 {
            n.checkpoint("app", &payload(i, 200_000)).unwrap();
        }
        let r = n.restore("app").unwrap();
        assert_eq!(r.meta.ckpt_id, 4);
        assert_eq!(r.data, payload(4, 200_000));
    }

    #[test]
    fn mid_drain_node_loss_recovers_older_durable_checkpoint() {
        let mut n = node();
        let d2 = payload(2, 800_000);
        n.checkpoint("app", &payload(1, 800_000)).unwrap();
        n.checkpoint("app", &d2).unwrap(); // drained fully below
        n.drain_all().unwrap();
        n.checkpoint("app", &payload(3, 800_000)).unwrap();
        let d4 = payload(4, 800_000);
        n.checkpoint("app", &d4).unwrap(); // starts draining ...
        for _ in 0..3 {
            n.ndp_step().unwrap(); // ... but only partially
        }
        n.inject_failure(FailureKind::NodeLoss);
        // Incomplete drain of #3 (ckpt_id 3) must not be recoverable;
        // #1 (d2) is.
        let r = n.restore("app").unwrap();
        assert_eq!(r.source, RestoreSource::RemoteIo);
        assert_eq!(r.data, d2);
    }

    #[test]
    fn remote_restore_reseeds_local_nvm() {
        let mut n = node();
        let d = payload(7, 600_000);
        n.checkpoint("app", &payload(6, 600_000)).unwrap();
        n.checkpoint("app", &d).unwrap();
        n.drain_all().unwrap();
        n.inject_failure(FailureKind::NodeLoss);
        let _ = n.restore("app").unwrap();
        // A second, local-survivable failure now restores locally.
        n.inject_failure(FailureKind::LocalSurvivable);
        let r2 = n.restore("app").unwrap();
        assert_eq!(r2.source, RestoreSource::LocalNvm);
        assert_eq!(r2.data, d);
    }

    #[test]
    fn unknown_app_is_rejected() {
        let mut n = node();
        assert!(matches!(
            n.checkpoint("ghost", b"x").unwrap_err(),
            NodeError::UnknownApp(_)
        ));
        assert!(matches!(
            n.restore("ghost").unwrap_err(),
            NodeError::UnknownApp(_)
        ));
    }

    #[test]
    fn uncompressed_drain_config_works() {
        let mut n = ComputeNode::new(NodeConfig {
            codec: None,
            drain_ratio: 1,
            ..NodeConfig::small_test()
        });
        n.register_app("app");
        let d = payload(9, 500_000);
        n.checkpoint("app", &d).unwrap();
        n.drain_all().unwrap();
        n.inject_failure(FailureKind::NodeLoss);
        let r = n.restore("app").unwrap();
        assert_eq!(r.data, d);
    }

    #[test]
    fn drain_ratio_selects_every_kth() {
        let mut n = ComputeNode::new(NodeConfig {
            drain_ratio: 3,
            ..NodeConfig::small_test()
        });
        n.register_app("app");
        for i in 0..9u8 {
            n.checkpoint("app", &payload(i, 100_000)).unwrap();
        }
        n.drain_all().unwrap();
        // Checkpoints 2, 5, 8 drained.
        assert_eq!(n.ndp_stats().drains_completed, 3);
        assert_eq!(n.io().object_count(), 3);
    }

    #[test]
    fn ranks_restore_independently() {
        let mut n = node();
        let r0 = payload(1, 300_000);
        let r1 = payload(2, 300_000);
        n.checkpoint_rank("app", 0, &r0).unwrap();
        n.checkpoint_rank("app", 1, &r1).unwrap();
        assert_eq!(n.restore_rank("app", 0).unwrap().data, r0);
        assert_eq!(n.restore_rank("app", 1).unwrap().data, r1);
    }

    #[test]
    fn virtual_clock_accumulates() {
        let mut n = node();
        n.checkpoint("app", &payload(1, 1 << 20)).unwrap();
        n.checkpoint("app", &payload(2, 1 << 20)).unwrap();
        n.drain_all().unwrap();
        let c = *n.clock();
        assert!(c.host_nvm > 0.0);
        assert!(c.ndp_compute > 0.0);
        assert!(c.io_link > 0.0);
        // NDP time dwarfs host time at these bandwidths (that is the
        // point of the offload).
        assert!(c.background() > c.critical_path());
    }

    #[test]
    fn nvm_wraparound_under_many_checkpoints() {
        // Region fits ~6 checkpoints; take 40 and keep restoring.
        let mut n = ComputeNode::new(NodeConfig {
            nvm_uncompressed: 6 * 120_000,
            drain_ratio: 4,
            ..NodeConfig::small_test()
        });
        n.register_app("app");
        for i in 0..40u8 {
            n.checkpoint("app", &payload(i, 100_000)).unwrap();
            n.drain_all().unwrap();
        }
        assert!(n.nvm().evictions > 0, "wraparound must have evicted");
        let r = n.restore("app").unwrap();
        assert_eq!(r.meta.ckpt_id, 39);
        assert_eq!(r.data, payload(39, 100_000));
    }
}
