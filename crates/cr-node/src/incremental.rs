//! Hash-based incremental checkpointing and cross-rank deduplication —
//! the paper's §7 future-work NDP optimizations ("NDP is well suited to
//! compare data for consecutive checkpoints and checkpoints of
//! neighboring MPI rank"), in the style of libhashckpt \[22\] and
//! checkpoint-deduplication work \[23, 24\].
//!
//! * [`BlockHasher`] — 128-bit per-block fingerprints (two independent
//!   64-bit FNV-1a variants; collision odds ~2⁻¹²⁸ per pair, and the
//!   dedup store additionally verifies bytes on insert).
//! * [`IncrementalEncoder`] — diffs a checkpoint against the previous
//!   one block-by-block, emitting only changed blocks plus an
//!   unchanged-block map; [`apply_incremental`] reconstructs.
//! * [`DedupStore`] — content-addressed block store for checkpoints of
//!   neighboring ranks: identical blocks (ghost zones, common constants,
//!   zero pages) are stored once.

use std::collections::HashMap;

/// Default diff granularity, bytes.
pub const DEFAULT_BLOCK: usize = 64 * 1024;

/// A 128-bit content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64, pub u64);

/// Computes per-block fingerprints.
#[derive(Debug, Clone, Copy)]
pub struct BlockHasher {
    /// Block size in bytes (last block may be short).
    pub block_size: usize,
}

impl BlockHasher {
    /// Creates a hasher with the given block size.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 64, "block size too small to be useful");
        BlockHasher { block_size }
    }

    /// Fingerprints one block.
    pub fn fingerprint(data: &[u8]) -> Fingerprint {
        // Two FNV-1a streams with distinct offsets/primes.
        let mut a: u64 = 0xcbf2_9ce4_8422_2325;
        let mut b: u64 = 0x6c62_272e_07bb_0142;
        for &byte in data {
            a ^= byte as u64;
            a = a.wrapping_mul(0x0000_0100_0000_01B3);
            b ^= (byte as u64).rotate_left(17) ^ 0xA5;
            b = b.wrapping_mul(0x0000_0001_0000_01B3 | 1);
        }
        // Finalization avalanche.
        a ^= a >> 33;
        a = a.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        b ^= b >> 29;
        b = b.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        Fingerprint(a ^ (b >> 7), b ^ (a >> 13))
    }

    /// Fingerprints every block of an image.
    pub fn fingerprint_image(&self, data: &[u8]) -> Vec<Fingerprint> {
        data.chunks(self.block_size)
            .map(Self::fingerprint)
            .collect()
    }
}

/// One entry of an incremental image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockDelta {
    /// Block identical to the base checkpoint's block at the same
    /// index.
    Unchanged,
    /// Block payload replacing the base block.
    Data(Vec<u8>),
}

/// An incremental checkpoint: deltas against a base checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalImage {
    /// Total uncompressed size of the checkpoint this encodes.
    pub full_size: usize,
    /// Diff block size.
    pub block_size: usize,
    /// Per-block deltas, in order.
    pub blocks: Vec<BlockDelta>,
}

impl IncrementalImage {
    /// Bytes of actual payload carried (the changed blocks).
    pub fn payload_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match b {
                BlockDelta::Unchanged => 0,
                BlockDelta::Data(d) => d.len(),
            })
            .sum()
    }

    /// Fraction of blocks that changed.
    pub fn changed_fraction(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        let changed = self
            .blocks
            .iter()
            .filter(|b| matches!(b, BlockDelta::Data(_)))
            .count();
        changed as f64 / self.blocks.len() as f64
    }

    /// Serializes to a compact byte stream
    /// (`[u64 full][u32 block][u32 n]` then per block a tag byte and,
    /// for data blocks, `[u32 len][bytes]`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() + 64);
        out.extend_from_slice(b"INCR");
        out.extend_from_slice(&(self.full_size as u64).to_le_bytes());
        out.extend_from_slice(&(self.block_size as u32).to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for b in &self.blocks {
            match b {
                BlockDelta::Unchanged => out.push(0),
                BlockDelta::Data(d) => {
                    out.push(1);
                    out.extend_from_slice(&(d.len() as u32).to_le_bytes());
                    out.extend_from_slice(d);
                }
            }
        }
        out
    }

    /// Parses a stream produced by [`IncrementalImage::encode`].
    ///
    /// Defensive against malformed and adversarial input: every header
    /// field is validated against the bytes actually present *before*
    /// any allocation is sized from it, all multi-byte reads are
    /// bounds-checked, and no path can panic or abort — truncated,
    /// fuzzed, or internally inconsistent streams return `Err`.
    pub fn decode(data: &[u8]) -> Result<Self, String> {
        /// Upper bound on the advertised diff-block size: a header
        /// claiming more than this is garbage, not a checkpoint.
        const MAX_BLOCK_SIZE: usize = 1 << 30;

        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= data.len())
                .ok_or_else(|| String::from("truncated incremental image"))?;
            let s = &data[*pos..end];
            *pos = end;
            Ok(s)
        };
        let read_u32 = |pos: &mut usize| -> Result<u32, String> {
            let b: [u8; 4] = take(pos, 4)?
                .try_into()
                .map_err(|_| String::from("short u32 field"))?;
            Ok(u32::from_le_bytes(b))
        };

        let mut pos = 0usize;
        if take(&mut pos, 4)? != b"INCR" {
            return Err("bad incremental magic".into());
        }
        let full_size_raw: [u8; 8] = take(&mut pos, 8)?
            .try_into()
            .map_err(|_| String::from("short u64 field"))?;
        let full_size = u64::from_le_bytes(full_size_raw);
        let block_size = read_u32(&mut pos)? as usize;
        let n = read_u32(&mut pos)? as usize;
        if block_size == 0 || block_size > MAX_BLOCK_SIZE {
            return Err("implausible incremental block size".into());
        }
        // Geometry must be self-consistent (u128 math: `full_size` is
        // attacker-controlled and may not fit usize arithmetic)...
        if n as u128 != (full_size as u128).div_ceil(block_size as u128) {
            return Err("inconsistent incremental geometry".into());
        }
        let full_size = usize::try_from(full_size)
            .map_err(|_| String::from("incremental image too large"))?;
        // ...and the block count must be coverable by the bytes that
        // are actually present (each block costs at least its 1-byte
        // tag), so `n` can never size an allocation beyond the input.
        if n > data.len() - pos {
            return Err("block count exceeds stream length".into());
        }
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            match take(&mut pos, 1)?[0] {
                0 => blocks.push(BlockDelta::Unchanged),
                1 => {
                    let len = read_u32(&mut pos)? as usize;
                    if len > block_size {
                        return Err("block overruns block size".into());
                    }
                    blocks.push(BlockDelta::Data(take(&mut pos, len)?.to_vec()));
                }
                t => return Err(format!("bad block tag {t}")),
            }
        }
        Ok(IncrementalImage {
            full_size,
            block_size,
            blocks,
        })
    }
}

/// Diffs successive checkpoints of one application rank. Keeps only
/// fingerprints of the previous checkpoint (libhashckpt's trick: no
/// copy of the old data is needed).
#[derive(Debug)]
pub struct IncrementalEncoder {
    hasher: BlockHasher,
    prev: Option<(usize, Vec<Fingerprint>)>,
}

impl IncrementalEncoder {
    /// Creates an encoder with the given block size.
    pub fn new(block_size: usize) -> Self {
        IncrementalEncoder {
            hasher: BlockHasher::new(block_size),
            prev: None,
        }
    }

    /// True if the next [`IncrementalEncoder::encode`] can produce a
    /// delta (a base exists and geometry matches).
    pub fn has_base(&self, data_len: usize) -> bool {
        matches!(&self.prev, Some((len, _)) if *len == data_len)
    }

    /// Encodes `data` against the previous checkpoint, updating the
    /// stored fingerprints. Returns `None` (caller must ship a full
    /// checkpoint) when no compatible base exists.
    pub fn encode(&mut self, data: &[u8]) -> Option<IncrementalImage> {
        let hashes = self.hasher.fingerprint_image(data);
        let result = match &self.prev {
            Some((len, prev_hashes)) if *len == data.len() => {
                let blocks = data
                    .chunks(self.hasher.block_size)
                    .zip(hashes.iter())
                    .enumerate()
                    .map(|(i, (chunk, h))| {
                        if prev_hashes.get(i) == Some(h) {
                            BlockDelta::Unchanged
                        } else {
                            BlockDelta::Data(chunk.to_vec())
                        }
                    })
                    .collect();
                Some(IncrementalImage {
                    full_size: data.len(),
                    block_size: self.hasher.block_size,
                    blocks,
                })
            }
            _ => None,
        };
        self.prev = Some((data.len(), hashes));
        result
    }

    /// Forgets the base (node loss destroyed it, or a fresh full
    /// checkpoint is being forced).
    pub fn reset(&mut self) {
        self.prev = None;
    }
}

/// Reconstructs a checkpoint from a base image plus an incremental.
pub fn apply_incremental(
    base: &[u8],
    incr: &IncrementalImage,
) -> Result<Vec<u8>, String> {
    if base.len() != incr.full_size {
        return Err(format!(
            "base size {} does not match incremental {}",
            base.len(),
            incr.full_size
        ));
    }
    let mut out = Vec::with_capacity(incr.full_size);
    for (i, delta) in incr.blocks.iter().enumerate() {
        let start = i * incr.block_size;
        let end = (start + incr.block_size).min(incr.full_size);
        match delta {
            BlockDelta::Unchanged => out.extend_from_slice(&base[start..end]),
            BlockDelta::Data(d) => {
                if d.len() != end - start {
                    return Err("data block has wrong length".into());
                }
                out.extend_from_slice(d);
            }
        }
    }
    Ok(out)
}

/// Content-addressed block store deduplicating checkpoints across MPI
/// ranks (§7's second NDP opportunity). Bytes are verified on insert,
/// so fingerprint collisions cannot corrupt data.
#[derive(Debug, Default)]
pub struct DedupStore {
    blocks: HashMap<Fingerprint, Vec<u8>>,
    /// Bytes that would have been stored without dedup.
    pub logical_bytes: u64,
    /// Bytes actually stored.
    pub stored_bytes: u64,
}

/// A deduplicated checkpoint: the recipe of fingerprints to reassemble
/// it from a [`DedupStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupRecipe {
    /// Total size.
    pub full_size: usize,
    /// Block size used.
    pub block_size: usize,
    /// Fingerprint of each block in order.
    pub blocks: Vec<Fingerprint>,
}

impl DedupStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a checkpoint, storing only novel blocks. Returns the
    /// reassembly recipe.
    pub fn ingest(&mut self, data: &[u8], block_size: usize) -> DedupRecipe {
        let mut blocks = Vec::with_capacity(data.len().div_ceil(block_size));
        for chunk in data.chunks(block_size) {
            let fp = BlockHasher::fingerprint(chunk);
            self.logical_bytes += chunk.len() as u64;
            match self.blocks.get(&fp) {
                Some(existing) => {
                    // Verify to make collisions impossible in practice.
                    assert_eq!(
                        existing.as_slice(),
                        chunk,
                        "fingerprint collision detected"
                    );
                }
                None => {
                    self.stored_bytes += chunk.len() as u64;
                    self.blocks.insert(fp, chunk.to_vec());
                }
            }
            blocks.push(fp);
        }
        DedupRecipe {
            full_size: data.len(),
            block_size,
            blocks,
        }
    }

    /// Reassembles a checkpoint from its recipe.
    pub fn reassemble(&self, recipe: &DedupRecipe) -> Result<Vec<u8>, String> {
        let mut out = Vec::with_capacity(recipe.full_size);
        for fp in &recipe.blocks {
            let block = self
                .blocks
                .get(fp)
                .ok_or_else(|| "missing block in dedup store".to_string())?;
            out.extend_from_slice(block);
        }
        if out.len() != recipe.full_size {
            return Err("reassembled size mismatch".into());
        }
        Ok(out)
    }

    /// Dedup factor achieved so far: `1 − stored/logical`.
    pub fn dedup_factor(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
    }

    /// Number of unique blocks held.
    pub fn unique_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| tag ^ ((i / 7) % 251) as u8).collect()
    }

    #[test]
    fn fingerprints_differ_on_small_changes() {
        let a = image(0, 4096);
        let mut b = a.clone();
        b[2048] ^= 1;
        assert_ne!(BlockHasher::fingerprint(&a), BlockHasher::fingerprint(&b));
        assert_eq!(
            BlockHasher::fingerprint(&a),
            BlockHasher::fingerprint(&a.clone())
        );
    }

    #[test]
    fn incremental_detects_sparse_changes() {
        let mut enc = IncrementalEncoder::new(1024);
        let base = image(1, 64 * 1024);
        assert!(enc.encode(&base).is_none(), "first checkpoint is full");
        let mut next = base.clone();
        // Touch two blocks.
        next[100] ^= 0xFF;
        next[50_000] ^= 0xFF;
        let incr = enc.encode(&next).expect("delta expected");
        assert_eq!(incr.blocks.len(), 64);
        let changed = incr
            .blocks
            .iter()
            .filter(|b| matches!(b, BlockDelta::Data(_)))
            .count();
        assert_eq!(changed, 2);
        assert!(incr.payload_bytes() <= 2 * 1024);
        assert_eq!(apply_incremental(&base, &incr).unwrap(), next);
    }

    #[test]
    fn incremental_chain_reconstructs() {
        let mut enc = IncrementalEncoder::new(512);
        let v1 = image(3, 10_000);
        enc.encode(&v1);
        let mut v2 = v1.clone();
        v2[999] = 0xAA;
        let d2 = enc.encode(&v2).unwrap();
        let mut v3 = v2.clone();
        v3[5_000] = 0xBB;
        v3[5_600] = 0xCC;
        let d3 = enc.encode(&v3).unwrap();
        // Chain: v1 + d2 -> v2; v2 + d3 -> v3.
        let r2 = apply_incremental(&v1, &d2).unwrap();
        assert_eq!(r2, v2);
        let r3 = apply_incremental(&r2, &d3).unwrap();
        assert_eq!(r3, v3);
    }

    #[test]
    fn size_change_forces_full_checkpoint() {
        let mut enc = IncrementalEncoder::new(1024);
        enc.encode(&image(1, 8192));
        assert!(enc.encode(&image(1, 4096)).is_none());
        // But the new size becomes the base for the next one.
        assert!(enc.encode(&image(1, 4096)).is_some());
    }

    #[test]
    fn reset_forgets_base() {
        let mut enc = IncrementalEncoder::new(1024);
        let img = image(2, 8192);
        enc.encode(&img);
        assert!(enc.has_base(img.len()));
        enc.reset();
        assert!(!enc.has_base(img.len()));
        assert!(enc.encode(&img).is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut enc = IncrementalEncoder::new(777); // odd block size
        let base = image(9, 10_001); // non-multiple length
        enc.encode(&base);
        let mut next = base.clone();
        next[9_999] ^= 1;
        let incr = enc.encode(&next).unwrap();
        let bytes = incr.encode();
        let back = IncrementalImage::decode(&bytes).unwrap();
        assert_eq!(back, incr);
        assert_eq!(apply_incremental(&base, &back).unwrap(), next);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(IncrementalImage::decode(b"nope").is_err());
        let mut enc = IncrementalEncoder::new(1024);
        let base = image(4, 4096);
        enc.encode(&base);
        let incr = enc.encode(&base).unwrap();
        let bytes = incr.encode();
        for cut in [3, 10, bytes.len() - 1] {
            assert!(IncrementalImage::decode(&bytes[..cut]).is_err());
        }
        // Corrupt the block count.
        let mut bad = bytes.clone();
        bad[16] ^= 0xFF;
        assert!(IncrementalImage::decode(&bad).is_err());
    }

    #[test]
    fn decode_never_panics_on_any_truncation() {
        // Regression for a decode path that trusted header fields: every
        // prefix of a valid stream must come back as Err, never panic.
        let mut enc = IncrementalEncoder::new(512);
        let base = image(13, 5_000);
        enc.encode(&base);
        let mut next = base.clone();
        next[123] ^= 0x80;
        next[4_321] ^= 0x08;
        let bytes = enc.encode(&next).unwrap().encode();
        for cut in 0..bytes.len() {
            assert!(
                IncrementalImage::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must be a decode error"
            );
        }
        assert!(IncrementalImage::decode(&bytes).is_ok());
    }

    #[test]
    fn decode_rejects_huge_header_fields_without_allocating() {
        // A fuzzed header advertising a giant block count or image size
        // must fail fast — not attempt a multi-gigabyte allocation.
        let mut huge_n = Vec::new();
        huge_n.extend_from_slice(b"INCR");
        huge_n.extend_from_slice(&u64::MAX.to_le_bytes()); // full_size
        huge_n.extend_from_slice(&1024u32.to_le_bytes()); // block_size
        huge_n.extend_from_slice(&u32::MAX.to_le_bytes()); // n
        assert!(IncrementalImage::decode(&huge_n).is_err());

        // Geometry self-consistent (n = ceil(full/block)) but the block
        // count vastly exceeds the bytes present.
        let mut consistent = Vec::new();
        consistent.extend_from_slice(b"INCR");
        let block = 1024u32;
        let n = 1_000_000u32;
        let full = (n as u64) * (block as u64);
        consistent.extend_from_slice(&full.to_le_bytes());
        consistent.extend_from_slice(&block.to_le_bytes());
        consistent.extend_from_slice(&n.to_le_bytes());
        assert!(IncrementalImage::decode(&consistent).is_err());

        // Implausible block size.
        let mut big_block = Vec::new();
        big_block.extend_from_slice(b"INCR");
        big_block.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
        big_block.extend_from_slice(&u32::MAX.to_le_bytes());
        big_block.extend_from_slice(&1u32.to_le_bytes());
        assert!(IncrementalImage::decode(&big_block).is_err());
    }

    #[test]
    fn decode_survives_seeded_fuzz() {
        use cr_rand::ChaCha8;
        let mut rng = ChaCha8::seed_from_u64(0xFACE_FEED);
        let mut enc = IncrementalEncoder::new(256);
        let base = image(14, 3_000);
        enc.encode(&base);
        let valid = enc.encode(&base).unwrap().encode();
        let mut ok = 0u32;
        for _ in 0..2_000 {
            // Mix of mutated-valid streams and pure noise, all of which
            // must decode to Ok or Err — never panic or abort.
            let mut buf = valid.clone();
            let flips = 1 + (rng.next_u32() % 8) as usize;
            for _ in 0..flips {
                let idx = (rng.next_u64() % buf.len() as u64) as usize;
                buf[idx] ^= rng.next_u32() as u8;
            }
            let cut = (rng.next_u64() % (buf.len() as u64 + 1)) as usize;
            if IncrementalImage::decode(&buf[..cut]).is_ok() {
                ok += 1;
            }
            let mut noise = vec![0u8; (rng.next_u32() % 64) as usize];
            rng.fill(&mut noise);
            let _ = IncrementalImage::decode(&noise);
        }
        // Sanity: the harness actually exercised the parser (some
        // mutants may still parse; most must not).
        assert!(ok < 2_000);
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let mut enc = IncrementalEncoder::new(1024);
        let base = image(5, 8192);
        enc.encode(&base);
        let incr = enc.encode(&base).unwrap();
        assert!(apply_incremental(&base[..4096], &incr).is_err());
    }

    #[test]
    fn unchanged_checkpoint_is_nearly_free() {
        let mut enc = IncrementalEncoder::new(4096);
        let img = image(6, 1 << 20);
        enc.encode(&img);
        let incr = enc.encode(&img).unwrap();
        assert_eq!(incr.payload_bytes(), 0);
        assert_eq!(incr.changed_fraction(), 0.0);
        assert!(incr.encode().len() < 1024, "map overhead only");
    }

    #[test]
    fn dedup_across_identical_ranks() {
        let mut store = DedupStore::new();
        let img = image(7, 256 * 1024);
        let r1 = store.ingest(&img, 4096);
        let r2 = store.ingest(&img, 4096);
        assert!(store.dedup_factor() > 0.49, "{}", store.dedup_factor());
        assert_eq!(store.reassemble(&r1).unwrap(), img);
        assert_eq!(store.reassemble(&r2).unwrap(), img);
    }

    #[test]
    fn dedup_on_partially_shared_ranks() {
        let mut store = DedupStore::new();
        // Two ranks sharing a common "constant table" region.
        let shared = image(8, 128 * 1024);
        let mut rank_a = shared.clone();
        rank_a.extend(image(10, 128 * 1024));
        let mut rank_b = shared;
        rank_b.extend(image(11, 128 * 1024));
        let ra = store.ingest(&rank_a, 4096);
        let rb = store.ingest(&rank_b, 4096);
        let f = store.dedup_factor();
        assert!(f > 0.2 && f < 0.35, "dedup factor {f}");
        assert_eq!(store.reassemble(&ra).unwrap(), rank_a);
        assert_eq!(store.reassemble(&rb).unwrap(), rank_b);
    }

    #[test]
    fn dedup_zero_pages_collapse() {
        let mut store = DedupStore::new();
        let zeros = vec![0u8; 1 << 20];
        store.ingest(&zeros, 4096);
        assert_eq!(store.unique_blocks(), 1);
        assert!(store.dedup_factor() > 0.99);
    }

    #[test]
    fn reassemble_missing_block_errors() {
        let mut store = DedupStore::new();
        let img = image(12, 8192);
        let mut recipe = store.ingest(&img, 4096);
        recipe.blocks[0] = Fingerprint(1, 2); // bogus
        assert!(store.reassemble(&recipe).is_err());
    }
}
