//! Virtual-time accounting for the functional node.
//!
//! The functional emulation executes as fast as the machine allows, but
//! each data movement is *charged* to the resource that would perform it
//! (host↔NVM, NDP compression, NIC/global-I/O link), using the modeled
//! bandwidths of the configuration. This keeps the mechanism tests fast
//! while still exposing the timing relationships (e.g. host-visible time
//! vs background drain time) that the paper's Figure 3 illustrates.

/// Accumulated virtual busy-time per resource, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VClock {
    /// Host writing/reading checkpoints to/from local NVM (critical
    /// path).
    pub host_nvm: f64,
    /// NDP reading + compressing checkpoint data (background).
    pub ndp_compute: f64,
    /// NIC/global-I/O link shipping compressed blocks (background).
    pub io_link: f64,
    /// Host restoring from remote I/O (critical path during recovery).
    pub restore_io: f64,
}

impl VClock {
    /// Charges a transfer of `bytes` at `bandwidth` bytes/s to a
    /// resource counter.
    pub fn charge(counter: &mut f64, bytes: usize, bandwidth: f64) {
        debug_assert!(bandwidth > 0.0);
        *counter += bytes as f64 / bandwidth;
    }

    /// Host-visible critical-path time (what blocks the application).
    pub fn critical_path(&self) -> f64 {
        self.host_nvm + self.restore_io
    }

    /// Background time hidden from the application by the NDP.
    pub fn background(&self) -> f64 {
        self.ndp_compute.max(self.io_link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut c = VClock::default();
        VClock::charge(&mut c.host_nvm, 15_000_000_000, 15e9);
        VClock::charge(&mut c.host_nvm, 15_000_000_000, 15e9);
        assert!((c.host_nvm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_excludes_background() {
        let c = VClock {
            host_nvm: 5.0,
            ndp_compute: 100.0,
            io_link: 200.0,
            restore_io: 1.0,
        };
        assert_eq!(c.critical_path(), 6.0);
        assert_eq!(c.background(), 200.0);
    }
}
