//! BLCR-style checkpoint metadata (§4.2.1 of the paper).
//!
//! BLCR attaches to each checkpoint the parent process ID, the MPI
//! process (rank) ID and a unique checkpoint ID; the node uses this to
//! track the latest checkpoint and its location per application. This
//! module is that record, plus a compact binary encoding so metadata can
//! live alongside checkpoint bytes in the stores.

use std::fmt;

/// Identifies one checkpoint of one application rank.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CheckpointMeta {
    /// Application identifier (BLCR: parent process id).
    pub app_id: String,
    /// MPI rank whose context this checkpoint holds.
    pub rank: u32,
    /// Monotonic checkpoint ID within the application.
    pub ckpt_id: u64,
    /// Uncompressed payload size, bytes.
    pub size: u64,
    /// Logical timestamp (host checkpoint counter) when taken.
    pub taken_at: u64,
    /// Codec label if the stored payload is compressed (`None` =
    /// uncompressed).
    pub codec: Option<String>,
    /// For incremental checkpoints: the `ckpt_id` of the base this
    /// delta applies to (§7 future-work drains). `None` = full image.
    pub base: Option<u64>,
    /// CRC-64 of the original uncompressed application image, carried
    /// end-to-end so a restore can verify the final reassembled bytes
    /// no matter which level or encoding served them. `0` = not
    /// recorded (internal metadata such as spill frames).
    pub content_crc: u64,
}

impl CheckpointMeta {
    /// Creates metadata for an uncompressed checkpoint.
    pub fn new(app_id: &str, rank: u32, ckpt_id: u64, size: u64, taken_at: u64) -> Self {
        CheckpointMeta {
            app_id: app_id.to_string(),
            rank,
            ckpt_id,
            size,
            taken_at,
            codec: None,
            base: None,
            content_crc: 0,
        }
    }

    /// Returns a copy marked as an incremental delta over `base`.
    pub fn incremental_over(&self, base: u64) -> Self {
        CheckpointMeta {
            base: Some(base),
            ..self.clone()
        }
    }

    /// Returns a copy describing the compressed form of this checkpoint.
    pub fn compressed_with(&self, codec: &str) -> Self {
        CheckpointMeta {
            codec: Some(codec.to_string()),
            ..self.clone()
        }
    }

    /// Serializes to a compact binary record.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(b"CKPTMETA");
        let app = self.app_id.as_bytes();
        out.extend_from_slice(&(app.len() as u32).to_le_bytes());
        out.extend_from_slice(app);
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.ckpt_id.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.taken_at.to_le_bytes());
        match &self.codec {
            None => out.extend_from_slice(&0u32.to_le_bytes()),
            Some(c) => {
                let cb = c.as_bytes();
                out.extend_from_slice(&(cb.len() as u32).to_le_bytes());
                out.extend_from_slice(cb);
            }
        }
        match self.base {
            None => out.push(0),
            Some(b) => {
                out.push(1);
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.content_crc.to_le_bytes());
        out
    }

    /// Parses a record produced by [`CheckpointMeta::encode`].
    pub fn decode(data: &[u8]) -> Result<Self, MetaError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], MetaError> {
            if *pos + n > data.len() {
                return Err(MetaError::Truncated);
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != b"CKPTMETA" {
            return Err(MetaError::BadMagic);
        }
        let app_len =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if app_len > 4096 {
            return Err(MetaError::Truncated);
        }
        let app_id = String::from_utf8(take(&mut pos, app_len)?.to_vec())
            .map_err(|_| MetaError::BadUtf8)?;
        let rank = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let ckpt_id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let size = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let taken_at =
            u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let codec_len =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let codec = if codec_len == 0 {
            None
        } else {
            if codec_len > 256 {
                return Err(MetaError::Truncated);
            }
            Some(
                String::from_utf8(take(&mut pos, codec_len)?.to_vec())
                    .map_err(|_| MetaError::BadUtf8)?,
            )
        };
        let base = match take(&mut pos, 1)?[0] {
            0 => None,
            1 => Some(u64::from_le_bytes(
                take(&mut pos, 8)?.try_into().unwrap(),
            )),
            _ => return Err(MetaError::Truncated),
        };
        let content_crc =
            u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        Ok(CheckpointMeta {
            app_id,
            rank,
            ckpt_id,
            size,
            taken_at,
            codec,
            base,
            content_crc,
        })
    }
}

impl fmt::Display for CheckpointMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[rank {}] ckpt #{} ({} bytes{})",
            self.app_id,
            self.rank,
            self.ckpt_id,
            self.size,
            match &self.codec {
                Some(c) => format!(", {c}"),
                None => String::new(),
            }
        )
    }
}

/// Metadata decoding error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaError {
    /// Record does not start with the expected magic.
    BadMagic,
    /// Record ends prematurely.
    Truncated,
    /// A string field is not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::BadMagic => write!(f, "bad metadata magic"),
            MetaError::Truncated => write!(f, "truncated metadata"),
            MetaError::BadUtf8 => write!(f, "invalid UTF-8 in metadata"),
        }
    }
}

impl std::error::Error for MetaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointMeta {
        CheckpointMeta::new("lulesh", 3, 42, 112_000_000_000, 99)
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        assert_eq!(CheckpointMeta::decode(&m.encode()).unwrap(), m);
        let c = m.compressed_with("gz(1)");
        assert_eq!(CheckpointMeta::decode(&c.encode()).unwrap(), c);
        assert_eq!(c.codec.as_deref(), Some("gz(1)"));
    }

    #[test]
    fn content_crc_round_trips() {
        let mut m = sample();
        m.content_crc = 0xDEAD_BEEF_CAFE_F00D;
        assert_eq!(CheckpointMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn incremental_marker_round_trips() {
        let m = sample().incremental_over(41);
        assert_eq!(m.base, Some(41));
        let back = CheckpointMeta::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        let full = sample();
        assert_eq!(
            CheckpointMeta::decode(&full.encode()).unwrap().base,
            None
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            CheckpointMeta::decode(b"not meta").unwrap_err(),
            MetaError::BadMagic
        );
        let mut enc = sample().encode();
        enc.truncate(enc.len() - 3);
        assert_eq!(
            CheckpointMeta::decode(&enc).unwrap_err(),
            MetaError::Truncated
        );
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let mut enc = sample().encode();
        // Corrupt a byte of the app-id string.
        enc[13] = 0xFF;
        assert!(matches!(
            CheckpointMeta::decode(&enc),
            Err(MetaError::BadUtf8) | Err(MetaError::Truncated)
        ));
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", sample().compressed_with("rz(6)"));
        assert!(s.contains("lulesh") && s.contains("#42") && s.contains("rz(6)"));
    }

    #[test]
    fn huge_length_fields_are_rejected() {
        let mut enc = b"CKPTMETA".to_vec();
        enc.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            CheckpointMeta::decode(&enc).unwrap_err(),
            MetaError::Truncated
        );
    }
}
