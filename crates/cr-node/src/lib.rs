//! # cr-node — functional emulation of an NDP-equipped compute node
//!
//! Where `cr-sim` models the *timing* of the Figure 3 timeline, this
//! crate executes its *mechanisms* on real bytes: an in-memory NVM store
//! organized as the paper's two circular-buffer regions (§4.3), a
//! BLCR-style metadata record per checkpoint (§4.2.1), an NDP drain
//! engine that compresses checkpoints with the real `cr-compress` codecs
//! and ships them block-by-block through a bounded NIC buffer to a
//! remote I/O node (§4.2.2), with both backpressure policies the paper
//! describes (pause, or spill to NVM), failure injection that destroys
//! the right state, and recovery along both paths (§4.2.3).
//!
//! The top-level type is [`node::ComputeNode`]; the operational
//! correctness claims of §4.2 are enforced by this crate's tests:
//! checkpoints restore byte-exactly through every path, locked slots are
//! never evicted, node loss drops exactly the non-I/O-durable state.
//!
//! ```
//! use cr_node::node::{ComputeNode, FailureKind, NodeConfig};
//!
//! let mut node = ComputeNode::new(NodeConfig::small_test());
//! node.register_app("demo");
//! let state = vec![7u8; 200_000];
//! node.checkpoint("demo", &state).unwrap();
//! node.checkpoint("demo", &state).unwrap(); // every 2nd is drained
//! node.drain_all().unwrap();
//! node.inject_failure(FailureKind::NodeLoss);
//! let restored = node.restore("demo").unwrap();
//! assert_eq!(restored.data, state);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod background;
pub mod faults;
pub mod incremental;
pub mod integrity;
pub mod metadata;
pub mod ndp;
pub mod node;
pub mod nvm;
pub mod remote;
pub mod vclock;
