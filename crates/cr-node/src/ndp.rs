//! The NDP drain engine (§4.2.2, §4.3).
//!
//! A deterministic state machine: each [`NdpEngine::step`] performs one
//! unit of work — ship one block from the NIC buffer to the remote I/O
//! node, or compress one block of the checkpoint at the head of the
//! drain queue. The engine:
//!
//! * **pauses** while the host owns the NVM (§4.2.1 — the host calls
//!   [`NdpEngine::pause`]/[`NdpEngine::resume`] around its commits) and
//!   during recoveries (§4.2.3);
//! * compresses and ships **block-by-block**, overlapping compression
//!   with the transfer (§4.2.2's pipelined DMA transactions);
//! * under NIC backpressure either **stalls** (`Pause` policy) or
//!   **spills** compressed blocks to the NVM's compressed region
//!   (`Spill` policy) — the two §4.2.2 options;
//! * **locks** the source checkpoint in NVM for the duration of its
//!   drain and unlocks it when done.
//!
//! Blocks are framed `[u32 raw_len][u32 comp_len][payload]` so the
//! restore path can decompress incrementally (pipelined restore, §4.3).

use std::collections::{HashMap, VecDeque};

use cr_compress::{Codec, CodecError};

use crate::incremental::IncrementalEncoder;
use crate::metadata::CheckpointMeta;
use crate::nvm::{NvmStore, Region, SlotId};
use crate::remote::{IoNode, ObjectKey};
use crate::vclock::VClock;

/// What the NDP does when the NIC buffer is full (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Pause compression until NIC space frees up.
    #[default]
    Pause,
    /// Keep compressing, spilling compressed blocks to the NVM's
    /// compressed region.
    Spill,
}

/// A block waiting in the NIC transmit buffer.
#[derive(Debug)]
struct NicBlock {
    key: ObjectKey,
    data: Vec<u8>,
}

/// Bounded NIC transmit buffer.
#[derive(Debug)]
pub struct NicBuffer {
    queue: VecDeque<NicBlock>,
    capacity: usize,
    /// Test/scenario hook: when true the network refuses traffic,
    /// emulating contention from the application's own communication.
    pub blocked: bool,
}

impl NicBuffer {
    fn new(capacity: usize) -> Self {
        NicBuffer {
            queue: VecDeque::new(),
            capacity,
            blocked: false,
        }
    }

    fn full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Blocks currently queued.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }
}

/// Incremental-drain configuration (§7 future work: the NDP diffs
/// consecutive checkpoints and ships only changed blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalPolicy {
    /// Maximum number of consecutive deltas before a full checkpoint is
    /// forced (bounds the restore chain, like video keyframes).
    pub max_chain: u32,
    /// Diff granularity, bytes.
    pub diff_block: usize,
}

impl Default for IncrementalPolicy {
    fn default() -> Self {
        IncrementalPolicy {
            max_chain: 4,
            diff_block: 64 * 1024,
        }
    }
}

/// Per-(app, rank) incremental drain state.
#[derive(Debug)]
struct IncrState {
    encoder: IncrementalEncoder,
    last_drained_id: u64,
    chain_len: u32,
}

/// One checkpoint being drained.
#[derive(Debug)]
struct DrainJob {
    slot: SlotId,
    key: ObjectKey,
    meta: CheckpointMeta,
    /// Delta payload when shipping an incremental; `None` streams the
    /// slot's full data.
    delta: Option<Vec<u8>>,
    /// Source preparation (diffing) done.
    prepared: bool,
    /// Next uncompressed offset to compress.
    offset: usize,
    /// Object announced to the remote store.
    begun: bool,
    /// Spilled compressed blocks awaiting shipment, in order.
    spilled: VecDeque<SlotId>,
    /// All input compressed; only shipping remains.
    compression_done: bool,
    /// Number of blocks handed to NIC/spill but not yet shipped.
    unshipped: usize,
}

/// Result of one engine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// No work queued.
    Idle,
    /// One unit of work done.
    Progress,
    /// A drain finished (object finalized, slot unlocked).
    CompletedDrain(SlotId),
    /// Paused by the host.
    Paused,
    /// Cannot proceed: NIC full under `Pause` policy, or NVM compressed
    /// region full under `Spill`.
    Stalled,
}

/// Counters for the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NdpStats {
    /// Blocks compressed.
    pub blocks_compressed: u64,
    /// Blocks shipped to the remote node.
    pub blocks_shipped: u64,
    /// Blocks spilled to NVM under backpressure.
    pub blocks_spilled: u64,
    /// Drains completed.
    pub drains_completed: u64,
    /// Drains cancelled by failures.
    pub drains_cancelled: u64,
    /// Drains shipped as incremental deltas rather than full images.
    pub incremental_drains: u64,
}

/// Upper bound on recycled framed-block buffers kept by the engine.
const FRAME_POOL_CAP: usize = 32;

/// The drain engine.
pub struct NdpEngine {
    codec: Option<Box<dyn Codec>>,
    policy: BackpressurePolicy,
    block_size: usize,
    incremental: Option<IncrementalPolicy>,
    incr_state: HashMap<(String, u32), IncrState>,
    /// NIC transmit buffer.
    pub nic: NicBuffer,
    queue: VecDeque<DrainJob>,
    paused: bool,
    next_spill_id: u64,
    /// Recycled framed-block buffers: blocks shipped through the NIC
    /// return their allocation here, so a steady-state drain compresses
    /// every block into an already-sized buffer (no per-block `Vec`).
    frame_pool: Vec<Vec<u8>>,
    /// Modeled NDP compression throughput, bytes/s (virtual-time
    /// charging).
    pub compress_bw: f64,
    /// Event counters.
    pub stats: NdpStats,
}

impl NdpEngine {
    /// Creates an engine. `codec: None` drains uncompressed.
    pub fn new(
        codec: Option<Box<dyn Codec>>,
        policy: BackpressurePolicy,
        block_size: usize,
        nic_capacity: usize,
        compress_bw: f64,
    ) -> Self {
        assert!(block_size >= 1024, "block size unreasonably small");
        assert!(nic_capacity >= 1);
        NdpEngine {
            codec,
            policy,
            block_size,
            incremental: None,
            incr_state: HashMap::new(),
            nic: NicBuffer::new(nic_capacity),
            queue: VecDeque::new(),
            paused: false,
            next_spill_id: 0,
            frame_pool: Vec::new(),
            compress_bw,
            stats: NdpStats::default(),
        }
    }

    /// Enables incremental drains (§7 future work): the NDP diffs each
    /// drained checkpoint against the previous one of the same rank and
    /// ships only changed blocks, forcing a full image every
    /// `policy.max_chain` deltas.
    pub fn enable_incremental(&mut self, policy: IncrementalPolicy) {
        assert!(policy.diff_block >= 64);
        self.incremental = Some(policy);
    }

    /// Codec label used for drained objects (`None` = uncompressed).
    pub fn codec_label(&self) -> Option<String> {
        self.codec.as_ref().map(|c| c.label())
    }

    /// Host is about to use the NVM: suspend drain work (§4.2.1).
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Host released the NVM: drain work may proceed.
    pub fn resume(&mut self) {
        self.paused = false;
    }

    /// Whether the engine is paused.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Queues a checkpoint slot for draining. The caller must have
    /// locked the slot in NVM.
    pub fn enqueue(&mut self, slot: SlotId, meta: CheckpointMeta) {
        let mut drained_meta = meta.clone();
        if let Some(c) = &self.codec {
            drained_meta = meta.compressed_with(&c.label());
        }
        self.queue.push_back(DrainJob {
            slot,
            key: ObjectKey::of(&meta),
            meta: drained_meta,
            delta: None,
            prepared: false,
            offset: 0,
            begun: false,
            spilled: VecDeque::new(),
            compression_done: false,
            unshipped: 0,
        });
    }

    /// Pending drains (including the in-flight head).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Drops all drain state (node-loss failure §4.2.3); the caller
    /// wipes the NVM and aborts incomplete remote objects. Incremental
    /// diff bases die with the node, so the next drain of every rank is
    /// a full checkpoint.
    pub fn reset(&mut self) {
        self.stats.drains_cancelled += self.queue.len() as u64;
        self.queue.clear();
        self.nic.queue.clear();
        self.incr_state.clear();
        self.paused = false;
    }

    /// Performs one unit of drain work.
    pub fn step(
        &mut self,
        nvm: &mut NvmStore,
        io: &mut IoNode,
        clock: &mut VClock,
    ) -> Result<StepOutcome, CodecError> {
        if self.paused {
            return Ok(StepOutcome::Paused);
        }

        // 1. Ship a block from the NIC if the network accepts traffic.
        if !self.nic.blocked {
            if let Some(block) = self.nic.queue.pop_front() {
                VClock::charge(&mut clock.io_link, block.data.len(), io.bandwidth);
                io.append_block(&block.key, &block.data)
                    .map_err(|e| CodecError::new(e.to_string()))?;
                self.stats.blocks_shipped += 1;
                // The shipped block's allocation goes back to the pool
                // for the next compression.
                let mut buf = block.data;
                buf.clear();
                if self.frame_pool.len() < FRAME_POOL_CAP {
                    self.frame_pool.push(buf);
                }
                let mut completed = None;
                if let Some(job) = self
                    .queue
                    .iter_mut()
                    .find(|j| j.key == block.key)
                {
                    job.unshipped -= 1;
                    // Completion is decided at ship time: all input
                    // compressed, nothing spilled, nothing left in the
                    // NIC for this object.
                    if job.compression_done
                        && job.spilled.is_empty()
                        && job.unshipped == 0
                    {
                        io.finalize(&block.key)
                            .map_err(|e| CodecError::new(e.to_string()))?;
                        self.stats.drains_completed += 1;
                        completed = Some(job.slot);
                    }
                }
                if let Some(slot) = completed {
                    self.queue.retain(|j| j.slot != slot);
                    return Ok(StepOutcome::CompletedDrain(slot));
                }
                return Ok(StepOutcome::Progress);
            }
        }

        // 2. Move a spilled block into the NIC when there is room.
        if !self.nic.full() {
            let spill_info = self.queue.iter_mut().find_map(|job| {
                job.spilled
                    .pop_front()
                    .map(|sid| (sid, job.key.clone(), job))
            });
            if let Some((sid, key, job)) = spill_info {
                let slot = nvm
                    .remove(sid)
                    .map_err(|e| CodecError::new(e.to_string()))?;
                job.unshipped += 1;
                self.nic.queue.push_back(NicBlock {
                    key,
                    data: slot.data,
                });
                return Ok(StepOutcome::Progress);
            }
        }

        // 3. Compress the next block of the head job.
        let Some(job) = self
            .queue
            .iter_mut()
            .find(|j| !j.compression_done)
        else {
            // Jobs may still be waiting on shipment; if the NIC is
            // blocked that is a stall, otherwise nothing to do.
            return Ok(if self.queue.is_empty() {
                StepOutcome::Idle
            } else {
                StepOutcome::Stalled
            });
        };

        let nic_available = !self.nic.full();
        if !nic_available && self.policy == BackpressurePolicy::Pause {
            return Ok(StepOutcome::Stalled);
        }

        // Source preparation: under incremental drains, diff against
        // the previous drained checkpoint of this rank (§7) before the
        // first block is compressed.
        if !job.prepared {
            if let Some(policy) = self.incremental {
                let slot_data = &nvm
                    .get(job.slot)
                    .ok_or_else(|| CodecError::new("drain source vanished"))?
                    .data;
                let state = self
                    .incr_state
                    .entry((job.meta.app_id.clone(), job.meta.rank))
                    .or_insert_with(|| IncrState {
                        encoder: IncrementalEncoder::new(policy.diff_block),
                        last_drained_id: 0,
                        chain_len: 0,
                    });
                let want_delta = state.chain_len < policy.max_chain
                    && state.encoder.has_base(slot_data.len());
                let delta = state.encoder.encode(slot_data);
                match (want_delta, delta) {
                    (true, Some(incr)) => {
                        job.meta =
                            job.meta.incremental_over(state.last_drained_id);
                        job.delta = Some(incr.encode());
                        state.chain_len += 1;
                        self.stats.incremental_drains += 1;
                    }
                    _ => state.chain_len = 0,
                }
                state.last_drained_id = job.meta.ckpt_id;
            }
            job.prepared = true;
        }

        if !job.begun {
            io.begin(job.meta.clone())
                .map_err(|e| CodecError::new(e.to_string()))?;
            job.begun = true;
        }

        // Acquire the output buffer before borrowing the source slot:
        // recycled from shipped blocks, else from the NVM's spare pool.
        let mut framed = self
            .frame_pool
            .pop()
            .unwrap_or_else(|| nvm.take_buffer());

        let source_data: &[u8] = match &job.delta {
            Some(d) => d,
            None => {
                &nvm.get(job.slot)
                    .ok_or_else(|| {
                        CodecError::new("drain source slot vanished")
                    })?
                    .data
            }
        };
        let raw_len = source_data.len();
        let start = job.offset;
        let end = (start + self.block_size).min(raw_len);
        let chunk = &source_data[start..end];
        let chunk_len = chunk.len();

        // Frame: [u32 raw][u32 comp][payload], built in place — the
        // codec appends its container directly after the header (via
        // `compress_append`), then the comp_len placeholder is patched.
        // No intermediate per-block `Vec`; the buffer itself is recycled
        // from previously shipped blocks.
        framed.extend_from_slice(&(chunk_len as u32).to_le_bytes());
        framed.extend_from_slice(&[0u8; 4]); // comp_len, patched below
        match &self.codec {
            Some(c) => c.compress_append(chunk, &mut framed),
            None => framed.extend_from_slice(chunk),
        }
        let comp_len = framed.len() - 8;
        framed[4..8].copy_from_slice(&(comp_len as u32).to_le_bytes());
        VClock::charge(&mut clock.ndp_compute, chunk_len, self.compress_bw);
        self.stats.blocks_compressed += 1;

        job.offset = end;
        let is_last_block = end == raw_len;
        if is_last_block {
            job.compression_done = true;
        }
        let slot_to_unlock = if is_last_block { Some(job.slot) } else { None };

        // Blocks must ship in order: once any block of this job has been
        // spilled, later blocks go to the spill queue too.
        if nic_available && job.spilled.is_empty() {
            job.unshipped += 1;
            let key = job.key.clone();
            self.nic.queue.push_back(NicBlock { key, data: framed });
        } else {
            // Spill policy: park the compressed block in the NVM's
            // compressed region.
            self.next_spill_id += 1;
            let spill_meta = CheckpointMeta {
                app_id: format!("__spill__/{}", job.meta.app_id),
                rank: job.meta.rank,
                ckpt_id: job.meta.ckpt_id,
                size: framed.len() as u64,
                taken_at: self.next_spill_id,
                codec: job.meta.codec.clone(),
                base: job.meta.base,
            };
            match nvm.write(Region::Compressed, spill_meta, framed) {
                Ok(sid) => {
                    job.spilled.push_back(sid);
                    self.stats.blocks_spilled += 1;
                }
                Err(_) => {
                    // Compressed region full too: genuine stall. Undo
                    // the offset advance so the block is recompressed.
                    job.offset = start;
                    job.compression_done = false;
                    self.stats.blocks_compressed -= 1;
                    return Ok(StepOutcome::Stalled);
                }
            }
        }

        // Input fully read: the uncompressed slot may be reused
        // (§4.2.2's unlock arrow) even while blocks remain in flight.
        if let Some(slot) = slot_to_unlock {
            nvm.unlock(slot)
                .map_err(|e| CodecError::new(e.to_string()))?;
        }
        Ok(StepOutcome::Progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_compress::registry;

    fn setup(
        policy: BackpressurePolicy,
        codec: bool,
        nic_cap: usize,
    ) -> (NdpEngine, NvmStore, IoNode, VClock) {
        let codec = if codec {
            Some(registry::by_name("gz", 1).unwrap())
        } else {
            None
        };
        (
            NdpEngine::new(codec, policy, 4096, nic_cap, 440e6),
            NvmStore::new(1 << 22, 1 << 20),
            IoNode::new(100e6),
            VClock::default(),
        )
    }

    fn store_and_enqueue(
        engine: &mut NdpEngine,
        nvm: &mut NvmStore,
        ckpt_id: u64,
        data: Vec<u8>,
    ) -> (SlotId, CheckpointMeta) {
        let meta =
            CheckpointMeta::new("app", 0, ckpt_id, data.len() as u64, ckpt_id);
        let slot = nvm
            .write(Region::Uncompressed, meta.clone(), data)
            .unwrap();
        nvm.lock(slot).unwrap();
        engine.enqueue(slot, meta.clone());
        (slot, meta)
    }

    fn drain_to_idle(
        engine: &mut NdpEngine,
        nvm: &mut NvmStore,
        io: &mut IoNode,
        clock: &mut VClock,
    ) {
        for _ in 0..1_000_000 {
            match engine.step(nvm, io, clock).unwrap() {
                StepOutcome::Idle => return,
                StepOutcome::Stalled => panic!("unexpected stall"),
                _ => {}
            }
        }
        panic!("drain did not converge");
    }

    #[test]
    fn drains_compressed_checkpoint_end_to_end() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let data = b"checkpoint payload ".repeat(3000);
        let (slot, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);

        assert_eq!(engine.stats.drains_completed, 1);
        assert!(!nvm.get(slot).unwrap().locked, "slot must unlock");
        let key = ObjectKey::of(&meta);
        let (rmeta, blob) = io.read(&key).unwrap();
        assert_eq!(rmeta.codec.as_deref(), Some("gz(1)"));
        // Framed blocks decompress back to the original bytes.
        let gz = registry::by_name("gz", 1).unwrap();
        let mut restored = Vec::new();
        let mut pos = 0;
        while pos < blob.len() {
            let raw =
                u32::from_le_bytes(blob[pos..pos + 4].try_into().unwrap())
                    as usize;
            let comp =
                u32::from_le_bytes(blob[pos + 4..pos + 8].try_into().unwrap())
                    as usize;
            pos += 8;
            let part =
                gz.decompress_to_vec(&blob[pos..pos + comp]).unwrap();
            assert_eq!(part.len(), raw);
            restored.extend_from_slice(&part);
            pos += comp;
        }
        assert_eq!(restored, data);
        // Compressible payload: remote object smaller than input.
        assert!(blob.len() < data.len() / 2);
        assert!(clock.ndp_compute > 0.0 && clock.io_link > 0.0);
    }

    #[test]
    fn uncompressed_drain_preserves_bytes() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, false, 4);
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let (_, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        let (rmeta, blob) = io.read(&ObjectKey::of(&meta)).unwrap();
        assert!(rmeta.codec.is_none());
        // Strip frames.
        let mut restored = Vec::new();
        let mut pos = 0;
        while pos < blob.len() {
            let raw =
                u32::from_le_bytes(blob[pos..pos + 4].try_into().unwrap())
                    as usize;
            pos += 8;
            restored.extend_from_slice(&blob[pos..pos + raw]);
            pos += raw;
        }
        assert_eq!(restored, data);
    }

    #[test]
    fn pause_blocks_all_progress() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        store_and_enqueue(&mut engine, &mut nvm, 1, vec![1u8; 10_000]);
        engine.pause();
        for _ in 0..10 {
            assert_eq!(
                engine.step(&mut nvm, &mut io, &mut clock).unwrap(),
                StepOutcome::Paused
            );
        }
        assert_eq!(engine.stats.blocks_compressed, 0);
        engine.resume();
        assert_eq!(
            engine.step(&mut nvm, &mut io, &mut clock).unwrap(),
            StepOutcome::Progress
        );
    }

    #[test]
    fn nic_blockage_stalls_under_pause_policy() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 2);
        store_and_enqueue(&mut engine, &mut nvm, 1, vec![7u8; 100_000]);
        engine.nic.blocked = true;
        // Fill the NIC, then stall.
        let mut stalls = 0;
        for _ in 0..50 {
            match engine.step(&mut nvm, &mut io, &mut clock).unwrap() {
                StepOutcome::Stalled => stalls += 1,
                StepOutcome::Progress => {}
                o => panic!("unexpected {o:?}"),
            }
        }
        assert!(stalls > 0);
        assert_eq!(engine.nic.depth(), 2);
        assert_eq!(engine.stats.blocks_spilled, 0);
        // Unblock: everything drains.
        engine.nic.blocked = false;
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        assert_eq!(engine.stats.drains_completed, 1);
    }

    #[test]
    fn nic_blockage_spills_under_spill_policy() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Spill, true, 2);
        let data = vec![3u8; 100_000];
        let (_, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        engine.nic.blocked = true;
        // Compression continues past the NIC capacity by spilling.
        for _ in 0..100 {
            let o = engine.step(&mut nvm, &mut io, &mut clock).unwrap();
            if o == StepOutcome::Stalled {
                break;
            }
        }
        assert!(engine.stats.blocks_spilled > 0, "no spills happened");
        assert!(nvm.used(Region::Compressed) > 0);
        // Unblock: spilled blocks ship in order and the drain finishes.
        engine.nic.blocked = false;
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        assert_eq!(engine.stats.drains_completed, 1);
        assert_eq!(nvm.used(Region::Compressed), 0, "spills reclaimed");
        assert!(io.read(&ObjectKey::of(&meta)).is_some());
    }

    #[test]
    fn multiple_queued_drains_complete_in_order() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let mut metas = Vec::new();
        for id in 1..=3 {
            let data = vec![id as u8; 30_000];
            let (_, meta) = store_and_enqueue(&mut engine, &mut nvm, id, data);
            metas.push(meta);
        }
        assert_eq!(engine.backlog(), 3);
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        assert_eq!(engine.stats.drains_completed, 3);
        for meta in &metas {
            assert!(io.read(&ObjectKey::of(meta)).is_some());
        }
    }

    #[test]
    fn reset_cancels_pending_drains() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        store_and_enqueue(&mut engine, &mut nvm, 1, vec![5u8; 50_000]);
        store_and_enqueue(&mut engine, &mut nvm, 2, vec![6u8; 50_000]);
        // A little progress, then node loss.
        for _ in 0..3 {
            engine.step(&mut nvm, &mut io, &mut clock).unwrap();
        }
        engine.reset();
        nvm.wipe();
        io.abort_incomplete();
        assert_eq!(engine.backlog(), 0);
        assert_eq!(engine.stats.drains_cancelled, 2);
        assert_eq!(
            engine.step(&mut nvm, &mut io, &mut clock).unwrap(),
            StepOutcome::Idle
        );
        assert_eq!(io.object_count(), 0);
    }

    #[test]
    fn idle_engine_reports_idle() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, false, 1);
        assert_eq!(
            engine.step(&mut nvm, &mut io, &mut clock).unwrap(),
            StepOutcome::Idle
        );
    }
}
