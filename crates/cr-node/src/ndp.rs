//! The NDP drain engine (§4.2.2, §4.3).
//!
//! A deterministic state machine: each [`NdpEngine::step`] performs one
//! unit of work — ship one block from the NIC buffer to the remote I/O
//! node, or compress one block of the checkpoint at the head of the
//! drain queue. The engine:
//!
//! * **pauses** while the host owns the NVM (§4.2.1 — the host calls
//!   [`NdpEngine::pause`]/[`NdpEngine::resume`] around its commits) and
//!   during recoveries (§4.2.3);
//! * compresses and ships **block-by-block**, overlapping compression
//!   with the transfer (§4.2.2's pipelined DMA transactions);
//! * under NIC backpressure either **stalls** (`Pause` policy) or
//!   **spills** compressed blocks to the NVM's compressed region
//!   (`Spill` policy) — the two §4.2.2 options;
//! * **locks** the source checkpoint in NVM for the duration of its
//!   drain and unlocks it when done.
//!
//! Blocks are framed `[u32 raw_len][u32 comp_len][payload]` so the
//! restore path can decompress incrementally (pipelined restore, §4.3).

use std::collections::{HashMap, VecDeque};

use cr_compress::{Codec, CodecError};
use cr_obs::stage::{self, Stage};
use cr_obs::{Bus, Event, EventKind, Source, SpanGuard};

use crate::faults::{DegradePolicy, FaultPlane, FaultSite, RetryPolicy};
use crate::incremental::IncrementalEncoder;
use crate::metadata::CheckpointMeta;
use crate::nvm::{NvmStore, Region, SlotId};
use crate::remote::{IoNode, ObjectKey};
use crate::vclock::VClock;

/// What the NDP does when the NIC buffer is full (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Pause compression until NIC space frees up.
    #[default]
    Pause,
    /// Keep compressing, spilling compressed blocks to the NVM's
    /// compressed region.
    Spill,
}

/// A block waiting in the NIC transmit buffer.
#[derive(Debug)]
struct NicBlock {
    key: ObjectKey,
    data: Vec<u8>,
}

/// Bounded NIC transmit buffer.
#[derive(Debug)]
pub struct NicBuffer {
    queue: VecDeque<NicBlock>,
    capacity: usize,
    /// Test/scenario hook: when true the network refuses traffic,
    /// emulating contention from the application's own communication.
    pub blocked: bool,
}

impl NicBuffer {
    fn new(capacity: usize) -> Self {
        NicBuffer {
            queue: VecDeque::new(),
            capacity,
            blocked: false,
        }
    }

    fn full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Blocks currently queued.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }
}

/// Incremental-drain configuration (§7 future work: the NDP diffs
/// consecutive checkpoints and ships only changed blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalPolicy {
    /// Maximum number of consecutive deltas before a full checkpoint is
    /// forced (bounds the restore chain, like video keyframes).
    pub max_chain: u32,
    /// Diff granularity, bytes.
    pub diff_block: usize,
}

impl Default for IncrementalPolicy {
    fn default() -> Self {
        IncrementalPolicy {
            max_chain: 4,
            diff_block: 64 * 1024,
        }
    }
}

/// Per-(app, rank) incremental drain state.
#[derive(Debug)]
struct IncrState {
    encoder: IncrementalEncoder,
    last_drained_id: u64,
    chain_len: u32,
}

/// One checkpoint being drained.
#[derive(Debug)]
struct DrainJob {
    slot: SlotId,
    key: ObjectKey,
    meta: CheckpointMeta,
    /// Delta payload when shipping an incremental; `None` streams the
    /// slot's full data.
    delta: Option<Vec<u8>>,
    /// Source preparation (diffing) done.
    prepared: bool,
    /// Next uncompressed offset to compress.
    offset: usize,
    /// Object announced to the remote store.
    begun: bool,
    /// Spilled compressed blocks awaiting shipment, in order.
    spilled: VecDeque<SlotId>,
    /// All input compressed; only shipping remains.
    compression_done: bool,
    /// Number of blocks handed to NIC/spill but not yet shipped.
    unshipped: usize,
    /// Compressed bytes durably appended to the remote object so far
    /// (reported in the drain-complete event).
    shipped_bytes: u64,
    /// Consecutive transient-failure retries charged to this job.
    attempts: u32,
    /// Engine step before which this job is backing off (exclusive).
    blocked_until: u64,
    /// Codec permanently disabled for this job (degraded drain after a
    /// codec fault).
    force_uncompressed: bool,
    /// Causal leaf span covering the job's queue lifetime (enqueue to
    /// finalize/cancel). `None` on a disabled bus — and after close, so
    /// a job can never close its span twice.
    span: Option<SpanGuard>,
}

impl DrainJob {
    /// All blocks durable remotely; only `finalize` remains.
    fn ready_to_finalize(&self) -> bool {
        self.begun
            && self.compression_done
            && self.spilled.is_empty()
            && self.unshipped == 0
    }
}

/// Result of one engine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// No work queued.
    Idle,
    /// One unit of work done.
    Progress,
    /// A drain finished (object finalized, slot unlocked).
    CompletedDrain(SlotId),
    /// Paused by the host.
    Paused,
    /// Cannot proceed: NIC full under `Pause` policy, or NVM compressed
    /// region full under `Spill`.
    Stalled,
    /// A transient injected fault was absorbed this step: the affected
    /// drain is backing off, being re-driven, or was degraded. The
    /// engine is still live and later steps make progress.
    Retrying,
}

/// Counters for the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NdpStats {
    /// Blocks compressed.
    pub blocks_compressed: u64,
    /// Blocks shipped to the remote node.
    pub blocks_shipped: u64,
    /// Blocks spilled to NVM under backpressure.
    pub blocks_spilled: u64,
    /// Drains completed.
    pub drains_completed: u64,
    /// Drains cancelled by failures.
    pub drains_cancelled: u64,
    /// Drains shipped as incremental deltas rather than full images.
    pub incremental_drains: u64,
    /// Blocks retransmitted after a dropped NIC transfer.
    pub blocks_retransmitted: u64,
    /// Transient remote I/O errors absorbed by retry/backoff.
    pub io_retries: u64,
    /// Drains cancelled after exhausting their retry budget: the
    /// checkpoint stays recoverable locally (and at the partner), but
    /// remote-level coverage degraded for it.
    pub drains_degraded: u64,
    /// NDP engine crashes survived by re-driving in-flight drains.
    pub ndp_crashes: u64,
    /// Drains restarted uncompressed after a codec fault.
    pub codec_fallbacks: u64,
    /// Drains cancelled because their source slot failed integrity
    /// verification: silent NVM rot is never propagated into a remote
    /// object.
    pub drains_source_corrupt: u64,
}

/// Upper bound on recycled framed-block buffers kept by the engine.
const FRAME_POOL_CAP: usize = 32;

/// The drain engine.
pub struct NdpEngine {
    codec: Option<Box<dyn Codec>>,
    policy: BackpressurePolicy,
    block_size: usize,
    incremental: Option<IncrementalPolicy>,
    incr_state: HashMap<(String, u32), IncrState>,
    /// NIC transmit buffer.
    pub nic: NicBuffer,
    queue: VecDeque<DrainJob>,
    paused: bool,
    next_spill_id: u64,
    /// Recycled framed-block buffers: blocks shipped through the NIC
    /// return their allocation here, so a steady-state drain compresses
    /// every block into an already-sized buffer (no per-block `Vec`).
    frame_pool: Vec<Vec<u8>>,
    /// Modeled NDP compression throughput, bytes/s (virtual-time
    /// charging).
    pub compress_bw: f64,
    /// Event counters.
    pub stats: NdpStats,
    /// Retry/backoff budget for transient remote failures.
    retry: RetryPolicy,
    /// What to do when a drain exhausts its retries or the codec fails.
    degrade: DegradePolicy,
    /// Monotonic step counter (the engine's clock; backoff deadlines are
    /// measured against it).
    steps: u64,
    /// Observability bus (disabled by default; see
    /// [`NdpEngine::set_bus`]). Event timestamps are engine steps.
    bus: Bus,
}

impl NdpEngine {
    /// Creates an engine. `codec: None` drains uncompressed.
    pub fn new(
        codec: Option<Box<dyn Codec>>,
        policy: BackpressurePolicy,
        block_size: usize,
        nic_capacity: usize,
        compress_bw: f64,
    ) -> Self {
        assert!(block_size >= 1024, "block size unreasonably small");
        assert!(nic_capacity >= 1);
        NdpEngine {
            codec,
            policy,
            block_size,
            incremental: None,
            incr_state: HashMap::new(),
            nic: NicBuffer::new(nic_capacity),
            queue: VecDeque::new(),
            paused: false,
            next_spill_id: 0,
            frame_pool: Vec::new(),
            compress_bw,
            stats: NdpStats::default(),
            retry: RetryPolicy::default(),
            degrade: DegradePolicy::default(),
            steps: 0,
            bus: Bus::disabled(),
        }
    }

    /// Attaches an observability bus; drain lifecycle events
    /// (start/pause/spill/retry/degrade/cancel/complete) are reported
    /// on it, stamped with the engine's step clock. Disabled by
    /// default.
    pub fn set_bus(&mut self, bus: Bus) {
        self.bus = bus;
    }

    /// Installs the retry and degradation policies (defaults are sane;
    /// chaos configs tighten or loosen them).
    pub fn set_policies(&mut self, retry: RetryPolicy, degrade: DegradePolicy) {
        self.retry = retry;
        self.degrade = degrade;
    }

    /// Enables incremental drains (§7 future work): the NDP diffs each
    /// drained checkpoint against the previous one of the same rank and
    /// ships only changed blocks, forcing a full image every
    /// `policy.max_chain` deltas.
    pub fn enable_incremental(&mut self, policy: IncrementalPolicy) {
        assert!(policy.diff_block >= 64);
        self.incremental = Some(policy);
    }

    /// Codec label used for drained objects (`None` = uncompressed).
    pub fn codec_label(&self) -> Option<String> {
        self.codec.as_ref().map(|c| c.label())
    }

    /// Host is about to use the NVM: suspend drain work (§4.2.1).
    pub fn pause(&mut self) {
        if !self.paused {
            self.emit(EventKind::DrainPause);
        }
        self.paused = true;
    }

    /// Host released the NVM: drain work may proceed.
    pub fn resume(&mut self) {
        if self.paused {
            self.emit(EventKind::DrainResume);
        }
        self.paused = false;
    }

    /// Emits one event on the bus, stamped with the engine's step clock.
    fn emit(&self, kind: EventKind) {
        self.bus.emit_with(|| Event {
            t: self.steps as f64,
            source: Source::Ndp,
            kind,
        });
    }

    /// Whether the engine is paused.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Queues a checkpoint slot for draining. The caller must have
    /// locked the slot in NVM.
    pub fn enqueue(&mut self, slot: SlotId, meta: CheckpointMeta) {
        let mut drained_meta = meta.clone();
        if let Some(c) = &self.codec {
            drained_meta = meta.compressed_with(&c.label());
        }
        // Leaf span: concurrent drain jobs are siblings under the
        // caller's scope, never ancestors of one another.
        let span = self.bus.enabled().then(|| {
            self.bus
                .span_leaf(Source::Ndp, "drain_job", self.steps as f64)
        });
        self.emit(EventKind::DrainStart {
            job: slot.0,
            bytes: meta.size,
        });
        self.queue.push_back(DrainJob {
            slot,
            key: ObjectKey::of(&meta),
            meta: drained_meta,
            delta: None,
            prepared: false,
            offset: 0,
            begun: false,
            spilled: VecDeque::new(),
            compression_done: false,
            unshipped: 0,
            shipped_bytes: 0,
            attempts: 0,
            blocked_until: 0,
            force_uncompressed: false,
            span,
        });
    }

    /// Pending drains (including the in-flight head).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Drops all drain state (node-loss failure §4.2.3); the caller
    /// wipes the NVM and aborts incomplete remote objects. Incremental
    /// diff bases die with the node, so the next drain of every rank is
    /// a full checkpoint.
    pub fn reset(&mut self) {
        self.stats.drains_cancelled += self.queue.len() as u64;
        let t = self.steps as f64;
        for job in &mut self.queue {
            if let Some(mut sp) = job.span.take() {
                sp.close(t);
            }
        }
        self.queue.clear();
        self.nic.queue.clear();
        self.incr_state.clear();
        self.paused = false;
    }

    /// Performs one unit of drain work with no fault injection.
    pub fn step(
        &mut self,
        nvm: &mut NvmStore,
        io: &mut IoNode,
        clock: &mut VClock,
    ) -> Result<StepOutcome, CodecError> {
        let mut plane = FaultPlane::disabled();
        self.step_faulty(nvm, io, clock, &mut plane)
    }

    /// Performs one unit of drain work, consulting the fault plane at
    /// every injection site. With a disabled plane this is exactly
    /// [`NdpEngine::step`].
    pub fn step_faulty(
        &mut self,
        nvm: &mut NvmStore,
        io: &mut IoNode,
        clock: &mut VClock,
        faults: &mut FaultPlane,
    ) -> Result<StepOutcome, CodecError> {
        if self.paused {
            return Ok(StepOutcome::Paused);
        }
        self.steps += 1;
        faults.tick();

        // 0. Finalize a fully-shipped object. Finalization is its own
        // step (and its own fault site): the remote may crash before the
        // object is sealed, in which case the whole drain is re-driven
        // idempotently from the still-locked slot.
        if let Some(pos) = self.queue.iter().position(|j| {
            j.ready_to_finalize() && j.blocked_until <= self.steps
        }) {
            if faults.fire(FaultSite::IoCrash) {
                // Crash-before-finalize: the partial remote object is
                // gone; rewind and re-drive the drain.
                return Ok(self.transient_failure(pos, nvm, io, true, "io_crash"));
            }
            if faults.fire(FaultSite::IoFinalize) {
                self.stats.io_retries += 1;
                return Ok(
                    self.transient_failure(pos, nvm, io, false, "io_finalize")
                );
            }
            let job = &self.queue[pos];
            let key = job.key.clone();
            let slot = job.slot;
            let bytes_out = job.shipped_bytes;
            io.finalize(&key)
                .map_err(|e| CodecError::new(e.to_string()))?;
            self.stats.drains_completed += 1;
            let mut job =
                self.queue.remove(pos).expect("finalize position valid");
            self.emit(EventKind::DrainComplete {
                job: slot.0,
                bytes_out,
            });
            if let Some(mut sp) = job.span.take() {
                sp.close(self.steps as f64);
            }
            return Ok(StepOutcome::CompletedDrain(slot));
        }

        // 1. Ship a block from the NIC if the network accepts traffic.
        if !self.nic.blocked {
            let front = self.nic.queue.front().map(|b| b.key.clone());
            if let Some(front_key) = front {
                let jpos =
                    self.queue.iter().position(|j| j.key == front_key);
                // Head-of-line wait while the owning job backs off.
                let gated = jpos
                    .is_some_and(|p| self.queue[p].blocked_until > self.steps);
                if !gated {
                    if faults.fire(FaultSite::NicStall) {
                        return Ok(StepOutcome::Retrying);
                    }
                    if faults.fire(FaultSite::NicDrop) {
                        // The transfer was lost in flight: the block
                        // stays queued for retransmission, but the link
                        // time is spent.
                        let len = self
                            .nic
                            .queue
                            .front()
                            .map_or(0, |b| b.data.len());
                        VClock::charge(&mut clock.io_link, len, io.bandwidth);
                        self.stats.blocks_retransmitted += 1;
                        return Ok(StepOutcome::Retrying);
                    }
                    if let Some(pos) = jpos {
                        if faults.fire(FaultSite::IoAppend) {
                            self.stats.io_retries += 1;
                            return Ok(self.transient_failure(
                                pos, nvm, io, false, "io_append",
                            ));
                        }
                    }
                    let mut ship_t = stage::timer(Stage::Ship);
                    let block =
                        self.nic.queue.pop_front().expect("front checked");
                    let block_len = block.data.len() as u64;
                    VClock::charge(
                        &mut clock.io_link,
                        block.data.len(),
                        io.bandwidth,
                    );
                    io.append_block(&block.key, &block.data)
                        .map_err(|e| CodecError::new(e.to_string()))?;
                    if let Some(t) = ship_t.as_mut() {
                        t.add_bytes(block_len);
                    }
                    drop(ship_t);
                    self.stats.blocks_shipped += 1;
                    // The shipped block's allocation goes back to the
                    // pool for the next compression.
                    self.recycle(block.data);
                    if let Some(job) =
                        self.queue.iter_mut().find(|j| j.key == block.key)
                    {
                        job.unshipped -= 1;
                        job.shipped_bytes += block_len;
                        job.attempts = 0;
                    }
                    return Ok(StepOutcome::Progress);
                }
            }
        }

        // 2. Move a spilled block into the NIC when there is room.
        if !self.nic.full() {
            let spill_info = self.queue.iter_mut().find_map(|job| {
                job.spilled
                    .pop_front()
                    .map(|sid| (sid, job.key.clone(), job))
            });
            if let Some((sid, key, job)) = spill_info {
                let slot = nvm
                    .remove(sid)
                    .map_err(|e| CodecError::new(e.to_string()))?;
                job.unshipped += 1;
                self.nic.queue.push_back(NicBlock {
                    key,
                    data: slot.data,
                });
                return Ok(StepOutcome::Progress);
            }
        }

        // 3. Compress the next block of the first non-backing-off job.
        let Some(jpos) = self
            .queue
            .iter()
            .position(|j| !j.compression_done && j.blocked_until <= self.steps)
        else {
            // Jobs may still be waiting on shipment, finalize, or a
            // backoff deadline; if the NIC is blocked that is a stall,
            // otherwise nothing to do.
            return Ok(if self.queue.is_empty() {
                StepOutcome::Idle
            } else if self
                .queue
                .iter()
                .any(|j| j.blocked_until > self.steps)
            {
                StepOutcome::Retrying
            } else {
                self.emit(EventKind::DrainStall {
                    cause: "nic_backpressure",
                });
                StepOutcome::Stalled
            });
        };

        let nic_available = !self.nic.full();
        if !nic_available && self.policy == BackpressurePolicy::Pause {
            self.emit(EventKind::DrainStall {
                cause: "nic_backpressure",
            });
            return Ok(StepOutcome::Stalled);
        }

        // The NDP itself can crash mid-drain: every in-flight drain
        // loses its progress (NIC contents included) and is re-driven
        // from its still-locked slot — idempotently, because the partial
        // remote objects are aborted before the re-drive begins.
        if faults.fire(FaultSite::NdpCrash) {
            self.crash_restart(nvm, io);
            return Ok(StepOutcome::Retrying);
        }

        // Source-integrity gate: a drain reading its slot in place must
        // never propagate silent NVM rot into the remote object. Checked
        // before every read — the check before the *final* read is what
        // makes it airtight, since rot striking after the last block is
        // read cannot affect the shipped bytes. (Delta jobs snapshot
        // their payload at prepare time, so only the pre-prepare check
        // applies to them.)
        if self.queue[jpos].delta.is_none() {
            let intact = nvm
                .get(self.queue[jpos].slot)
                .is_some_and(|slot| slot.verify());
            if !intact {
                self.stats.drains_source_corrupt += 1;
                self.cancel_job(jpos, nvm, io);
                return Ok(StepOutcome::Retrying);
            }
        }

        let job = &mut self.queue[jpos];

        // Source preparation: under incremental drains, diff against
        // the previous drained checkpoint of this rank (§7) before the
        // first block is compressed.
        if !job.prepared {
            if let Some(policy) = self.incremental {
                let slot_data = &nvm
                    .get(job.slot)
                    .ok_or_else(|| CodecError::new("drain source vanished"))?
                    .data;
                let state = self
                    .incr_state
                    .entry((job.meta.app_id.clone(), job.meta.rank))
                    .or_insert_with(|| IncrState {
                        encoder: IncrementalEncoder::new(policy.diff_block),
                        last_drained_id: 0,
                        chain_len: 0,
                    });
                let want_delta = state.chain_len < policy.max_chain
                    && state.encoder.has_base(slot_data.len());
                let delta = state.encoder.encode(slot_data);
                match (want_delta, delta) {
                    (true, Some(incr)) => {
                        job.meta =
                            job.meta.incremental_over(state.last_drained_id);
                        job.delta = Some(incr.encode());
                        state.chain_len += 1;
                        self.stats.incremental_drains += 1;
                    }
                    _ => state.chain_len = 0,
                }
                state.last_drained_id = job.meta.ckpt_id;
            }
            job.prepared = true;
        }

        if !self.queue[jpos].begun {
            if faults.fire(FaultSite::IoBegin) {
                self.stats.io_retries += 1;
                return Ok(
                    self.transient_failure(jpos, nvm, io, false, "io_begin")
                );
            }
            let job = &mut self.queue[jpos];
            io.begin(job.meta.clone())
                .map_err(|e| CodecError::new(e.to_string()))?;
            job.begun = true;
            job.attempts = 0;
        }

        // Codec fault: degrade this drain to uncompressed (re-driven
        // from scratch so the remote object is never mixed-codec), or
        // cancel it outright per policy.
        let use_codec =
            self.codec.is_some() && !self.queue[jpos].force_uncompressed;
        if use_codec && faults.fire(FaultSite::CodecFault) {
            self.degrade_codec(jpos, nvm, io);
            return Ok(StepOutcome::Retrying);
        }

        // Acquire the output buffer before borrowing the source slot:
        // recycled from shipped blocks, else from the NVM's spare pool.
        let mut framed = self
            .frame_pool
            .pop()
            .unwrap_or_else(|| nvm.take_buffer());
        let codec_for_job =
            if use_codec { self.codec.as_deref() } else { None };
        let job = &mut self.queue[jpos];

        let source_data: &[u8] = match &job.delta {
            Some(d) => d,
            None => {
                &nvm.get(job.slot)
                    .ok_or_else(|| {
                        CodecError::new("drain source slot vanished")
                    })?
                    .data
            }
        };
        let raw_len = source_data.len();
        let start = job.offset;
        let end = (start + self.block_size).min(raw_len);
        let chunk = &source_data[start..end];
        let chunk_len = chunk.len();

        // Frame: [u32 raw][u32 comp][payload], built in place — the
        // codec appends its container directly after the header (via
        // `compress_append`), then the comp_len placeholder is patched.
        // No intermediate per-block `Vec`; the buffer itself is recycled
        // from previously shipped blocks.
        //
        // The frame stage timer covers the whole block production
        // (header + codec + patch); the codec's own tokenize/entropy
        // sub-stages nest inside it and are reported separately.
        let mut frame_t = stage::timer(Stage::Frame);
        framed.extend_from_slice(&(chunk_len as u32).to_le_bytes());
        framed.extend_from_slice(&[0u8; 4]); // comp_len, patched below
        match codec_for_job {
            Some(c) => c.compress_append(chunk, &mut framed),
            None => framed.extend_from_slice(chunk),
        }
        let comp_len = framed.len() - 8;
        framed[4..8].copy_from_slice(&(comp_len as u32).to_le_bytes());
        if let Some(t) = frame_t.as_mut() {
            t.add_bytes(chunk_len as u64);
        }
        drop(frame_t);
        VClock::charge(&mut clock.ndp_compute, chunk_len, self.compress_bw);
        self.stats.blocks_compressed += 1;

        job.offset = end;
        let is_last_block = end == raw_len;
        if is_last_block {
            job.compression_done = true;
        }
        let slot_to_unlock = if is_last_block { Some(job.slot) } else { None };

        // Blocks must ship in order: once any block of this job has been
        // spilled, later blocks go to the spill queue too.
        if nic_available && job.spilled.is_empty() {
            job.unshipped += 1;
            let key = job.key.clone();
            self.nic.queue.push_back(NicBlock { key, data: framed });
        } else {
            // Spill policy: park the compressed block in the NVM's
            // compressed region.
            self.next_spill_id += 1;
            let spill_meta = CheckpointMeta {
                app_id: format!("__spill__/{}", job.meta.app_id),
                rank: job.meta.rank,
                ckpt_id: job.meta.ckpt_id,
                size: framed.len() as u64,
                taken_at: self.next_spill_id,
                codec: job.meta.codec.clone(),
                base: job.meta.base,
                content_crc: 0,
            };
            let spill_bytes = framed.len() as u64;
            match nvm.write(Region::Compressed, spill_meta, framed) {
                Ok(sid) => {
                    job.spilled.push_back(sid);
                    self.stats.blocks_spilled += 1;
                    self.emit(EventKind::DrainSpill { bytes: spill_bytes });
                }
                Err(_) => {
                    // Compressed region full too: genuine stall. Undo
                    // the offset advance so the block is recompressed.
                    job.offset = start;
                    job.compression_done = false;
                    self.stats.blocks_compressed -= 1;
                    self.emit(EventKind::DrainStall { cause: "spill_full" });
                    return Ok(StepOutcome::Stalled);
                }
            }
        }

        // Input fully read: the uncompressed slot may be reused
        // (§4.2.2's unlock arrow) even while blocks remain in flight.
        if let Some(slot) = slot_to_unlock {
            nvm.unlock(slot)
                .map_err(|e| CodecError::new(e.to_string()))?;
        }
        Ok(StepOutcome::Progress)
    }

    /// Returns a framed-block allocation to the pool.
    fn recycle(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        if self.frame_pool.len() < FRAME_POOL_CAP {
            self.frame_pool.push(buf);
        }
    }

    /// Drops every NIC block belonging to `key`, recycling the buffers.
    fn drop_nic_blocks(&mut self, key: &ObjectKey) {
        let mut kept = VecDeque::with_capacity(self.nic.queue.len());
        while let Some(b) = self.nic.queue.pop_front() {
            if b.key == *key {
                self.recycle(b.data);
            } else {
                kept.push_back(b);
            }
        }
        self.nic.queue = kept;
    }

    /// Charges one transient failure to a job: bounded retry with
    /// deterministic exponential backoff, escalating to cancellation
    /// when the budget is exhausted. `rewind` additionally re-drives the
    /// drain from scratch (crash-before-finalize semantics).
    fn transient_failure(
        &mut self,
        pos: usize,
        nvm: &mut NvmStore,
        io: &mut IoNode,
        rewind: bool,
        site: &'static str,
    ) -> StepOutcome {
        let job = &mut self.queue[pos];
        job.attempts += 1;
        let attempts = job.attempts;
        let backoff = self.retry.backoff_steps(attempts);
        job.blocked_until = self.steps + backoff;
        self.emit(EventKind::DrainRetry {
            site,
            attempt: attempts,
            backoff_steps: backoff,
        });
        if attempts > self.retry.max_attempts
            && self.degrade.cancel_on_exhaustion
        {
            self.cancel_job(pos, nvm, io);
            return StepOutcome::Retrying;
        }
        if rewind && !self.rewind_job(pos, nvm, io) {
            self.cancel_job(pos, nvm, io);
        }
        StepOutcome::Retrying
    }

    /// Rewinds a job so a re-driven drain is idempotent: aborts the
    /// partial remote object, discards its NIC and spilled blocks, and
    /// resets all progress. Returns false when the drain source is gone
    /// (slot evicted after unlock, no retained delta) — the caller must
    /// cancel instead.
    fn rewind_job(
        &mut self,
        pos: usize,
        nvm: &mut NvmStore,
        io: &mut IoNode,
    ) -> bool {
        let key = self.queue[pos].key.clone();
        io.abort_object(&key);
        self.drop_nic_blocks(&key);
        let spilled: Vec<SlotId> =
            self.queue[pos].spilled.drain(..).collect();
        for sid in spilled {
            if let Ok(slot) = nvm.remove(sid) {
                self.recycle(slot.data);
            }
        }
        let job = &mut self.queue[pos];
        job.offset = 0;
        job.begun = false;
        job.compression_done = false;
        job.unshipped = 0;
        job.shipped_bytes = 0;
        if job.delta.is_some() {
            return true;
        }
        if nvm.get(job.slot).is_some() {
            // The slot may have been unlocked at compression-done;
            // re-lock it so FIFO eviction cannot take the source out
            // from under the re-drive.
            let _ = nvm.lock(job.slot);
            true
        } else {
            false
        }
    }

    /// NDP crash recovery: all in-flight engine state (NIC contents,
    /// per-job progress, partial remote objects) is lost; every queued
    /// drain is re-driven from its slot, or cancelled if the source is
    /// gone.
    fn crash_restart(&mut self, nvm: &mut NvmStore, io: &mut IoNode) {
        self.stats.ndp_crashes += 1;
        while let Some(b) = self.nic.queue.pop_front() {
            self.recycle(b.data);
        }
        let mut pos = 0;
        while pos < self.queue.len() {
            if self.rewind_job(pos, nvm, io) {
                pos += 1;
            } else {
                // Cancellation may cascade; rescan from the start.
                self.cancel_job(pos, nvm, io);
                pos = 0;
            }
        }
    }

    /// Codec fault handling per [`DegradePolicy`]: restart the drain
    /// uncompressed, or cancel it.
    fn degrade_codec(
        &mut self,
        pos: usize,
        nvm: &mut NvmStore,
        io: &mut IoNode,
    ) {
        if self.degrade.codec_fallback_uncompressed
            && self.rewind_job(pos, nvm, io)
        {
            self.stats.codec_fallbacks += 1;
            let job = &mut self.queue[pos];
            job.force_uncompressed = true;
            job.meta.codec = None;
            let slot = job.slot.0;
            self.emit(EventKind::DrainDegrade { job: slot });
        } else {
            self.cancel_job(pos, nvm, io);
        }
    }

    /// Cancels a drain: the remote object is aborted, spilled and NIC
    /// blocks are reclaimed, and the source slot is unlocked — the
    /// checkpoint remains recoverable at the local (and partner) levels,
    /// so nothing committed is lost, but remote coverage degrades.
    ///
    /// Incremental hygiene: any queued delta prepared after the
    /// cancelled checkpoint chains through it and could never be
    /// restored, so those drains are cancelled too, and the rank's chain
    /// state is reset so its next drain ships a full image.
    fn cancel_job(&mut self, pos: usize, nvm: &mut NvmStore, io: &mut IoNode) {
        let mut job = self.queue.remove(pos).expect("cancel position valid");
        self.scrap_job(&mut job, nvm, io);
        self.incr_state
            .remove(&(job.meta.app_id.clone(), job.meta.rank));
        while let Some(dep) = self.queue.iter().position(|j| {
            j.meta.app_id == job.meta.app_id
                && j.meta.rank == job.meta.rank
                && j.prepared
                && j.meta.base.is_some()
                && j.meta.ckpt_id > job.meta.ckpt_id
        }) {
            let mut dj = self.queue.remove(dep).expect("dep position valid");
            self.scrap_job(&mut dj, nvm, io);
        }
    }

    /// Releases every resource a cancelled job holds.
    fn scrap_job(
        &mut self,
        job: &mut DrainJob,
        nvm: &mut NvmStore,
        io: &mut IoNode,
    ) {
        io.abort_object(&job.key);
        self.drop_nic_blocks(&job.key);
        for &sid in &job.spilled {
            if let Ok(slot) = nvm.remove(sid) {
                self.recycle(slot.data);
            }
        }
        let _ = nvm.unlock(job.slot);
        self.stats.drains_cancelled += 1;
        self.stats.drains_degraded += 1;
        self.emit(EventKind::DrainCancel { job: job.slot.0 });
        if let Some(mut sp) = job.span.take() {
            sp.close(self.steps as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_compress::registry;

    fn setup(
        policy: BackpressurePolicy,
        codec: bool,
        nic_cap: usize,
    ) -> (NdpEngine, NvmStore, IoNode, VClock) {
        let codec = if codec {
            Some(registry::by_name("gz", 1).unwrap())
        } else {
            None
        };
        (
            NdpEngine::new(codec, policy, 4096, nic_cap, 440e6),
            NvmStore::new(1 << 22, 1 << 20),
            IoNode::new(100e6),
            VClock::default(),
        )
    }

    fn store_and_enqueue(
        engine: &mut NdpEngine,
        nvm: &mut NvmStore,
        ckpt_id: u64,
        data: Vec<u8>,
    ) -> (SlotId, CheckpointMeta) {
        let meta =
            CheckpointMeta::new("app", 0, ckpt_id, data.len() as u64, ckpt_id);
        let slot = nvm
            .write(Region::Uncompressed, meta.clone(), data)
            .unwrap();
        nvm.lock(slot).unwrap();
        engine.enqueue(slot, meta.clone());
        (slot, meta)
    }

    fn drain_to_idle(
        engine: &mut NdpEngine,
        nvm: &mut NvmStore,
        io: &mut IoNode,
        clock: &mut VClock,
    ) {
        for _ in 0..1_000_000 {
            match engine.step(nvm, io, clock).unwrap() {
                StepOutcome::Idle => return,
                StepOutcome::Stalled => panic!("unexpected stall"),
                _ => {}
            }
        }
        panic!("drain did not converge");
    }

    #[test]
    fn drains_compressed_checkpoint_end_to_end() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let data = b"checkpoint payload ".repeat(3000);
        let (slot, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);

        assert_eq!(engine.stats.drains_completed, 1);
        assert!(!nvm.get(slot).unwrap().locked, "slot must unlock");
        let key = ObjectKey::of(&meta);
        let (rmeta, blob) = io.read(&key).unwrap();
        assert_eq!(rmeta.codec.as_deref(), Some("gz(1)"));
        // Framed blocks decompress back to the original bytes.
        let gz = registry::by_name("gz", 1).unwrap();
        let mut restored = Vec::new();
        let mut pos = 0;
        while pos < blob.len() {
            let raw =
                u32::from_le_bytes(blob[pos..pos + 4].try_into().unwrap())
                    as usize;
            let comp =
                u32::from_le_bytes(blob[pos + 4..pos + 8].try_into().unwrap())
                    as usize;
            pos += 8;
            let part =
                gz.decompress_to_vec(&blob[pos..pos + comp]).unwrap();
            assert_eq!(part.len(), raw);
            restored.extend_from_slice(&part);
            pos += comp;
        }
        assert_eq!(restored, data);
        // Compressible payload: remote object smaller than input.
        assert!(blob.len() < data.len() / 2);
        assert!(clock.ndp_compute > 0.0 && clock.io_link > 0.0);
    }

    #[test]
    fn uncompressed_drain_preserves_bytes() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, false, 4);
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let (_, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        let (rmeta, blob) = io.read(&ObjectKey::of(&meta)).unwrap();
        assert!(rmeta.codec.is_none());
        // Strip frames.
        let mut restored = Vec::new();
        let mut pos = 0;
        while pos < blob.len() {
            let raw =
                u32::from_le_bytes(blob[pos..pos + 4].try_into().unwrap())
                    as usize;
            pos += 8;
            restored.extend_from_slice(&blob[pos..pos + raw]);
            pos += raw;
        }
        assert_eq!(restored, data);
    }

    #[test]
    fn pause_blocks_all_progress() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        store_and_enqueue(&mut engine, &mut nvm, 1, vec![1u8; 10_000]);
        engine.pause();
        for _ in 0..10 {
            assert_eq!(
                engine.step(&mut nvm, &mut io, &mut clock).unwrap(),
                StepOutcome::Paused
            );
        }
        assert_eq!(engine.stats.blocks_compressed, 0);
        engine.resume();
        assert_eq!(
            engine.step(&mut nvm, &mut io, &mut clock).unwrap(),
            StepOutcome::Progress
        );
    }

    #[test]
    fn nic_blockage_stalls_under_pause_policy() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 2);
        store_and_enqueue(&mut engine, &mut nvm, 1, vec![7u8; 100_000]);
        engine.nic.blocked = true;
        // Fill the NIC, then stall.
        let mut stalls = 0;
        for _ in 0..50 {
            match engine.step(&mut nvm, &mut io, &mut clock).unwrap() {
                StepOutcome::Stalled => stalls += 1,
                StepOutcome::Progress => {}
                o => panic!("unexpected {o:?}"),
            }
        }
        assert!(stalls > 0);
        assert_eq!(engine.nic.depth(), 2);
        assert_eq!(engine.stats.blocks_spilled, 0);
        // Unblock: everything drains.
        engine.nic.blocked = false;
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        assert_eq!(engine.stats.drains_completed, 1);
    }

    #[test]
    fn nic_blockage_spills_under_spill_policy() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Spill, true, 2);
        let data = vec![3u8; 100_000];
        let (_, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        engine.nic.blocked = true;
        // Compression continues past the NIC capacity by spilling.
        for _ in 0..100 {
            let o = engine.step(&mut nvm, &mut io, &mut clock).unwrap();
            if o == StepOutcome::Stalled {
                break;
            }
        }
        assert!(engine.stats.blocks_spilled > 0, "no spills happened");
        assert!(nvm.used(Region::Compressed) > 0);
        // Unblock: spilled blocks ship in order and the drain finishes.
        engine.nic.blocked = false;
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        assert_eq!(engine.stats.drains_completed, 1);
        assert_eq!(nvm.used(Region::Compressed), 0, "spills reclaimed");
        assert!(io.read(&ObjectKey::of(&meta)).is_some());
    }

    #[test]
    fn multiple_queued_drains_complete_in_order() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let mut metas = Vec::new();
        for id in 1..=3 {
            let data = vec![id as u8; 30_000];
            let (_, meta) = store_and_enqueue(&mut engine, &mut nvm, id, data);
            metas.push(meta);
        }
        assert_eq!(engine.backlog(), 3);
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        assert_eq!(engine.stats.drains_completed, 3);
        for meta in &metas {
            assert!(io.read(&ObjectKey::of(meta)).is_some());
        }
    }

    #[test]
    fn reset_cancels_pending_drains() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        store_and_enqueue(&mut engine, &mut nvm, 1, vec![5u8; 50_000]);
        store_and_enqueue(&mut engine, &mut nvm, 2, vec![6u8; 50_000]);
        // A little progress, then node loss.
        for _ in 0..3 {
            engine.step(&mut nvm, &mut io, &mut clock).unwrap();
        }
        engine.reset();
        nvm.wipe();
        io.abort_incomplete();
        assert_eq!(engine.backlog(), 0);
        assert_eq!(engine.stats.drains_cancelled, 2);
        assert_eq!(
            engine.step(&mut nvm, &mut io, &mut clock).unwrap(),
            StepOutcome::Idle
        );
        assert_eq!(io.object_count(), 0);
    }

    #[test]
    fn idle_engine_reports_idle() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, false, 1);
        assert_eq!(
            engine.step(&mut nvm, &mut io, &mut clock).unwrap(),
            StepOutcome::Idle
        );
    }

    use crate::faults::{FaultPlane, FaultPlaneConfig, FaultSite};

    /// Pumps with a fault plane until idle (or stall/step budget).
    fn drain_faulty(
        engine: &mut NdpEngine,
        nvm: &mut NvmStore,
        io: &mut IoNode,
        clock: &mut VClock,
        plane: &mut FaultPlane,
    ) {
        for _ in 0..1_000_000 {
            match engine.step_faulty(nvm, io, clock, plane).unwrap() {
                StepOutcome::Idle => return,
                StepOutcome::Stalled => panic!("unexpected stall"),
                _ => {}
            }
        }
        panic!("faulty drain did not converge");
    }

    /// Reference drain of the same payload on a clean engine; returns
    /// the remote object bytes.
    fn reference_blob(
        policy: BackpressurePolicy,
        codec: bool,
        data: Vec<u8>,
    ) -> Vec<u8> {
        let (mut engine, mut nvm, mut io, mut clock) = setup(policy, codec, 4);
        let (_, meta) = store_and_enqueue(&mut engine, &mut nvm, 1, data);
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        io.read(&ObjectKey::of(&meta)).unwrap().1
    }

    #[test]
    fn io_crash_before_finalize_is_redriven_idempotently() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let data = b"crashy checkpoint ".repeat(4000);
        let (slot, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        let mut plane = FaultPlane::new(
            FaultPlaneConfig::disabled(1).with(FaultSite::IoCrash, 1.0),
        );
        // Pump until the crash-before-finalize fires (the whole drain is
        // rewound), then let the re-drive run clean.
        for _ in 0..100_000 {
            engine.step_faulty(&mut nvm, &mut io, &mut clock, &mut plane)
                .unwrap();
            if plane.count(FaultSite::IoCrash) >= 1 {
                break;
            }
        }
        assert_eq!(plane.count(FaultSite::IoCrash), 1, "crash must fire");
        assert_eq!(io.incomplete_count(), 0, "partial object aborted");
        plane.set_active(false);
        drain_faulty(&mut engine, &mut nvm, &mut io, &mut clock, &mut plane);
        assert_eq!(engine.stats.drains_completed, 1);
        assert_eq!(engine.stats.drains_cancelled, 0);
        assert!(!nvm.get(slot).unwrap().locked);
        // The re-driven object is bit-identical to a fault-free drain —
        // no duplicate, torn, or double-appended frames.
        let blob = io.read(&ObjectKey::of(&meta)).unwrap().1;
        assert_eq!(
            blob,
            reference_blob(BackpressurePolicy::Pause, true, data)
        );
    }

    #[test]
    fn ndp_crash_mid_drain_redrives_idempotently() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let data: Vec<u8> =
            (0..90_000u32).map(|i| (i % 241) as u8).collect();
        let (slot, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        // A few clean steps so real progress exists to lose...
        let mut clean = FaultPlane::disabled();
        for _ in 0..7 {
            engine
                .step_faulty(&mut nvm, &mut io, &mut clock, &mut clean)
                .unwrap();
        }
        assert!(engine.stats.blocks_compressed > 0);
        // ...then the engine crashes (the fault fires on the next step
        // that reaches the compress phase; earlier steps may be busy
        // shipping already-compressed blocks).
        let mut crash = FaultPlane::new(
            FaultPlaneConfig::disabled(2).with(FaultSite::NdpCrash, 1.0),
        );
        for _ in 0..100 {
            engine
                .step_faulty(&mut nvm, &mut io, &mut clock, &mut crash)
                .unwrap();
            if crash.count(FaultSite::NdpCrash) >= 1 {
                break;
            }
        }
        assert_eq!(crash.count(FaultSite::NdpCrash), 1);
        assert_eq!(engine.stats.ndp_crashes, 1);
        assert_eq!(io.incomplete_count(), 0, "in-flight object aborted");
        assert_eq!(engine.nic.depth(), 0, "in-flight NIC blocks lost");
        assert!(nvm.get(slot).unwrap().locked, "slot stays locked");
        // Re-driven drain converges to the exact fault-free object.
        drain_faulty(&mut engine, &mut nvm, &mut io, &mut clock, &mut clean);
        assert_eq!(engine.stats.drains_completed, 1);
        let blob = io.read(&ObjectKey::of(&meta)).unwrap().1;
        assert_eq!(
            blob,
            reference_blob(BackpressurePolicy::Pause, true, data)
        );
    }

    #[test]
    fn append_retry_exhaustion_cancels_gracefully() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let (slot, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, vec![9u8; 40_000]);
        let mut plane = FaultPlane::new(
            FaultPlaneConfig::disabled(3).with(FaultSite::IoAppend, 1.0),
        );
        let mut idle = false;
        for _ in 0..200_000 {
            match engine
                .step_faulty(&mut nvm, &mut io, &mut clock, &mut plane)
                .unwrap()
            {
                StepOutcome::Idle => {
                    idle = true;
                    break;
                }
                StepOutcome::Stalled => panic!("must degrade, not stall"),
                _ => {}
            }
        }
        assert!(idle, "engine must reach idle after degrading");
        assert_eq!(engine.stats.drains_completed, 0);
        assert_eq!(engine.stats.drains_cancelled, 1);
        assert_eq!(engine.stats.drains_degraded, 1);
        assert!(engine.stats.io_retries > 0);
        // Graceful: slot unlocked and intact locally, nothing partial
        // left remotely, NIC and spill space reclaimed.
        let s = nvm.get(slot).unwrap();
        assert!(!s.locked);
        assert!(s.verify(), "local copy still pristine");
        assert_eq!(io.incomplete_count(), 0);
        assert!(io.read(&ObjectKey::of(&meta)).is_none());
        assert_eq!(engine.nic.depth(), 0);
        assert_eq!(nvm.used(Region::Compressed), 0);
    }

    #[test]
    fn codec_fault_degrades_to_uncompressed_drain() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let data = b"degradable payload ".repeat(2500);
        let (_, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        let mut plane = FaultPlane::new(
            FaultPlaneConfig::disabled(4).with(FaultSite::CodecFault, 1.0),
        );
        // The codec faults once; the drain restarts uncompressed and,
        // with the codec out of the path, completes even though the
        // plane stays armed.
        drain_faulty(&mut engine, &mut nvm, &mut io, &mut clock, &mut plane);
        assert_eq!(engine.stats.codec_fallbacks, 1);
        assert_eq!(engine.stats.drains_completed, 1);
        assert_eq!(engine.stats.drains_cancelled, 0);
        let (rmeta, blob) = io.read(&ObjectKey::of(&meta)).unwrap();
        assert!(rmeta.codec.is_none(), "degraded object is uncompressed");
        // Uncompressed frames reassemble to the original bytes.
        let mut restored = Vec::new();
        let mut pos = 0;
        while pos < blob.len() {
            let raw =
                u32::from_le_bytes(blob[pos..pos + 4].try_into().unwrap())
                    as usize;
            pos += 8;
            restored.extend_from_slice(&blob[pos..pos + raw]);
            pos += raw;
        }
        assert_eq!(restored, data);
    }

    #[test]
    fn nic_drops_force_retransmits_but_bytes_survive() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let data = b"lossy link payload ".repeat(3000);
        let (_, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, data.clone());
        let mut plane = FaultPlane::new(
            FaultPlaneConfig::disabled(5)
                .with(FaultSite::NicDrop, 0.4)
                .with(FaultSite::NicStall, 0.2),
        );
        drain_faulty(&mut engine, &mut nvm, &mut io, &mut clock, &mut plane);
        assert!(engine.stats.blocks_retransmitted > 0, "drops must fire");
        assert_eq!(engine.stats.drains_completed, 1);
        let blob = io.read(&ObjectKey::of(&meta)).unwrap().1;
        assert_eq!(
            blob,
            reference_blob(BackpressurePolicy::Pause, true, data)
        );
    }

    #[test]
    fn rotten_source_slot_is_never_drained_to_remote() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let (slot, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, vec![3u8; 50_000]);
        nvm.tamper(slot, 1234).unwrap();
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        assert_eq!(engine.stats.drains_source_corrupt, 1);
        assert_eq!(engine.stats.drains_completed, 0);
        assert!(io.read(&ObjectKey::of(&meta)).is_none());
        assert_eq!(io.incomplete_count(), 0);
        assert!(!nvm.get(slot).unwrap().locked);
    }

    #[test]
    fn mid_drain_rot_aborts_instead_of_shipping_torn_object() {
        let (mut engine, mut nvm, mut io, mut clock) =
            setup(BackpressurePolicy::Pause, true, 4);
        let (slot, meta) =
            store_and_enqueue(&mut engine, &mut nvm, 1, vec![7u8; 90_000]);
        // Let real progress happen, then rot the source mid-drain.
        let mut clean = FaultPlane::disabled();
        for _ in 0..5 {
            engine
                .step_faulty(&mut nvm, &mut io, &mut clock, &mut clean)
                .unwrap();
        }
        assert!(engine.stats.blocks_compressed > 0);
        assert!(!engine.queue[0].compression_done, "rot must strike mid-read");
        nvm.tamper(slot, 80_000).unwrap();
        drain_to_idle(&mut engine, &mut nvm, &mut io, &mut clock);
        assert_eq!(engine.stats.drains_source_corrupt, 1);
        assert!(io.read(&ObjectKey::of(&meta)).is_none(), "no torn object");
        assert_eq!(io.incomplete_count(), 0);
    }

    #[test]
    fn faulty_drains_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let (mut engine, mut nvm, mut io, mut clock) =
                setup(BackpressurePolicy::Spill, true, 2);
            let data = b"deterministic chaos ".repeat(2000);
            let (_, meta) =
                store_and_enqueue(&mut engine, &mut nvm, 1, data);
            let mut plane =
                FaultPlane::new(FaultPlaneConfig::uniform(seed, 0.05));
            drain_faulty(
                &mut engine, &mut nvm, &mut io, &mut clock, &mut plane,
            );
            let blob = io
                .read(&ObjectKey::of(&meta))
                .map(|(_, b)| b)
                .unwrap_or_default();
            (plane.render_log(), engine.stats, blob)
        };
        let a = run(77);
        let b = run(77);
        assert_eq!(a.0, b.0, "fault logs must replay bit-exactly");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        let c = run(78);
        assert_ne!(a.0, c.0, "different seed, different fault history");
    }
}
