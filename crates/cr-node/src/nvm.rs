//! The compute node's local NVM, organized as the paper describes
//! (§4.2.1, §4.3): capacity partitioned into **two circular-buffer
//! regions** — one holding uncompressed checkpoints written by the host,
//! one holding compressed checkpoints produced by the NDP. Checkpoints
//! are written FIFO; a checkpoint being drained to global I/O is
//! **locked** so a future checkpoint write cannot overwrite it, and the
//! capacity is unlocked (reusable) once the drain completes.

use std::collections::VecDeque;
use std::fmt;

use cr_obs::{Bus, Event, EventKind, Source};

use crate::metadata::CheckpointMeta;

/// Which circular-buffer region a slot lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Host-written uncompressed checkpoints.
    Uncompressed,
    /// NDP-written compressed checkpoints (§4.3's second buffer).
    Compressed,
}

/// Handle to a stored checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u64);

/// One stored checkpoint.
#[derive(Debug)]
pub struct Slot {
    /// Stable identifier.
    pub id: SlotId,
    /// Checkpoint metadata.
    pub meta: CheckpointMeta,
    /// Payload bytes (compressed iff `meta.codec.is_some()`).
    pub data: Vec<u8>,
    /// Locked against eviction while the NDP drains it.
    pub locked: bool,
    /// CRC-64 of `data`, computed at commit time.
    pub checksum: u64,
}

impl Slot {
    /// True if the payload still matches its commit-time checksum.
    pub fn verify(&self) -> bool {
        crate::integrity::Crc64::of(&self.data) == self.checksum
    }
}

/// Errors from NVM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmError {
    /// The payload exceeds the region capacity outright.
    TooLarge {
        /// Requested payload size.
        requested: usize,
        /// Region capacity.
        capacity: usize,
    },
    /// Eviction cannot free enough space because remaining slots are
    /// locked (drains in flight).
    AllLocked,
    /// No slot with the given ID.
    NoSuchSlot,
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::TooLarge {
                requested,
                capacity,
            } => write!(
                f,
                "checkpoint of {requested} bytes exceeds region capacity {capacity}"
            ),
            NvmError::AllLocked => {
                write!(f, "region full of locked (draining) checkpoints")
            }
            NvmError::NoSuchSlot => write!(f, "no such slot"),
        }
    }
}

impl std::error::Error for NvmError {}

/// One circular-buffer region: FIFO slots under a byte capacity.
#[derive(Debug)]
struct RegionBuf {
    capacity: usize,
    used: usize,
    slots: VecDeque<Slot>,
}

impl RegionBuf {
    fn new(capacity: usize) -> Self {
        RegionBuf {
            capacity,
            used: 0,
            slots: VecDeque::new(),
        }
    }

    /// Evicts unlocked slots FIFO until `need` bytes fit. Locked slots
    /// block eviction of everything behind them (circular-buffer
    /// semantics: space reuse is in order).
    fn make_room(&mut self, need: usize) -> Result<Vec<Slot>, NvmError> {
        if need > self.capacity {
            return Err(NvmError::TooLarge {
                requested: need,
                capacity: self.capacity,
            });
        }
        let mut evicted: Vec<Slot> = Vec::new();
        while self.capacity - self.used < need {
            match self.slots.front() {
                None => unreachable!("used > 0 implies a front slot"),
                Some(s) if s.locked => {
                    // Roll back: re-insert evicted slots at the front in
                    // original order.
                    for s in evicted.into_iter().rev() {
                        self.used += s.data.len();
                        self.slots.push_front(s);
                    }
                    return Err(NvmError::AllLocked);
                }
                Some(_) => {
                    let s = self.slots.pop_front().unwrap();
                    self.used -= s.data.len();
                    evicted.push(s);
                }
            }
        }
        Ok(evicted)
    }

    fn push(&mut self, slot: Slot) {
        self.used += slot.data.len();
        self.slots.push_back(slot);
    }
}

/// Upper bound on spare buffers kept for reuse.
const SPARE_CAP: usize = 16;

/// The node-local NVM store.
pub struct NvmStore {
    uncompressed: RegionBuf,
    compressed: RegionBuf,
    next_id: u64,
    /// Recycled payload buffers from evicted slots, handed out via
    /// [`NvmStore::take_buffer`] so the write path (host checkpoint
    /// commit, NDP framed blocks) reuses wraparound capacity instead of
    /// allocating fresh.
    spare: Vec<Vec<u8>>,
    /// Total evictions performed (wraparound count).
    pub evictions: u64,
    /// Observability bus (disabled by default; see [`NvmStore::set_bus`]).
    bus: Bus,
}

impl NvmStore {
    /// Creates a store with the given per-region byte capacities.
    pub fn new(uncompressed_capacity: usize, compressed_capacity: usize) -> Self {
        NvmStore {
            uncompressed: RegionBuf::new(uncompressed_capacity),
            compressed: RegionBuf::new(compressed_capacity),
            next_id: 1,
            spare: Vec::new(),
            evictions: 0,
            bus: Bus::disabled(),
        }
    }

    /// Attaches an observability bus; evictions and lock contention are
    /// reported on it. The store starts with a disabled bus.
    pub fn set_bus(&mut self, bus: Bus) {
        self.bus = bus;
    }

    /// Hands out a cleared buffer, reusing an evicted slot's allocation
    /// when one is available.
    pub fn take_buffer(&mut self) -> Vec<u8> {
        let mut buf = self.spare.pop().unwrap_or_default();
        // `recycle` clears before pooling, but the cleared-contract is
        // what keeps stale checkpoint bytes out of framed output, so
        // enforce it here too rather than trusting every producer.
        buf.clear();
        buf
    }

    fn recycle(&mut self, mut data: Vec<u8>) {
        if self.spare.len() < SPARE_CAP {
            data.clear();
            self.spare.push(data);
        }
    }

    fn region_mut(&mut self, r: Region) -> &mut RegionBuf {
        match r {
            Region::Uncompressed => &mut self.uncompressed,
            Region::Compressed => &mut self.compressed,
        }
    }

    fn region(&self, r: Region) -> &RegionBuf {
        match r {
            Region::Uncompressed => &self.uncompressed,
            Region::Compressed => &self.compressed,
        }
    }

    /// Writes a checkpoint into a region, evicting oldest unlocked
    /// checkpoints as needed (circular-buffer reuse). Returns the new
    /// slot ID.
    pub fn write(
        &mut self,
        region: Region,
        meta: CheckpointMeta,
        data: Vec<u8>,
    ) -> Result<SlotId, NvmError> {
        let evicted = match self.region_mut(region).make_room(data.len()) {
            Ok(evicted) => evicted,
            Err(e) => {
                if e == NvmError::AllLocked {
                    self.bus.emit_with(|| Event {
                        t: 0.0,
                        source: Source::Nvm,
                        kind: EventKind::LockContention,
                    });
                }
                return Err(e);
            }
        };
        self.evictions += evicted.len() as u64;
        for slot in evicted {
            self.bus.emit_with(|| Event {
                t: 0.0,
                source: Source::Nvm,
                kind: EventKind::Eviction {
                    bytes: slot.data.len() as u64,
                },
            });
            self.recycle(slot.data);
        }
        let id = SlotId(self.next_id);
        self.next_id += 1;
        let checksum = crate::integrity::Crc64::of(&data);
        self.region_mut(region).push(Slot {
            id,
            meta,
            data,
            locked: false,
            checksum,
        });
        Ok(id)
    }

    /// Looks up a slot by ID in either region.
    pub fn get(&self, id: SlotId) -> Option<&Slot> {
        self.uncompressed
            .slots
            .iter()
            .chain(self.compressed.slots.iter())
            .find(|s| s.id == id)
    }

    fn get_mut(&mut self, id: SlotId) -> Option<&mut Slot> {
        self.uncompressed
            .slots
            .iter_mut()
            .chain(self.compressed.slots.iter_mut())
            .find(|s| s.id == id)
    }

    /// Locks a slot against eviction (drain in progress — §4.2.2).
    pub fn lock(&mut self, id: SlotId) -> Result<(), NvmError> {
        self.get_mut(id)
            .map(|s| s.locked = true)
            .ok_or(NvmError::NoSuchSlot)
    }

    /// Unlocks a slot (drain complete; capacity reusable — §4.2.2).
    pub fn unlock(&mut self, id: SlotId) -> Result<(), NvmError> {
        self.get_mut(id)
            .map(|s| s.locked = false)
            .ok_or(NvmError::NoSuchSlot)
    }

    /// The newest checkpoint of an application rank in a region, by
    /// checkpoint ID.
    pub fn latest(
        &self,
        region: Region,
        app_id: &str,
        rank: u32,
    ) -> Option<&Slot> {
        self.region(region)
            .slots
            .iter()
            .filter(|s| s.meta.app_id == app_id && s.meta.rank == rank)
            .max_by_key(|s| s.meta.ckpt_id)
    }

    /// All slots of a region, oldest first.
    pub fn slots(&self, region: Region) -> impl Iterator<Item = &Slot> {
        self.region(region).slots.iter()
    }

    /// Bytes in use in a region.
    pub fn used(&self, region: Region) -> usize {
        self.region(region).used
    }

    /// Byte capacity of a region.
    pub fn capacity(&self, region: Region) -> usize {
        self.region(region).capacity
    }

    /// Removes a slot outright (used when a spilled compressed block has
    /// been shipped and its capacity can be returned immediately).
    pub fn remove(&mut self, id: SlotId) -> Result<Slot, NvmError> {
        for region in [Region::Uncompressed, Region::Compressed] {
            let buf = self.region_mut(region);
            if let Some(idx) = buf.slots.iter().position(|s| s.id == id) {
                let slot = buf.slots.remove(idx).expect("index in range");
                buf.used -= slot.data.len();
                return Ok(slot);
            }
        }
        Err(NvmError::NoSuchSlot)
    }

    /// Fault injection for tests and chaos drills: flips one bit of a
    /// stored payload, emulating NVM bit-rot. The commit-time checksum
    /// is left untouched so verification catches the damage.
    pub fn tamper(&mut self, id: SlotId, byte_index: usize) -> Result<(), NvmError> {
        let slot = self.get_mut(id).ok_or(NvmError::NoSuchSlot)?;
        let idx = byte_index % slot.data.len().max(1);
        if !slot.data.is_empty() {
            slot.data[idx] ^= 0x01;
        }
        Ok(())
    }

    /// Destroys all contents (node-loss failure).
    pub fn wipe(&mut self) {
        self.uncompressed.slots.clear();
        self.uncompressed.used = 0;
        self.compressed.slots.clear();
        self.compressed.used = 0;
    }
}

impl fmt::Debug for NvmStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NvmStore")
            .field("uncompressed_used", &self.uncompressed.used)
            .field("uncompressed_slots", &self.uncompressed.slots.len())
            .field("compressed_used", &self.compressed.used)
            .field("compressed_slots", &self.compressed.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, size: u64) -> CheckpointMeta {
        CheckpointMeta::new("app", 0, id, size, id)
    }

    #[test]
    fn write_and_read_back() {
        let mut nvm = NvmStore::new(1000, 1000);
        let id = nvm
            .write(Region::Uncompressed, meta(1, 100), vec![9u8; 100])
            .unwrap();
        let slot = nvm.get(id).unwrap();
        assert_eq!(slot.data, vec![9u8; 100]);
        assert_eq!(slot.meta.ckpt_id, 1);
        assert_eq!(nvm.used(Region::Uncompressed), 100);
        assert_eq!(nvm.used(Region::Compressed), 0);
    }

    #[test]
    fn fifo_eviction_on_wraparound() {
        let mut nvm = NvmStore::new(250, 0);
        let a = nvm
            .write(Region::Uncompressed, meta(1, 100), vec![1; 100])
            .unwrap();
        let b = nvm
            .write(Region::Uncompressed, meta(2, 100), vec![2; 100])
            .unwrap();
        // Third checkpoint forces eviction of the oldest (a).
        let c = nvm
            .write(Region::Uncompressed, meta(3, 100), vec![3; 100])
            .unwrap();
        assert!(nvm.get(a).is_none());
        assert!(nvm.get(b).is_some());
        assert!(nvm.get(c).is_some());
        assert_eq!(nvm.evictions, 1);
    }

    #[test]
    fn locked_slots_survive_wraparound() {
        let mut nvm = NvmStore::new(250, 0);
        let a = nvm
            .write(Region::Uncompressed, meta(1, 100), vec![1; 100])
            .unwrap();
        nvm.lock(a).unwrap();
        let _b = nvm
            .write(Region::Uncompressed, meta(2, 100), vec![2; 100])
            .unwrap();
        // No unlocked space: front is locked, write must fail.
        let err = nvm
            .write(Region::Uncompressed, meta(3, 100), vec![3; 100])
            .unwrap_err();
        assert_eq!(err, NvmError::AllLocked);
        // Store intact after the failed write.
        assert!(nvm.get(a).is_some());
        assert_eq!(nvm.used(Region::Uncompressed), 200);
        // Unlock -> the blocked write now succeeds, evicting a.
        nvm.unlock(a).unwrap();
        let c = nvm
            .write(Region::Uncompressed, meta(3, 100), vec![3; 100])
            .unwrap();
        assert!(nvm.get(a).is_none());
        assert!(nvm.get(c).is_some());
    }

    #[test]
    fn oversized_write_rejected_without_eviction() {
        let mut nvm = NvmStore::new(100, 0);
        let a = nvm
            .write(Region::Uncompressed, meta(1, 50), vec![1; 50])
            .unwrap();
        let err = nvm
            .write(Region::Uncompressed, meta(2, 200), vec![2; 200])
            .unwrap_err();
        assert!(matches!(err, NvmError::TooLarge { .. }));
        assert!(nvm.get(a).is_some());
    }

    #[test]
    fn regions_are_independent() {
        let mut nvm = NvmStore::new(100, 100);
        nvm.write(Region::Uncompressed, meta(1, 100), vec![1; 100])
            .unwrap();
        // Compressed region still has room.
        nvm.write(Region::Compressed, meta(1, 80), vec![2; 80])
            .unwrap();
        assert_eq!(nvm.used(Region::Uncompressed), 100);
        assert_eq!(nvm.used(Region::Compressed), 80);
    }

    #[test]
    fn latest_picks_highest_ckpt_id() {
        let mut nvm = NvmStore::new(10_000, 0);
        for i in 1..=5 {
            nvm.write(Region::Uncompressed, meta(i, 10), vec![i as u8; 10])
                .unwrap();
        }
        let latest = nvm.latest(Region::Uncompressed, "app", 0).unwrap();
        assert_eq!(latest.meta.ckpt_id, 5);
        assert!(nvm.latest(Region::Uncompressed, "other", 0).is_none());
        assert!(nvm.latest(Region::Uncompressed, "app", 1).is_none());
    }

    #[test]
    fn wipe_clears_everything() {
        let mut nvm = NvmStore::new(1000, 1000);
        nvm.write(Region::Uncompressed, meta(1, 10), vec![1; 10])
            .unwrap();
        nvm.write(Region::Compressed, meta(1, 10), vec![1; 10])
            .unwrap();
        nvm.wipe();
        assert_eq!(nvm.used(Region::Uncompressed), 0);
        assert_eq!(nvm.used(Region::Compressed), 0);
        assert_eq!(nvm.slots(Region::Uncompressed).count(), 0);
    }

    #[test]
    fn lock_missing_slot_errors() {
        let mut nvm = NvmStore::new(100, 0);
        assert_eq!(nvm.lock(SlotId(99)).unwrap_err(), NvmError::NoSuchSlot);
    }

    #[test]
    fn evicted_buffers_are_recycled() {
        let mut nvm = NvmStore::new(250, 0);
        // Pool starts empty: fresh allocation.
        assert_eq!(nvm.take_buffer().capacity(), 0);
        nvm.write(Region::Uncompressed, meta(1, 100), vec![1; 100])
            .unwrap();
        nvm.write(Region::Uncompressed, meta(2, 100), vec![2; 100])
            .unwrap();
        // Forces eviction of slot 1; its 100-byte allocation must come
        // back out of the pool, cleared.
        nvm.write(Region::Uncompressed, meta(3, 100), vec![3; 100])
            .unwrap();
        let buf = nvm.take_buffer();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 100, "capacity {}", buf.capacity());
    }

    #[test]
    fn take_buffer_is_cleared_even_if_the_pool_was_dirtied() {
        // Regression for the documented cleared-buffer contract: a
        // recycled eviction payload must never leak prior checkpoint
        // bytes into framing, even if a buffer reached the pool without
        // going through `recycle`'s clear.
        let mut nvm = NvmStore::new(100, 0);
        nvm.spare.push(vec![0xAB; 64]);
        let buf = nvm.take_buffer();
        assert!(buf.is_empty(), "leaked {} stale bytes", buf.len());
        assert!(buf.capacity() >= 64, "recycling lost the allocation");
    }

    #[test]
    fn failed_eviction_rolls_back_slot_order_exactly() {
        // Mid-eviction lock failure: make_room evicts a and b, then
        // hits locked c and must restore [a, b, c, d] exactly — same
        // order, same ids, same byte accounting.
        let mut nvm = NvmStore::new(400, 0);
        let ids: Vec<SlotId> = (1..=4)
            .map(|i| {
                nvm.write(
                    Region::Uncompressed,
                    meta(i, 100),
                    vec![i as u8; 100],
                )
                .unwrap()
            })
            .collect();
        nvm.lock(ids[2]).unwrap();
        // Needs 300 free: would evict a, b, then hit locked c.
        let err = nvm.uncompressed.make_room(300).unwrap_err();
        assert_eq!(err, NvmError::AllLocked);
        let order: Vec<SlotId> =
            nvm.slots(Region::Uncompressed).map(|s| s.id).collect();
        assert_eq!(order, ids, "rollback must restore FIFO order exactly");
        assert_eq!(nvm.used(Region::Uncompressed), 400);
        assert_eq!(nvm.evictions, 0);
        // Payloads survived the round trip untouched.
        for (i, id) in ids.iter().enumerate() {
            let slot = nvm.get(*id).unwrap();
            assert_eq!(slot.data, vec![(i + 1) as u8; 100]);
            assert!(slot.verify());
        }
        // And the store still works: unlock c, the big write succeeds.
        nvm.unlock(ids[2]).unwrap();
        nvm.write(Region::Uncompressed, meta(9, 300), vec![9; 300])
            .unwrap();
        assert_eq!(nvm.evictions, 3);
    }

    #[test]
    fn eviction_and_contention_events_reach_the_bus() {
        use cr_obs::VecSink;
        let mut nvm = NvmStore::new(250, 0);
        let bus = Bus::with_sink(VecSink::new());
        nvm.set_bus(bus.clone());
        let a = nvm
            .write(Region::Uncompressed, meta(1, 100), vec![1; 100])
            .unwrap();
        nvm.lock(a).unwrap();
        nvm.write(Region::Uncompressed, meta(2, 100), vec![2; 100])
            .unwrap();
        // Front locked: contention event.
        let err = nvm
            .write(Region::Uncompressed, meta(3, 100), vec![3; 100])
            .unwrap_err();
        assert_eq!(err, NvmError::AllLocked);
        nvm.unlock(a).unwrap();
        // Now the write evicts a: eviction event.
        nvm.write(Region::Uncompressed, meta(3, 100), vec![3; 100])
            .unwrap();
        let kinds: Vec<&str> =
            bus.drain().iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, ["lock_contention", "eviction"]);
    }

    #[test]
    fn multiple_evictions_for_one_write() {
        let mut nvm = NvmStore::new(300, 0);
        for i in 1..=3 {
            nvm.write(Region::Uncompressed, meta(i, 100), vec![i as u8; 100])
                .unwrap();
        }
        // 250-byte write evicts three 100-byte slots.
        nvm.write(Region::Uncompressed, meta(4, 250), vec![4; 250])
            .unwrap();
        assert_eq!(nvm.evictions, 3);
        assert_eq!(nvm.slots(Region::Uncompressed).count(), 1);
    }
}
