//! The remote I/O node: the global-I/O endpoint that receives compressed
//! checkpoint blocks from NDP drains (or whole checkpoints from host
//! writes) and serves them back during recovery.
//!
//! Objects are assembled block-by-block (§4.2.2's "multiple DMA
//! transactions on small blocks"); an object only becomes visible to
//! recovery once *finalized*, mirroring the durability point in the
//! simulator and the analytic model.

use std::collections::HashMap;

use cr_obs::{Bus, Event, EventKind, Source};

use crate::metadata::CheckpointMeta;

/// Identifies a checkpoint object on the remote store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectKey {
    /// Application identifier.
    pub app_id: String,
    /// MPI rank.
    pub rank: u32,
    /// Checkpoint ID.
    pub ckpt_id: u64,
}

impl ObjectKey {
    /// Key for a metadata record.
    pub fn of(meta: &CheckpointMeta) -> Self {
        ObjectKey {
            app_id: meta.app_id.clone(),
            rank: meta.rank,
            ckpt_id: meta.ckpt_id,
        }
    }
}

#[derive(Debug)]
struct RemoteObject {
    meta: CheckpointMeta,
    data: Vec<u8>,
    complete: bool,
    /// CRC-64 accumulated over blocks as they arrive; fixed at
    /// finalize time.
    crc: crate::integrity::Crc64,
    checksum: Option<u64>,
}

/// Errors from remote-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// Appending to or finalizing an object that was never begun.
    NoSuchObject,
    /// Beginning an object that already exists.
    AlreadyExists,
    /// Stored bytes no longer match the finalize-time checksum.
    Corrupt,
    /// Writing to an object that was already finalized (its checksum is
    /// sealed; durable bytes are immutable).
    Sealed,
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::NoSuchObject => write!(f, "no such remote object"),
            RemoteError::AlreadyExists => {
                write!(f, "remote object already exists")
            }
            RemoteError::Corrupt => {
                write!(f, "remote object failed checksum verification")
            }
            RemoteError::Sealed => {
                write!(f, "remote object is finalized and immutable")
            }
        }
    }
}

impl std::error::Error for RemoteError {}

/// The remote I/O node.
pub struct IoNode {
    objects: HashMap<ObjectKey, RemoteObject>,
    /// Modeled per-node share of global-I/O bandwidth, bytes/s (for
    /// virtual-time charging by the owner).
    pub bandwidth: f64,
    /// Total bytes received.
    pub bytes_written: u64,
    /// Total bytes served during recovery reads.
    pub bytes_read: u64,
    /// Observability bus (disabled by default; see [`IoNode::set_bus`]).
    bus: Bus,
}

impl IoNode {
    /// Creates a remote node with the given modeled bandwidth.
    pub fn new(bandwidth: f64) -> Self {
        IoNode {
            objects: HashMap::new(),
            bandwidth,
            bytes_written: 0,
            bytes_read: 0,
            bus: Bus::disabled(),
        }
    }

    /// Attaches an observability bus; object begin/seal/abort are
    /// reported on it (keyed by checkpoint id). Disabled by default.
    pub fn set_bus(&mut self, bus: Bus) {
        self.bus = bus;
    }

    /// Starts receiving a checkpoint object.
    pub fn begin(&mut self, meta: CheckpointMeta) -> Result<(), RemoteError> {
        let key = ObjectKey::of(&meta);
        if self.objects.contains_key(&key) {
            return Err(RemoteError::AlreadyExists);
        }
        self.bus.emit_with(|| Event {
            t: 0.0,
            source: Source::Remote,
            kind: EventKind::ObjectBegin { key: key.ckpt_id },
        });
        self.objects.insert(
            key,
            RemoteObject {
                meta,
                data: Vec::new(),
                complete: false,
                crc: crate::integrity::Crc64::new(),
                checksum: None,
            },
        );
        Ok(())
    }

    /// Appends one block to an in-flight object.
    pub fn append_block(
        &mut self,
        key: &ObjectKey,
        block: &[u8],
    ) -> Result<(), RemoteError> {
        let obj = self
            .objects
            .get_mut(key)
            .ok_or(RemoteError::NoSuchObject)?;
        if obj.complete {
            // A finalized object is durable and sealed; accepting more
            // bytes would corrupt it past its checksum.
            return Err(RemoteError::Sealed);
        }
        obj.data.extend_from_slice(block);
        obj.crc.update(block);
        self.bytes_written += block.len() as u64;
        Ok(())
    }

    /// Marks an object durable and recoverable, sealing its checksum.
    pub fn finalize(&mut self, key: &ObjectKey) -> Result<(), RemoteError> {
        let obj = self
            .objects
            .get_mut(key)
            .ok_or(RemoteError::NoSuchObject)?;
        obj.complete = true;
        obj.checksum = Some(obj.crc.finish());
        let bytes = obj.data.len() as u64;
        self.bus.emit_with(|| Event {
            t: 0.0,
            source: Source::Remote,
            kind: EventKind::ObjectSeal {
                key: key.ckpt_id,
                bytes,
            },
        });
        Ok(())
    }

    /// Drops an in-flight (non-finalized) object, e.g. when its drain is
    /// cancelled by a node failure. Finalized objects are durable and
    /// survive.
    pub fn abort_incomplete(&mut self) {
        // Collect-and-sort instead of `retain`: HashMap iteration order
        // is seeded per process, and the abort events must appear on
        // the bus in a reproducible order.
        let mut doomed: Vec<ObjectKey> = self
            .objects
            .iter()
            .filter(|(_, o)| !o.complete)
            .map(|(k, _)| k.clone())
            .collect();
        doomed.sort_by(|a, b| {
            (&a.app_id, a.rank, a.ckpt_id).cmp(&(&b.app_id, b.rank, b.ckpt_id))
        });
        for key in doomed {
            self.objects.remove(&key);
            self.bus.emit_with(|| Event {
                t: 0.0,
                source: Source::Remote,
                kind: EventKind::ObjectAbort { key: key.ckpt_id },
            });
        }
    }

    /// Drops one in-flight object (targeted abort, used when a single
    /// drain is re-driven or cancelled). Returns true if an incomplete
    /// object was removed; finalized objects are durable and are never
    /// touched.
    pub fn abort_object(&mut self, key: &ObjectKey) -> bool {
        match self.objects.get(key) {
            Some(o) if !o.complete => {
                self.objects.remove(key);
                self.bus.emit_with(|| Event {
                    t: 0.0,
                    source: Source::Remote,
                    kind: EventKind::ObjectAbort { key: key.ckpt_id },
                });
                true
            }
            _ => false,
        }
    }

    /// Number of in-flight (non-finalized) objects.
    pub fn incomplete_count(&self) -> usize {
        self.objects.values().filter(|o| !o.complete).count()
    }

    /// Read-only integrity probe: the object's metadata if it is
    /// finalized *and* its bytes still match the sealed checksum. Does
    /// not count as a recovery read (no counters move) — chaos oracles
    /// use this to predict what a restore will find.
    pub fn peek_verified(&self, key: &ObjectKey) -> Option<&CheckpointMeta> {
        let obj = self.objects.get(key)?;
        if !obj.complete {
            return None;
        }
        let expected = obj.checksum?;
        if crate::integrity::Crc64::of(&obj.data) != expected {
            return None;
        }
        Some(&obj.meta)
    }

    /// Reads a finalized object.
    pub fn read(&mut self, key: &ObjectKey) -> Option<(CheckpointMeta, Vec<u8>)> {
        let obj = self.objects.get(key)?;
        if !obj.complete {
            return None;
        }
        self.bytes_read += obj.data.len() as u64;
        Some((obj.meta.clone(), obj.data.clone()))
    }

    /// Reads a finalized object, verifying its checksum first — the
    /// restore path uses this so bit-rot surfaces as an error instead
    /// of silently corrupt application state.
    pub fn read_verified(
        &mut self,
        key: &ObjectKey,
    ) -> Result<(CheckpointMeta, Vec<u8>), RemoteError> {
        let obj = self.objects.get(key).ok_or(RemoteError::NoSuchObject)?;
        if !obj.complete {
            return Err(RemoteError::NoSuchObject);
        }
        let expected = obj.checksum.ok_or(RemoteError::Corrupt)?;
        if crate::integrity::Crc64::of(&obj.data) != expected {
            return Err(RemoteError::Corrupt);
        }
        self.bytes_read += obj.data.len() as u64;
        let obj = self.objects.get(key).expect("checked above");
        Ok((obj.meta.clone(), obj.data.clone()))
    }

    /// Fault injection: flips one bit of a stored object, emulating
    /// disk bit-rot on the I/O nodes.
    pub fn tamper(&mut self, key: &ObjectKey, byte_index: usize) -> bool {
        match self.objects.get_mut(key) {
            Some(obj) if !obj.data.is_empty() => {
                let idx = byte_index % obj.data.len();
                obj.data[idx] ^= 0x01;
                true
            }
            _ => false,
        }
    }

    /// The newest finalized checkpoint of an application rank.
    pub fn latest_complete(&self, app_id: &str, rank: u32) -> Option<ObjectKey> {
        self.objects
            .iter()
            .filter(|(k, o)| {
                o.complete && k.app_id == app_id && k.rank == rank
            })
            .max_by_key(|(k, _)| k.ckpt_id)
            .map(|(k, _)| k.clone())
    }

    /// Number of stored objects (any state).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64) -> CheckpointMeta {
        CheckpointMeta::new("app", 0, id, 100, id)
    }

    #[test]
    fn object_lifecycle() {
        let mut io = IoNode::new(100e6);
        let m = meta(1);
        let key = ObjectKey::of(&m);
        io.begin(m).unwrap();
        io.append_block(&key, b"hello ").unwrap();
        io.append_block(&key, b"world").unwrap();
        // Not visible before finalize.
        assert!(io.read(&key).is_none());
        assert!(io.latest_complete("app", 0).is_none());
        io.finalize(&key).unwrap();
        let (m2, data) = io.read(&key).unwrap();
        assert_eq!(data, b"hello world");
        assert_eq!(m2.ckpt_id, 1);
        assert_eq!(io.bytes_written, 11);
        assert_eq!(io.bytes_read, 11);
    }

    #[test]
    fn duplicate_begin_rejected() {
        let mut io = IoNode::new(1.0);
        io.begin(meta(1)).unwrap();
        assert_eq!(io.begin(meta(1)).unwrap_err(), RemoteError::AlreadyExists);
    }

    #[test]
    fn append_to_missing_object_rejected() {
        let mut io = IoNode::new(1.0);
        let key = ObjectKey::of(&meta(9));
        assert_eq!(
            io.append_block(&key, b"x").unwrap_err(),
            RemoteError::NoSuchObject
        );
        assert_eq!(io.finalize(&key).unwrap_err(), RemoteError::NoSuchObject);
    }

    #[test]
    fn latest_complete_ignores_incomplete() {
        let mut io = IoNode::new(1.0);
        for id in 1..=3 {
            io.begin(meta(id)).unwrap();
        }
        io.finalize(&ObjectKey::of(&meta(1))).unwrap();
        io.finalize(&ObjectKey::of(&meta(2))).unwrap();
        // #3 incomplete: latest is #2.
        let latest = io.latest_complete("app", 0).unwrap();
        assert_eq!(latest.ckpt_id, 2);
    }

    #[test]
    fn abort_incomplete_keeps_durable_objects() {
        let mut io = IoNode::new(1.0);
        io.begin(meta(1)).unwrap();
        io.finalize(&ObjectKey::of(&meta(1))).unwrap();
        io.begin(meta(2)).unwrap();
        io.abort_incomplete();
        assert_eq!(io.object_count(), 1);
        assert!(io.latest_complete("app", 0).is_some());
    }

    #[test]
    fn abort_incomplete_mid_upload_forgets_partial_bytes() {
        let mut io = IoNode::new(1.0);
        let m = meta(1);
        let key = ObjectKey::of(&m);
        io.begin(m.clone()).unwrap();
        io.append_block(&key, b"half a check").unwrap();
        io.abort_incomplete();
        // The partial object is gone in every observable way...
        assert_eq!(io.object_count(), 0);
        assert!(io.read(&key).is_none());
        assert_eq!(
            io.read_verified(&key).unwrap_err(),
            RemoteError::NoSuchObject
        );
        assert!(io.peek_verified(&key).is_none());
        assert!(io.latest_complete("app", 0).is_none());
        // ...and the key is reusable: the re-driven drain starts clean.
        io.begin(m).unwrap();
        io.append_block(&key, b"whole thing").unwrap();
        io.finalize(&key).unwrap();
        assert_eq!(io.read(&key).unwrap().1, b"whole thing");
    }

    #[test]
    fn finalize_unknown_key_is_typed_error() {
        let mut io = IoNode::new(1.0);
        let key = ObjectKey::of(&meta(42));
        assert_eq!(io.finalize(&key).unwrap_err(), RemoteError::NoSuchObject);
    }

    #[test]
    fn double_begin_same_key_rejected_even_when_partial() {
        let mut io = IoNode::new(1.0);
        let m = meta(3);
        let key = ObjectKey::of(&m);
        io.begin(m.clone()).unwrap();
        io.append_block(&key, b"partial").unwrap();
        // Second begin must not clobber the in-flight upload.
        assert_eq!(io.begin(m.clone()).unwrap_err(), RemoteError::AlreadyExists);
        io.finalize(&key).unwrap();
        // Nor a finalized one.
        assert_eq!(io.begin(m).unwrap_err(), RemoteError::AlreadyExists);
        assert_eq!(io.read(&key).unwrap().1, b"partial");
    }

    #[test]
    fn append_after_finalize_rejected() {
        let mut io = IoNode::new(1.0);
        let m = meta(4);
        let key = ObjectKey::of(&m);
        io.begin(m).unwrap();
        io.append_block(&key, b"sealed bytes").unwrap();
        io.finalize(&key).unwrap();
        assert_eq!(
            io.append_block(&key, b"junk").unwrap_err(),
            RemoteError::Sealed
        );
        // The durable object is untouched and still verifies.
        let (_, data) = io.read_verified(&key).unwrap();
        assert_eq!(data, b"sealed bytes");
    }

    #[test]
    fn partial_object_is_never_readable() {
        let mut io = IoNode::new(1.0);
        let m = meta(5);
        let key = ObjectKey::of(&m);
        io.begin(m).unwrap();
        io.append_block(&key, b"torn").unwrap();
        assert!(io.read(&key).is_none());
        assert_eq!(
            io.read_verified(&key).unwrap_err(),
            RemoteError::NoSuchObject
        );
        assert!(io.peek_verified(&key).is_none());
        assert!(io.latest_complete("app", 0).is_none());
        assert_eq!(io.incomplete_count(), 1);
    }

    #[test]
    fn abort_object_is_targeted_and_spares_durable() {
        let mut io = IoNode::new(1.0);
        io.begin(meta(1)).unwrap();
        io.finalize(&ObjectKey::of(&meta(1))).unwrap();
        io.begin(meta(2)).unwrap();
        io.begin(meta(3)).unwrap();
        // Durable objects are never aborted.
        assert!(!io.abort_object(&ObjectKey::of(&meta(1))));
        // Targeted abort removes exactly the requested in-flight object.
        assert!(io.abort_object(&ObjectKey::of(&meta(2))));
        assert!(!io.abort_object(&ObjectKey::of(&meta(2))), "already gone");
        assert_eq!(io.incomplete_count(), 1);
        assert_eq!(io.object_count(), 2);
        assert!(io.read(&ObjectKey::of(&meta(1))).is_some());
    }

    #[test]
    fn peek_verified_detects_rot_without_counting_a_read() {
        let mut io = IoNode::new(1.0);
        let m = meta(7);
        let key = ObjectKey::of(&m);
        io.begin(m).unwrap();
        io.append_block(&key, b"pristine payload").unwrap();
        io.finalize(&key).unwrap();
        let reads_before = io.bytes_read;
        assert!(io.peek_verified(&key).is_some());
        io.tamper(&key, 3);
        assert!(io.peek_verified(&key).is_none());
        assert_eq!(io.bytes_read, reads_before, "peek must not count reads");
        assert_eq!(io.read_verified(&key).unwrap_err(), RemoteError::Corrupt);
    }

    #[test]
    fn ranks_are_separate() {
        let mut io = IoNode::new(1.0);
        let m0 = CheckpointMeta::new("app", 0, 5, 10, 0);
        let m1 = CheckpointMeta::new("app", 1, 9, 10, 0);
        io.begin(m0.clone()).unwrap();
        io.begin(m1.clone()).unwrap();
        io.finalize(&ObjectKey::of(&m0)).unwrap();
        io.finalize(&ObjectKey::of(&m1)).unwrap();
        assert_eq!(io.latest_complete("app", 0).unwrap().ckpt_id, 5);
        assert_eq!(io.latest_complete("app", 1).unwrap().ckpt_id, 9);
    }
}
