//! End-to-end checkpoint integrity: CRC-64 checksums computed at commit
//! time and verified at restore time, on both the local NVM path and
//! the remote I/O path.
//!
//! A checkpoint that restores *wrong* is strictly worse than one that
//! fails to restore (silent corruption propagates into the recomputed
//! science). The stores therefore carry a checksum per object and every
//! read path re-verifies before handing data to the application.

/// CRC-64/XZ (ECMA-182 polynomial, reflected), table-driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc64(u64);

const POLY: u64 = 0xC96C_5795_D787_0F42; // reflected ECMA-182

/// Runtime table builder, kept only to cross-check the const table.
#[cfg(test)]
fn build_table() -> [u64; 256] {
    build_table_const()
}

/// The precomputed CRC table (const-evaluated at compile time).
static TABLE: [u64; 256] = build_table_const();

const fn build_table_const() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Starts a new checksum.
    pub fn new() -> Self {
        Crc64(u64::MAX)
    }

    /// Feeds bytes (streamable: blocks may arrive one at a time).
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &b in data {
            let idx = ((crc ^ b as u64) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.0 = crc;
    }

    /// Finalizes to the checksum value.
    pub fn finish(&self) -> u64 {
        self.0 ^ u64::MAX
    }

    /// One-shot checksum of a buffer.
    pub fn of(data: &[u8]) -> u64 {
        let mut c = Crc64::new();
        c.update(data);
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-64/XZ of "123456789" is 0x995DC9BBDF1939FA.
        assert_eq!(Crc64::of(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(Crc64::of(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..10_000).map(|i| (i * 31 % 251) as u8).collect();
        let one_shot = Crc64::of(&data);
        let mut streamed = Crc64::new();
        for chunk in data.chunks(97) {
            streamed.update(chunk);
        }
        assert_eq!(streamed.finish(), one_shot);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0xA5u8; 4096];
        let base = Crc64::of(&data);
        for pos in [0usize, 1, 100, 4095] {
            for bit in 0..8 {
                let mut tampered = data.clone();
                tampered[pos] ^= 1 << bit;
                assert_ne!(
                    Crc64::of(&tampered),
                    base,
                    "flip at {pos}:{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn runtime_and_const_tables_agree() {
        let rt = build_table();
        for (a, b) in rt.iter().zip(TABLE.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn swapped_blocks_are_detected() {
        let mut a = vec![1u8; 1000];
        a.extend(vec![2u8; 1000]);
        let mut b = vec![2u8; 1000];
        b.extend(vec![1u8; 1000]);
        assert_ne!(Crc64::of(&a), Crc64::of(&b));
    }
}
