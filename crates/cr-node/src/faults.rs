//! Deterministic fault-injection plane.
//!
//! The paper's argument (§6.1.1) is that multilevel C/R survives
//! failures cheaply; this module supplies the failures. A [`FaultPlane`]
//! is a seeded ChaCha8-driven injector that the node threads through
//! every I/O site it owns: NVM commits and reads, the NDP drain engine,
//! the NIC, and the remote I/O node. Each potential fault site consults
//! the plane with [`FaultPlane::fire`]; the plane draws from its stream,
//! records every fault it injects (site + logical step), and is fully
//! deterministic in its seed — a chaos episode replays bit-exactly.
//!
//! Alongside the injector live the two policies the drain engine uses to
//! *survive* the injected faults: [`RetryPolicy`] (bounded retries with
//! deterministic exponential backoff measured in engine steps) and
//! [`DegradePolicy`] (what to do when retries are exhausted or the codec
//! fails — degrade gracefully, never panic, never lose committed data
//! silently).

use std::fmt;

use cr_obs::{Bus, Event, EventKind, Source};
use cr_rand::ChaCha8;

/// Every site where the plane can inject a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Host NVM commit is torn: the stored payload is damaged after the
    /// commit-time checksum was taken (detected at restore time).
    NvmTornWrite,
    /// Silent NVM bit-rot discovered when a restore reads the slot.
    NvmReadRot,
    /// NIC transiently refuses traffic for one engine step.
    NicStall,
    /// An in-flight NIC transfer is dropped; the block must be
    /// retransmitted.
    NicDrop,
    /// Transient remote error on `IoNode::begin`.
    IoBegin,
    /// Transient remote error on `IoNode::append_block`.
    IoAppend,
    /// Transient remote error on `IoNode::finalize`.
    IoFinalize,
    /// The I/O node crashes before finalizing: the partial remote object
    /// is lost and the drain must be re-driven from scratch.
    IoCrash,
    /// The NDP engine crashes mid-drain: all in-flight drain work is
    /// lost (slots stay locked) and must be re-driven idempotently.
    NdpCrash,
    /// A partner-replication transfer is silently lost.
    PartnerLoss,
    /// The NDP codec fails on a block; the engine degrades to an
    /// uncompressed drain (per [`DegradePolicy`]).
    CodecFault,
}

/// All fault sites, in a stable order (report/log schema order).
pub const FAULT_SITES: [FaultSite; 11] = [
    FaultSite::NvmTornWrite,
    FaultSite::NvmReadRot,
    FaultSite::NicStall,
    FaultSite::NicDrop,
    FaultSite::IoBegin,
    FaultSite::IoAppend,
    FaultSite::IoFinalize,
    FaultSite::IoCrash,
    FaultSite::NdpCrash,
    FaultSite::PartnerLoss,
    FaultSite::CodecFault,
];

impl FaultSite {
    /// Stable machine-readable name (report keys, fault-log lines).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::NvmTornWrite => "nvm_torn_write",
            FaultSite::NvmReadRot => "nvm_read_rot",
            FaultSite::NicStall => "nic_stall",
            FaultSite::NicDrop => "nic_drop",
            FaultSite::IoBegin => "io_begin",
            FaultSite::IoAppend => "io_append",
            FaultSite::IoFinalize => "io_finalize",
            FaultSite::IoCrash => "io_crash",
            FaultSite::NdpCrash => "ndp_crash",
            FaultSite::PartnerLoss => "partner_loss",
            FaultSite::CodecFault => "codec_fault",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        FAULT_SITES
            .iter()
            .position(|s| *s == self)
            .expect("site in table")
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-site fault probabilities plus the seed of the injection stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlaneConfig {
    /// Seed of the ChaCha8 stream driving all injection draws.
    pub seed: u64,
    probs: [f64; FAULT_SITES.len()],
}

impl FaultPlaneConfig {
    /// All-sites-disabled configuration.
    pub fn disabled(seed: u64) -> Self {
        FaultPlaneConfig {
            seed,
            probs: [0.0; FAULT_SITES.len()],
        }
    }

    /// Same probability at every site.
    pub fn uniform(seed: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FaultPlaneConfig {
            seed,
            probs: [p; FAULT_SITES.len()],
        }
    }

    /// Builder: sets the probability of one site.
    pub fn with(mut self, site: FaultSite, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.probs[site.idx()] = p;
        self
    }

    /// Probability configured for a site.
    pub fn prob(&self, site: FaultSite) -> f64 {
        self.probs[site.idx()]
    }
}

/// One injected fault, as recorded in the fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Where the fault was injected.
    pub site: FaultSite,
    /// Logical step (plane tick counter) at which it fired.
    pub step: u64,
}

/// The seeded, deterministic fault injector.
///
/// Sites call [`FaultPlane::fire`]; the plane draws one uniform variate
/// per *armed* site consulted (sites with probability zero draw nothing,
/// so a disabled plane is free and perturbs no stream). Every injected
/// fault is appended to the log, making a run replayable bit-exactly
/// from `(config, seed)`.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultPlaneConfig,
    rng: ChaCha8,
    step: u64,
    active: bool,
    log: Vec<FaultEvent>,
    counts: [u64; FAULT_SITES.len()],
    /// Observability bus: every fired fault is mirrored onto it, so one
    /// sink sees the unified stream the ad-hoc fault log used to hold
    /// alone. Disabled by default; see [`FaultPlane::set_bus`].
    bus: Bus,
}

impl FaultPlane {
    /// Builds a plane from a configuration.
    pub fn new(cfg: FaultPlaneConfig) -> Self {
        FaultPlane {
            rng: ChaCha8::seed_from_u64(cfg.seed),
            cfg,
            step: 0,
            active: true,
            log: Vec::new(),
            counts: [0; FAULT_SITES.len()],
            bus: Bus::disabled(),
        }
    }

    /// Attaches an observability bus. Every fault the plane injects is
    /// emitted as an [`EventKind::Fault`] (in addition to the internal
    /// log, whose replay format is unchanged).
    pub fn set_bus(&mut self, bus: Bus) {
        self.bus = bus;
    }

    /// A plane that never fires (the default for production configs).
    pub fn disabled() -> Self {
        Self::new(FaultPlaneConfig::disabled(0))
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultPlaneConfig {
        &self.cfg
    }

    /// Advances the logical step counter (one engine step = one tick).
    pub fn tick(&mut self) {
        self.step += 1;
    }

    /// Current logical step.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Arms or quiesces the plane. A quiesced plane neither draws nor
    /// fires — chaos harnesses quiesce it for their oracle restores.
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Whether the plane is currently armed.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Consults the plane at a site: returns true if a fault fires.
    /// Disabled sites (probability 0) and quiesced planes never draw, so
    /// they do not perturb the stream.
    pub fn fire(&mut self, site: FaultSite) -> bool {
        let p = self.cfg.probs[site.idx()];
        if !self.active || p <= 0.0 {
            return false;
        }
        if self.rng.gen_f64() < p {
            self.counts[site.idx()] += 1;
            self.log.push(FaultEvent {
                site,
                step: self.step,
            });
            self.bus.emit_with(|| Event {
                t: self.step as f64,
                source: Source::Faults,
                kind: EventKind::Fault {
                    site: site.name(),
                    step: self.step,
                },
            });
            true
        } else {
            false
        }
    }

    /// Deterministic index draw in `[0, len)` (byte positions for
    /// bit-rot / torn-write damage). Returns 0 for empty ranges.
    pub fn draw_index(&mut self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.rng.next_u64() % len as u64) as usize
    }

    /// Times a site has fired.
    pub fn count(&self, site: FaultSite) -> u64 {
        self.counts[site.idx()]
    }

    /// Total faults injected across all sites.
    pub fn total_fired(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The full fault log, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Renders the fault log as stable text (`seed`, then one
    /// `step site` line per fault) — byte-identical across replays of
    /// the same seed, for determinism checks.
    pub fn render_log(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "seed {}", self.cfg.seed);
        for ev in &self.log {
            let _ = writeln!(out, "{} {}", ev.step, ev.site.name());
        }
        out
    }
}

/// Bounded-retry policy with deterministic exponential backoff, measured
/// in NDP engine steps (the engine's only clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per drain job before escalating to
    /// [`DegradePolicy`]. `attempts > max_attempts` escalates.
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, in engine steps.
    pub backoff_base: u64,
    /// Backoff ceiling, in engine steps.
    pub backoff_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: 2,
            backoff_cap: 64,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based): `base * 2^(a-1)`
    /// capped at `backoff_cap`. Deterministic — no jitter, by design.
    pub fn backoff_steps(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        (self.backoff_base << shift).min(self.backoff_cap.max(1))
    }
}

/// Graceful-degradation policy: what the engine does when a drain cannot
/// complete within its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// On a codec fault, restart the drain uncompressed instead of
    /// cancelling it.
    pub codec_fallback_uncompressed: bool,
    /// On retry exhaustion, cancel the drain (the checkpoint stays
    /// recoverable at the local/partner levels — remote-level coverage
    /// degrades for that checkpoint, which is recorded in
    /// `NdpStats::drains_degraded`). When false the engine retries
    /// forever.
    pub cancel_on_exhaustion: bool,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            codec_fallback_uncompressed: true,
            cancel_on_exhaustion: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_sequence() {
        let cfg = FaultPlaneConfig::uniform(99, 0.3);
        let mut a = FaultPlane::new(cfg);
        let mut b = FaultPlane::new(cfg);
        for i in 0..2000 {
            a.tick();
            b.tick();
            let site = FAULT_SITES[i % FAULT_SITES.len()];
            assert_eq!(a.fire(site), b.fire(site));
        }
        assert_eq!(a.events(), b.events());
        assert_eq!(a.render_log(), b.render_log());
        assert!(a.total_fired() > 0);
    }

    #[test]
    fn disabled_sites_never_draw_or_fire() {
        let cfg = FaultPlaneConfig::disabled(7).with(FaultSite::NicDrop, 1.0);
        let mut p = FaultPlane::new(cfg);
        p.tick();
        assert!(!p.fire(FaultSite::NvmTornWrite));
        assert!(p.fire(FaultSite::NicDrop));
        assert_eq!(p.count(FaultSite::NicDrop), 1);
        assert_eq!(p.count(FaultSite::NvmTornWrite), 0);
        assert_eq!(p.events().len(), 1);
        assert_eq!(p.events()[0].step, 1);
    }

    #[test]
    fn quiesced_plane_is_inert() {
        let mut p = FaultPlane::new(FaultPlaneConfig::uniform(1, 1.0));
        p.set_active(false);
        for _ in 0..100 {
            p.tick();
            assert!(!p.fire(FaultSite::IoAppend));
        }
        assert_eq!(p.total_fired(), 0);
        p.set_active(true);
        assert!(p.fire(FaultSite::IoAppend));
    }

    #[test]
    fn probability_one_always_fires() {
        let mut p = FaultPlane::new(FaultPlaneConfig::uniform(3, 1.0));
        for site in FAULT_SITES {
            assert!(p.fire(site));
        }
        assert_eq!(p.total_fired(), FAULT_SITES.len() as u64);
    }

    #[test]
    fn fire_rate_tracks_probability() {
        let mut p = FaultPlane::new(FaultPlaneConfig::disabled(11).with(
            FaultSite::IoAppend,
            0.25,
        ));
        let n = 100_000;
        let hits = (0..n).filter(|_| p.fire(FaultSite::IoAppend)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let r = RetryPolicy {
            max_attempts: 10,
            backoff_base: 2,
            backoff_cap: 16,
        };
        assert_eq!(r.backoff_steps(1), 2);
        assert_eq!(r.backoff_steps(2), 4);
        assert_eq!(r.backoff_steps(3), 8);
        assert_eq!(r.backoff_steps(4), 16);
        assert_eq!(r.backoff_steps(5), 16, "capped");
        assert_eq!(r.backoff_steps(40), 16, "shift clamped, no overflow");
    }

    #[test]
    fn draw_index_is_in_range_and_deterministic() {
        let mut a = FaultPlane::new(FaultPlaneConfig::disabled(5));
        let mut b = FaultPlane::new(FaultPlaneConfig::disabled(5));
        for len in [1usize, 2, 7, 1000] {
            let ia = a.draw_index(len);
            assert!(ia < len);
            assert_eq!(ia, b.draw_index(len));
        }
        assert_eq!(a.draw_index(0), 0);
    }

    #[test]
    fn fired_faults_are_mirrored_onto_the_bus() {
        let mut p = FaultPlane::new(FaultPlaneConfig::uniform(42, 0.5));
        let bus = Bus::with_sink(cr_obs::VecSink::new());
        p.set_bus(bus.clone());
        for i in 0..200 {
            p.tick();
            p.fire(FAULT_SITES[i % FAULT_SITES.len()]);
        }
        assert!(p.total_fired() > 0);
        let events = bus.drain();
        // The bus stream is the fault log, one-for-one and in order:
        // this is what lets the observability plane subsume the ad-hoc
        // log without changing its replay format.
        assert_eq!(events.len() as u64, p.total_fired());
        for (ev, fe) in events.iter().zip(p.events()) {
            assert_eq!(ev.source, Source::Faults);
            assert_eq!(
                ev.kind,
                EventKind::Fault {
                    site: fe.site.name(),
                    step: fe.step
                }
            );
        }
        // And attaching the bus did not perturb the draw sequence.
        let mut q = FaultPlane::new(FaultPlaneConfig::uniform(42, 0.5));
        for i in 0..200 {
            q.tick();
            q.fire(FAULT_SITES[i % FAULT_SITES.len()]);
        }
        assert_eq!(p.render_log(), q.render_log());
    }

    #[test]
    fn site_names_are_unique_and_stable() {
        let mut names: Vec<&str> =
            FAULT_SITES.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FAULT_SITES.len());
    }
}
