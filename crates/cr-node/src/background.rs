//! Background execution of the NDP drain engine.
//!
//! In the paper the NDP runs concurrently with the host. This module
//! provides that mode for the functional emulation: a worker thread owns
//! the [`ComputeNode`] behind a mutex and pumps
//! [`ComputeNode::ndp_step`] whenever there is work, while the host-side
//! handle performs checkpoints/restores through the same lock. The NDP's
//! own `pause`/`resume` protocol (exercised inside `checkpoint`/
//! `restore`) remains what guarantees the NVM-exclusivity semantics —
//! the mutex only serializes access to the in-memory structures.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::ndp::StepOutcome;
use crate::node::{ComputeNode, NodeError};

struct Shared {
    node: Mutex<ComputeNode>,
    work_cv: Condvar,
    stop: AtomicBool,
}

impl Shared {
    /// Locks the node, recovering from a poisoned mutex (a panicking
    /// host closure must not wedge the worker).
    fn lock_node(&self) -> MutexGuard<'_, ComputeNode> {
        self.node.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A compute node whose NDP engine runs on a background thread.
pub struct BackgroundNode {
    /// `Some` until [`BackgroundNode::stop`] consumes the node.
    shared: Option<Arc<Shared>>,
    worker: Option<JoinHandle<()>>,
}

impl BackgroundNode {
    /// Wraps a node and starts the NDP worker thread.
    pub fn start(node: ComputeNode) -> Self {
        let shared = Arc::new(Shared {
            node: Mutex::new(node),
            work_cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            loop {
                if worker_shared.stop.load(Ordering::Acquire) {
                    return;
                }
                let mut node = worker_shared.lock_node();
                match node.ndp_step() {
                    Ok(StepOutcome::Progress)
                    | Ok(StepOutcome::CompletedDrain(_)) => {
                        // More work likely; keep pumping (drop the lock
                        // between steps so the host can interleave).
                    }
                    Ok(StepOutcome::Idle)
                    | Ok(StepOutcome::Paused)
                    | Ok(StepOutcome::Stalled)
                    | Ok(StepOutcome::Retrying) => {
                        // Retrying covers fault backoff: the blocked
                        // job's deadline is measured in engine steps, so
                        // waking on the timeout keeps it advancing.
                        // Wait until the host signals new work (with a
                        // timeout so pause/unblock transitions are
                        // picked up promptly).
                        let _ = worker_shared
                            .work_cv
                            .wait_timeout(
                                node,
                                std::time::Duration::from_millis(1),
                            )
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    Err(_) => {
                        // Engine errors surface through host-side calls;
                        // stop pumping to avoid a hot error loop.
                        let _ = worker_shared
                            .work_cv
                            .wait_timeout(
                                node,
                                std::time::Duration::from_millis(5),
                            )
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        });
        BackgroundNode {
            shared: Some(shared),
            worker: Some(worker),
        }
    }

    fn shared(&self) -> &Arc<Shared> {
        self.shared.as_ref().expect("node already stopped")
    }

    /// Runs a host-side operation against the node (checkpoint,
    /// restore, failure injection, inspection).
    pub fn with_node<R>(
        &self,
        f: impl FnOnce(&mut ComputeNode) -> R,
    ) -> R {
        let shared = self.shared();
        let mut node = shared.lock_node();
        let r = f(&mut node);
        drop(node);
        shared.work_cv.notify_all();
        r
    }

    /// Blocks until the NDP backlog is empty (all enqueued drains
    /// complete) or the engine stalls.
    pub fn wait_drained(&self) -> Result<(), NodeError> {
        loop {
            let done = {
                let mut node = self.shared().lock_node();
                // Nudge the engine ourselves too, in case the worker is
                // between wakeups.
                match node.ndp_step()? {
                    StepOutcome::Idle => true,
                    StepOutcome::Stalled => {
                        return Err(NodeError::DrainStalled)
                    }
                    _ => false,
                }
            };
            if done {
                return Ok(());
            }
            std::thread::yield_now();
        }
    }

    /// Stops the worker and returns the node.
    pub fn stop(mut self) -> ComputeNode {
        let shared = self.shared.take().expect("node already stopped");
        shared.stop.store(true, Ordering::Release);
        shared.work_cv.notify_all();
        if let Some(h) = self.worker.take() {
            h.join().expect("NDP worker panicked");
        }
        // The worker has exited; this was the last Arc holder.
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared
                .node
                .into_inner()
                .unwrap_or_else(|e| e.into_inner()),
            Err(_) => unreachable!("worker exited; no other Arc holders"),
        }
    }
}

impl Drop for BackgroundNode {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.stop.store(true, Ordering::Release);
            shared.work_cv.notify_all();
        }
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{FailureKind, NodeConfig, RestoreSource};

    fn payload(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| tag ^ (i % 249) as u8).collect()
    }

    #[test]
    fn background_drain_completes_without_host_pumping() {
        let mut node = ComputeNode::new(NodeConfig {
            drain_ratio: 1,
            ..NodeConfig::small_test()
        });
        node.register_app("app");
        let bg = BackgroundNode::start(node);
        let data = payload(5, 700_000);
        bg.with_node(|n| n.checkpoint("app", &data)).unwrap();
        bg.wait_drained().unwrap();
        let stats = bg.with_node(|n| n.ndp_stats());
        assert_eq!(stats.drains_completed, 1);
        let node = bg.stop();
        assert_eq!(node.io().object_count(), 1);
    }

    #[test]
    fn host_operations_interleave_with_background_drains() {
        let mut node = ComputeNode::new(NodeConfig {
            drain_ratio: 1,
            ..NodeConfig::small_test()
        });
        node.register_app("app");
        let bg = BackgroundNode::start(node);
        let mut last = Vec::new();
        for i in 0..6u8 {
            last = payload(i, 400_000);
            bg.with_node(|n| n.checkpoint("app", &last)).unwrap();
        }
        bg.wait_drained().unwrap();
        bg.with_node(|n| n.inject_failure(FailureKind::NodeLoss));
        let restored = bg.with_node(|n| n.restore("app")).unwrap();
        assert_eq!(restored.source, RestoreSource::RemoteIo);
        assert_eq!(restored.data, last);
        bg.stop();
    }

    #[test]
    fn stop_is_idempotent_via_drop() {
        let mut node = ComputeNode::new(NodeConfig::small_test());
        node.register_app("app");
        let bg = BackgroundNode::start(node);
        bg.with_node(|n| n.checkpoint("app", b"tiny")).unwrap();
        drop(bg); // must not hang or panic
    }
}
