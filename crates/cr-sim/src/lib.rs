//! # cr-sim — discrete-event simulator for multilevel C/R with NDP
//!
//! A Monte-Carlo, discrete-event companion to `cr-core`'s analytic model.
//! Where the analytic model solves the *expected* cycle time of a
//! configuration in closed form, this crate simulates the actual timeline
//! of Figure 3 of the paper second by second:
//!
//! * the host alternates compute segments and local-NVM checkpoint
//!   commits, optionally blocking on global-I/O commits
//!   (`Local + I/O-Host`);
//! * under NDP offload, a background drain pipeline compresses and ships
//!   every k-th checkpoint to global I/O, pausing while the host owns the
//!   NVM (§4.2.1) and during recoveries (§4.2.3);
//! * failures arrive as a Poisson process and can interrupt *anything* —
//!   compute, commits, drains, and restores;
//! * recovery rolls back to the newest checkpoint durable at the
//!   recovering level and re-executes lost work.
//!
//! Every simulated second is attributed to one of the seven buckets of
//! [`cr_core::breakdown::Breakdown`], so simulator output is directly
//! comparable with the analytic model — the workspace integration tests
//! cross-validate the two backends on every paper configuration.
//!
//! ## Quick start
//!
//! ```
//! use cr_core::prelude::*;
//! use cr_sim::{simulate, SimOptions};
//!
//! let sys = SystemParams::exascale_default();
//! let strat = Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp()));
//! let result = simulate(&sys, &strat, &SimOptions::quick(42));
//! assert!(result.breakdown.progress_rate() > 0.5);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod engine;
pub mod par;
pub mod rng;
pub mod runner;
pub mod trace;

pub use engine::{
    run_engine, run_engine_cold, run_engine_faulty, run_engine_observed,
    run_engine_traced, SimFaults, SimOptions, SimResult, SimStats,
};
pub use par::{default_threads, par_map, par_map_in};
pub use runner::{
    run_fleet_observed, run_fleet_observed_in, simulate, simulate_avg,
    simulate_avg_in, AveragedResult,
};
pub use trace::Trace;
