//! Timeline tracing: optional per-activity event capture for rendering
//! Figure 3-style timelines (host lane, NDP lane, I/O durability
//! marks).

/// Which lane of the Figure 3 timeline a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// The host processor (compute + commits + restores).
    Host,
    /// The NDP drain pipeline.
    Ndp,
}

/// What happened during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Useful computation.
    Compute,
    /// Local NVM checkpoint commit.
    CkptLocal,
    /// Host-blocking global-I/O commit.
    CkptIo,
    /// Restore from local storage.
    RestoreLocal,
    /// Restore from global I/O.
    RestoreIo,
    /// NDP draining a checkpoint to global I/O.
    Drain,
}

/// One traced interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpan {
    /// Lane the span belongs to.
    pub lane: Lane,
    /// Activity kind.
    pub kind: SpanKind,
    /// Start time, seconds.
    pub t0: f64,
    /// End time, seconds.
    pub t1: f64,
    /// True if the activity was cut short by a failure.
    pub interrupted: bool,
}

/// One instantaneous event (failures, drain completions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceMark {
    /// Time, seconds.
    pub t: f64,
    /// Label.
    pub kind: MarkKind,
}

/// Kinds of instantaneous marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkKind {
    /// A failure struck.
    Failure,
    /// A checkpoint became durable on global I/O.
    IoDurable,
}

impl Lane {
    /// Stable wire name used in observability events.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Host => "host",
            Lane::Ndp => "ndp",
        }
    }

    /// Inverse of [`Lane::name`].
    pub fn from_name(s: &str) -> Option<Lane> {
        match s {
            "host" => Some(Lane::Host),
            "ndp" => Some(Lane::Ndp),
            _ => None,
        }
    }
}

impl SpanKind {
    /// Stable wire name used in observability events.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::CkptLocal => "ckpt_local",
            SpanKind::CkptIo => "ckpt_io",
            SpanKind::RestoreLocal => "restore_local",
            SpanKind::RestoreIo => "restore_io",
            SpanKind::Drain => "drain",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(s: &str) -> Option<SpanKind> {
        match s {
            "compute" => Some(SpanKind::Compute),
            "ckpt_local" => Some(SpanKind::CkptLocal),
            "ckpt_io" => Some(SpanKind::CkptIo),
            "restore_local" => Some(SpanKind::RestoreLocal),
            "restore_io" => Some(SpanKind::RestoreIo),
            "drain" => Some(SpanKind::Drain),
            _ => None,
        }
    }
}

impl MarkKind {
    /// Stable wire name used in observability events.
    pub fn name(self) -> &'static str {
        match self {
            MarkKind::Failure => "failure",
            MarkKind::IoDurable => "io_durable",
        }
    }

    /// Inverse of [`MarkKind::name`].
    pub fn from_name(s: &str) -> Option<MarkKind> {
        match s {
            "failure" => Some(MarkKind::Failure),
            "io_durable" => Some(MarkKind::IoDurable),
            _ => None,
        }
    }
}

/// Collected trace of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Activity spans, in emission order.
    pub spans: Vec<TraceSpan>,
    /// Instantaneous marks.
    pub marks: Vec<TraceMark>,
}

impl Trace {
    /// Rebuilds a timeline from an observability event stream.
    ///
    /// Only [`cr_obs::EventKind::Span`] and [`cr_obs::EventKind::Mark`]
    /// events contribute; everything else (drain engine, NVM, fault
    /// plane traffic sharing the same bus) is skipped. Unknown lane or
    /// kind names are skipped too, so a trace can always be rebuilt
    /// from a stream containing events from a newer producer.
    pub fn from_events(events: &[cr_obs::Event]) -> Trace {
        let mut out = Trace::default();
        for e in events {
            match e.kind {
                cr_obs::EventKind::Span {
                    lane,
                    span,
                    t0,
                    t1,
                    interrupted,
                } => {
                    if let (Some(lane), Some(kind)) =
                        (Lane::from_name(lane), SpanKind::from_name(span))
                    {
                        out.spans.push(TraceSpan {
                            lane,
                            kind,
                            t0,
                            t1,
                            interrupted,
                        });
                    }
                }
                cr_obs::EventKind::Mark { mark } => {
                    if let Some(kind) = MarkKind::from_name(mark) {
                        out.marks.push(TraceMark { t: e.t, kind });
                    }
                }
                _ => {}
            }
        }
        out
    }
    /// Renders an ASCII timeline between `from` and `to` seconds with
    /// `width` columns — the textual cousin of the paper's Figure 3.
    pub fn render_ascii(&self, from: f64, to: f64, width: usize) -> String {
        assert!(to > from && width >= 10);
        let scale = width as f64 / (to - from);
        let col = |t: f64| -> usize {
            (((t - from) * scale) as usize).min(width - 1)
        };
        let mut host = vec![b' '; width];
        let mut ndp = vec![b' '; width];
        let mut marks_row = vec![b' '; width];

        for s in &self.spans {
            if s.t1 < from || s.t0 > to {
                continue;
            }
            let (a, b) = (col(s.t0.max(from)), col(s.t1.min(to)));
            let ch = match s.kind {
                SpanKind::Compute => b'=',
                SpanKind::CkptLocal => b'L',
                SpanKind::CkptIo => b'W',
                SpanKind::RestoreLocal => b'r',
                SpanKind::RestoreIo => b'R',
                SpanKind::Drain => b'd',
            };
            let row = match s.lane {
                Lane::Host => &mut host,
                Lane::Ndp => &mut ndp,
            };
            for c in row.iter_mut().take(b + 1).skip(a) {
                *c = ch;
            }
        }
        for m in &self.marks {
            if m.t < from || m.t > to {
                continue;
            }
            marks_row[col(m.t)] = match m.kind {
                MarkKind::Failure => b'X',
                MarkKind::IoDurable => b'^',
            };
        }

        let legend = "legend: = compute | L local ckpt | W host I/O write | \
                      r/R restore local/IO | d NDP drain | X failure | ^ I/O durable";
        format!(
            "HOST |{}|\nNDP  |{}|\n     |{}|\n{}\n",
            String::from_utf8_lossy(&host),
            String::from_utf8_lossy(&ndp),
            String::from_utf8_lossy(&marks_row),
            legend
        )
    }

    /// Total traced span time per kind, seconds.
    pub fn time_in(&self, kind: SpanKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.t1 - s.t0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            spans: vec![
                TraceSpan {
                    lane: Lane::Host,
                    kind: SpanKind::Compute,
                    t0: 0.0,
                    t1: 100.0,
                    interrupted: false,
                },
                TraceSpan {
                    lane: Lane::Host,
                    kind: SpanKind::CkptLocal,
                    t0: 100.0,
                    t1: 110.0,
                    interrupted: false,
                },
                TraceSpan {
                    lane: Lane::Ndp,
                    kind: SpanKind::Drain,
                    t0: 20.0,
                    t1: 90.0,
                    interrupted: false,
                },
            ],
            marks: vec![TraceMark {
                t: 50.0,
                kind: MarkKind::Failure,
            }],
        }
    }

    #[test]
    fn ascii_render_contains_lanes_and_marks() {
        let s = sample().render_ascii(0.0, 120.0, 60);
        assert!(s.contains("HOST |"));
        assert!(s.contains("NDP  |"));
        assert!(s.contains('='));
        assert!(s.contains('L'));
        assert!(s.contains('d'));
        assert!(s.contains('X'));
        assert!(s.contains("legend"));
    }

    #[test]
    fn time_accounting() {
        let t = sample();
        assert_eq!(t.time_in(SpanKind::Compute), 100.0);
        assert_eq!(t.time_in(SpanKind::CkptLocal), 10.0);
        assert_eq!(t.time_in(SpanKind::Drain), 70.0);
        assert_eq!(t.time_in(SpanKind::CkptIo), 0.0);
    }

    #[test]
    fn out_of_window_spans_are_clipped() {
        let s = sample().render_ascii(200.0, 300.0, 40);
        // Nothing in window: lanes blank.
        let host_line = s.lines().next().unwrap();
        assert!(!host_line.contains('='));
    }

    #[test]
    fn adversarial_streams_never_panic() {
        use cr_obs::{Event, EventKind, Source};
        let ev = |t: f64, source: Source, kind: EventKind| Event {
            t,
            source,
            kind,
        };
        // Unclosed causal spans, out-of-order timestamps, orphan
        // closes, unknown span/lane/mark names, events from every
        // source — a hostile stream must produce a (possibly empty)
        // trace, never a panic.
        let events = vec![
            ev(
                9.0,
                Source::Sim,
                EventKind::SpanOpen {
                    id: 5,
                    parent: 99,
                    name: "never_closed",
                },
            ),
            ev(3.0, Source::Sim, EventKind::SpanClose { id: 777 }),
            ev(
                5.0,
                Source::Sim,
                EventKind::Span {
                    lane: "submarine",
                    span: "snorkel",
                    t0: 8.0,
                    t1: 2.0, // t1 < t0
                    interrupted: true,
                },
            ),
            ev(
                1.0, // timestamps regress
                Source::Sim,
                EventKind::Mark {
                    mark: "not_a_known_mark",
                },
            ),
            ev(0.5, Source::Faults, EventKind::LockContention),
            ev(
                0.0,
                Source::Ndp,
                EventKind::DrainStall {
                    cause: "nic_backpressure",
                },
            ),
            ev(
                -4.0,
                Source::Sim,
                EventKind::Span {
                    lane: "host",
                    span: "compute",
                    t0: -4.0,
                    t1: -1.0,
                    interrupted: false,
                },
            ),
        ];
        let trace = Trace::from_events(&events);
        // Unknown names are skipped, known ones kept (even with odd
        // timestamps).
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.marks.len(), 0);
        assert_eq!(trace.time_in(SpanKind::Compute), 3.0);
        // Rendering a window over the weird span must not panic either.
        let _ = trace.render_ascii(-5.0, 1.0, 30);
    }

    #[test]
    fn empty_and_unknown_only_streams_yield_empty_traces() {
        use cr_obs::{Event, EventKind, Source};
        assert!(Trace::from_events(&[]).spans.is_empty());
        let events = vec![Event {
            t: 1.0,
            source: Source::Bench,
            kind: EventKind::Mark { mark: "mystery" },
        }];
        let trace = Trace::from_events(&events);
        assert!(trace.spans.is_empty() && trace.marks.is_empty());
    }
}
