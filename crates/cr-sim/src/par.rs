//! Minimal scoped-thread parallel map used for replica fan-out and
//! parameter sweeps.
//!
//! Replicas of a Monte-Carlo simulation are embarrassingly parallel and
//! uniform in cost, so a simple atomic-counter work queue over
//! `std::thread::scope` is all that is needed — no work stealing, no
//! task graph. Results land in their input positions, so the output
//! order is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, in parallel, preserving order.
///
/// Spawns up to `min(items.len(), available_parallelism)` threads.
/// Panics in `f` propagate after all threads finish their current item.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let out_slots = &mut out[..];

    std::thread::scope(|scope| {
        // Hand each worker a raw view of the output buffer: every index
        // is claimed exactly once via the atomic counter, so no two
        // workers touch the same slot.
        let out_addr = SendPtr(out_slots.as_mut_ptr());
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let items = &items;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // SAFETY: index i is uniquely claimed by this worker and
                // in-bounds; the buffer outlives the scope.
                unsafe {
                    *out_addr.get().add(i) = Some(r);
                }
            });
        }
    });

    out.into_iter()
        .map(|slot| slot.expect("slot not filled"))
        .collect()
}

/// A `Send + Copy` wrapper for the raw output pointer shared across
/// workers. Soundness argument in [`par_map`].
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `SendPtr` — edition-2021 disjoint capture would otherwise
    /// capture the raw pointer field, which is not `Send`.
    fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[41], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_work_is_still_complete() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, |&x| {
            // Deliberately skewed cost.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i as u64);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 64);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn results_match_sequential() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 / 7.0).collect();
        let seq: Vec<f64> = items.iter().map(|x| x.sin()).collect();
        let par = par_map(&items, |x| x.sin());
        assert_eq!(seq, par);
    }
}
