//! Parallel replica fan-out, backed by the workspace work-stealing
//! executor ([`cr_core::par`]).
//!
//! Replicas of a Monte-Carlo simulation are embarrassingly parallel but
//! not perfectly uniform in cost (failure-heavy seeds run longer), so
//! the chunk-claiming, work-stealing executor keeps every core busy
//! through the stragglers. Results land in their input positions, so
//! the output order is deterministic regardless of scheduling.

pub use cr_core::par::{default_threads, par_map_in};

/// Applies `f` to every item, in parallel, preserving order.
///
/// Uses up to [`default_threads`] workers. Panics in `f` propagate
/// after all workers stop.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    cr_core::par::par_map_chunked(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[41], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_work_is_still_complete() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, |&x| {
            // Deliberately skewed cost.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i as u64);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 64);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn results_match_sequential() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 / 7.0).collect();
        let seq: Vec<f64> = items.iter().map(|x| x.sin()).collect();
        let par = par_map(&items, |x| x.sin());
        assert_eq!(seq, par);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let items: Vec<u64> = (0..333).collect();
        let one = par_map_in(1, &items, |&x| x.wrapping_mul(0x9E37_79B9));
        for threads in [2, 3, 8] {
            let many =
                par_map_in(threads, &items, |&x| x.wrapping_mul(0x9E37_79B9));
            assert_eq!(one, many, "{threads} threads diverged");
        }
    }
}
