//! Deterministic random streams for reproducible Monte-Carlo runs.
//!
//! Each simulation replica owns independent, seedable streams for failure
//! inter-arrival times and recovery-level sampling, so that changing one
//! aspect of a configuration does not perturb the random sequence of the
//! other (common-random-numbers variance reduction across configurations
//! sharing a seed).

use cr_rand::ChaCha8;

/// Stream identifiers, mixed into the seed so different uses of the same
/// replica seed are decorrelated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Failure inter-arrival times.
    Failures,
    /// Per-failure recovery-level Bernoulli draws.
    RecoveryLevel,
    /// Anything workload-related (used by callers embedding the sim).
    Workload,
    /// Injected-fault draws (local corruption, drain errors). A separate
    /// stream so enabling faults never perturbs the failure/recovery
    /// sequences of a fault-free run with the same seed.
    Faults,
}

impl StreamKind {
    fn tag(self) -> u64 {
        match self {
            StreamKind::Failures => 0x9E37_79B9_7F4A_7C15,
            StreamKind::RecoveryLevel => 0xBF58_476D_1CE4_E5B9,
            StreamKind::Workload => 0x94D0_49BB_1331_11EB,
            StreamKind::Faults => 0xD6E8_FEB8_6659_FD93,
        }
    }
}

/// A deterministic random stream derived from `(seed, kind)`.
#[derive(Debug, Clone)]
pub struct Stream {
    rng: ChaCha8,
}

impl Stream {
    /// Creates the stream for a replica seed and stream kind.
    pub fn new(seed: u64, kind: StreamKind) -> Self {
        // SplitMix-style avalanche of the combined seed.
        let mut z = seed ^ kind.tag();
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Stream {
            rng: ChaCha8::seed_from_u64(z),
        }
    }

    /// Re-derives this stream from `(seed, kind)` in place, exactly as
    /// [`Stream::new`] would. Lets a pooled engine re-arm its streams
    /// without reallocating; the resulting sequence is bit-identical to
    /// a freshly constructed stream.
    pub fn reseed(&mut self, seed: u64, kind: StreamKind) {
        *self = Stream::new(seed, kind);
    }

    /// Samples an exponential variate with the given mean. The result
    /// is strictly positive and finite for every possible draw.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        exp_from_uniform(mean, self.rng.gen_f64())
    }

    /// Samples a Bernoulli with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.rng.gen_f64() < p
    }

    /// Samples a uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen_f64()
    }
}

/// Largest `f64` strictly below 1.0 (the spacing just under 1.0 is
/// 2⁻⁵³ = `EPSILON / 2`).
const U_MAX: f64 = 1.0 - f64::EPSILON / 2.0;

/// Inverse-CDF exponential transform of a `[0, 1)` uniform draw `g`:
/// flip to `u = 1 - g` in `(0, 1]`, then clamp into `(0, 1)` so
/// `-mean·ln(u)` is strictly positive and finite.
///
/// Without the clamp, the (probability 2⁻⁵³, but legal) draw
/// `g == 0.0` gives `u == 1.0` and `ln(1) == 0` — a zero
/// inter-arrival time, violating the exponential contract and able to
/// schedule two simultaneous failures in the engine. The clamp remaps
/// exactly that draw to the largest sub-1.0 float (every uniform draw
/// is a multiple of 2⁻⁵³, so `u` for any `g > 0` is already ≤
/// [`U_MAX`] and comes through bit-identical); the lower bound guards
/// the `u == 0.0` end the same way should a caller ever feed `g = 1.0`.
fn exp_from_uniform(mean: f64, g: f64) -> f64 {
    let u = (1.0 - g).clamp(f64::MIN_POSITIVE, U_MAX);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Stream::new(7, StreamKind::Failures);
        let mut b = Stream::new(7, StreamKind::Failures);
        for _ in 0..100 {
            assert_eq!(a.exp(10.0), b.exp(10.0));
        }
    }

    #[test]
    fn reseed_matches_fresh_stream() {
        let mut pooled = Stream::new(1, StreamKind::Failures);
        for _ in 0..17 {
            pooled.exp(3.0); // advance to an arbitrary mid-run state
        }
        pooled.reseed(99, StreamKind::RecoveryLevel);
        let mut fresh = Stream::new(99, StreamKind::RecoveryLevel);
        for _ in 0..100 {
            assert_eq!(pooled.uniform(), fresh.uniform());
        }
    }

    #[test]
    fn streams_differ_by_kind_and_seed() {
        let mut a = Stream::new(7, StreamKind::Failures);
        let mut b = Stream::new(7, StreamKind::RecoveryLevel);
        let mut c = Stream::new(8, StreamKind::Failures);
        let (xa, xb, xc) = (a.exp(1.0), b.exp(1.0), c.exp(1.0));
        assert_ne!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn exponential_mean_is_right() {
        let mut s = Stream::new(123, StreamKind::Failures);
        let n = 200_000;
        let mean = 42.0;
        let sum: f64 = (0..n).map(|_| s.exp(mean)).sum();
        let est = sum / n as f64;
        assert!(
            (est - mean).abs() < 0.5,
            "estimated mean {est} vs {mean}"
        );
    }

    #[test]
    fn exponential_is_positive_and_finite() {
        let mut s = Stream::new(9, StreamKind::Failures);
        for _ in 0..10_000 {
            let x = s.exp(1.0);
            assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn exp_zero_draw_regression() {
        // `gen_f64` can legally return exactly 0.0 (probability 2⁻⁵³ —
        // unreachable by seed search, so the transform is tested
        // directly). The old code returned -mean·ln(1-0) = 0.0 here.
        let x = exp_from_uniform(42.0, 0.0);
        assert!(x > 0.0 && x.is_finite(), "zero draw gave {x}");
        // The other degenerate end (u = 0) must not give ∞ either.
        let y = exp_from_uniform(42.0, 1.0);
        assert!(y > 0.0 && y.is_finite(), "unit draw gave {y}");
        // Non-degenerate draws pass through the clamp bit-identically,
        // so existing seeded runs are unperturbed.
        for g in [f64::EPSILON / 2.0, 0.25, 0.5, 0.999] {
            assert_eq!(exp_from_uniform(2.0, g), -2.0 * (1.0 - g).ln());
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut s = Stream::new(55, StreamKind::RecoveryLevel);
        let n = 100_000;
        let hits = (0..n).filter(|_| s.bernoulli(0.85)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.85).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut s = Stream::new(1, StreamKind::RecoveryLevel);
        assert!(!(0..1000).any(|_| s.bernoulli(0.0)));
        assert!((0..1000).all(|_| s.bernoulli(1.0)));
    }
}
