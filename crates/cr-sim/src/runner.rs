//! High-level simulation entry points: single runs and averaged
//! multi-replica runs.

use std::cell::Cell;

use cr_core::breakdown::Breakdown;
use cr_core::params::{Strategy, SystemParams};
use cr_obs::{Bus, Event, VecSink};

use crate::engine::{
    run_engine, run_engine_observed, SimFaults, SimOptions, SimResult,
};
use crate::par::{default_threads, par_map_in};

/// Runs one simulation replica.
pub fn simulate(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
) -> SimResult {
    run_engine(sys, strat, opts)
}

/// Aggregate of several independent replicas.
#[derive(Debug, Clone)]
pub struct AveragedResult {
    /// Sum of all replica breakdowns (ratios of this are the pooled
    /// estimates).
    pub pooled: Breakdown,
    /// Per-replica progress rates.
    pub progress_rates: Vec<f64>,
    /// Per-replica results.
    pub replicas: Vec<SimResult>,
}

impl AveragedResult {
    /// Pooled progress-rate estimate (total compute over total wall).
    pub fn progress_rate(&self) -> f64 {
        self.pooled.progress_rate()
    }

    /// Mean of per-replica progress rates.
    pub fn mean_progress(&self) -> f64 {
        let n = self.progress_rates.len() as f64;
        self.progress_rates.iter().sum::<f64>() / n
    }

    /// Standard error of the per-replica progress-rate mean.
    pub fn sem_progress(&self) -> f64 {
        let n = self.progress_rates.len();
        if n < 2 {
            return f64::NAN;
        }
        let mean = self.mean_progress();
        let var = self
            .progress_rates
            .iter()
            .map(|p| (p - mean) * (p - mean))
            .sum::<f64>()
            / (n as f64 - 1.0);
        (var / n as f64).sqrt()
    }

    /// Pooled breakdown normalized to fractions of total time.
    pub fn fractions(&self) -> Breakdown {
        self.pooled.as_fractions()
    }
}

/// Runs `replicas` independent simulations (seeds `base_seed..`) in
/// parallel and pools the results.
pub fn simulate_avg(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
    replicas: u64,
) -> AveragedResult {
    simulate_avg_in(default_threads(), sys, strat, opts, replicas)
}

/// [`simulate_avg`] with an explicit worker-thread count. Replica
/// results are keyed only by seed, so every thread count produces
/// bit-identical output (the sim bench asserts this).
pub fn simulate_avg_in(
    threads: usize,
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
    replicas: u64,
) -> AveragedResult {
    assert!(replicas >= 1);
    let seeds: Vec<u64> =
        (0..replicas).map(|i| opts.seed.wrapping_add(i)).collect();
    let results = par_map_in(threads, &seeds, |&seed| {
        let opts = SimOptions { seed, ..*opts };
        run_engine(sys, strat, &opts)
    });
    let mut pooled = Breakdown::zero();
    let mut progress_rates = Vec::with_capacity(results.len());
    for r in &results {
        pooled += r.breakdown;
        progress_rates.push(r.breakdown.progress_rate());
    }
    AveragedResult {
        pooled,
        progress_rates,
        replicas: results,
    }
}

/// Runs `replicas` independent simulations (seeds `base_seed..`) in
/// parallel, each observed through its own private event bus, and
/// returns the per-replica results alongside their event streams in
/// seed order.
///
/// This is the multi-node trace-collection entry point: per-replica
/// streams can be analyzed node by node
/// ([`cr_obs::analyze::analyze`]), merged into percentile summaries
/// ([`cr_obs::analyze::merge_percentiles`]), or exported as one
/// Chrome trace with a `pid` per replica
/// ([`cr_obs::export::chrome_trace_merged`]). Observation is private
/// per replica, so the results are bit-identical to
/// [`simulate_avg`] with the same seeds.
pub fn run_fleet_observed(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
    faults: &SimFaults,
    replicas: u64,
) -> Vec<(SimResult, Vec<Event>)> {
    run_fleet_observed_in(default_threads(), sys, strat, opts, faults, replicas)
}

thread_local! {
    /// High-water event count of this thread's previous observed
    /// replica. Same-fleet replicas have very similar event counts, so
    /// sizing the next sink from the last one removes nearly all growth
    /// reallocations from the observed hot path.
    static SINK_HIGH_WATER: Cell<usize> = const { Cell::new(0) };
}

/// [`run_fleet_observed`] with an explicit worker-thread count. Event
/// streams are private per replica and keyed only by seed, so every
/// thread count produces bit-identical results and streams.
pub fn run_fleet_observed_in(
    threads: usize,
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
    faults: &SimFaults,
    replicas: u64,
) -> Vec<(SimResult, Vec<Event>)> {
    assert!(replicas >= 1);
    let seeds: Vec<u64> =
        (0..replicas).map(|i| opts.seed.wrapping_add(i)).collect();
    par_map_in(threads, &seeds, |&seed| {
        let opts = SimOptions { seed, ..*opts };
        let cap = SINK_HIGH_WATER.with(Cell::get);
        let bus = Bus::with_sink(VecSink::with_capacity(cap));
        let result = run_engine_observed(sys, strat, &opts, faults, &bus);
        let events = bus.drain();
        SINK_HIGH_WATER.with(|c| c.set(c.get().max(events.len())));
        (result, events)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::params::CompressionSpec;

    fn sys() -> SystemParams {
        SystemParams::exascale_default()
    }

    #[test]
    fn averaging_tightens_estimates() {
        let strat = Strategy::local_io_ndp(0.85, None);
        let avg = simulate_avg(&sys(), &strat, &SimOptions::quick(100), 8);
        assert_eq!(avg.replicas.len(), 8);
        assert!(avg.sem_progress() < 0.01, "sem = {}", avg.sem_progress());
        // Pooled and mean estimates agree closely.
        assert!(
            (avg.progress_rate() - avg.mean_progress()).abs() < 0.01
        );
    }

    #[test]
    fn pooled_breakdown_is_sum() {
        let strat = Strategy::local_io_host(10, 0.5, None);
        let avg = simulate_avg(&sys(), &strat, &SimOptions::quick(3), 4);
        let manual: f64 =
            avg.replicas.iter().map(|r| r.breakdown.total()).sum();
        assert!((avg.pooled.total() - manual).abs() < 1e-6 * manual);
    }

    #[test]
    fn sim_matches_analytic_on_ndp_compressed() {
        // Cross-validation: DES vs Markov-renewal analytic model.
        let strat =
            Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp()));
        let avg = simulate_avg(&sys(), &strat, &SimOptions::standard(42), 8);
        let analytic = cr_core::analytic::progress_rate(&sys(), &strat);
        let simulated = avg.progress_rate();
        assert!(
            (simulated - analytic).abs() < 0.02,
            "sim {simulated} vs analytic {analytic}"
        );
    }

    #[test]
    fn sem_requires_two_replicas() {
        let strat = Strategy::LocalOnly { interval: None };
        let avg = simulate_avg(&sys(), &strat, &SimOptions::quick(5), 1);
        assert!(avg.sem_progress().is_nan());
    }

    #[test]
    fn fleet_matches_unobserved_replicas_in_seed_order() {
        let strat = Strategy::local_io_ndp(0.85, None);
        let opts = SimOptions::quick(7);
        let fleet = run_fleet_observed(
            &sys(),
            &strat,
            &opts,
            &SimFaults::default(),
            3,
        );
        assert_eq!(fleet.len(), 3);
        let avg = simulate_avg(&sys(), &strat, &opts, 3);
        for (i, (result, events)) in fleet.iter().enumerate() {
            // Observation never perturbs the run.
            assert_eq!(
                result.stats.wall_time,
                avg.replicas[i].stats.wall_time
            );
            assert!(!events.is_empty(), "replica {i} produced no events");
        }
        // Replicas differ (different seeds) and streams are private.
        assert_ne!(
            fleet[0].0.stats.wall_time,
            fleet[1].0.stats.wall_time
        );
    }
}
