//! The discrete-event engine: host timeline, NDP drain pipeline, failure
//! injection, and per-second bucket accounting.
//!
//! The engine executes the operational rules of §4.2 of the paper:
//!
//! * All checkpoints are committed to local NVM on the host's critical
//!   path (`δ_local`); every k-th is additionally made durable on global
//!   I/O — synchronously by the host (`Local + I/O-Host`) or
//!   asynchronously by the NDP drain pipeline (`Local + I/O-NDP`).
//! * The NDP drain progresses only while the host computes: it pauses
//!   while the host owns the NVM for a commit (§4.2.1) and during any
//!   recovery (§4.2.3).
//! * A failure destroys in-flight work. With probability `p_local` the
//!   failure is survivable from locally-saved checkpoints; otherwise
//!   node-local state (including pending drains) is lost and recovery
//!   must restore from the last I/O-durable checkpoint.
//! * Restores are interruptible activities; a failure during a restore is
//!   a fresh failure with a fresh survivability draw.
//!
//! Time accounting: every simulated second lands in exactly one bucket of
//! [`Breakdown`]. Compute seconds that re-execute previously completed
//! work are *rerun*, attributed to the recovery level that caused the
//! deficit (proportionally, when deficits from both levels overlap).

use std::cell::RefCell;
use std::collections::VecDeque;

use cr_core::breakdown::Breakdown;
use cr_core::params::{derive_costs, DerivedCosts, Strategy, SystemParams};

use cr_obs::stage::{self, Stage};
use cr_obs::{Bus, Event, EventKind, Source, VecSink};

use crate::rng::{Stream, StreamKind};
use crate::trace::{Lane, MarkKind, SpanKind, Trace};

/// Controls simulation length and reproducibility.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Replica seed; equal seeds give identical runs.
    pub seed: u64,
    /// Keep simulating until at least this many failures were injected.
    pub min_failures: u64,
    /// ... and at least this much useful work completed, seconds.
    pub min_work: f64,
    /// Safety stop: never simulate past this much wall-clock time.
    pub max_wall: f64,
}

impl SimOptions {
    /// Short run for unit tests and smoke checks (~300 failures).
    pub fn quick(seed: u64) -> Self {
        SimOptions {
            seed,
            min_failures: 300,
            min_work: 0.0,
            max_wall: 1e12,
        }
    }

    /// Standard run giving tight estimates (~3000 failures).
    pub fn standard(seed: u64) -> Self {
        SimOptions {
            seed,
            min_failures: 3000,
            min_work: 0.0,
            max_wall: 1e12,
        }
    }
}

/// Injected-fault configuration for a simulation replica.
///
/// This mirrors the functional emulation's `FaultPlane` at the analytic
/// granularity the discrete sim works in: instead of torn frames and NIC
/// drops it models their *observable consequences* — a survivable failure
/// whose local copy turns out to be corrupt (so recovery escalates to the
/// I/O level, tying the effective §6.1.1 `p_local` to a mechanism), and
/// drain commits that hit transient I/O errors (bounded retries, then the
/// drain is abandoned and coverage degrades to the local level).
///
/// The default is all-zero probabilities, and zero-probability sites draw
/// **no** random numbers, so a default `SimFaults` run is bit-identical
/// to [`run_engine`] with the same seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimFaults {
    /// Probability that a survivable failure finds its local checkpoint
    /// corrupted on read (detected by verification, recovery escalates
    /// to the I/O level).
    pub p_local_corrupt: f64,
    /// Probability that a completing NDP drain hits a transient I/O
    /// error and must retry.
    pub p_drain_error: f64,
    /// Extra drain time (seconds) charged per retry.
    pub drain_retry_penalty: f64,
    /// Retries after which an erroring drain is abandoned (the
    /// checkpoint stays covered by the local level only).
    pub max_drain_retries: u32,
}

impl Default for SimFaults {
    fn default() -> Self {
        SimFaults {
            p_local_corrupt: 0.0,
            p_drain_error: 0.0,
            drain_retry_penalty: 5.0,
            max_drain_retries: 3,
        }
    }
}

/// Counters describing what happened during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated wall-clock time, seconds.
    pub wall_time: f64,
    /// Net useful work completed, seconds.
    pub work_done: f64,
    /// Failures injected.
    pub failures: u64,
    /// Recoveries that completed from locally-saved checkpoints.
    pub recoveries_local: u64,
    /// Recoveries that completed from I/O-saved checkpoints.
    pub recoveries_io: u64,
    /// Restore attempts interrupted by further failures.
    pub restores_interrupted: u64,
    /// Local checkpoint commits completed.
    pub local_ckpts: u64,
    /// I/O checkpoint commits completed (host writes or NDP drains).
    pub io_ckpts: u64,
    /// NDP drain jobs cancelled by node-loss failures.
    pub drains_cancelled: u64,
    /// Survivable failures whose local copy was injected-corrupt, forcing
    /// an I/O-level recovery.
    pub local_corruptions: u64,
    /// Transient drain-commit errors that were retried.
    pub drain_retries: u64,
    /// Drains abandoned after exhausting their retry budget.
    pub drains_degraded: u64,
    /// Largest NDP drain backlog observed.
    pub max_drain_queue: usize,
    /// True if the run hit `max_wall` before meeting its targets.
    pub truncated: bool,
}

/// Result of one simulation replica.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Wall-time decomposition (sums to `stats.wall_time`).
    pub breakdown: Breakdown,
    /// Event counters.
    pub stats: SimStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Completed,
    Interrupted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    CkptLocal,
    CkptIo,
    RestoreLocal,
    RestoreIo,
}

/// A checkpoint queued for NDP drain: its work content and the drain
/// time still needed.
#[derive(Debug, Clone, Copy)]
struct DrainJob {
    content: f64,
    remaining: f64,
    retries: u32,
}

/// How many draws each batched RNG buffer prefetches per refill.
///
/// Each `Stream` is dedicated to a single purpose (failures, recovery
/// levels), so prefetching a block of draws only moves *when* they are
/// computed, never their order: batched runs are bit-identical to
/// draw-on-demand runs (tested below).
const RNG_BATCH: usize = 64;

struct Engine {
    // Configuration.
    mtti: f64,
    d: DerivedCosts,
    k: u64,
    ndp: bool,
    // Clock and failure process.
    now: f64,
    next_failure: f64,
    failures: Stream,
    levels: Stream,
    faults: SimFaults,
    fault_stream: Stream,
    // Batched RNG draws (refilled in blocks of `RNG_BATCH`; buffers are
    // retained across pooled reuse).
    failure_buf: Vec<f64>,
    failure_idx: usize,
    level_buf: Vec<f64>,
    level_idx: usize,
    // Application progress.
    work: f64,
    work_max: f64,
    deficit_local: f64,
    deficit_io: f64,
    // Durable checkpoints.
    last_local: Option<f64>,
    last_io: f64,
    ckpts_since_io: u64,
    drain_queue: VecDeque<DrainJob>,
    // Output.
    acc: Breakdown,
    stats: SimStats,
    bus: Bus,
}

impl Engine {
    /// A dormant engine holding only reusable buffers. Must be
    /// [`Engine::reset`] before use; every run-dependent field is
    /// overwritten there.
    fn fresh() -> Self {
        Engine {
            mtti: 1.0,
            d: DerivedCosts {
                interval: 0.0,
                delta_local: 0.0,
                t_io_host: 0.0,
                restore_local: 0.0,
                restore_io: 0.0,
                ndp_drain_time: 0.0,
                ratio: 1,
                p_local: 0.0,
            },
            k: u64::MAX,
            ndp: false,
            now: 0.0,
            next_failure: 0.0,
            failures: Stream::new(0, StreamKind::Failures),
            levels: Stream::new(0, StreamKind::RecoveryLevel),
            faults: SimFaults::default(),
            fault_stream: Stream::new(0, StreamKind::Faults),
            failure_buf: Vec::with_capacity(RNG_BATCH),
            failure_idx: 0,
            level_buf: Vec::with_capacity(RNG_BATCH),
            level_idx: 0,
            work: 0.0,
            work_max: 0.0,
            deficit_local: 0.0,
            deficit_io: 0.0,
            last_local: Some(0.0),
            last_io: 0.0,
            ckpts_since_io: 0,
            drain_queue: VecDeque::new(),
            acc: Breakdown::zero(),
            stats: SimStats::default(),
            bus: Bus::disabled(),
        }
    }

    /// Re-arms the engine for a new replica, reusing the drain queue and
    /// RNG buffers left by the previous run. Post-`reset` state is
    /// indistinguishable from a newly built engine, so pooled reuse is
    /// bit-identical to fresh construction (tested below, interleaved
    /// across differing configurations).
    fn reset(&mut self, sys: &SystemParams, strat: &Strategy, seed: u64) {
        self.mtti = sys.mtti;
        self.d = derive_costs(sys, strat);
        self.ndp = matches!(strat, Strategy::LocalIoNdp { .. });
        self.k = match strat {
            Strategy::LocalOnly { .. } => u64::MAX,
            _ => self.d.ratio as u64,
        };
        self.now = 0.0;
        self.failures.reseed(seed, StreamKind::Failures);
        self.levels.reseed(seed, StreamKind::RecoveryLevel);
        self.fault_stream.reseed(seed, StreamKind::Faults);
        self.failure_buf.clear();
        self.failure_idx = 0;
        self.level_buf.clear();
        self.level_idx = 0;
        self.faults = SimFaults::default();
        self.work = 0.0;
        self.work_max = 0.0;
        self.deficit_local = 0.0;
        self.deficit_io = 0.0;
        self.last_local = Some(0.0);
        self.last_io = 0.0;
        self.ckpts_since_io = 0;
        self.drain_queue.clear();
        self.acc = Breakdown::zero();
        self.stats = SimStats::default();
        self.bus = Bus::disabled();
        // Matches `Stream::new` + first `exp` draw of the old
        // construct-per-replica path: the first failure delay is the
        // first value of the (now batched) failure stream.
        self.next_failure = self.failure_delay();
    }

    /// Next failure inter-arrival delay, from the batched failure
    /// stream.
    #[inline]
    fn failure_delay(&mut self) -> f64 {
        if self.failure_idx == self.failure_buf.len() {
            self.failure_buf.clear();
            for _ in 0..RNG_BATCH {
                let x = self.failures.exp(self.mtti);
                self.failure_buf.push(x);
            }
            self.failure_idx = 0;
        }
        let x = self.failure_buf[self.failure_idx];
        self.failure_idx += 1;
        x
    }

    /// Next recovery-level uniform draw, from the batched level stream
    /// (`draw < p_local` is exactly `Stream::bernoulli`).
    #[inline]
    fn level_uniform(&mut self) -> f64 {
        if self.level_idx == self.level_buf.len() {
            self.level_buf.clear();
            for _ in 0..RNG_BATCH {
                let x = self.levels.uniform();
                self.level_buf.push(x);
            }
            self.level_idx = 0;
        }
        let x = self.level_buf[self.level_idx];
        self.level_idx += 1;
        x
    }

    #[inline]
    fn emit_span(
        &self,
        lane: Lane,
        kind: SpanKind,
        t0: f64,
        t1: f64,
        interrupted: bool,
    ) {
        if t1 > t0 {
            self.bus.emit_with(|| Event {
                t: t0,
                source: Source::Sim,
                kind: EventKind::Span {
                    lane: lane.name(),
                    span: kind.name(),
                    t0,
                    t1,
                    interrupted,
                },
            });
        }
    }

    #[inline]
    fn emit_mark(&self, t: f64, kind: MarkKind) {
        self.bus.emit_with(|| Event {
            t,
            source: Source::Sim,
            kind: EventKind::Mark { mark: kind.name() },
        });
    }

    /// Advances the NDP drain pipeline by `dt` seconds of eligible time
    /// starting at wall-clock `base_t`.
    fn progress_drains(&mut self, mut dt: f64, base_t: f64) {
        let had_work = !self.drain_queue.is_empty();
        let mut consumed = 0.0;
        while dt > 0.0 {
            let Some(job) = self.drain_queue.front_mut() else {
                break;
            };
            if job.remaining > dt {
                job.remaining -= dt;
                consumed += dt;
                dt = 0.0;
                continue;
            }
            dt -= job.remaining;
            consumed += job.remaining;
            let (content, retries) = (job.content, job.retries);
            if self.faults.p_drain_error > 0.0
                && self.fault_stream.bernoulli(self.faults.p_drain_error)
            {
                // Transient I/O error at commit time: retry with a time
                // penalty until the budget runs out, then abandon the
                // drain (the checkpoint stays covered locally).
                if retries >= self.faults.max_drain_retries {
                    self.drain_queue.pop_front();
                    self.stats.drains_degraded += 1;
                } else {
                    let job = self
                        .drain_queue
                        .front_mut()
                        .expect("erroring job still queued");
                    job.retries += 1;
                    job.remaining = self.faults.drain_retry_penalty;
                    self.stats.drain_retries += 1;
                }
                continue;
            }
            self.last_io = content;
            self.drain_queue.pop_front();
            self.stats.io_ckpts += 1;
            self.emit_mark(base_t + consumed, MarkKind::IoDurable);
        }
        if had_work {
            self.emit_span(
                Lane::Ndp,
                SpanKind::Drain,
                base_t,
                base_t + consumed,
                false,
            );
        }
    }

    /// Runs a compute interval of at most `dur` seconds; accounts
    /// rerun/compute split and drives the drain pipeline.
    fn advance_compute(&mut self, dur: f64) -> Outcome {
        let (dt, outcome) = if self.now + dur <= self.next_failure {
            (dur, Outcome::Completed)
        } else {
            (self.next_failure - self.now, Outcome::Interrupted)
        };
        if self.ndp {
            self.progress_drains(dt, self.now);
        }
        // Split the slice into deficit repayment (rerun) and fresh work.
        let deficit = self.deficit_local + self.deficit_io;
        let rerun_dt = dt.min(deficit);
        if rerun_dt > 0.0 {
            let io_share = self.deficit_io / deficit;
            let rerun_io = rerun_dt * io_share;
            let rerun_local = rerun_dt - rerun_io;
            self.acc.rerun_io += rerun_io;
            self.acc.rerun_local += rerun_local;
            self.deficit_io = (self.deficit_io - rerun_io).max(0.0);
            self.deficit_local = (self.deficit_local - rerun_local).max(0.0);
        }
        self.acc.compute += dt - rerun_dt;
        self.work += dt;
        self.work_max = self.work_max.max(self.work);
        self.emit_span(
            Lane::Host,
            SpanKind::Compute,
            self.now,
            self.now + dt,
            outcome == Outcome::Interrupted,
        );
        self.now += dt;
        outcome
    }

    /// Runs a non-compute activity (checkpoint commit or restore).
    fn advance_plain(&mut self, dur: f64, bucket: Bucket) -> Outcome {
        let (dt, outcome) = if self.now + dur <= self.next_failure {
            (dur, Outcome::Completed)
        } else {
            (self.next_failure - self.now, Outcome::Interrupted)
        };
        match bucket {
            Bucket::CkptLocal => self.acc.checkpoint_local += dt,
            Bucket::CkptIo => self.acc.checkpoint_io += dt,
            Bucket::RestoreLocal => self.acc.restore_local += dt,
            Bucket::RestoreIo => self.acc.restore_io += dt,
        }
        let kind = match bucket {
            Bucket::CkptLocal => SpanKind::CkptLocal,
            Bucket::CkptIo => SpanKind::CkptIo,
            Bucket::RestoreLocal => SpanKind::RestoreLocal,
            Bucket::RestoreIo => SpanKind::RestoreIo,
        };
        self.emit_span(
            Lane::Host,
            kind,
            self.now,
            self.now + dt,
            outcome == Outcome::Interrupted,
        );
        self.now += dt;
        outcome
    }

    /// Samples the survivability of a fresh failure and applies its
    /// immediate consequences (node loss destroys local state).
    fn sample_failure_level(&mut self) -> bool {
        self.stats.failures += 1;
        self.emit_mark(self.now, MarkKind::Failure);
        self.next_failure = self.now + self.failure_delay();
        let mut local_ok = self.level_uniform() < self.d.p_local
            && self.last_local.is_some();
        if local_ok
            && self.faults.p_local_corrupt > 0.0
            && self.fault_stream.bernoulli(self.faults.p_local_corrupt)
        {
            // The failure was survivable, but the local copy fails
            // verification on read: the recovery escalates to the I/O
            // level. This ties the *effective* §6.1.1 p_local to an
            // injected corruption mechanism shared with the functional
            // emulation's fault plane.
            self.stats.local_corruptions += 1;
            local_ok = false;
        }
        if !local_ok {
            // Node-level loss: local NVM contents and pending drains are
            // gone.
            self.last_local = None;
            self.stats.drains_cancelled += self.drain_queue.len() as u64;
            self.drain_queue.clear();
        }
        // Level 1 = survivable locally, level 2 = escalated to I/O.
        self.bus.emit_with(|| Event {
            t: self.now,
            source: Source::Sim,
            kind: EventKind::Failure {
                level: if local_ok { 1 } else { 2 },
            },
        });
        local_ok
    }

    /// Full recovery process after a failure: repeated restore attempts
    /// until one completes, then rollback.
    fn recover(&mut self) {
        let mut span = self.bus.span(Source::Sim, "recovery", self.now);
        let mut local = self.sample_failure_level();
        loop {
            let (dur, bucket) = if local {
                (self.d.restore_local, Bucket::RestoreLocal)
            } else {
                (self.d.restore_io, Bucket::RestoreIo)
            };
            match self.advance_plain(dur, bucket) {
                Outcome::Completed => {
                    let target = if local {
                        self.last_local.expect("local restore without ckpt")
                    } else {
                        self.last_io
                    };
                    let lost = (self.work - target).max(0.0);
                    if local {
                        self.deficit_local += lost;
                        self.stats.recoveries_local += 1;
                    } else {
                        self.deficit_io += lost;
                        self.stats.recoveries_io += 1;
                        self.ckpts_since_io = 0;
                    }
                    self.work = target;
                    self.bus.emit_with(|| Event {
                        t: self.now,
                        source: Source::Sim,
                        kind: EventKind::Recovery {
                            level: if local { 1 } else { 2 },
                        },
                    });
                    span.close(self.now);
                    return;
                }
                Outcome::Interrupted => {
                    self.stats.restores_interrupted += 1;
                    local = self.sample_failure_level();
                }
            }
        }
    }

    /// True once the run has met its targets (checked at renewal-ish
    /// points: right after a successful local commit with no outstanding
    /// deficit).
    fn done(&self, opts: &SimOptions) -> bool {
        (self.stats.failures >= opts.min_failures
            && self.work >= opts.min_work
            && self.deficit_local + self.deficit_io == 0.0)
            || self.now >= opts.max_wall
    }

    fn run(&mut self, opts: &SimOptions) -> SimResult {
        let _stage = stage::timer(Stage::Engine);
        let mut replica = self.bus.span(Source::Sim, "replica", 0.0);
        let tau = self.d.interval;
        'outer: loop {
            // 1. Compute segment.
            if self.advance_compute(tau) == Outcome::Interrupted {
                self.recover();
                continue;
            }
            // 2. Local commit (zero-length under IoOnly).
            if self.d.delta_local > 0.0
                && self.advance_plain(self.d.delta_local, Bucket::CkptLocal)
                    == Outcome::Interrupted
            {
                self.recover();
                continue;
            }
            self.stats.local_ckpts += 1;
            self.last_local = Some(self.work);
            self.ckpts_since_io += 1;

            // 3. I/O-level commit every k-th checkpoint.
            if self.ckpts_since_io >= self.k {
                if self.ndp {
                    self.drain_queue.push_back(DrainJob {
                        content: self.work,
                        remaining: self.d.ndp_drain_time,
                        retries: 0,
                    });
                    self.stats.max_drain_queue =
                        self.stats.max_drain_queue.max(self.drain_queue.len());
                    self.ckpts_since_io = 0;
                } else if self.d.t_io_host > 0.0 {
                    // Host-blocking write; retried after local recoveries,
                    // abandoned if an I/O recovery already rewound us.
                    let mut io_span =
                        self.bus.span(Source::Sim, "io_commit", self.now);
                    loop {
                        match self.advance_plain(self.d.t_io_host, Bucket::CkptIo)
                        {
                            Outcome::Completed => {
                                self.last_io = self.work;
                                self.stats.io_ckpts += 1;
                                self.ckpts_since_io = 0;
                                self.emit_mark(self.now, MarkKind::IoDurable);
                                io_span.close(self.now);
                                break;
                            }
                            Outcome::Interrupted => {
                                self.recover();
                                if self.ckpts_since_io == 0 {
                                    // I/O recovery rewound to an
                                    // I/O-consistent point; no commit due.
                                    io_span.close(self.now);
                                    continue 'outer;
                                }
                            }
                        }
                    }
                } else {
                    self.ckpts_since_io = 0;
                }
            }

            if self.done(opts) {
                break;
            }
        }

        self.stats.wall_time = self.now;
        self.stats.work_done = self.work;
        self.stats.truncated = self.now >= opts.max_wall;
        replica.close(self.now);
        debug_assert!(self.acc.validate().is_ok());
        debug_assert!(
            (self.acc.total() - self.now).abs() < 1e-6 * self.now.max(1.0),
            "accounting leak: buckets {} vs clock {}",
            self.acc.total(),
            self.now
        );
        SimResult {
            breakdown: self.acc,
            stats: self.stats,
        }
    }
}

thread_local! {
    /// One pooled engine per thread: replica fan-out workers reset and
    /// rerun it instead of rebuilding streams, the drain queue and RNG
    /// buffers for every replica, making a replica run allocation-free
    /// after warmup.
    static ENGINE_POOL: RefCell<Option<Box<Engine>>> =
        const { RefCell::new(None) };
}

/// Runs `f` against this thread's pooled engine (built on first use).
/// Falls back to a throwaway engine when the pool is unavailable
/// (thread teardown, or a re-entrant call from inside `f`); the result
/// is identical either way because `f` must `reset` before running.
fn with_pooled_engine<R>(f: impl Fn(&mut Engine) -> R) -> R {
    let pooled = ENGINE_POOL.try_with(|cell| match cell.try_borrow_mut() {
        Ok(mut slot) => {
            let engine = slot.get_or_insert_with(|| Box::new(Engine::fresh()));
            Some(f(engine))
        }
        Err(_) => None,
    });
    match pooled {
        Ok(Some(r)) => r,
        _ => f(&mut Engine::fresh()),
    }
}

/// Runs one simulation replica of a configuration.
pub fn run_engine(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
) -> SimResult {
    with_pooled_engine(|e| {
        e.reset(sys, strat, opts.seed);
        e.run(opts)
    })
}

/// Runs one replica on a freshly built engine, bypassing the
/// thread-local pool — the construct-per-replica behavior pooled reuse
/// replaced. Kept for the bench harness (pooled-vs-cold comparison) and
/// for tests asserting pooled reuse is bit-identical to fresh
/// construction.
pub fn run_engine_cold(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
) -> SimResult {
    let mut e = Engine::fresh();
    e.reset(sys, strat, opts.seed);
    e.run(opts)
}

/// Runs one replica with fault injection enabled.
///
/// With `SimFaults::default()` (all-zero probabilities) the result is
/// bit-identical to [`run_engine`] with the same seed: disabled fault
/// sites draw no random numbers, and the fault stream is independent of
/// the failure and recovery-level streams.
pub fn run_engine_faulty(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
    faults: &SimFaults,
) -> SimResult {
    with_pooled_engine(|e| {
        e.reset(sys, strat, opts.seed);
        e.faults = *faults;
        e.run(opts)
    })
}

/// Runs one replica with fault injection and an observability bus.
///
/// Every span, mark, failure and recovery-level choice is emitted onto
/// `bus` (a disabled bus makes this identical to [`run_engine_faulty`]).
/// Observation never draws random numbers and never perturbs the
/// simulated timeline: the result is bit-identical for any sink.
pub fn run_engine_observed(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
    faults: &SimFaults,
    bus: &Bus,
) -> SimResult {
    with_pooled_engine(|e| {
        e.reset(sys, strat, opts.seed);
        e.faults = *faults;
        e.bus = bus.clone();
        let result = e.run(opts);
        // Release the caller's sink promptly; the pooled engine may sit
        // idle for a long time.
        e.bus = Bus::disabled();
        result
    })
}

/// Runs one replica with timeline tracing enabled, returning the trace
/// alongside the result (Figure 3 rendering; traces grow with run
/// length, so prefer short runs).
///
/// This is a thin wrapper over [`run_engine_observed`] with an
/// unbounded [`VecSink`]: the timeline is reconstructed from the event
/// stream via [`Trace::from_events`].
pub fn run_engine_traced(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &SimOptions,
) -> (SimResult, Trace) {
    let bus = Bus::with_sink(VecSink::default());
    let result = run_engine_observed(
        sys,
        strat,
        opts,
        &SimFaults::default(),
        &bus,
    );
    (result, Trace::from_events(&bus.drain()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::params::CompressionSpec;

    fn sys() -> SystemParams {
        SystemParams::exascale_default()
    }

    #[test]
    fn accounting_is_leak_free() {
        let r = run_engine(
            &sys(),
            &Strategy::local_io_host(12, 0.8, None),
            &SimOptions::quick(1),
        );
        let b = r.breakdown;
        assert!(
            (b.total() - r.stats.wall_time).abs()
                < 1e-6 * r.stats.wall_time
        );
        b.validate().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let strat = Strategy::local_io_ndp(0.85, None);
        let a = run_engine(&sys(), &strat, &SimOptions::quick(7));
        let b = run_engine(&sys(), &strat, &SimOptions::quick(7));
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.stats, b.stats);
        let c = run_engine(&sys(), &strat, &SimOptions::quick(8));
        assert_ne!(a.breakdown, c.breakdown);
    }

    #[test]
    fn compute_equals_net_work() {
        let r = run_engine(
            &sys(),
            &Strategy::local_io_host(12, 0.8, None),
            &SimOptions::quick(3),
        );
        assert!(
            (r.breakdown.compute - r.stats.work_done).abs() < 1e-6,
            "compute {} vs work {}",
            r.breakdown.compute,
            r.stats.work_done
        );
    }

    #[test]
    fn failure_count_meets_target() {
        let opts = SimOptions::quick(11);
        let r = run_engine(&sys(), &Strategy::local_io_ndp(0.85, None), &opts);
        assert!(r.stats.failures >= opts.min_failures);
        assert!(!r.stats.truncated);
    }

    #[test]
    fn recovery_split_matches_p_local() {
        let r = run_engine(
            &sys(),
            &Strategy::local_io_host(12, 0.8, None),
            &SimOptions::standard(5),
        );
        let total = (r.stats.recoveries_local + r.stats.recoveries_io) as f64;
        let frac_local = r.stats.recoveries_local as f64 / total;
        // Not exactly 0.8: consecutive non-local failures and interrupted
        // restores shift it slightly, but it must be in the vicinity.
        assert!(
            (frac_local - 0.8).abs() < 0.06,
            "local recovery fraction = {frac_local}"
        );
    }

    #[test]
    fn ndp_has_no_host_io_time() {
        let r = run_engine(
            &sys(),
            &Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp())),
            &SimOptions::quick(2),
        );
        assert_eq!(r.breakdown.checkpoint_io, 0.0);
        assert!(r.stats.io_ckpts > 0, "drains must complete");
    }

    #[test]
    fn host_mode_pays_io_checkpoint_time() {
        let r = run_engine(
            &sys(),
            &Strategy::local_io_host(12, 0.8, None),
            &SimOptions::quick(2),
        );
        assert!(r.breakdown.checkpoint_io > 0.0);
        assert!(r.stats.io_ckpts > 0);
    }

    #[test]
    fn local_only_never_touches_io() {
        let r = run_engine(
            &sys(),
            &Strategy::LocalOnly { interval: None },
            &SimOptions::quick(4),
        );
        assert_eq!(r.breakdown.checkpoint_io, 0.0);
        assert_eq!(r.breakdown.restore_io, 0.0);
        assert_eq!(r.breakdown.rerun_io, 0.0);
        assert_eq!(r.stats.recoveries_io, 0);
        // Progress near the 90% design point.
        let p = r.breakdown.progress_rate();
        assert!((p - 0.90).abs() < 0.02, "progress = {p}");
    }

    #[test]
    fn io_only_matches_daly_roughly() {
        let strat = Strategy::IoOnly {
            interval: None,
            compression: None,
        };
        let r = run_engine(&sys(), &strat, &SimOptions::standard(6));
        let analytic = cr_core::analytic::progress_rate(&sys(), &strat);
        let simulated = r.breakdown.progress_rate();
        assert!(
            (simulated - analytic).abs() < 0.02,
            "sim {simulated} vs analytic {analytic}"
        );
    }

    #[test]
    fn ndp_beats_host_in_simulation() {
        let host = run_engine(
            &sys(),
            &Strategy::local_io_host(20, 0.8, None),
            &SimOptions::quick(9),
        );
        let ndp = run_engine(
            &sys(),
            &Strategy::local_io_ndp(0.8, None),
            &SimOptions::quick(9),
        );
        assert!(
            ndp.breakdown.progress_rate() > host.breakdown.progress_rate()
        );
    }

    #[test]
    fn drain_queue_stays_bounded() {
        let r = run_engine(
            &sys(),
            &Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp())),
            &SimOptions::standard(10),
        );
        // Sustainable ratio: backlog should stay small.
        assert!(
            r.stats.max_drain_queue <= 4,
            "drain backlog grew to {}",
            r.stats.max_drain_queue
        );
    }

    #[test]
    fn io_failures_cancel_drains() {
        let r = run_engine(
            &sys(),
            &Strategy::local_io_ndp(0.5, None),
            &SimOptions::quick(13),
        );
        assert!(r.stats.drains_cancelled > 0);
    }

    #[test]
    fn default_faults_are_bit_identical_to_fault_free_runs() {
        let strat = Strategy::local_io_ndp(0.85, None);
        let opts = SimOptions::quick(21);
        let plain = run_engine(&sys(), &strat, &opts);
        let faulty =
            run_engine_faulty(&sys(), &strat, &opts, &SimFaults::default());
        assert_eq!(plain.breakdown, faulty.breakdown);
        assert_eq!(plain.stats, faulty.stats);
    }

    #[test]
    fn local_corruption_escalates_recoveries_to_io() {
        let strat = Strategy::local_io_host(12, 0.8, None);
        let opts = SimOptions::standard(22);
        let faults = SimFaults {
            p_local_corrupt: 0.5,
            ..SimFaults::default()
        };
        let r = run_engine_faulty(&sys(), &strat, &opts, &faults);
        assert!(r.stats.local_corruptions > 0);
        let total = (r.stats.recoveries_local + r.stats.recoveries_io) as f64;
        let frac_local = r.stats.recoveries_local as f64 / total;
        // Effective p_local ≈ 0.8 * (1 - 0.5) = 0.4.
        assert!(
            (frac_local - 0.4).abs() < 0.06,
            "effective local recovery fraction = {frac_local}"
        );
        // The baseline (no injection) sits near the configured 0.8.
        let base = run_engine(&sys(), &strat, &opts);
        let base_total =
            (base.stats.recoveries_local + base.stats.recoveries_io) as f64;
        let base_frac = base.stats.recoveries_local as f64 / base_total;
        assert!(frac_local < base_frac - 0.2);
    }

    #[test]
    fn drain_errors_retry_then_degrade() {
        let strat = Strategy::local_io_ndp(0.85, None);
        let opts = SimOptions::standard(23);
        let faults = SimFaults {
            p_drain_error: 0.5,
            drain_retry_penalty: 2.0,
            max_drain_retries: 1,
            ..SimFaults::default()
        };
        let r = run_engine_faulty(&sys(), &strat, &opts, &faults);
        assert!(r.stats.drain_retries > 0, "transient errors must retry");
        assert!(
            r.stats.drains_degraded > 0,
            "exhausted retries must degrade"
        );
        assert!(r.stats.io_ckpts > 0, "most drains still commit");
        // Accounting stays leak-free under fault injection.
        assert!(
            (r.breakdown.total() - r.stats.wall_time).abs()
                < 1e-6 * r.stats.wall_time
        );
    }

    #[test]
    fn faulty_runs_are_deterministic_in_the_seed() {
        let strat = Strategy::local_io_ndp(0.85, None);
        let faults = SimFaults {
            p_local_corrupt: 0.1,
            p_drain_error: 0.3,
            ..SimFaults::default()
        };
        let a =
            run_engine_faulty(&sys(), &strat, &SimOptions::quick(31), &faults);
        let b =
            run_engine_faulty(&sys(), &strat, &SimOptions::quick(31), &faults);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.stats, b.stats);
        let c =
            run_engine_faulty(&sys(), &strat, &SimOptions::quick(32), &faults);
        assert_ne!(a.stats, c.stats);
    }

    #[test]
    fn pooled_reuse_is_bit_identical_to_cold_engines() {
        // Interleave configurations and seeds on one thread so the
        // pooled engine is reused across differing strategies, drain
        // backlogs and RNG buffer fill levels; every run must match a
        // freshly built engine bit for bit.
        let strats = [
            Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp())),
            Strategy::local_io_host(12, 0.8, None),
            Strategy::LocalOnly { interval: None },
            Strategy::local_io_ndp(0.5, None),
        ];
        for round in 0..3u64 {
            for (i, strat) in strats.iter().enumerate() {
                let opts = SimOptions::quick(100 + round * 10 + i as u64);
                let pooled = run_engine(&sys(), strat, &opts);
                let cold = run_engine_cold(&sys(), strat, &opts);
                assert_eq!(pooled.breakdown, cold.breakdown);
                assert_eq!(pooled.stats, cold.stats);
            }
        }
    }

    #[test]
    fn pooled_faulty_runs_leave_no_fault_state_behind() {
        // A faulty run through the pool must not leak its fault config
        // into the next pooled run on the same thread.
        let strat = Strategy::local_io_ndp(0.85, None);
        let opts = SimOptions::quick(77);
        let before = run_engine(&sys(), &strat, &opts);
        let faults = SimFaults {
            p_local_corrupt: 0.3,
            p_drain_error: 0.3,
            ..SimFaults::default()
        };
        let faulty = run_engine_faulty(&sys(), &strat, &opts, &faults);
        let after = run_engine(&sys(), &strat, &opts);
        assert_eq!(before.breakdown, after.breakdown);
        assert_eq!(before.stats, after.stats);
        assert_ne!(faulty.stats, before.stats);
    }

    #[test]
    fn truncation_respects_max_wall() {
        let opts = SimOptions {
            seed: 1,
            min_failures: u64::MAX,
            min_work: f64::INFINITY,
            max_wall: 500_000.0,
        };
        let r = run_engine(&sys(), &Strategy::local_io_ndp(0.85, None), &opts);
        assert!(r.stats.truncated);
        assert!(r.stats.wall_time >= 500_000.0);
        // Still only modestly past the limit (one activity).
        assert!(r.stats.wall_time < 600_000.0);
    }
}
