//! Bench: compression and decompression throughput of each study codec
//! on a representative mini-app checkpoint image — the measured
//! analogue of Table 2's speed columns.
//!
//! Std-only harness (`harness = false`, gated behind the
//! `bench-harness` feature):
//!
//! ```sh
//! cargo bench -p cr-bench --features bench-harness --bench codec_throughput
//! ```

use cr_bench::perf::Runner;
use cr_compress::registry::study_codecs;
use cr_workloads::{by_name, CheckpointGenerator};

const IMAGE_BYTES: usize = 2 << 20;

fn bench_compress(r: &Runner) {
    let image = by_name("CoMD").unwrap().generate(IMAGE_BYTES, 7);
    println!("-- compress/CoMD --");
    for codec in study_codecs() {
        // rz is slow by design; shrink its input to keep bench time sane.
        let input: &[u8] = if codec.name() == "rz" {
            &image[..IMAGE_BYTES / 4]
        } else {
            &image
        };
        let mut out = Vec::new();
        r.run(&format!("compress/CoMD/{}", codec.label()), input.len(), || {
            codec.compress(std::hint::black_box(input), &mut out);
            std::hint::black_box(out.len());
        });
    }
}

fn bench_decompress(r: &Runner) {
    let image = by_name("HPCCG").unwrap().generate(IMAGE_BYTES, 9);
    println!("-- decompress/HPCCG --");
    for codec in study_codecs() {
        let input: &[u8] = if codec.name() == "rz" {
            &image[..IMAGE_BYTES / 4]
        } else {
            &image
        };
        let compressed = codec.compress_to_vec(input);
        let mut out = Vec::new();
        r.run(
            &format!("decompress/HPCCG/{}", codec.label()),
            input.len(),
            || {
                codec
                    .decompress(std::hint::black_box(&compressed), &mut out)
                    .unwrap();
                std::hint::black_box(out.len());
            },
        );
    }
}

fn main() {
    let r = Runner::from_env(5);
    bench_compress(&r);
    bench_decompress(&r);
}
