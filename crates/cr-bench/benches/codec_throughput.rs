//! Criterion bench: compression and decompression throughput of each
//! study codec on a representative mini-app checkpoint image — the
//! measured analogue of Table 2's speed columns.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cr_compress::registry::study_codecs;
use cr_workloads::{by_name, CheckpointGenerator};

const IMAGE_BYTES: usize = 2 << 20;

fn bench_compress(c: &mut Criterion) {
    let image = by_name("CoMD").unwrap().generate(IMAGE_BYTES, 7);
    let mut group = c.benchmark_group("compress/CoMD");
    group.throughput(Throughput::Bytes(image.len() as u64));
    group.sample_size(10);
    for codec in study_codecs() {
        // rz is slow by design; shrink its input to keep bench time sane.
        let input: &[u8] = if codec.name() == "rz" {
            &image[..IMAGE_BYTES / 4]
        } else {
            &image
        };
        group.throughput(Throughput::Bytes(input.len() as u64));
        group.bench_function(codec.label(), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                codec.compress(std::hint::black_box(input), &mut out);
                out.len()
            });
        });
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let image = by_name("HPCCG").unwrap().generate(IMAGE_BYTES, 9);
    let mut group = c.benchmark_group("decompress/HPCCG");
    group.sample_size(10);
    for codec in study_codecs() {
        let input: &[u8] = if codec.name() == "rz" {
            &image[..IMAGE_BYTES / 4]
        } else {
            &image
        };
        let compressed = codec.compress_to_vec(input);
        group.throughput(Throughput::Bytes(input.len() as u64));
        group.bench_function(codec.label(), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                codec
                    .decompress(std::hint::black_box(&compressed), &mut out)
                    .unwrap();
                out.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
