//! Benches for the mechanical design choices of §4.2.2, exercised on
//! the functional node:
//!
//! * **overlap vs serialize** — pipelined block-wise compress+ship
//!   (the paper's proposal) against compress-everything-then-ship;
//! * **pause vs spill** — the two NIC backpressure policies under an
//!   intermittently blocked network.
//!
//! Std-only harness (`harness = false`, gated behind the
//! `bench-harness` feature):
//!
//! ```sh
//! cargo bench -p cr-bench --features bench-harness --bench ablations
//! ```

use cr_bench::perf::Runner;
use cr_compress::registry;
use cr_node::ndp::{BackpressurePolicy, StepOutcome};
use cr_node::node::{ComputeNode, NodeConfig};
use cr_workloads::{by_name, CheckpointGenerator};

const CKPT_BYTES: usize = 2 << 20;

fn config(policy: BackpressurePolicy) -> NodeConfig {
    NodeConfig {
        policy,
        drain_ratio: 1,
        block_size: 128 << 10,
        nic_blocks: 4,
        ..NodeConfig::small_test()
    }
}

fn checkpoint_image() -> Vec<u8> {
    by_name("miniFE").unwrap().generate(CKPT_BYTES, 5)
}

fn bench_overlap_vs_serialize(r: &Runner) {
    let image = checkpoint_image();
    println!("-- ablate_overlap --");

    // Pipelined: the NDP engine's block-wise compress+ship.
    r.run("ablate_overlap/pipelined_drain", image.len(), || {
        let mut node = ComputeNode::new(config(BackpressurePolicy::Pause));
        node.register_app("app");
        node.checkpoint("app", &image).unwrap();
        node.drain_all().unwrap();
        std::hint::black_box(node.io().bytes_written);
    });

    // Serialized: compress the whole checkpoint, then ship it in one
    // piece (the naive alternative of Sec. 4.2.2).
    let codec = registry::by_name("gz", 1).unwrap();
    r.run("ablate_overlap/serialized_drain", image.len(), || {
        let compressed = codec.compress_to_vec(&image);
        // "Ship": move the full buffer once.
        std::hint::black_box(compressed.len());
    });
}

fn bench_backpressure_policies(r: &Runner) {
    let image = checkpoint_image();
    println!("-- ablate_backpressure --");

    for (name, policy) in [
        ("pause", BackpressurePolicy::Pause),
        ("spill", BackpressurePolicy::Spill),
    ] {
        r.run(&format!("ablate_backpressure/{name}"), image.len(), || {
            let mut node = ComputeNode::new(config(policy));
            node.register_app("app");
            node.checkpoint("app", &image).unwrap();
            // Network blocked for the first phase of the drain.
            node.nic_blocked(true);
            let mut guard = 0u64;
            loop {
                match node.ndp_step().unwrap() {
                    StepOutcome::Stalled | StepOutcome::Idle => break,
                    _ => {}
                }
                guard += 1;
                if guard > 100_000 {
                    break;
                }
            }
            node.nic_blocked(false);
            node.drain_all().unwrap();
            std::hint::black_box(node.ndp_stats().blocks_spilled);
        });
    }
}

fn main() {
    let r = Runner::from_env(5);
    bench_overlap_vs_serialize(&r);
    bench_backpressure_policies(&r);
}
