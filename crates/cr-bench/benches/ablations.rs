//! Criterion benches for the mechanical design choices of §4.2.2,
//! exercised on the functional node:
//!
//! * **overlap vs serialize** — pipelined block-wise compress+ship
//!   (the paper's proposal) against compress-everything-then-ship;
//! * **pause vs spill** — the two NIC backpressure policies under an
//!   intermittently blocked network.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cr_compress::registry;
use cr_node::ndp::{BackpressurePolicy, StepOutcome};
use cr_node::node::{ComputeNode, NodeConfig};
use cr_workloads::{by_name, CheckpointGenerator};

const CKPT_BYTES: usize = 2 << 20;

fn config(policy: BackpressurePolicy) -> NodeConfig {
    NodeConfig {
        policy,
        drain_ratio: 1,
        block_size: 128 << 10,
        nic_blocks: 4,
        ..NodeConfig::small_test()
    }
}

fn checkpoint_image() -> Vec<u8> {
    by_name("miniFE").unwrap().generate(CKPT_BYTES, 5)
}

fn bench_overlap_vs_serialize(c: &mut Criterion) {
    let image = checkpoint_image();
    let mut group = c.benchmark_group("ablate_overlap");
    group.throughput(Throughput::Bytes(image.len() as u64));
    group.sample_size(10);

    // Pipelined: the NDP engine's block-wise compress+ship.
    group.bench_function("pipelined_drain", |b| {
        b.iter(|| {
            let mut node = ComputeNode::new(config(BackpressurePolicy::Pause));
            node.register_app("app");
            node.checkpoint("app", &image).unwrap();
            node.drain_all().unwrap();
            node.io().bytes_written
        });
    });

    // Serialized: compress the whole checkpoint, then ship it in one
    // piece (the naive alternative of Sec. 4.2.2).
    group.bench_function("serialized_drain", |b| {
        let codec = registry::by_name("gz", 1).unwrap();
        b.iter(|| {
            let compressed = codec.compress_to_vec(&image);
            // "Ship": move the full buffer once.
            std::hint::black_box(compressed.len())
        });
    });
    group.finish();
}

fn bench_backpressure_policies(c: &mut Criterion) {
    let image = checkpoint_image();
    let mut group = c.benchmark_group("ablate_backpressure");
    group.throughput(Throughput::Bytes(image.len() as u64));
    group.sample_size(10);

    for (name, policy) in [
        ("pause", BackpressurePolicy::Pause),
        ("spill", BackpressurePolicy::Spill),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut node = ComputeNode::new(config(policy));
                node.register_app("app");
                node.checkpoint("app", &image).unwrap();
                // Network blocked for the first phase of the drain.
                node.nic_blocked(true);
                let mut guard = 0u64;
                loop {
                    match node.ndp_step().unwrap() {
                        StepOutcome::Stalled | StepOutcome::Idle => break,
                        _ => {}
                    }
                    guard += 1;
                    if guard > 100_000 {
                        break;
                    }
                }
                node.nic_blocked(false);
                node.drain_all().unwrap();
                node.ndp_stats().blocks_spilled
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overlap_vs_serialize, bench_backpressure_policies);
criterion_main!(benches);
