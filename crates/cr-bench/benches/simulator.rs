//! Criterion bench: throughput of the discrete-event simulator and the
//! analytic solver — these bound how fast the figure sweeps regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use cr_core::params::{CompressionSpec, Strategy, SystemParams};
use cr_sim::{simulate, SimOptions};

fn bench_engine(c: &mut Criterion) {
    let sys = SystemParams::exascale_default();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let cases: Vec<(&str, Strategy)> = vec![
        (
            "host_multilevel",
            Strategy::local_io_host(20, 0.85, None),
        ),
        (
            "ndp_compressed",
            Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp())),
        ),
        (
            "io_only",
            Strategy::IoOnly {
                interval: None,
                compression: None,
            },
        ),
    ];
    for (name, strat) in cases {
        group.bench_function(format!("1000_failures/{name}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let opts = SimOptions {
                    seed,
                    min_failures: 1000,
                    min_work: 0.0,
                    max_wall: 1e12,
                };
                simulate(&sys, &strat, &opts).stats.failures
            });
        });
    }
    group.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let sys = SystemParams::exascale_default();
    c.bench_function("analytic/solve_cycle_k20", |b| {
        let strat = Strategy::local_io_host(20, 0.85, None);
        b.iter(|| cr_core::analytic::solve_cycle(&sys, &strat).cycle_time);
    });
    c.bench_function("analytic/best_ratio_scan", |b| {
        b.iter(|| cr_core::ratio_opt::best_host_ratio(&sys, 0.85, None));
    });
}

criterion_group!(benches, bench_engine, bench_analytic);
criterion_main!(benches);
