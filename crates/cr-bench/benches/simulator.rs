//! Bench: throughput of the discrete-event simulator and the analytic
//! solver — these bound how fast the figure sweeps regenerate.
//!
//! Std-only harness (`harness = false`, gated behind the
//! `bench-harness` feature):
//!
//! ```sh
//! cargo bench -p cr-bench --features bench-harness --bench simulator
//! ```

use cr_bench::perf::Runner;
use cr_core::params::{CompressionSpec, Strategy, SystemParams};
use cr_sim::{simulate, SimOptions};

fn bench_engine(r: &Runner) {
    let sys = SystemParams::exascale_default();
    println!("-- simulator --");
    let cases: Vec<(&str, Strategy)> = vec![
        (
            "host_multilevel",
            Strategy::local_io_host(20, 0.85, None),
        ),
        (
            "ndp_compressed",
            Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp())),
        ),
        (
            "io_only",
            Strategy::IoOnly {
                interval: None,
                compression: None,
            },
        ),
    ];
    for (name, strat) in cases {
        let mut seed = 0u64;
        r.run(&format!("simulator/1000_failures/{name}"), 0, || {
            seed += 1;
            let opts = SimOptions {
                seed,
                min_failures: 1000,
                min_work: 0.0,
                max_wall: 1e12,
            };
            std::hint::black_box(simulate(&sys, &strat, &opts).stats.failures);
        });
    }
}

fn bench_analytic(r: &Runner) {
    let sys = SystemParams::exascale_default();
    println!("-- analytic --");
    let strat = Strategy::local_io_host(20, 0.85, None);
    r.run("analytic/solve_cycle_k20", 0, || {
        std::hint::black_box(
            cr_core::analytic::solve_cycle(&sys, &strat).cycle_time,
        );
    });
    r.run("analytic/best_ratio_scan", 0, || {
        std::hint::black_box(cr_core::ratio_opt::best_host_ratio(
            &sys, 0.85, None,
        ));
    });
}

fn main() {
    let r = Runner::from_env(5);
    bench_engine(&r);
    bench_analytic(&r);
}
