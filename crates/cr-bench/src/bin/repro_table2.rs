//! Regenerates Table 2: compression factor and single-thread speed of
//! each utility family on each mini-app's (synthetic) checkpoint data.
//!
//! Set `REPRO_MB` to change the image size (default 8 MiB; the paper
//! used multi-GB corpora — factors converge quickly with size, speeds
//! are hardware-dependent).

use cr_bench::experiments::{table2, table2_averages};
use cr_bench::table::{emit, TextTable};
use cr_bench::ReproOpts;
use cr_compress::registry::{study_codecs, study_paper_labels};

fn main() {
    let opts = ReproOpts::from_env();
    println!(
        "measuring {} MiB per mini-app; REPRO_MB to change\n",
        opts.image_mb
    );
    let rows = table2(&opts);
    let codecs = study_codecs();
    let paper_labels = study_paper_labels();

    let mut headers = vec!["Mini-app".to_string()];
    for (codec, paper) in codecs.iter().zip(paper_labels.iter()) {
        headers.push(format!("{} [{}]", codec.label(), paper));
    }
    let mut tf = TextTable::new(headers.clone());
    let mut ts = TextTable::new(headers);
    for row in &rows {
        let mut rf = vec![row.app.to_string()];
        let mut rs = vec![row.app.to_string()];
        for c in &row.cells {
            rf.push(format!(
                "{:.1}% (p {:.1}%)",
                c.factor * 100.0,
                c.paper_factor * 100.0
            ));
            rs.push(format!(
                "{:.1} (p {:.1})",
                c.speed / 1e6,
                c.paper_speed / 1e6
            ));
        }
        tf.row(rf);
        ts.row(rs);
    }
    // Average rows.
    let avgs = table2_averages(&rows);
    let mut rf = vec!["Average".to_string()];
    let mut rs = vec!["Average".to_string()];
    for (i, (f, s)) in avgs.iter().enumerate() {
        let paper = cr_core::ndp_sizing::PAPER_UTILITIES[i];
        rf.push(format!(
            "{:.1}% (p {:.1}%)",
            f * 100.0,
            paper.avg_factor * 100.0
        ));
        rs.push(format!("{:.1} (p {:.1})", s / 1e6, paper.avg_speed / 1e6));
    }
    tf.row(rf);
    ts.row(rs);

    emit(
        "Table 2a: compression factor, measured (p = paper)",
        &tf,
    );
    emit(
        "Table 2b: compression speed MB/s, measured (p = paper)",
        &ts,
    );
}
