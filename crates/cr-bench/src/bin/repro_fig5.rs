//! Regenerates Figure 5: the optimal ratio of locally-saved to
//! I/O-saved checkpoints for host configurations (per recovery
//! probability) and the NDP drain ratio, across compression factors.

use cr_bench::experiments::fig5;
use cr_bench::table::{emit, TextTable};

fn main() {
    let rows = fig5();
    let p_labels: Vec<String> = rows[0]
        .host
        .iter()
        .map(|(p, _)| format!("Host p_local {:.0}%", p * 100.0))
        .collect();
    let mut headers = vec!["Compression factor".to_string()];
    headers.extend(p_labels);
    headers.push("NDP".to_string());

    let mut t = TextTable::new(headers);
    for row in &rows {
        let mut cells = vec![match row.factor {
            None => "none".to_string(),
            Some(f) => format!("{:.0}%", f * 100.0),
        }];
        for (_, ratio) in &row.host {
            cells.push(format!("{ratio}"));
        }
        cells.push(format!("{}", row.ndp));
        t.row(cells);
    }
    emit(
        "Figure 5: optimal locally-saved : I/O-saved checkpoint ratios",
        &t,
    );
    println!(
        "NDP drains as frequently as sustainable (Sec. 6.2); its ratio \
         depends only on the compression factor, not on p_local."
    );
}
