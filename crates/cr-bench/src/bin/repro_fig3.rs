//! Renders Figure 3 of the paper as ASCII timelines: the operational
//! difference between two-level checkpointing with the host writing to
//! global I/O (3a) and with NDP offload (3b).
//!
//! To make the structure visible at terminal width, the system is
//! scaled so activities have comparable spans (failures off: MTTI is
//! set enormous).

use cr_bench::table::pct;
use cr_core::params::{Strategy, SystemParams};
use cr_core::units::*;
use cr_sim::{run_engine_traced, SimOptions};

fn main() {
    // A demonstration system: local commits and I/O writes visible at
    // the same scale (I/O write = ~3 segments).
    let sys = SystemParams {
        mtti: 1e9, // failure-free window for the clean timeline
        checkpoint_bytes: 112.0 * GB,
        local_bw: 5.0 * GB,
        io_bw_per_node: 250.0 * MB,
    };
    let opts = SimOptions {
        seed: 3,
        min_failures: 0,
        min_work: 3600.0,
        max_wall: 1e12,
    };

    let window = 2800.0;
    println!("(a) two-level checkpointing, host writes to I/O (every 4th ckpt):\n");
    let host = Strategy::local_io_host(4, 0.85, None);
    let (res_a, trace_a) = run_engine_traced(&sys, &host, &opts);
    print!("{}", trace_a.render_ascii(0.0, window, 100));
    println!(
        "progress in window: {} (host blocks on every 'W')\n",
        pct(res_a.breakdown.progress_rate())
    );

    println!("(b) two-level checkpointing with NDP drains:\n");
    let ndp = Strategy::local_io_ndp(0.85, None);
    let (res_b, trace_b) = run_engine_traced(&sys, &ndp, &opts);
    print!("{}", trace_b.render_ascii(0.0, window, 100));
    println!(
        "progress in window: {} (drains 'd' run under compute; '^' marks I/O durability)\n",
        pct(res_b.breakdown.progress_rate())
    );

    // And one with failures, to show recovery.
    println!("(c) NDP timeline with failures (MTTI = 20 min):\n");
    let sys_f = SystemParams {
        mtti: 20.0 * MINUTE,
        ..sys
    };
    let opts_f = SimOptions {
        seed: 12,
        min_failures: 2,
        min_work: 0.0,
        max_wall: 1e12,
    };
    let (_, trace_c) = run_engine_traced(&sys_f, &ndp, &opts_f);
    let end = trace_c
        .spans
        .iter()
        .map(|s| s.t1)
        .fold(0.0f64, f64::max)
        .min(4000.0);
    print!("{}", trace_c.render_ascii(0.0, end, 100));
}
