//! Regenerates Figure 8: progress rate vs checkpoint size (10–80% of
//! node memory) for the five §6.5 sensitivity configurations.

use cr_bench::experiments::fig8;
use cr_bench::table::{emit, pct, TextTable};
use cr_bench::ReproOpts;

fn main() {
    let opts = ReproOpts::from_env();
    let data = fig8(&opts);
    let mut headers = vec!["Configuration".to_string()];
    headers.extend(data.xs.iter().map(|x| format!("{x:.0}%")));
    let mut t = TextTable::new(headers);
    for (label, ys) in &data.series {
        let mut cells = vec![label.clone()];
        cells.extend(ys.iter().map(|&p| pct(p)));
        t.row(cells);
    }
    emit(
        "Figure 8: progress vs checkpoint size (% of 140 GB node \
         memory); MTTI 30 min, p_local 85%, cf 73%",
        &t,
    );
    println!(
        "Paper claims: NDP's advantage grows with checkpoint size; \
         L-2GBps+NC >= L-15GBps+HC (a slow NVM with NDP substitutes for \
         a fast one without)."
    );
}
