//! `bench_sim` — reproducible throughput harness for the simulation and
//! sweep plane.
//!
//! Measures:
//!
//! 1. **Engine throughput** — replicas/sec through the pooled
//!    discrete-event engine at 1..N worker threads on the work-stealing
//!    executor, asserting that every thread count reproduces the
//!    1-thread results bit for bit; plus a pooled-vs-cold comparison
//!    against the construct-per-replica engine the pool replaced.
//! 2. **Observed fleet** — replicas/sec with per-replica event streams
//!    attached, again bit-identical (results *and* streams) across
//!    thread counts.
//! 3. **Sweep throughput** — the memoized cycle solver: cold-cache vs
//!    warm-cache joint policy search, and batched `solve_cycle_many`
//!    points/sec over a Figure-4-sized ratio grid.
//! 4. **Stages** — per-stage profiler breakdown (`engine` / `solve`).
//! 5. **Indicators** — machine-independent pinned-seed values, also
//!    written to a separate file so CI can `crx obs diff` them against
//!    a checked-in baseline.
//!
//! Results go to stdout and a JSON file (schema `bench_sim/v1`).
//! Knobs, via environment and argv:
//!
//! * `BENCH_SIM_REPLICAS` — replicas per engine measurement (default 256)
//! * `BENCH_REPS`         — best-of repetitions per measurement (default 3)
//! * `BENCH_MAX_THREADS`  — cap on the thread sweep (default 8)
//! * `BENCH_OUT`          — output path (default `results/BENCH_sim.json`)
//! * `BENCH_IND_OUT`      — indicators path
//!   (default `results/BENCH_sim_indicators.json`)
//! * `--quick`            — CI smoke settings (fewer replicas, 1 rep)

use std::path::PathBuf;

use cr_bench::perf::{time_best, time_once, Json};
use cr_core::cache::{global_cache_stats, solve_cycle_many};
use cr_core::optimize;
use cr_core::params::{CompressionSpec, Strategy, SystemParams};
use cr_obs::stage::{self, Stage};
use cr_sim::{
    run_engine, run_engine_cold, run_fleet_observed_in, simulate_avg_in,
    AveragedResult, SimFaults, SimOptions,
};

const SEED: u64 = 42;
/// Fixed settings for the machine-independent indicator runs, so the
/// gated values never depend on `--quick` or the env knobs.
const IND_SEED: u64 = 42;
const IND_REPLICAS: u64 = 8;

struct Opts {
    replicas: u64,
    reps: usize,
    max_threads: usize,
    out: PathBuf,
    ind_out: PathBuf,
    quick: bool,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Opts {
    fn from_env() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let default_replicas = if quick { 64 } else { 256 };
        let default_reps = if quick { 1 } else { 3 };
        Opts {
            replicas: env_usize("BENCH_SIM_REPLICAS", default_replicas)
                .max(2) as u64,
            reps: env_usize("BENCH_REPS", default_reps).max(1),
            max_threads: env_usize("BENCH_MAX_THREADS", 8).max(1),
            out: std::env::var("BENCH_OUT")
                .unwrap_or_else(|_| "results/BENCH_sim.json".into())
                .into(),
            ind_out: std::env::var("BENCH_IND_OUT")
                .unwrap_or_else(|_| {
                    "results/BENCH_sim_indicators.json".into()
                })
                .into(),
            quick,
        }
    }
}

fn sys() -> SystemParams {
    SystemParams::exascale_default()
}

fn bench_strategy() -> Strategy {
    Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp()))
}

/// Panics unless two averaged runs are bit-identical, replica by
/// replica (breakdown fields compare with `==`, i.e. exact f64 bits).
fn assert_identical(label: &str, a: &AveragedResult, b: &AveragedResult) {
    assert_eq!(a.pooled, b.pooled, "{label}: pooled breakdown diverged");
    assert_eq!(
        a.progress_rates, b.progress_rates,
        "{label}: progress rates diverged"
    );
    assert_eq!(a.replicas.len(), b.replicas.len());
    for (i, (x, y)) in a.replicas.iter().zip(&b.replicas).enumerate() {
        assert_eq!(
            x.breakdown, y.breakdown,
            "{label}: replica {i} breakdown diverged"
        );
        assert_eq!(x.stats, y.stats, "{label}: replica {i} stats diverged");
    }
}

/// Thread sweep over the pooled engine plus the pooled-vs-cold
/// comparison. Every thread count's output is asserted bit-identical to
/// the 1-thread run before its timing is reported.
fn engine_section(opts: &Opts) -> Json {
    println!(
        "== engine throughput ({} replicas, quick runs) ==",
        opts.replicas
    );
    let system = sys();
    let strat = bench_strategy();
    let sim_opts = SimOptions::quick(SEED);

    let mut threads_list = vec![1usize];
    let mut t = 2;
    while t <= opts.max_threads {
        threads_list.push(t);
        t *= 2;
    }

    let reference =
        simulate_avg_in(1, &system, &strat, &sim_opts, opts.replicas);
    let mut rows = Vec::new();
    let mut base_secs = None;
    for &threads in &threads_list {
        let run = simulate_avg_in(
            threads,
            &system,
            &strat,
            &sim_opts,
            opts.replicas,
        );
        assert_identical(&format!("{threads} threads"), &reference, &run);
        let secs = time_best(opts.reps, || {
            std::hint::black_box(simulate_avg_in(
                threads,
                &system,
                &strat,
                &sim_opts,
                opts.replicas,
            ));
        });
        let rate = opts.replicas as f64 / secs;
        let base = *base_secs.get_or_insert(secs);
        let speedup = base / secs;
        println!(
            "engine x{threads:<2}  {rate:>10.0} replicas/s  speedup {speedup:>5.2}  (bit-identical)"
        );
        rows.push(Json::Obj(vec![
            ("threads".into(), Json::Int(threads as i64)),
            ("secs".into(), Json::Num(secs)),
            ("replicas_per_s".into(), Json::Num(rate)),
            ("speedup".into(), Json::Num(speedup)),
            ("bit_identical".into(), Json::Bool(true)),
        ]));
    }

    // Pooled vs cold, single-threaded: same replicas through the
    // thread-local pooled engine vs a freshly built engine each time.
    let run_all = |cold: bool| {
        for i in 0..opts.replicas {
            let o = SimOptions {
                seed: sim_opts.seed.wrapping_add(i),
                ..sim_opts
            };
            let r = if cold {
                run_engine_cold(&system, &strat, &o)
            } else {
                run_engine(&system, &strat, &o)
            };
            std::hint::black_box(r);
        }
    };
    let cold_secs = time_best(opts.reps, || run_all(true));
    let pooled_secs = time_best(opts.reps, || run_all(false));
    let pooled_speedup = cold_secs / pooled_secs;
    println!(
        "pooled vs cold (1 thread): {:.0} vs {:.0} replicas/s  speedup {pooled_speedup:.2}",
        opts.replicas as f64 / pooled_secs,
        opts.replicas as f64 / cold_secs,
    );

    Json::Obj(vec![
        ("threads".into(), Json::Arr(rows)),
        ("cold_secs".into(), Json::Num(cold_secs)),
        ("pooled_secs".into(), Json::Num(pooled_secs)),
        (
            "cold_replicas_per_s".into(),
            Json::Num(opts.replicas as f64 / cold_secs),
        ),
        (
            "pooled_replicas_per_s".into(),
            Json::Num(opts.replicas as f64 / pooled_secs),
        ),
        ("pooled_speedup".into(), Json::Num(pooled_speedup)),
    ])
}

/// Observed fleet at 1 thread vs the widest thread count: results and
/// event streams must match exactly; throughput is reported for both.
fn fleet_section(opts: &Opts) -> Json {
    let system = sys();
    let strat = bench_strategy();
    let sim_opts = SimOptions::quick(SEED);
    let faults = SimFaults::default();
    let replicas = (opts.replicas / 4).max(2);
    let wide = opts.max_threads;
    println!("== observed fleet ({replicas} replicas, private buses) ==");

    let one =
        run_fleet_observed_in(1, &system, &strat, &sim_opts, &faults, replicas);
    let many = run_fleet_observed_in(
        wide, &system, &strat, &sim_opts, &faults, replicas,
    );
    assert_eq!(one.len(), many.len());
    for (i, ((ra, ea), (rb, eb))) in one.iter().zip(&many).enumerate() {
        assert_eq!(
            ra.breakdown, rb.breakdown,
            "fleet replica {i} breakdown diverged across thread counts"
        );
        assert_eq!(ra.stats, rb.stats, "fleet replica {i} stats diverged");
        assert_eq!(
            ea, eb,
            "fleet replica {i} event stream diverged across thread counts"
        );
    }
    let events_total: u64 = one.iter().map(|(_, e)| e.len() as u64).sum();

    let mut rows = Vec::new();
    for &threads in &[1usize, wide] {
        let secs = time_best(opts.reps, || {
            std::hint::black_box(run_fleet_observed_in(
                threads, &system, &strat, &sim_opts, &faults, replicas,
            ));
        });
        println!(
            "fleet x{threads:<2}  {:>9.0} replicas/s  {:>11.0} events/s",
            replicas as f64 / secs,
            events_total as f64 / secs,
        );
        rows.push(Json::Obj(vec![
            ("threads".into(), Json::Int(threads as i64)),
            ("secs".into(), Json::Num(secs)),
            (
                "replicas_per_s".into(),
                Json::Num(replicas as f64 / secs),
            ),
            (
                "events_per_s".into(),
                Json::Num(events_total as f64 / secs),
            ),
            ("bit_identical".into(), Json::Bool(true)),
        ]));
    }
    Json::Obj(vec![
        ("replicas".into(), Json::Int(replicas as i64)),
        ("events_total".into(), Json::Int(events_total as i64)),
        ("threads".into(), Json::Arr(rows)),
    ])
}

/// Memoized-solver sweep: cold vs warm joint policy search and batched
/// grid solving. The cold measurement runs on a fresh thread so it sees
/// an empty thread-local cycle cache.
fn sweep_section(opts: &Opts) -> Json {
    println!("== sweep throughput (memoized cycle solver) ==");
    let system = sys();

    // Cold: fresh thread = empty cache; one-shot timing (that's the
    // point of measuring cold).
    let cold_secs = std::thread::spawn(move || {
        time_once(|| {
            std::hint::black_box(optimize::best_host_policy(
                &system, 0.85, None,
            ));
        })
    })
    .join()
    .expect("cold-cache search thread");

    // Warm: populate this thread's cache once, then best-of.
    std::hint::black_box(optimize::best_host_policy(&system, 0.85, None));
    let warm_secs = time_best(opts.reps, || {
        std::hint::black_box(optimize::best_host_policy(&system, 0.85, None));
    });
    let warm_speedup = cold_secs / warm_secs;
    println!(
        "joint host search: cold {:>8.2} ms  warm {:>8.3} ms  speedup {warm_speedup:.1}",
        cold_secs * 1e3,
        warm_secs * 1e3
    );

    // Batched grid: a Figure-4-sized ratio sweep at several recovery
    // probabilities, solved through `solve_cycle_many` (deduped and,
    // above its threshold, fanned out across the executor).
    let pairs: Vec<(SystemParams, Strategy)> = [0.5, 0.85, 0.96]
        .iter()
        .flat_map(|&p| {
            (1..=400).map(move |ratio| {
                (system, Strategy::local_io_host(ratio, p, None))
            })
        })
        .collect();
    let batch_secs = time_best(opts.reps, || {
        std::hint::black_box(solve_cycle_many(&pairs));
    });
    let points_per_s = pairs.len() as f64 / batch_secs;
    println!(
        "batched solve: {} points in {:.2} ms  ({points_per_s:.0} points/s)",
        pairs.len(),
        batch_secs * 1e3
    );

    let (hits, misses) = global_cache_stats();
    println!("cycle cache (this thread): {hits} hits, {misses} misses");

    Json::Obj(vec![
        ("cold_search_secs".into(), Json::Num(cold_secs)),
        ("warm_search_secs".into(), Json::Num(warm_secs)),
        ("warm_speedup".into(), Json::Num(warm_speedup)),
        ("batch_points".into(), Json::Int(pairs.len() as i64)),
        ("batch_secs".into(), Json::Num(batch_secs)),
        ("batch_points_per_s".into(), Json::Num(points_per_s)),
        ("cache_hits".into(), Json::Int(hits as i64)),
        ("cache_misses".into(), Json::Int(misses as i64)),
    ])
}

/// One profiled pass: a widest-thread replica fan-out (records the
/// `engine` stage from every worker) and a batched grid solve wrapped
/// in the `solve` stage.
fn stages_section(opts: &Opts) -> Json {
    println!("== per-stage breakdown (profiled pass) ==");
    let system = sys();
    let strat = bench_strategy();
    stage::reset();
    stage::set_enabled(true);
    std::hint::black_box(simulate_avg_in(
        opts.max_threads,
        &system,
        &strat,
        &SimOptions::quick(SEED),
        opts.replicas,
    ));
    {
        let _solve = stage::timer(Stage::Solve);
        let pairs: Vec<(SystemParams, Strategy)> = (1..=400)
            .map(|ratio| {
                (system, Strategy::local_io_host(ratio, 0.85, None))
            })
            .collect();
        std::hint::black_box(solve_cycle_many(&pairs));
    }
    stage::set_enabled(false);

    let mut rows = Vec::new();
    for snap in stage::snapshot() {
        if snap.calls == 0 {
            continue; // codec stages don't run in the sim plane
        }
        println!(
            "{:9} calls {:>7}  {:>9.3} ms",
            snap.stage.name(),
            snap.calls,
            snap.nanos as f64 / 1e6,
        );
        rows.push(Json::Obj(vec![
            ("stage".into(), Json::str(snap.stage.name())),
            ("calls".into(), Json::Int(snap.calls as i64)),
            ("nanos".into(), Json::Int(snap.nanos as i64)),
        ]));
    }
    stage::reset();
    Json::Arr(rows)
}

/// Machine-independent pinned-seed values: simulated progress rates,
/// model divergence, and per-replica event counts. Everything here is
/// derived from simulated time and event counts — never wall-clock — so
/// CI diffs it against a checked-in baseline at tight tolerance.
fn indicators_section() -> Json {
    let system = sys();
    let opts = SimOptions::quick(IND_SEED);
    let configs = [
        ("ndp", bench_strategy()),
        ("host", Strategy::local_io_host(12, 0.8, None)),
        ("local", Strategy::LocalOnly { interval: None }),
    ];
    let mut fields = Vec::new();
    for (name, strat) in &configs {
        let avg = simulate_avg_in(1, &system, strat, &opts, IND_REPLICAS);
        fields.push((
            format!("sim_progress_{name}"),
            Json::Num(avg.progress_rate()),
        ));
        fields.push((
            format!("sim_failures_{name}"),
            Json::Num(
                avg.replicas
                    .iter()
                    .map(|r| r.stats.failures as f64)
                    .sum::<f64>(),
            ),
        ));
    }
    let strat = bench_strategy();
    let analytic = cr_core::analytic::progress_rate(&system, &strat);
    let simulated = simulate_avg_in(1, &system, &strat, &opts, IND_REPLICAS)
        .progress_rate();
    fields.push(("analytic_progress_ndp".into(), Json::Num(analytic)));
    fields.push((
        "model_divergence_ndp".into(),
        Json::Num((simulated - analytic).abs() / analytic),
    ));
    // Events per replica from a fixed-size observed fleet (independent
    // of the bench knobs, like everything else in this section).
    let fleet = run_fleet_observed_in(
        1,
        &system,
        &strat,
        &opts,
        &SimFaults::default(),
        IND_REPLICAS,
    );
    let events_total: u64 = fleet.iter().map(|(_, e)| e.len() as u64).sum();
    fields.push((
        "fleet_events_per_replica".into(),
        Json::Num((events_total / IND_REPLICAS) as f64),
    ));
    // The thread-identity asserts ran before this point; reaching here
    // means they held.
    fields.push(("threads_bit_identical".into(), Json::Num(1.0)));
    Json::Obj(fields)
}

fn write_json(path: &PathBuf, doc: &Json) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(path, doc.render()).expect("write results");
    println!("wrote {}", path.display());
}

fn main() {
    let opts = Opts::from_env();
    let effective_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let engine = engine_section(&opts);
    let fleet = fleet_section(&opts);
    let sweep = sweep_section(&opts);
    let stages = stages_section(&opts);
    let indicators = indicators_section();

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("bench_sim/v1")),
        (
            "config".into(),
            Json::Obj(vec![
                ("replicas".into(), Json::Int(opts.replicas as i64)),
                ("reps".into(), Json::Int(opts.reps as i64)),
                ("max_threads".into(), Json::Int(opts.max_threads as i64)),
                (
                    "effective_cores".into(),
                    Json::Int(effective_cores as i64),
                ),
                ("seed".into(), Json::Int(SEED as i64)),
                ("quick".into(), Json::Bool(opts.quick)),
            ]),
        ),
        ("engine".into(), engine),
        ("fleet".into(), fleet),
        ("sweep".into(), sweep),
        ("stages".into(), stages),
        ("indicators".into(), indicators.clone()),
    ]);
    write_json(&opts.out, &doc);

    // The indicators alone, in a small file CI can `crx obs diff`
    // against the checked-in pinned-seed baseline.
    let ind_doc = Json::Obj(vec![
        ("schema".into(), Json::str("bench_sim_indicators/v1")),
        ("source".into(), Json::str("bench_sim")),
        ("indicators".into(), indicators),
    ]);
    write_json(&opts.ind_out, &ind_doc);
}
