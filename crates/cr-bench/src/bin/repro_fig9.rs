//! Regenerates Figure 9: progress rate vs MTTI (30–150 minutes) for
//! the five §6.5 sensitivity configurations.

use cr_bench::experiments::fig9;
use cr_bench::table::{emit, pct, TextTable};
use cr_bench::ReproOpts;

fn main() {
    let opts = ReproOpts::from_env();
    let data = fig9(&opts);
    let mut headers = vec!["Configuration".to_string()];
    headers.extend(data.xs.iter().map(|x| format!("{x:.0} min")));
    let mut t = TextTable::new(headers);
    for (label, ys) in &data.series {
        let mut cells = vec![label.clone()];
        cells.extend(ys.iter().map(|&p| pct(p)));
        t.row(cells);
    }
    emit(
        "Figure 9: progress vs MTTI; checkpoint 112 GB, p_local 85%, \
         cf 73%",
        &t,
    );
    println!(
        "Paper claims: the NDP advantage shrinks as MTTI grows (fewer \
         failures -> less rerun to hide); L-2GBps+N tracks L-15GBps+HC."
    );
}
