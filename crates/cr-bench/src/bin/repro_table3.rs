//! Regenerates Table 3: required NDP compression speed, core count and
//! smallest checkpoint-to-I/O interval per utility — once from the
//! paper's Table 2 averages, once from our own codecs' measurements.

use cr_bench::experiments::{table2, table3_measured, table3_paper};
use cr_bench::table::{emit, TextTable};
use cr_bench::ReproOpts;

fn main() {
    let mut t = TextTable::new(vec![
        "Utility (level)",
        "Required speed",
        "NDP cores",
        "Ckpt interval",
    ]);
    for (util, sizing) in table3_paper() {
        t.row(vec![
            util.label(),
            format!("{:.0} MB/s", sizing.required_rate / 1e6),
            format!("{}", sizing.cores),
            format!("{:.0} s", sizing.min_interval),
        ]);
    }
    emit(
        "Table 3 (from the paper's Table 2 averages)",
        &t,
    );

    let opts = ReproOpts::from_env();
    let rows = table2(&opts);
    let mut t = TextTable::new(vec![
        "Our codec [paper utility]",
        "Required speed",
        "NDP cores",
        "Ckpt interval",
    ]);
    for (label, sizing) in table3_measured(&rows) {
        t.row(vec![
            label,
            format!("{:.0} MB/s", sizing.required_rate / 1e6),
            format!("{}", sizing.cores),
            format!("{:.0} s", sizing.min_interval),
        ]);
    }
    emit(
        "Table 3 (recomputed from our measured codecs)",
        &t,
    );
}
