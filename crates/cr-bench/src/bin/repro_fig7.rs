//! Regenerates Figure 7: C/R overhead breakdown of the four multilevel
//! configurations at 4% I/O-recovery probability, 73% compression
//! factor.

use cr_bench::experiments::fig7;
use cr_bench::table::{emit, pct, TextTable};
use cr_bench::ReproOpts;
use cr_core::breakdown::Breakdown;

fn print_breakdowns(title: &str, rows: &[(String, Breakdown)]) {
    let mut t = TextTable::new(vec![
        "Configuration",
        "compute",
        "ckpt L",
        "ckpt IO",
        "restore L",
        "restore IO",
        "rerun L",
        "rerun IO",
        "norm. total",
    ]);
    for (label, b) in rows {
        let f = b.as_fractions();
        t.row(vec![
            label.clone(),
            pct(f.compute),
            pct(f.checkpoint_local),
            pct(f.checkpoint_io),
            pct(f.restore_local),
            pct(f.restore_io),
            pct(f.rerun_local),
            pct(f.rerun_io),
            format!("{:.3}", b.normalized_to_compute().total()),
        ]);
    }
    emit(title, &t);
}

fn main() {
    let opts = ReproOpts::from_env();
    let rows = fig7(&opts);
    print_breakdowns(
        "Figure 7 (simulated, pipelined drains): % of execution time",
        &rows
            .iter()
            .map(|r| (r.label.clone(), r.sim))
            .collect::<Vec<_>>(),
    );
    print_breakdowns(
        "Figure 7 (analytic, paper's lag-free NDP accounting)",
        &rows
            .iter()
            .map(|r| (r.label.clone(), r.analytic))
            .collect::<Vec<_>>(),
    );
    println!(
        "Paper claims: Rerun-IO 17% (H) -> 9% (HC) -> 1.2% (N) -> 0.6% \
         (NC); Checkpoint-IO vanishes under NDP; NC approaches the 90% \
         single-level bound."
    );
}
