//! Model-level ablations of the paper's design choices (DESIGN.md §5):
//!
//! * overlapping vs serializing NDP compression and the I/O transfer
//!   (§4.2.2);
//! * host-side vs NDP-side decompression on restore (§4.3);
//! * drain-lag accounting (paper's lag-free rollback target vs the full
//!   pipeline);
//! * local checkpoint interval sensitivity around the Daly optimum.

use cr_bench::table::{emit, pct, TextTable};
use cr_core::params::{
    CompressionSpec, DrainLagModel, Strategy, SystemParams,
};
use cr_core::units::*;
use cr_core::{analytic, daly};

fn main() {
    let sys = SystemParams::exascale_default();
    let comp = CompressionSpec::gzip1_ndp();
    let s = sys.checkpoint_bytes;

    // 1. Overlap vs serialize (Sec. 4.2.2): time to make one compressed
    // checkpoint durable on I/O.
    let t_compress = s / comp.compress_rate;
    let t_ship = s * comp.residual() / sys.io_bw_per_node;
    let mut t = TextTable::new(vec!["strategy", "drain time", "min ratio"]);
    let serialized = t_compress + t_ship;
    let overlapped = t_compress.max(t_ship);
    t.row(vec![
        "serialize (compress, then DMA)".to_string(),
        fmt_secs(serialized),
        format!("{}", (serialized / 150.0).ceil() as u32),
    ]);
    t.row(vec![
        "overlap (pipelined blocks)".to_string(),
        fmt_secs(overlapped),
        format!("{}", (overlapped / 150.0).ceil() as u32),
    ]);
    emit("Ablation 1: NDP drain, serialize vs overlap (Sec. 4.2.2)", &t);

    // 2. Restore-side decompression placement (Sec. 4.3).
    let io_read = s * comp.residual() / sys.io_bw_per_node;
    let mut t = TextTable::new(vec!["decompression site", "restore time"]);
    t.row(vec![
        "host, pipelined (16 GB/s)".to_string(),
        fmt_secs(io_read.max(s / comp.decompress_rate)),
    ]);
    t.row(vec![
        "NDP, pipelined (440 MB/s)".to_string(),
        fmt_secs(io_read.max(s / comp.compress_rate)),
    ]);
    t.row(vec![
        "NDP, serialized via NVM".to_string(),
        fmt_secs(io_read + s / comp.compress_rate),
    ]);
    emit("Ablation 2: restore decompression placement (Sec. 4.3)", &t);
    println!(
        "At 100 MB/s per-node I/O the read dominates either pipelined \
         option, so NDP-side decompression lets hosts idle at no cost \
         (the paper's low-power option).\n"
    );

    // 3. Drain-lag accounting.
    let mut t = TextTable::new(vec!["lag model", "progress (I/O-N)", "progress (I/O-NC)"]);
    for (name, lag) in [
        ("paper (lag-free rollback)", DrainLagModel::Ignore),
        ("full pipeline lag", DrainLagModel::Pipelined),
    ] {
        let mk = |c: Option<CompressionSpec>| Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: None,
            p_local: 0.96,
            compression: c,
            drain_lag: lag,
        };
        t.row(vec![
            name.to_string(),
            pct(analytic::progress_rate(&sys, &mk(None))),
            pct(analytic::progress_rate(&sys, &mk(Some(comp)))),
        ]);
    }
    emit("Ablation 3: NDP drain-lag accounting", &t);

    // 4. Incremental drains (§7 future work): measured payload
    // reduction on a drifting workload, and its model-level effect
    // expressed as an effective compression factor.
    {
        use cr_node::ndp::IncrementalPolicy;
        use cr_node::node::{ComputeNode, NodeConfig};
        use cr_workloads::CheckpointGenerator;

        let image = cr_workloads::by_name("HPCCG")
            .expect("known app")
            .generate(2 << 20, 77);
        let run = |incremental: bool| -> u64 {
            let mut node = ComputeNode::new(NodeConfig {
                drain_ratio: 1,
                codec: None,
                incremental: incremental.then(IncrementalPolicy::default),
                ..NodeConfig::small_test()
            });
            node.register_app("a");
            let mut state = image.clone();
            for step in 1..=8u64 {
                let stripe = (step as usize * 40_000) % state.len();
                let end = (stripe + 30_000).min(state.len());
                for b in &mut state[stripe..end] {
                    *b = b.wrapping_add(1);
                }
                node.checkpoint("a", &state).unwrap();
                node.drain_all().unwrap();
            }
            node.io().bytes_written
        };
        let full = run(false);
        let incr = run(true);
        let delta_factor = 1.0 - incr as f64 / full as f64;
        let mut t = TextTable::new(vec!["drain mode", "bytes shipped", "effective factor"]);
        t.row(vec![
            "full images".to_string(),
            format!("{full}"),
            "-".to_string(),
        ]);
        t.row(vec![
            "incremental deltas".to_string(),
            format!("{incr}"),
            pct(delta_factor),
        ]);
        emit(
            "Ablation 4: incremental NDP drains (Sec. 7 future work), 8 \
             checkpoints of a drifting 2 MiB state",
            &t,
        );
        // Feed the measured delta factor into the model as an effective
        // compression factor for I/O drains.
        let eff = delta_factor.clamp(0.0, 0.98);
        let mk = |factor: Option<f64>| Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: None,
            p_local: 0.85,
            compression: factor.map(CompressionSpec::gzip1_ndp_with_factor),
            drain_lag: DrainLagModel::Pipelined,
        };
        println!(
            "model: NDP progress {} (full) -> {} (gzip 73%) -> {} (delta, {:.0}% effective)\n",
            pct(analytic::progress_rate(&sys, &mk(None))),
            pct(analytic::progress_rate(&sys, &mk(Some(0.73)))),
            pct(analytic::progress_rate(&sys, &mk(Some(eff)))),
            eff * 100.0
        );
    }

    // 5. Local interval sensitivity around Daly's optimum.
    let delta = sys.delta_local();
    let tau_opt = daly::optimum_interval(sys.mtti, delta);
    let mut t = TextTable::new(vec!["interval", "progress (Local only)"]);
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let tau = tau_opt * mult;
        let strat = Strategy::LocalOnly {
            interval: Some(tau),
        };
        t.row(vec![
            format!("{:.0} s ({}x opt)", tau, mult),
            pct(analytic::progress_rate(&sys, &strat)),
        ]);
    }
    emit(
        "Ablation 5: local checkpoint interval around the Daly optimum",
        &t,
    );
}
