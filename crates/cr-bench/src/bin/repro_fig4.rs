//! Regenerates Figure 4: C/R overhead breakdown for `Local + I/O-Host`
//! as the ratio of locally-saved to I/O-saved checkpoints increases.

use cr_bench::experiments::fig4;
use cr_bench::table::{emit, pct, TextTable};

fn main() {
    let sweep = fig4(0.85, None, 60);
    let mut t = TextTable::new(vec![
        "ratio",
        "compute",
        "ckpt L",
        "ckpt IO",
        "restore",
        "rerun L",
        "rerun IO",
        "progress",
    ]);
    for (ratio, b) in &sweep {
        let f = b.as_fractions();
        t.row(vec![
            format!("{ratio}"),
            pct(f.compute),
            pct(f.checkpoint_local),
            pct(f.checkpoint_io),
            pct(f.restore()),
            pct(f.rerun_local),
            pct(f.rerun_io),
            pct(b.progress_rate()),
        ]);
    }
    emit(
        "Figure 4: overhead breakdown vs locally-saved:I/O-saved ratio \
         (Local(85%) + I/O-Host, no compression)",
        &t,
    );
    let (best_ratio, best) = sweep
        .iter()
        .map(|(r, b)| (*r, b.progress_rate()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    println!("optimal ratio = {best_ratio} (progress {})", pct(best));
}
