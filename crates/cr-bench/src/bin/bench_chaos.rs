//! `bench_chaos` — deterministic chaos sweep over the functional
//! compute node.
//!
//! Runs N seeded episodes. Each episode builds a randomly-configured
//! [`ComputeNode`] (partner level, codec, backpressure policy, drain
//! ratio, incremental drains) with an armed fault plane, then interleaves
//! checkpoints, NDP pumping, mid-episode failures/tampering and restores,
//! keeping a shadow copy of every committed checkpoint image.
//!
//! The invariant checked after every episode (and at every mid-episode
//! restore): a restore either returns a **committed checkpoint
//! bit-exactly** from the best surviving level (local NVM → partner →
//! remote I/O, each level serving its newest intact copy), or a **typed
//! error** — never a panic, never stale or torn data. The final restore
//! of each episode is checked against an oracle that independently
//! predicts the serving level from the node's storage state (with the
//! fault plane quiesced so the prediction itself cannot be perturbed).
//!
//! Episodes are seeded independently (`splitmix(seed ^ splitmix(index))`)
//! and run in parallel on the workspace work-stealing executor; their
//! outputs are folded in episode order, so everything is derived from
//! `CHAOS_SEED` and two runs with the same seed produce byte-identical
//! reports at any worker count — including the CRC-64 digest of all
//! fault logs. Knobs, all via environment:
//!
//! * `CHAOS_EPISODES` — episode count (default 500)
//! * `CHAOS_SEED`     — base seed (default 7)
//! * `CHAOS_OUT`      — report path (default `results/CHAOS_report.json`)
//!
//! Exit status is nonzero on any invariant violation, or — for full-size
//! sweeps (≥ 500 episodes) — if any fault site never fired.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;

use cr_bench::perf::Json;
use cr_core::par::par_map_chunked;
use cr_node::faults::{FaultPlaneConfig, FAULT_SITES};
use cr_node::integrity::Crc64;
use cr_node::ndp::{BackpressurePolicy, IncrementalPolicy, StepOutcome};
use cr_node::node::{
    ComputeNode, FailureKind, NodeConfig, NodeError, RestoreSource,
};
use cr_node::nvm::Region;
use cr_node::remote::ObjectKey;
use cr_obs::metrics::Metrics;
use cr_obs::{Bus, RingSink};
use cr_rand::ChaCha8;

const APP: &str = "chaos";

struct Opts {
    episodes: u64,
    seed: u64,
    out: PathBuf,
    /// `CHAOS_OBS`: when set, attach the observability bus to every
    /// episode's node and write a `metrics/v1` snapshot to this path.
    /// The CHAOS_report.json stays byte-identical either way — the bus
    /// observes, it never perturbs.
    obs: Option<PathBuf>,
}

impl Opts {
    fn from_env() -> Self {
        let env_u64 = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Opts {
            episodes: env_u64("CHAOS_EPISODES", 500).max(1),
            seed: env_u64("CHAOS_SEED", 7),
            out: std::env::var("CHAOS_OUT")
                .unwrap_or_else(|_| "results/CHAOS_report.json".into())
                .into(),
            obs: std::env::var("CHAOS_OBS").ok().map(PathBuf::from),
        }
    }
}

/// `num / den` as a fraction, 0.0 when the denominator is zero.
fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checkpoint image: a compressible prefix and an incompressible tail,
/// so codecs see representative structure.
fn make_image(rng: &mut ChaCha8, len: usize) -> Vec<u8> {
    let mut data = Vec::with_capacity(len);
    let split = len / 2;
    let stamp = rng.next_u64();
    while data.len() < split {
        data.extend_from_slice(&stamp.to_le_bytes());
    }
    data.truncate(split);
    while data.len() < len {
        data.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    data.truncate(len);
    data
}

/// What the storage-state oracle expects the next restore to produce.
#[derive(Debug, PartialEq, Eq)]
enum Pred {
    Local(u64),
    Partner(u64),
    Remote(u64),
    Fail,
}

/// Predicts the restore outcome from the node's storage alone: the first
/// of local → partner → remote whose newest copy is intact. Mirrors the
/// per-level-newest fallback the node implements, including the
/// incremental-chain walk on the remote level.
fn predict(node: &ComputeNode) -> Pred {
    if let Some(slot) = node.nvm().latest(Region::Uncompressed, APP, 0) {
        if slot.verify() {
            return Pred::Local(slot.meta.ckpt_id);
        }
    }
    if let Some(partner) = node.partner() {
        if let Some(slot) = partner.latest(Region::Uncompressed, APP, 0) {
            if slot.verify() {
                return Pred::Partner(slot.meta.ckpt_id);
            }
        }
    }
    if let Some(key) = node.io().latest_complete(APP, 0) {
        let newest = key.ckpt_id;
        let mut cursor = key;
        loop {
            match node.io().peek_verified(&cursor) {
                None => return Pred::Fail,
                Some(meta) => match meta.base {
                    None => return Pred::Remote(newest),
                    Some(base) => {
                        cursor = ObjectKey {
                            app_id: APP.to_string(),
                            rank: 0,
                            ckpt_id: base,
                        }
                    }
                },
            }
        }
    }
    Pred::Fail
}

#[derive(Default)]
struct Totals {
    checkpoints: u64,
    checkpoints_skipped: u64,
    mid_restores: u64,
    recoveries_local: u64,
    recoveries_partner: u64,
    recoveries_remote: u64,
    unsurvivable: u64,
    corruptions_detected: u64,
    drains_completed: u64,
    drains_cancelled: u64,
    drains_degraded: u64,
    codec_fallbacks: u64,
    ndp_crashes: u64,
    io_retries: u64,
    blocks_retransmitted: u64,
    incremental_drains: u64,
}

impl Totals {
    /// Folds another episode's counters into this accumulator (all
    /// fields are sums, so fold order cannot affect the result).
    fn add(&mut self, o: &Totals) {
        self.checkpoints += o.checkpoints;
        self.checkpoints_skipped += o.checkpoints_skipped;
        self.mid_restores += o.mid_restores;
        self.recoveries_local += o.recoveries_local;
        self.recoveries_partner += o.recoveries_partner;
        self.recoveries_remote += o.recoveries_remote;
        self.unsurvivable += o.unsurvivable;
        self.corruptions_detected += o.corruptions_detected;
        self.drains_completed += o.drains_completed;
        self.drains_cancelled += o.drains_cancelled;
        self.drains_degraded += o.drains_degraded;
        self.codec_fallbacks += o.codec_fallbacks;
        self.ndp_crashes += o.ndp_crashes;
        self.io_retries += o.io_retries;
        self.blocks_retransmitted += o.blocks_retransmitted;
        self.incremental_drains += o.incremental_drains;
    }
}

/// Everything one episode produces, collected so episodes can run on
/// worker threads and be folded into the report in episode order (the
/// fault-log digest and the violations list are order-sensitive).
struct EpisodeOutput {
    totals: Totals,
    violations: Vec<String>,
    site_counts: Vec<u64>,
    /// Bytes this episode contributes to the global fault-log digest
    /// (episode tag line + rendered fault log).
    log: Vec<u8>,
    /// Under `CHAOS_OBS`: per-metric event-count increments.
    event_counts: Vec<(String, u64)>,
}

struct Episode<'a> {
    node: ComputeNode,
    rng: ChaCha8,
    shadow: &'a mut HashMap<u64, Vec<u8>>,
    next_id: u64,
    totals: &'a mut Totals,
    violations: &'a mut Vec<String>,
    tag: u64,
}

impl Episode<'_> {
    /// Bounded NDP pumping; step errors are invariant violations (the
    /// engine degrades through typed stats, it must not error out under
    /// injected faults).
    fn pump(&mut self, steps: u64) {
        for _ in 0..steps {
            match self.node.ndp_step() {
                Ok(StepOutcome::Idle) => return,
                Ok(_) => {}
                Err(e) => {
                    self.violations.push(format!(
                        "episode {}: ndp_step error under faults: {e}",
                        self.tag
                    ));
                    return;
                }
            }
        }
    }

    fn checkpoint(&mut self, data: Vec<u8>) {
        // The node consumes a ckpt id per attempt, successful or not.
        let id = self.next_id;
        self.next_id += 1;
        let mut ok = self.node.checkpoint(APP, &data).is_ok();
        if !ok {
            // Full/locked NVM: let the NDP drain, then retry once with
            // a fresh id.
            self.pump(50_000);
            self.next_id += 1;
            ok = self.node.checkpoint(APP, &data).is_ok();
        }
        if ok {
            self.totals.checkpoints += 1;
            self.shadow.insert(self.next_id - 1, data);
        } else if self
            .node
            .nvm()
            .latest(Region::Uncompressed, APP, 0)
            .is_some_and(|s| s.meta.ckpt_id == id)
        {
            // The local write landed before a later stage errored (e.g.
            // partner replication): the checkpoint IS committed.
            self.totals.checkpoints += 1;
            self.shadow.insert(id, data);
        } else {
            self.totals.checkpoints_skipped += 1;
        }
    }

    /// A restore's result must be a committed checkpoint, bit-exact —
    /// whatever level served it. Returns the source on success.
    fn check_restore(
        &mut self,
        context: &str,
    ) -> Option<(RestoreSource, u64)> {
        match self.node.restore(APP) {
            Ok(r) => {
                match self.shadow.get(&r.meta.ckpt_id) {
                    Some(expected) if *expected == r.data => {}
                    Some(_) => self.violations.push(format!(
                        "episode {} ({context}): restore of ckpt {} is \
                         not bit-exact",
                        self.tag, r.meta.ckpt_id
                    )),
                    None => self.violations.push(format!(
                        "episode {} ({context}): restore returned \
                         uncommitted ckpt {}",
                        self.tag, r.meta.ckpt_id
                    )),
                }
                Some((r.source, r.meta.ckpt_id))
            }
            Err(NodeError::UnknownApp(a)) => {
                self.violations.push(format!(
                    "episode {} ({context}): app {a} unregistered",
                    self.tag
                ));
                None
            }
            Err(_) => None, // typed failure: acceptable
        }
    }

    fn count_recovery(&mut self, source: RestoreSource) {
        match source {
            RestoreSource::LocalNvm => self.totals.recoveries_local += 1,
            RestoreSource::Partner => self.totals.recoveries_partner += 1,
            RestoreSource::RemoteIo => self.totals.recoveries_remote += 1,
        }
    }

    fn mid_episode_chaos(&mut self) {
        if self.rng.next_u64().is_multiple_of(5) {
            let _ = self.node.tamper_local(APP, 0);
        }
        if self.rng.next_u64().is_multiple_of(8) {
            let _ = self.node.tamper_remote(APP, 0);
        }
        let kind = match self.rng.next_u64() % 10 {
            0..=4 => return, // no failure this round
            5 | 6 => FailureKind::LocalSurvivable,
            7 | 8 => FailureKind::NodeLoss,
            _ => FailureKind::PairLoss,
        };
        self.node.inject_failure(kind);
        self.totals.mid_restores += 1;
        // Restore with the fault plane still armed: read-rot can strike
        // the restore itself and force deeper fallbacks.
        match self.check_restore("mid-episode") {
            Some((source, _)) => self.count_recovery(source),
            None => self.totals.unsurvivable += 1,
        }
    }

    fn finish(&mut self, site_counts: &mut [u64], log: &mut Vec<u8>) {
        // Settle all queued drains (retries/degradations included).
        if let Err(e) = self.node.drain_all() {
            self.violations.push(format!(
                "episode {}: drain_all failed: {e}",
                self.tag
            ));
        }
        // Oracle restore with the plane quiesced: prediction and
        // execution must agree on the serving level, and the data must
        // be the committed image for that level's newest copy.
        self.node.faults_mut().set_active(false);
        let expected = predict(&self.node);
        let actual = self.check_restore("oracle");
        match (&expected, &actual) {
            (Pred::Local(id), Some((RestoreSource::LocalNvm, got)))
            | (Pred::Partner(id), Some((RestoreSource::Partner, got)))
            | (Pred::Remote(id), Some((RestoreSource::RemoteIo, got)))
                if id == got => {}
            (Pred::Fail, None) => {}
            _ => self.violations.push(format!(
                "episode {}: oracle predicted {expected:?}, restore \
                 gave {actual:?}",
                self.tag
            )),
        }
        match actual {
            Some((source, _)) => self.count_recovery(source),
            None => self.totals.unsurvivable += 1,
        }
        // Episode-end hygiene: an idle node must hold no partial remote
        // objects and no spilled blocks.
        if self.node.io().incomplete_count() != 0 {
            self.violations.push(format!(
                "episode {}: partial remote object left behind",
                self.tag
            ));
        }
        if self.node.nvm().used(Region::Compressed) != 0 {
            self.violations.push(format!(
                "episode {}: spill region not reclaimed",
                self.tag
            ));
        }
        // Accounting.
        let stats = self.node.ndp_stats();
        self.totals.drains_completed += stats.drains_completed;
        self.totals.drains_cancelled += stats.drains_cancelled;
        self.totals.drains_degraded += stats.drains_degraded;
        self.totals.codec_fallbacks += stats.codec_fallbacks;
        self.totals.ndp_crashes += stats.ndp_crashes;
        self.totals.io_retries += stats.io_retries;
        self.totals.blocks_retransmitted += stats.blocks_retransmitted;
        self.totals.incremental_drains += stats.incremental_drains;
        self.totals.corruptions_detected += self.node.corruptions_detected();
        for (i, site) in FAULT_SITES.iter().enumerate() {
            site_counts[i] += self.node.faults().count(*site);
        }
        log.extend_from_slice(format!("episode {}\n", self.tag).as_bytes());
        log.extend_from_slice(self.node.faults().render_log().as_bytes());
    }
}

thread_local! {
    /// Per-worker shadow-copy map, reused (cleared, capacity kept)
    /// across the hundreds of episodes a worker runs, so steady-state
    /// episodes stop paying hash-table growth.
    static SHADOW_POOL: RefCell<HashMap<u64, Vec<u8>>> =
        RefCell::new(HashMap::new());
}

fn run_episode(index: u64, seed: u64, obs: bool) -> EpisodeOutput {
    SHADOW_POOL.with(|cell| {
        let mut shadow = cell.borrow_mut();
        shadow.clear();
        run_episode_with(index, seed, obs, &mut shadow)
    })
}

fn run_episode_with(
    index: u64,
    seed: u64,
    obs: bool,
    shadow: &mut HashMap<u64, Vec<u8>>,
) -> EpisodeOutput {
    let mut totals = Totals::default();
    let mut violations = Vec::new();
    let mut site_counts = vec![0u64; FAULT_SITES.len()];
    let mut log = Vec::new();
    // A private ring per episode: same per-episode capacity the shared
    // bus provided when episodes ran sequentially (it was drained after
    // every episode), so observed event counts are unchanged.
    let bus = if obs {
        Bus::with_sink(RingSink::new(1 << 16))
    } else {
        Bus::disabled()
    };
    let eseed = splitmix(seed ^ splitmix(index));
    let mut rng = ChaCha8::seed_from_u64(eseed ^ 0x5EED_CAFE);
    let partner_ratio = (rng.next_u64() % 3) as u32; // 0 disables
    let codec = match rng.next_u64() % 3 {
        0 => Some(("gz", 1)),
        1 => Some(("lzf", 1)),
        _ => None,
    };
    let policy = if rng.next_u64().is_multiple_of(2) {
        BackpressurePolicy::Pause
    } else {
        BackpressurePolicy::Spill
    };
    let drain_ratio = 1 + (rng.next_u64() % 3) as u32;
    let incremental = if rng.next_u64().is_multiple_of(4) {
        Some(IncrementalPolicy::default())
    } else {
        None
    };
    let p = 0.01 + 0.07 * rng.gen_f64();
    let cfg = NodeConfig {
        partner_ratio,
        codec,
        policy,
        drain_ratio,
        incremental,
        nic_blocks: 4,
        block_size: 64 << 10,
        faults: Some(FaultPlaneConfig::uniform(eseed, p)),
        ..NodeConfig::small_test()
    };
    let mut node = ComputeNode::new(cfg);
    node.register_app(APP);
    node.set_observer(&bus);

    let mut ep = Episode {
        node,
        rng,
        shadow,
        next_id: 0,
        totals: &mut totals,
        violations: &mut violations,
        tag: index,
    };
    let n_ckpts = 3 + ep.rng.next_u64() % 6;
    for _ in 0..n_ckpts {
        let len = (32 << 10) + (ep.rng.next_u64() % (224 << 10)) as usize;
        let img = make_image(&mut ep.rng, len);
        ep.checkpoint(img);
        let pumps = ep.rng.next_u64() % 120;
        ep.pump(pumps);
        ep.mid_episode_chaos();
    }
    ep.finish(&mut site_counts, &mut log);

    let mut event_counts = Vec::new();
    if obs {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for ev in bus.drain() {
            *counts.entry("events_total".into()).or_default() += 1;
            *counts
                .entry(format!("events_{}", ev.kind.name()))
                .or_default() += 1;
            *counts
                .entry(format!("events_from_{}", ev.source.name()))
                .or_default() += 1;
        }
        event_counts = counts.into_iter().collect();
    }
    EpisodeOutput {
        totals,
        violations,
        site_counts,
        log,
        event_counts,
    }
}

fn main() {
    let opts = Opts::from_env();
    let mut totals = Totals::default();
    let mut violations = Vec::new();
    let mut site_counts = vec![0u64; FAULT_SITES.len()];
    let mut digest = Crc64::new();

    println!(
        "== chaos sweep: {} episodes, seed {} ==",
        opts.episodes, opts.seed
    );
    // Episodes are seeded independently, so they fan out across workers;
    // outputs come back in episode order and are folded sequentially
    // (digest and violations are order-sensitive, counters are sums).
    // CHAOS_OBS gives each episode a private ring whose event counts are
    // folded into one metrics registry, exactly as the shared
    // drained-per-episode ring did when episodes ran sequentially.
    let obs = opts.obs.is_some();
    let indices: Vec<u64> = (0..opts.episodes).collect();
    let outputs =
        par_map_chunked(&indices, |&e| run_episode(e, opts.seed, obs));
    let mut metrics = Metrics::new();
    for (e, out) in outputs.iter().enumerate() {
        totals.add(&out.totals);
        violations.extend(out.violations.iter().cloned());
        for (i, c) in out.site_counts.iter().enumerate() {
            site_counts[i] += c;
        }
        digest.update(&out.log);
        for (key, n) in &out.event_counts {
            metrics.inc(key, *n);
        }
        if (e as u64 + 1).is_multiple_of(100) {
            println!("  {}/{} episodes", e + 1, opts.episodes);
        }
    }
    if let Some(path) = &opts.obs {
        metrics.gauge("episodes", opts.episodes as f64);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create metrics dir");
            }
        }
        std::fs::write(path, metrics.to_json("bench_chaos"))
            .expect("write metrics");
        println!("wrote {}", path.display());
    }

    let total_faults: u64 = site_counts.iter().sum();
    let all_sites_fired = site_counts.iter().all(|&c| c > 0);
    println!(
        "faults injected: {total_faults} across {} sites",
        FAULT_SITES.len()
    );
    for (i, site) in FAULT_SITES.iter().enumerate() {
        println!("  {:16} {}", site.name(), site_counts[i]);
    }
    println!(
        "recoveries: local {} partner {} remote {}  unsurvivable {}",
        totals.recoveries_local,
        totals.recoveries_partner,
        totals.recoveries_remote,
        totals.unsurvivable
    );
    println!(
        "degradations: cancelled {} degraded {} codec-fallback {}  \
         crashes survived {}",
        totals.drains_cancelled,
        totals.drains_degraded,
        totals.codec_fallbacks,
        totals.ndp_crashes
    );
    for v in &violations {
        println!("VIOLATION: {v}");
    }
    println!("invariant violations: {}", violations.len());

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("chaos/v1")),
        (
            "config".into(),
            Json::Obj(vec![
                ("episodes".into(), Json::Int(opts.episodes as i64)),
                ("seed".into(), Json::Int(opts.seed as i64)),
            ]),
        ),
        (
            "faults".into(),
            Json::Obj(
                FAULT_SITES
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        (s.name().to_string(), Json::Int(site_counts[i] as i64))
                    })
                    .collect(),
            ),
        ),
        ("total_faults".into(), Json::Int(total_faults as i64)),
        ("all_sites_fired".into(), Json::Bool(all_sites_fired)),
        (
            "recoveries".into(),
            Json::Obj(vec![
                (
                    "local".into(),
                    Json::Int(totals.recoveries_local as i64),
                ),
                (
                    "partner".into(),
                    Json::Int(totals.recoveries_partner as i64),
                ),
                (
                    "remote".into(),
                    Json::Int(totals.recoveries_remote as i64),
                ),
                (
                    "unsurvivable".into(),
                    Json::Int(totals.unsurvivable as i64),
                ),
            ]),
        ),
        (
            "degradations".into(),
            Json::Obj(vec![
                (
                    "drains_cancelled".into(),
                    Json::Int(totals.drains_cancelled as i64),
                ),
                (
                    "drains_degraded".into(),
                    Json::Int(totals.drains_degraded as i64),
                ),
                (
                    "codec_fallbacks".into(),
                    Json::Int(totals.codec_fallbacks as i64),
                ),
                (
                    "ndp_crashes".into(),
                    Json::Int(totals.ndp_crashes as i64),
                ),
                ("io_retries".into(), Json::Int(totals.io_retries as i64)),
                (
                    "blocks_retransmitted".into(),
                    Json::Int(totals.blocks_retransmitted as i64),
                ),
            ]),
        ),
        (
            "activity".into(),
            Json::Obj(vec![
                (
                    "checkpoints".into(),
                    Json::Int(totals.checkpoints as i64),
                ),
                (
                    "checkpoints_skipped".into(),
                    Json::Int(totals.checkpoints_skipped as i64),
                ),
                (
                    "mid_episode_failures".into(),
                    Json::Int(totals.mid_restores as i64),
                ),
                (
                    "drains_completed".into(),
                    Json::Int(totals.drains_completed as i64),
                ),
                (
                    "incremental_drains".into(),
                    Json::Int(totals.incremental_drains as i64),
                ),
                (
                    "corruptions_detected".into(),
                    Json::Int(totals.corruptions_detected as i64),
                ),
            ]),
        ),
        // Derived health indicators, folded from the chaos totals (NOT
        // from the observability bus, so the report stays byte-identical
        // whether CHAOS_OBS is set or not — a property CI checks).
        (
            "indicators".into(),
            Json::Obj(vec![
                (
                    "drain_completion_fraction".into(),
                    Json::Num(frac(
                        totals.drains_completed,
                        totals.drains_completed + totals.drains_cancelled,
                    )),
                ),
                (
                    "drain_degrade_fraction".into(),
                    Json::Num(frac(
                        totals.drains_degraded,
                        totals.drains_completed + totals.drains_degraded,
                    )),
                ),
                (
                    "faults_per_episode".into(),
                    Json::Num(total_faults as f64 / opts.episodes as f64),
                ),
                (
                    "io_retries_per_fault".into(),
                    Json::Num(frac(totals.io_retries, total_faults)),
                ),
                (
                    "recovery_success_fraction".into(),
                    Json::Num(frac(
                        totals.recoveries_local
                            + totals.recoveries_partner
                            + totals.recoveries_remote,
                        totals.recoveries_local
                            + totals.recoveries_partner
                            + totals.recoveries_remote
                            + totals.unsurvivable,
                    )),
                ),
            ]),
        ),
        (
            "fault_log_digest".into(),
            Json::str(format!("{:016x}", digest.finish())),
        ),
        (
            "invariant_violations".into(),
            Json::Int(violations.len() as i64),
        ),
        (
            "violations".into(),
            Json::Arr(violations.iter().map(Json::str).collect()),
        ),
    ]);

    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&opts.out, doc.render()).expect("write report");
    println!("wrote {}", opts.out.display());

    if !violations.is_empty() {
        std::process::exit(1);
    }
    if opts.episodes >= 500 && !all_sites_fired {
        println!("FAIL: full-size sweep left fault sites unexercised");
        std::process::exit(1);
    }
}
