//! Regenerates Table 1: the exascale system projection scaled from the
//! Titan Cray XK7, plus the §3.3 derived C/R requirements.

use cr_bench::experiments::table1;
use cr_bench::table::{emit, TextTable};
use cr_core::projection::ExascaleProjection;
use cr_core::units::*;

fn main() {
    let mut t = TextTable::new(vec![
        "Parameter",
        "Titan Cray XK7",
        "Exascale Projection",
        "Factor change",
    ]);
    for row in table1() {
        t.row(vec![
            row.parameter.to_string(),
            row.titan,
            row.exascale,
            row.factor,
        ]);
    }
    emit("Table 1: exascale system projection", &t);

    let p = ExascaleProjection::paper_default();
    println!("Derived C/R requirements (Sec. 3.2-3.4):");
    println!(
        "  socket-model system MTTF     : {:.2} min (assumed {:.0} min)",
        p.derived_mtti / MINUTE,
        p.mtti / MINUTE
    );
    println!(
        "  checkpoint size (80% memory) : {} per node",
        fmt_bytes(p.checkpoint_bytes)
    );
    println!(
        "  commit time for 90% progress : {:.1} s",
        p.required_commit_time
    );
    println!(
        "  required commit bandwidth    : {} per node ({} system-wide)",
        fmt_rate(p.required_commit_bw),
        fmt_rate(p.system_commit_bw())
    );
    println!(
        "  per-node share of global I/O : {} -> {} per checkpoint",
        fmt_rate(p.io_bw_per_node),
        fmt_secs(p.t_io_per_node())
    );
}
