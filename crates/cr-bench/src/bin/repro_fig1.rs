//! Regenerates Figure 1: progress rate of a system with C/R as a
//! function of `M/δ`.

use cr_bench::experiments::fig1;
use cr_bench::table::{emit, pct, TextTable};

fn main() {
    let curve = fig1(33);
    let mut t = TextTable::new(vec!["M/delta", "progress rate"]);
    for (ratio, p) in &curve {
        t.row(vec![format!("{ratio:.1}"), pct(*p)]);
    }
    emit(
        "Figure 1: progress rate vs M/delta (Daly optimum interval)",
        &t,
    );
    let r90 = cr_core::daly::ratio_for_progress(0.90);
    println!(
        "90% progress requires M/delta ~ {r90:.0} (paper Sec. 3.3: \
         commit time ~ 1/200 of MTTI)"
    );
}
