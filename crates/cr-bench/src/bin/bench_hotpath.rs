//! `bench_hotpath` — reproducible throughput harness for the checkpoint
//! hot path.
//!
//! Measures, on the synthetic mini-app checkpoint images from
//! `cr-workloads`:
//!
//! 1. **Per-codec throughput** — compression factor and single-thread
//!    compress/decompress MB/s for every study codec (Table 2's speed
//!    columns), byte-weighted across all mini-apps.
//! 2. **Thread scaling** — `ParallelCodec` compress wall time from 1 to
//!    N threads, with speedup and scaling efficiency. Efficiency is
//!    defined as `speedup / min(threads, effective_cores)` so that
//!    oversubscribed runs (more threads than cores) are judged against
//!    the parallelism the machine can actually deliver.
//!
//! Results go to stdout and to a machine-readable JSON file (schema
//! `bench_codec/v1`). Knobs, all via environment:
//!
//! * `BENCH_MB`          — scaling-image size in MiB (default 8)
//! * `BENCH_REPS`        — best-of repetitions per measurement (default 3)
//! * `BENCH_MAX_THREADS` — cap on the thread sweep (default 8)
//! * `BENCH_OUT`         — output path (default `results/BENCH_codec.json`)

use std::path::PathBuf;

use cr_bench::perf::{mb_per_s, time_best, Json};
use cr_compress::measure::{measure_many, Measurement};
use cr_compress::parallel::ParallelCodec;
use cr_compress::registry::{by_name, study_codecs};
use cr_compress::Codec;
use cr_node::ndp::StepOutcome;
use cr_node::node::{ComputeNode, NodeConfig};
use cr_obs::stage;
use cr_workloads::{all_mini_apps, CheckpointGenerator};

const SEED: u64 = 42;
const CHUNK_BYTES: usize = 256 << 10;

struct Opts {
    image_mb: usize,
    reps: usize,
    max_threads: usize,
    out: PathBuf,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Opts {
    fn from_env() -> Self {
        Opts {
            image_mb: env_usize("BENCH_MB", 8).max(1),
            reps: env_usize("BENCH_REPS", 3).max(1),
            max_threads: env_usize("BENCH_MAX_THREADS", 8).max(1),
            out: std::env::var("BENCH_OUT")
                .unwrap_or_else(|_| "results/BENCH_codec.json".into())
                .into(),
        }
    }
}

/// Best-of-`reps` measurement: the repetition with the highest compress
/// rate wins (factor and sizes are identical across repetitions because
/// the codecs are deterministic).
fn measure_best(
    codec: &dyn Codec,
    inputs: &[&[u8]],
    reps: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let m = measure_many(codec, inputs.iter().copied());
        best = Some(match best {
            Some(b) if b.compress_rate >= m.compress_rate => b,
            _ => m,
        });
    }
    best.expect("reps >= 1")
}

fn codec_section(opts: &Opts, images: &[(String, Vec<u8>)]) -> Json {
    println!("== per-codec throughput (byte-weighted over all apps) ==");
    let mut rows = Vec::new();
    for codec in study_codecs() {
        // rz/bwz are an order of magnitude slower by design; shrink
        // their inputs to keep the harness runtime sane.
        let shrink = if matches!(codec.name(), "rz" | "bwz") { 4 } else { 1 };
        let inputs: Vec<&[u8]> = images
            .iter()
            .map(|(_, img)| &img[..img.len() / shrink])
            .collect();
        let m = measure_best(codec.as_ref(), &inputs, opts.reps);
        println!(
            "{:16} factor {:.3}  compress {:>9.1} MB/s  decompress {:>9.1} MB/s",
            codec.label(),
            m.factor,
            m.compress_rate / 1e6,
            m.decompress_rate / 1e6,
        );
        rows.push(Json::Obj(vec![
            ("codec".into(), Json::str(codec.label())),
            ("name".into(), Json::str(codec.name())),
            ("input_bytes".into(), Json::Int(m.input_bytes as i64)),
            (
                "compressed_bytes".into(),
                Json::Int(m.compressed_bytes as i64),
            ),
            ("factor".into(), Json::Num(m.factor)),
            ("compress_mb_s".into(), Json::Num(m.compress_rate / 1e6)),
            (
                "decompress_mb_s".into(),
                Json::Num(m.decompress_rate / 1e6),
            ),
        ]));
    }
    Json::Arr(rows)
}

fn scaling_section(
    opts: &Opts,
    image: &[u8],
    effective_cores: usize,
) -> Json {
    println!(
        "== thread scaling (ParallelCodec, {} MiB image, {} KiB chunks) ==",
        opts.image_mb,
        CHUNK_BYTES >> 10,
    );
    let mut threads_list = vec![1usize];
    let mut t = 2;
    while t <= opts.max_threads {
        threads_list.push(t);
        t *= 2;
    }

    let mut rows = Vec::new();
    for inner_name in ["gz", "lzf"] {
        let mut base_secs = None;
        for &threads in &threads_list {
            let codec = ParallelCodec::new(
                by_name(inner_name, 1).unwrap(),
                threads,
                CHUNK_BYTES,
            );
            // Correctness guard: a mis-framed container would make the
            // timing below meaningless.
            let compressed = codec.compress_to_vec(image);
            assert_eq!(
                codec.decompress_to_vec(&compressed).unwrap(),
                image,
                "par({inner_name}) x{threads} roundtrip"
            );

            let mut out = Vec::new();
            let secs = time_best(opts.reps, || {
                codec.compress(std::hint::black_box(image), &mut out);
                std::hint::black_box(out.len());
            });
            let base = *base_secs.get_or_insert(secs);
            let speedup = base / secs;
            let efficiency =
                speedup / threads.min(effective_cores).max(1) as f64;
            println!(
                "par({inner_name:3}) x{threads:<2}  {:>9.1} MB/s  speedup {speedup:>5.2}  efficiency {efficiency:>5.2}",
                mb_per_s(image.len(), secs),
            );
            rows.push(Json::Obj(vec![
                ("inner".into(), Json::str(inner_name)),
                ("threads".into(), Json::Int(threads as i64)),
                ("secs".into(), Json::Num(secs)),
                (
                    "compress_mb_s".into(),
                    Json::Num(mb_per_s(image.len(), secs)),
                ),
                ("speedup".into(), Json::Num(speedup)),
                ("efficiency".into(), Json::Num(efficiency)),
            ]));
        }
    }
    Json::Arr(rows)
}

/// Drives the full drain pipeline (host checkpoint -> NVM -> NDP
/// compress -> NIC -> remote object) with the stage profiler enabled
/// and reports the per-stage tokenize/entropy/frame/ship breakdown,
/// plus the derived `indicators/v1` values folded from the node's
/// event stream (drain jobs, stalls, spans).
fn stages_section(image: &[u8]) -> (Json, Json) {
    println!("== per-stage drain pipeline breakdown ==");
    let cfg = NodeConfig {
        drain_ratio: 1, // drain every checkpoint so all stages fire
        codec: Some(("gz", 1)),
        ..NodeConfig::small_test()
    };
    let mut node = ComputeNode::new(cfg);
    node.register_app("bench");
    let bus = cr_obs::Bus::with_sink(cr_obs::VecSink::new());
    node.set_observer(&bus);

    stage::reset();
    stage::set_enabled(true);
    node.checkpoint("bench", image).expect("bench checkpoint");
    loop {
        match node.ndp_step().expect("bench drain") {
            StepOutcome::Idle => break,
            _ => continue,
        }
    }
    stage::set_enabled(false);

    let report = cr_obs::analyze::analyze("bench_hotpath", &bus.drain());
    let indicators = Json::Obj(
        report
            .values()
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect(),
    );

    let mut rows = Vec::new();
    for snap in stage::snapshot() {
        println!(
            "{:9} calls {:>7}  {:>9.3} ms  {:>9.1} MB/s",
            snap.stage.name(),
            snap.calls,
            snap.nanos as f64 / 1e6,
            snap.mb_per_s(),
        );
        rows.push(Json::Obj(vec![
            ("stage".into(), Json::str(snap.stage.name())),
            ("calls".into(), Json::Int(snap.calls as i64)),
            ("nanos".into(), Json::Int(snap.nanos as i64)),
            ("bytes".into(), Json::Int(snap.bytes as i64)),
            ("mb_s".into(), Json::Num(snap.mb_per_s())),
        ]));
    }
    stage::reset();
    (Json::Arr(rows), indicators)
}

fn main() {
    let opts = Opts::from_env();
    let effective_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let apps = all_mini_apps();
    // Per-codec inputs: one image per mini-app, splitting the requested
    // budget evenly (floor 1 MiB each so weak compressors still see
    // representative structure).
    let per_app = ((opts.image_mb << 20) / apps.len().max(1)).max(1 << 20);
    let images: Vec<(String, Vec<u8>)> = apps
        .iter()
        .map(|a| (a.name().to_string(), a.generate(per_app, SEED)))
        .collect();
    // Scaling input: the full-size image of the first app (CoMD-like,
    // mixed compressibility).
    let scaling_image = apps[0].generate(opts.image_mb << 20, SEED + 1);

    let codecs = codec_section(&opts, &images);
    let scaling = scaling_section(&opts, &scaling_image, effective_cores);
    let (stages, indicators) = stages_section(&scaling_image);

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("bench_codec/v1")),
        (
            "config".into(),
            Json::Obj(vec![
                ("image_mb".into(), Json::Int(opts.image_mb as i64)),
                ("per_app_bytes".into(), Json::Int(per_app as i64)),
                ("reps".into(), Json::Int(opts.reps as i64)),
                ("max_threads".into(), Json::Int(opts.max_threads as i64)),
                (
                    "effective_cores".into(),
                    Json::Int(effective_cores as i64),
                ),
                ("chunk_bytes".into(), Json::Int(CHUNK_BYTES as i64)),
                ("seed".into(), Json::Int(SEED as i64)),
                (
                    "apps".into(),
                    Json::Arr(
                        images
                            .iter()
                            .map(|(name, _)| Json::str(name.clone()))
                            .collect(),
                    ),
                ),
                (
                    "efficiency_definition".into(),
                    Json::str(
                        "speedup / min(threads, effective_cores)",
                    ),
                ),
            ]),
        ),
        ("codecs".into(), codecs),
        ("scaling".into(), scaling),
        ("stages".into(), stages),
        ("indicators".into(), indicators),
    ]);

    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&opts.out, doc.render()).expect("write results");
    println!("wrote {}", opts.out.display());
}
