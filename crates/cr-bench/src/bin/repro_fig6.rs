//! Regenerates Figure 6: progress-rate comparison between `I/O Only`,
//! `Local(x%) + I/O-Host` and `Local(x%) + I/O-NDP`, without
//! compression and with each mini-app's gzip(1) compression factor.
//!
//! `REPRO_REPLICAS` / `REPRO_FAILURES` control simulation fidelity.

use cr_bench::experiments::{fig6, headline_averages};
use cr_bench::table::{emit, pct, TextTable};
use cr_bench::ReproOpts;

fn main() {
    let opts = ReproOpts::from_env();
    let data = fig6(&opts);

    let mut headers = vec!["Configuration".to_string()];
    headers.extend(data.columns.iter().cloned());
    let mut t_sim = TextTable::new(headers.clone());
    let mut t_ana = TextTable::new(headers);
    for (label, row) in data.rows.iter().zip(&data.values) {
        let mut sim_cells = vec![label.clone()];
        let mut ana_cells = vec![label.clone()];
        for cell in row {
            sim_cells.push(pct(cell.sim));
            ana_cells.push(pct(cell.analytic));
        }
        t_sim.row(sim_cells);
        t_ana.row(ana_cells);
    }
    emit(
        "Figure 6: progress rates, discrete-event simulation",
        &t_sim,
    );
    emit("Figure 6: progress rates, analytic model", &t_ana);

    let (host, ndp) = headline_averages(&opts);
    println!(
        "Headline (Sec. 6.3, avg over p_local 20/50/80/96%): multilevel \
         + compression {} -> NDP + compression {} (paper: 51% -> 78%)",
        pct(host),
        pct(ndp)
    );
}
