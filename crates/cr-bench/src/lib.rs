//! # cr-bench — the reproduction harness
//!
//! One function per table/figure of the paper's evaluation, shared by
//! the `repro_*` binaries (which print them) and the workspace
//! integration tests (which assert their shape). See DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured
//! numbers.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod perf;
pub mod table;

use std::env;

/// Runtime knobs for the repro binaries, read from the environment:
///
/// * `REPRO_REPLICAS` — simulation replicas per data point (default 4)
/// * `REPRO_FAILURES` — failures injected per replica (default 2000)
/// * `REPRO_MB` — synthetic checkpoint image size in MiB (default 8)
/// * `REPRO_SEED` — base seed (default 42)
#[derive(Debug, Clone, Copy)]
pub struct ReproOpts {
    /// Simulation replicas per data point.
    pub replicas: u64,
    /// Minimum failures injected per replica.
    pub failures: u64,
    /// Synthetic checkpoint image size, MiB.
    pub image_mb: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ReproOpts {
    /// Reads the knobs from the environment with the documented
    /// defaults.
    pub fn from_env() -> Self {
        let get = |name: &str, default: u64| -> u64 {
            env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        ReproOpts {
            replicas: get("REPRO_REPLICAS", 4),
            failures: get("REPRO_FAILURES", 2000),
            image_mb: get("REPRO_MB", 8) as usize,
            seed: get("REPRO_SEED", 42),
        }
    }

    /// Tiny settings for integration tests.
    pub fn quick() -> Self {
        ReproOpts {
            replicas: 2,
            failures: 400,
            image_mb: 2,
            seed: 42,
        }
    }

    /// The simulator options corresponding to these knobs.
    pub fn sim_options(&self) -> cr_sim::SimOptions {
        cr_sim::SimOptions {
            seed: self.seed,
            min_failures: self.failures,
            min_work: 0.0,
            max_wall: 1e12,
        }
    }
}
