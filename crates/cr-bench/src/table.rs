//! Plain-text table rendering for the repro binaries.

/// A simple left-programmed text table: first column left-aligned,
/// remaining columns right-aligned, widths fitted to content.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch"
        );
        self.rows.push(cells);
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> =
            self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize =
            widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as comma-separated values.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","),
            );
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a titled table, honoring `REPRO_CSV=1` for CSV output.
pub fn emit(title: &str, table: &TextTable) {
    println!("== {title} ==");
    if std::env::var("REPRO_CSV").as_deref() == Ok("1") {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(vec!["config", "progress"]);
        t.row(vec!["Local + I/O-H", "51.0%"]);
        t.row(vec!["Local + I/O-NC", "84.2%"]);
        let s = t.render();
        assert!(s.contains("config"));
        assert!(s.lines().count() == 4);
        // Right alignment of the numeric column.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].ends_with("51.0%"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "2"]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5123), "51.2%");
    }
}
