//! One function per table/figure of the paper's evaluation section.
//!
//! Every function returns plain data; the `repro_*` binaries render it
//! and the integration tests assert the paper's qualitative claims on
//! it. Simulation-backed experiments take [`crate::ReproOpts`] so tests
//! can run them at reduced fidelity.

use cr_core::breakdown::Breakdown;
use cr_core::ndp_sizing::{self, NdpSizing, UtilityProfile, PAPER_TABLE2};
use cr_core::params::{CompressionSpec, Strategy, SystemParams};
use cr_core::ratio_opt;
use cr_core::units::*;
use cr_core::{analytic, daly};
use cr_sim::simulate_avg;
use cr_workloads::CheckpointGenerator;

use crate::ReproOpts;

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

/// Figure 1: progress rate of optimally-checkpointed single-level C/R
/// as a function of `M/δ`.
pub fn fig1(points: usize) -> Vec<(f64, f64)> {
    daly::figure1_curve(1.0, 1e4, points)
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One row of the Table 1 rendering.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Parameter name.
    pub parameter: &'static str,
    /// Titan value (rendered).
    pub titan: String,
    /// Exascale projection value (rendered).
    pub exascale: String,
    /// Change factor (rendered).
    pub factor: String,
}

/// Table 1: the exascale projection, regenerated from the scaling rules.
pub fn table1() -> Vec<Table1Row> {
    use cr_core::projection::{ExascaleProjection, TitanBaseline};
    let t = TitanBaseline::titan();
    let p = ExascaleProjection::paper_default();
    let f = |a: f64, b: f64| format!("{:.2}x", b / a);
    vec![
        Table1Row {
            parameter: "Node Count",
            titan: format!("{}", t.node_count),
            exascale: format!("{}", p.node_count),
            factor: f(t.node_count as f64, p.node_count as f64),
        },
        Table1Row {
            parameter: "System Peak",
            titan: format!("{:.0} PF", t.system_peak() / PFLOPS),
            exascale: format!("{:.0} EF", p.system_peak / EFLOPS),
            factor: f(t.system_peak(), p.system_peak),
        },
        Table1Row {
            parameter: "Node Peak",
            titan: format!("{:.2} TF", t.node_peak / TFLOPS),
            exascale: format!("{:.0} TF", p.node_peak / TFLOPS),
            factor: f(t.node_peak, p.node_peak),
        },
        Table1Row {
            parameter: "System Memory",
            titan: format!("{:.0} TB", t.system_memory() / TB),
            exascale: format!("{:.0} PB", p.system_memory / PB),
            factor: f(t.system_memory(), p.system_memory),
        },
        Table1Row {
            parameter: "Node Memory",
            titan: fmt_bytes(t.node_memory),
            exascale: fmt_bytes(p.node_memory),
            factor: f(t.node_memory, p.node_memory),
        },
        Table1Row {
            parameter: "Interconnect BW",
            titan: fmt_rate(t.interconnect_bw),
            exascale: fmt_rate(p.interconnect_bw),
            factor: f(t.interconnect_bw, p.interconnect_bw),
        },
        Table1Row {
            parameter: "I/O Bandwidth",
            titan: fmt_rate(t.io_bw),
            exascale: fmt_rate(p.io_bw),
            factor: f(t.io_bw, p.io_bw),
        },
        Table1Row {
            parameter: "System MTTI",
            titan: format!("{:.0} min", t.mtti / MINUTE),
            exascale: format!("{:.0} min", p.mtti / MINUTE),
            factor: format!("(1/{:.2})x", t.mtti / p.mtti),
        },
    ]
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// Measured compression of one codec on one mini-app.
#[derive(Debug, Clone, Copy)]
pub struct Table2Cell {
    /// Measured compression factor.
    pub factor: f64,
    /// Measured single-thread compression speed, bytes/s.
    pub speed: f64,
    /// Paper's factor for the corresponding utility (reference).
    pub paper_factor: f64,
    /// Paper's speed, bytes/s (reference).
    pub paper_speed: f64,
}

/// One mini-app row of the reproduced Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Mini-app name.
    pub app: &'static str,
    /// Cells in `study_codecs()` column order.
    pub cells: Vec<Table2Cell>,
}

/// Table 2: runs the in-crate codec of each utility family on a
/// synthetic checkpoint image of each mini-app.
pub fn table2(opts: &ReproOpts) -> Vec<Table2Row> {
    use cr_compress::measure::measure;
    use cr_compress::registry::study_codecs;
    let codecs = study_codecs();
    cr_workloads::all_mini_apps()
        .iter()
        .enumerate()
        .map(|(row_idx, app)| {
            let image = app.generate(opts.image_mb << 20, opts.seed);
            let cells = codecs
                .iter()
                .enumerate()
                .map(|(col, codec)| {
                    let m = measure(codec.as_ref(), &image);
                    let paper = PAPER_TABLE2[row_idx].data[col];
                    Table2Cell {
                        factor: m.factor,
                        speed: m.compress_rate,
                        paper_factor: paper.factor,
                        paper_speed: paper.speed,
                    }
                })
                .collect();
            Table2Row {
                app: app.name(),
                cells,
            }
        })
        .collect()
}

/// Column-wise averages of a reproduced Table 2 (the paper's "Average"
/// row): `(factor, speed)` per codec column.
pub fn table2_averages(rows: &[Table2Row]) -> Vec<(f64, f64)> {
    let cols = rows[0].cells.len();
    (0..cols)
        .map(|c| {
            let n = rows.len() as f64;
            let f = rows.iter().map(|r| r.cells[c].factor).sum::<f64>() / n;
            let s = rows.iter().map(|r| r.cells[c].speed).sum::<f64>() / n;
            (f, s)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------

/// Table 3 from the paper's measured utility profiles.
pub fn table3_paper() -> Vec<(UtilityProfile, NdpSizing)> {
    ndp_sizing::table3(&SystemParams::exascale_default())
}

/// Table 3 recomputed from *our* codecs' measured averages (feeding the
/// reproduced Table 2 into the §4.4 sizing equations).
pub fn table3_measured(rows: &[Table2Row]) -> Vec<(String, NdpSizing)> {
    let sys = SystemParams::exascale_default();
    let labels = cr_compress::registry::study_paper_labels();
    table2_averages(rows)
        .iter()
        .zip(labels.iter())
        .map(|(&(factor, speed), label)| {
            // Guard degenerate factors (incompressible synthetic data
            // would divide by zero).
            let f = factor.clamp(0.0, 0.99);
            (label.to_string(), ndp_sizing::size_ndp(&sys, f, speed))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

/// Figure 4: C/R overhead breakdown of `Local + I/O-Host` as the
/// locally-saved : I/O-saved ratio sweeps. Analytic model (smooth), as
/// in the paper.
pub fn fig4(
    p_local: f64,
    compression: Option<CompressionSpec>,
    max_ratio: u32,
) -> Vec<(u32, Breakdown)> {
    let sys = SystemParams::exascale_default();
    ratio_opt::host_overhead_sweep(&sys, p_local, compression, max_ratio)
}

// ---------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------

/// Figure 5: optimal locally-saved : I/O-saved checkpoint ratios.
pub fn fig5() -> Vec<ratio_opt::RatioRow> {
    let sys = SystemParams::exascale_default();
    ratio_opt::figure5_table(
        &sys,
        &[0.2, 0.5, 0.8, 0.96],
        &[None, Some(0.35), Some(0.57), Some(0.728), Some(0.842)],
    )
}

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

/// One data point of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Pooled simulated progress rate.
    pub sim: f64,
    /// Analytic-model progress rate.
    pub analytic: f64,
}

/// Figure 6 data: progress-rate comparison across configurations.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// Column labels: "No comp", three mini-apps, "Average".
    pub columns: Vec<String>,
    /// Row labels: configuration names.
    pub rows: Vec<String>,
    /// `values[row][col]`.
    pub values: Vec<Vec<Fig6Cell>>,
}

/// The three mini-apps Figure 6 displays individually.
pub const FIG6_APPS: [&str; 3] = ["CoMD", "miniMD", "miniSmac"];

fn host_strategy(
    sys: &SystemParams,
    p_local: f64,
    comp: Option<CompressionSpec>,
) -> Strategy {
    ratio_opt::best_host_strategy(sys, p_local, comp).0
}

/// Evaluates one configuration under sim + analytic.
fn eval_cell(
    sys: &SystemParams,
    strat: &Strategy,
    opts: &ReproOpts,
) -> Fig6Cell {
    let avg = simulate_avg(sys, strat, &opts.sim_options(), opts.replicas);
    Fig6Cell {
        sim: avg.progress_rate(),
        analytic: analytic::progress_rate(sys, strat),
    }
}

/// Figure 6: progress rates for `I/O Only`, `Local(x%) + I/O-Host` and
/// `Local(x%) + I/O-NDP` (x ∈ {20, 50, 80}), without compression and
/// with each app's gzip(1) factor, plus the 7-app average.
pub fn fig6(opts: &ReproOpts) -> Fig6Data {
    let sys = SystemParams::exascale_default();
    let p_locals = [0.2, 0.5, 0.8];

    let mut columns = vec!["No comp".to_string()];
    columns.extend(FIG6_APPS.iter().map(|s| s.to_string()));
    columns.push("Average".to_string());

    // Factors per column: None, app-specific, and the list for Average.
    let all_factors: Vec<f64> = PAPER_TABLE2
        .iter()
        .map(|r| r.data[0].factor) // gzip(1) column
        .collect();

    let mut rows = Vec::new();
    let mut values = Vec::new();

    // Build the row list: IoOnly + host configs + ndp configs.
    enum RowKind {
        IoOnly,
        Host(f64),
        Ndp(f64),
    }
    let row_kinds: Vec<(String, RowKind)> = std::iter::once((
        "I/O Only".to_string(),
        RowKind::IoOnly,
    ))
    .chain(p_locals.iter().map(|&p| {
        (
            format!("Local({:.0}%) + I/O-H", p * 100.0),
            RowKind::Host(p),
        )
    }))
    .chain(p_locals.iter().map(|&p| {
        (
            format!("Local({:.0}%) + I/O-N", p * 100.0),
            RowKind::Ndp(p),
        )
    }))
    .collect();

    for (label, kind) in row_kinds {
        let mut row_vals = Vec::new();
        // Helper evaluating this row for one compression factor
        // (None = no compression).
        let eval_for = |factor: Option<f64>, opts: &ReproOpts| -> Fig6Cell {
            let (host_comp, ndp_comp) = match factor {
                None => (None, None),
                Some(f) => (
                    Some(CompressionSpec::gzip1_host_with_factor(f)),
                    Some(CompressionSpec::gzip1_ndp_with_factor(f)),
                ),
            };
            let strat = match &kind {
                RowKind::IoOnly => Strategy::IoOnly {
                    interval: None,
                    compression: host_comp,
                },
                RowKind::Host(p) => host_strategy(&sys, *p, host_comp),
                RowKind::Ndp(p) => Strategy::local_io_ndp(*p, ndp_comp),
            };
            eval_cell(&sys, &strat, opts)
        };

        // Column 1: no compression.
        row_vals.push(eval_for(None, opts));
        // Columns 2..4: the three displayed apps.
        for app in FIG6_APPS {
            let f = ndp_sizing::gzip1_factor(app).expect("known app");
            row_vals.push(eval_for(Some(f), opts));
        }
        // Column 5: average over all seven apps.
        let per_app: Vec<Fig6Cell> = all_factors
            .iter()
            .map(|&f| eval_for(Some(f), opts))
            .collect();
        let n = per_app.len() as f64;
        row_vals.push(Fig6Cell {
            sim: per_app.iter().map(|c| c.sim).sum::<f64>() / n,
            analytic: per_app.iter().map(|c| c.analytic).sum::<f64>() / n,
        });

        rows.push(label);
        values.push(row_vals);
    }

    Fig6Data {
        columns,
        rows,
        values,
    }
}

/// The headline §6.3 averages: `(multilevel+compression, NDP+compression)`
/// progress averaged over `p_local ∈ {20, 50, 80, 96}%` at the average
/// compression factor (paper: 51% → 78%).
pub fn headline_averages(opts: &ReproOpts) -> (f64, f64) {
    let sys = SystemParams::exascale_default();
    let p_locals = [0.2, 0.5, 0.8, 0.96];
    let host: f64 = p_locals
        .iter()
        .map(|&p| {
            let s = host_strategy(&sys, p, Some(CompressionSpec::gzip1_host()));
            simulate_avg(&sys, &s, &opts.sim_options(), opts.replicas)
                .progress_rate()
        })
        .sum::<f64>()
        / p_locals.len() as f64;
    let ndp: f64 = p_locals
        .iter()
        .map(|&p| {
            let s = Strategy::local_io_ndp(p, Some(CompressionSpec::gzip1_ndp()));
            simulate_avg(&sys, &s, &opts.sim_options(), opts.replicas)
                .progress_rate()
        })
        .sum::<f64>()
        / p_locals.len() as f64;
    (host, ndp)
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// One configuration of Figure 7 with simulated and analytic
/// breakdowns.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Configuration label (paper notation).
    pub label: String,
    /// Pooled simulated breakdown.
    pub sim: Breakdown,
    /// Analytic breakdown (lag-free NDP accounting, matching the
    /// paper).
    pub analytic: Breakdown,
}

/// Figure 7: C/R overhead breakdown of the four multilevel
/// configurations at 4% I/O-recovery probability and 73% compression
/// factor.
pub fn fig7(opts: &ReproOpts) -> Vec<Fig7Row> {
    use cr_core::params::DrainLagModel;
    let sys = SystemParams::exascale_default();
    let p_local = 0.96;
    let host_c = CompressionSpec::gzip1_host_with_factor(0.73);
    let ndp_c = CompressionSpec::gzip1_ndp_with_factor(0.73);

    let ndp_strat = |comp: Option<CompressionSpec>, lag| Strategy::LocalIoNdp {
        interval: Some(150.0),
        ratio: None,
        p_local,
        compression: comp,
        drain_lag: lag,
    };

    let configs: Vec<(String, Strategy, Strategy)> = vec![
        {
            let s = host_strategy(&sys, p_local, None);
            ("Local + I/O-H".to_string(), s, s)
        },
        {
            let s = host_strategy(&sys, p_local, Some(host_c));
            ("Local + I/O-HC".to_string(), s, s)
        },
        (
            "Local + I/O-N".to_string(),
            ndp_strat(None, DrainLagModel::Pipelined),
            ndp_strat(None, DrainLagModel::Ignore),
        ),
        (
            "Local + I/O-NC".to_string(),
            ndp_strat(Some(ndp_c), DrainLagModel::Pipelined),
            ndp_strat(Some(ndp_c), DrainLagModel::Ignore),
        ),
    ];

    configs
        .into_iter()
        .map(|(label, sim_strat, analytic_strat)| {
            let avg =
                simulate_avg(&sys, &sim_strat, &opts.sim_options(), opts.replicas);
            Fig7Row {
                label,
                sim: avg.pooled,
                analytic: analytic::evaluate(&sys, &analytic_strat),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 8 and 9 (sensitivity)
// ---------------------------------------------------------------------

/// A sweep result: x-axis values and one progress series per
/// configuration.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// X-axis label.
    pub x_label: &'static str,
    /// X-axis values.
    pub xs: Vec<f64>,
    /// `(config label, progress per x)` series.
    pub series: Vec<(String, Vec<f64>)>,
}

/// The five §6.5 sensitivity configurations, parameterized by local
/// bandwidth: `L-15GBps + I/O-HC`, `L-15GBps + I/O-N(C)`,
/// `L-2GBps + I/O-N(C)`.
///
/// Unlike the Figure 6/7 experiments (which use the Table 4 interval of
/// 150 s for the fixed default system), the sensitivity sweeps let the
/// local checkpoint interval follow Daly's optimum per configuration:
/// a 2 GB/s NVM with a 56 s commit needs a ~410 s interval, not 150 s.
fn sensitivity_configs(
    sys_at: &dyn Fn(f64) -> SystemParams,
) -> Vec<(String, SystemParams, Strategy)> {
    let p_local = 0.85;
    let cf = 0.73;
    let host_c = CompressionSpec::gzip1_host_with_factor(cf);
    let ndp_c = CompressionSpec::gzip1_ndp_with_factor(cf);
    let fast = sys_at(15.0 * GB);
    let slow = sys_at(2.0 * GB);
    let ndp = |comp: Option<CompressionSpec>| Strategy::LocalIoNdp {
        interval: None,
        ratio: None,
        p_local,
        compression: comp,
        drain_lag: Default::default(),
    };
    vec![
        (
            "L-15GBps + I/O-HC".to_string(),
            fast,
            ratio_opt::best_host_strategy_at(&fast, p_local, Some(host_c), None)
                .0,
        ),
        ("L-15GBps + I/O-N".to_string(), fast, ndp(None)),
        ("L-15GBps + I/O-NC".to_string(), fast, ndp(Some(ndp_c))),
        ("L-2GBps + I/O-N".to_string(), slow, ndp(None)),
        ("L-2GBps + I/O-NC".to_string(), slow, ndp(Some(ndp_c))),
    ]
}

/// Figure 8: progress vs checkpoint size (10–80% of node memory) for
/// the five sensitivity configurations. MTTI fixed at 30 minutes.
pub fn fig8(opts: &ReproOpts) -> SweepData {
    let node_memory = 140.0 * GB;
    let fractions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for &frac in &fractions {
        let size = frac * node_memory;
        let sys_at = move |local_bw: f64| SystemParams {
            checkpoint_bytes: size,
            local_bw,
            ..SystemParams::exascale_default()
        };
        for (i, (label, sys, strat)) in
            sensitivity_configs(&sys_at).into_iter().enumerate()
        {
            if series.len() <= i {
                series.push((label, Vec::new()));
            }
            let p = simulate_avg(&sys, &strat, &opts.sim_options(), opts.replicas)
                .progress_rate();
            series[i].1.push(p);
        }
    }
    SweepData {
        x_label: "checkpoint size (% of memory)",
        xs: fractions.iter().map(|f| f * 100.0).collect(),
        series,
    }
}

/// Figure 9: progress vs MTTI (30–150 minutes) for the five sensitivity
/// configurations. Checkpoint size fixed at 112 GB.
pub fn fig9(opts: &ReproOpts) -> SweepData {
    let mttis = [30.0, 60.0, 90.0, 120.0, 150.0];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for &mtti_min in &mttis {
        let sys_at = move |local_bw: f64| SystemParams {
            mtti: mtti_min * MINUTE,
            local_bw,
            ..SystemParams::exascale_default()
        };
        for (i, (label, sys, strat)) in
            sensitivity_configs(&sys_at).into_iter().enumerate()
        {
            if series.len() <= i {
                series.push((label, Vec::new()));
            }
            let p = simulate_avg(&sys, &strat, &opts.sim_options(), opts.replicas)
                .progress_rate();
            series[i].1.push(p);
        }
    }
    SweepData {
        x_label: "MTTI (minutes)",
        xs: mttis.to_vec(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reaches_90_around_200() {
        let curve = fig1(128);
        // Find where the curve crosses 0.9.
        let cross = curve
            .windows(2)
            .find(|w| w[0].1 < 0.9 && w[1].1 >= 0.9)
            .expect("curve must cross 90%");
        assert!(
            cross[1].0 > 120.0 && cross[1].0 < 320.0,
            "90% crossing at M/delta = {}",
            cross[1].0
        );
    }

    #[test]
    fn table1_has_eight_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].exascale, "100000");
        assert!(rows[3].exascale.contains("14 PB"));
    }

    #[test]
    fn table3_paper_matches_published() {
        let t = table3_paper();
        assert_eq!(t.len(), 7);
        assert_eq!(t[0].1.cores, 4); // gzip(1)
        assert_eq!(t[6].1.cores, 1); // lz4(1)
    }

    #[test]
    fn fig5_rows_cover_factors() {
        let rows = fig5();
        assert_eq!(rows.len(), 5);
        // NDP ratio for no compression is 8 (Sec. 6.4).
        assert_eq!(rows[0].ndp, 8);
    }

    #[test]
    fn fig4_has_interior_optimum() {
        let sweep = fig4(0.85, None, 120);
        let best = sweep
            .iter()
            .map(|(_, b)| b.progress_rate())
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        assert!(best > 0 && best < sweep.len() - 1);
    }
}
