//! Std-only performance measurement utilities: wall-clock timing with
//! best-of-N repetition, throughput formatting, and a minimal JSON
//! writer for machine-readable results (`results/BENCH_codec.json`).
//!
//! Deliberately dependency-free so the perf harness builds in offline
//! environments; the output format is stable enough for scripts to
//! diff across commits.

use std::fmt::Write as _;
use std::time::Instant;

/// Times `f` once, returning seconds.
pub fn time_once(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Times `f` `reps` times and returns the *minimum* seconds — the
/// standard noise-robust estimator for a deterministic workload.
pub fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(time_once(&mut f));
    }
    best
}

/// Bytes/second over megabytes (1e6 bytes, matching the paper's MB/s).
/// Delegates to the workspace-shared helper so bench output and the
/// Table 2 reproduction can never diverge on units, and so `elapsed ==
/// 0` on a coarse clock is division-safe (0 bytes → 0.0; nonzero bytes
/// → ∞ rather than NaN).
pub fn mb_per_s(bytes: usize, secs: f64) -> f64 {
    cr_obs::units::mb_per_s(bytes as u64, secs)
}

/// A label→measurement console reporter with a fixed repetition count.
pub struct Runner {
    reps: usize,
}

impl Runner {
    /// Creates a runner; `reps` is best-of repetitions per measurement.
    pub fn new(reps: usize) -> Self {
        Runner { reps }
    }

    /// Reads `BENCH_REPS` from the environment (default `default`).
    pub fn from_env(default: usize) -> Self {
        let reps = std::env::var("BENCH_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default);
        Self::new(reps.max(1))
    }

    /// Best-of repetitions per measurement.
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// Times `f`, prints `label: time (throughput)`, returns seconds.
    pub fn run(&self, label: &str, bytes: usize, f: impl FnMut()) -> f64 {
        let secs = time_best(self.reps, f);
        if bytes > 0 {
            println!(
                "{label:40} {:>10.3} ms  {:>9.1} MB/s",
                secs * 1e3,
                mb_per_s(bytes, secs)
            );
        } else {
            println!("{label:40} {:>10.3} ms", secs * 1e3);
        }
        secs
    }
}

/// A minimal JSON value for writing result files without a serde
/// dependency. Construction is by hand; rendering is stable (object
/// keys keep insertion order).
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (kept exact, no float formatting).
    Int(i64),
    /// Float; non-finite values render as `null`.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_best_takes_minimum() {
        let mut n = 0u64;
        let secs = time_best(3, || {
            n += 1;
            std::hint::black_box(n);
        });
        assert_eq!(n, 3);
        assert!(secs >= 0.0 && secs.is_finite());
    }

    #[test]
    fn mb_per_s_definition() {
        assert_eq!(mb_per_s(2_000_000, 2.0), 1.0);
        assert!(mb_per_s(1, 0.0).is_infinite());
        // Regression: a coarse clock can measure 0 bytes in 0 seconds;
        // that must be 0 MB/s, not NaN and not a bogus infinity.
        assert_eq!(mb_per_s(0, 0.0), 0.0);
        // Shared helper: identical semantics to the workspace converter.
        assert_eq!(mb_per_s(123_456, 0.5), cr_obs::units::mb_per_s(123_456, 0.5));
    }

    #[test]
    fn json_renders_nested_structures() {
        let j = Json::Obj(vec![
            ("schema".into(), Json::str("bench/v1")),
            ("n".into(), Json::Int(3)),
            ("rate".into(), Json::Num(12.5)),
            ("bad".into(), Json::Num(f64::NAN)),
            (
                "items".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"schema\": \"bench/v1\""));
        assert!(s.contains("\"n\": 3"));
        assert!(s.contains("\"rate\": 12.5"));
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }
}
