#!/usr/bin/env bash
# Tier-1 gate: everything a commit must pass, with no network access.
#
#   build (release)  ->  tests  ->  clippy (deny warnings)
#
# The bench harness targets are feature-gated (`bench-harness`) and are
# compiled — not run — here so they cannot rot.
#
# Usage: scripts/tier1.sh   (from the repo root or anywhere inside it)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: release build =="
cargo build --release --offline --workspace

echo "== tier1: tests =="
cargo test --offline --workspace --quiet

echo "== tier1: bench harness compiles =="
cargo build --offline -p cr-bench --features bench-harness --benches

echo "== tier1: clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tier1: OK =="
