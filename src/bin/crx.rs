//! `crx` — checkpoint/restart explorer.
//!
//! A command-line front end over the workspace: project exascale
//! systems, evaluate C/R strategies with the analytic model and the
//! simulator, find optimal checkpoint ratios, sweep parameters, and run
//! the compression study.
//!
//! ```sh
//! crx project
//! crx evaluate --strategy ndp --p-local 0.85 --compress 0.73
//! crx ratio --p-local 0.8
//! crx sweep --param mtti --from 30 --to 150 --steps 5 --strategy ndp
//! crx study --mb 4
//! crx --help
//! ```

use ndp_checkpoint::cr_core::{analytic, daly, ndp_sizing, ratio_opt};
use ndp_checkpoint::prelude::*;

// ---------------------------------------------------------------------
// Tiny flag parser
// ---------------------------------------------------------------------

/// Parsed `--key value` flags plus positional arguments.
struct Flags {
    positional: Vec<String>,
    named: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut named = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key == "help" {
                    named.push(("help".into(), "1".into()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                named.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { positional, named })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.named
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: not a number: {v}")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: not an integer: {v}")),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

/// Builds `SystemParams` from common flags (`--mtti` minutes, `--size`
/// GB, `--nvm` GB/s, `--io` MB/s per node).
fn system_from(flags: &Flags) -> Result<SystemParams, String> {
    Ok(SystemParams {
        mtti: flags.get_f64("mtti", 30.0)? * MINUTE,
        checkpoint_bytes: flags.get_f64("size", 112.0)? * GB,
        local_bw: flags.get_f64("nvm", 15.0)? * GB,
        io_bw_per_node: flags.get_f64("io", 100.0)? * MB,
    })
}

/// Builds a strategy from `--strategy`, `--p-local`, `--compress`,
/// `--ratio`, `--interval`.
fn strategy_from(
    flags: &Flags,
    sys: &SystemParams,
) -> Result<Strategy, String> {
    let p_local = flags.get_f64("p-local", 0.85)?;
    let interval = if flags.has("interval") {
        Some(flags.get_f64("interval", 150.0)?)
    } else {
        Some(150.0)
    };
    let factor = if flags.has("compress") {
        Some(flags.get_f64("compress", 0.73)?)
    } else {
        None
    };
    let name = flags.get("strategy").unwrap_or("ndp");
    let strat = match name {
        "io-only" => Strategy::IoOnly {
            interval: None,
            compression: factor.map(CompressionSpec::gzip1_host_with_factor),
        },
        "local" => Strategy::LocalOnly { interval: None },
        "host" => {
            let comp = factor.map(CompressionSpec::gzip1_host_with_factor);
            match flags.get("ratio") {
                Some(r) => Strategy::LocalIoHost {
                    interval,
                    ratio: r
                        .parse()
                        .map_err(|_| format!("--ratio: bad value {r}"))?,
                    p_local,
                    compression: comp,
                },
                None => ratio_opt::best_host_strategy_at(
                    sys, p_local, comp, interval,
                )
                .0,
            }
        }
        "ndp" => Strategy::LocalIoNdp {
            interval,
            ratio: None,
            p_local,
            compression: factor.map(CompressionSpec::gzip1_ndp_with_factor),
            drain_lag: Default::default(),
        },
        other => {
            return Err(format!(
                "unknown --strategy {other} (io-only|local|host|ndp)"
            ))
        }
    };
    Ok(strat)
}

const USAGE: &str = "\
crx — checkpoint/restart explorer

USAGE: crx <command> [flags]

COMMANDS:
  project    print the exascale projection (Table 1) and derived C/R needs
  evaluate   evaluate one strategy on a system (analytic + simulation)
  ratio      find the optimal locally-saved:I/O-saved checkpoint ratio
  sweep      sweep mtti|size|p-local and print CSV progress rates
  study      run the compression study on synthetic mini-app images
  sizing     NDP sizing table for the paper's utilities (Table 3)
  trace      run one observed replica and render its Fig. 3 timeline
  report     run an observed fleet and print derived C/R indicators
  export     export an observed fleet as a Chrome trace (Perfetto) JSON
  obs diff   compare two metrics/indicators JSON snapshots (gate)

SYSTEM FLAGS (evaluate/ratio/sweep):
  --mtti MIN     system MTTI in minutes        [30]
  --size GB      checkpoint size per node      [112]
  --nvm GBPS     local NVM bandwidth           [15]
  --io MBPS      per-node global-I/O share     [100]

STRATEGY FLAGS:
  --strategy S   io-only | local | host | ndp  [ndp]
  --p-local F    P(recover from local levels)  [0.85]
  --compress F   compression factor 0..1       [off]
  --ratio K      host local:IO ratio           [optimal]
  --interval S   local checkpoint interval     [150]

TRACE FLAGS:
  --seed N       replica seed                  [42]
  --failures N   failures to simulate          [25]
  --sink S       off | vec | ring | json       [vec]
  --ring-cap N   ring sink capacity            [4096]
  --from S       render window start, seconds  [0]
  --to S         render window end, seconds    [wall time]
  --width N      render width in columns       [100]
  --result-out F write the SimResult debug dump to F
  --metrics-out F write a metrics/v1 JSON snapshot to F

REPORT / EXPORT FLAGS:
  --seed N       base replica seed             [42]
  --replicas N   observed replicas (fleet)     [report 4, export 2]
  --failures N   failures per replica          [report 400, export 25]
  --out F        write JSON to F instead of stdout summary only

OBS DIFF (crx obs diff <baseline.json> <current.json>):
  --tol F        default relative tolerance    [0.05]
  --tol-key K=F  per-key override (repeatable, flattened dotted key)

OTHER:
  --replicas N   simulation replicas           [4]
  --failures N   failures per replica          [2000]
  --mb N         study image size in MiB       [4]
";

/// Creates the parent directory of `path` if needed.
fn ensure_parent_dir(path: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
}

fn cmd_project(_flags: &Flags) -> Result<(), String> {
    use ndp_checkpoint::cr_core::projection::ExascaleProjection;
    let p = ExascaleProjection::paper_default();
    println!("exascale projection (scaled from Titan Cray XK7):");
    println!("  nodes                : {}", p.node_count);
    println!("  node peak            : {:.0} TF", p.node_peak / TFLOPS);
    println!("  node memory          : {}", fmt_bytes(p.node_memory));
    println!("  system memory        : {}", fmt_bytes(p.system_memory));
    println!("  I/O bandwidth        : {}", fmt_rate(p.io_bw));
    println!(
        "  system MTTI          : {:.0} min (socket model: {:.1} min)",
        p.mtti / MINUTE,
        p.derived_mtti / MINUTE
    );
    println!("derived C/R requirements for 90% progress:");
    println!(
        "  checkpoint size      : {} per node",
        fmt_bytes(p.checkpoint_bytes)
    );
    println!(
        "  commit time          : {:.1} s  (bandwidth {})",
        p.required_commit_time,
        fmt_rate(p.required_commit_bw)
    );
    println!(
        "  per-node I/O share   : {} -> {} per checkpoint",
        fmt_rate(p.io_bw_per_node),
        fmt_secs(p.t_io_per_node())
    );
    Ok(())
}

fn cmd_evaluate(flags: &Flags) -> Result<(), String> {
    let sys = system_from(flags)?;
    let strat = strategy_from(flags, &sys)?;
    let replicas = flags.get_usize("replicas", 4)? as u64;
    let failures = flags.get_usize("failures", 2000)? as u64;

    let sol = analytic::solve_cycle(&sys, &strat);
    let opts = SimOptions {
        seed: 42,
        min_failures: failures,
        min_work: 0.0,
        max_wall: 1e12,
    };
    let sim = simulate_avg(&sys, &strat, &opts, replicas);

    println!("strategy: {}", strat.label());
    println!(
        "  interval {} | local:IO ratio {}",
        fmt_secs(sol.interval),
        sol.ratio
    );
    println!(
        "  analytic : progress {:.1}%",
        sol.progress_rate() * 100.0
    );
    println!(
        "  simulated: progress {:.1}% (+-{:.2} s.e. over {replicas} replicas)",
        sim.progress_rate() * 100.0,
        sim.sem_progress() * 100.0
    );
    let f = sim.fractions();
    println!(
        "  breakdown: ckpt L {:.1}% IO {:.1}% | restore L {:.1}% IO {:.1}% | rerun L {:.1}% IO {:.1}%",
        f.checkpoint_local * 100.0,
        f.checkpoint_io * 100.0,
        f.restore_local * 100.0,
        f.restore_io * 100.0,
        f.rerun_local * 100.0,
        f.rerun_io * 100.0
    );
    Ok(())
}

fn cmd_ratio(flags: &Flags) -> Result<(), String> {
    let sys = system_from(flags)?;
    let p_local = flags.get_f64("p-local", 0.85)?;
    let factor = if flags.has("compress") {
        Some(flags.get_f64("compress", 0.73)?)
    } else {
        None
    };
    let comp = factor.map(CompressionSpec::gzip1_host_with_factor);
    let (ratio, progress) = ratio_opt::best_host_ratio(&sys, p_local, comp);
    println!(
        "optimal host ratio: {ratio} (progress {:.1}%)",
        progress * 100.0
    );
    let ndp_comp = factor.map(CompressionSpec::gzip1_ndp_with_factor);
    let ndp = ratio_opt::ndp_ratio(&sys, ndp_comp);
    println!("NDP drain ratio   : {ndp} (fastest sustainable)");
    Ok(())
}

fn cmd_sweep(flags: &Flags) -> Result<(), String> {
    let param = flags.get("param").unwrap_or("mtti").to_string();
    let (lo, hi) = (
        flags.get_f64("from", 30.0)?,
        flags.get_f64("to", 150.0)?,
    );
    let steps = flags.get_usize("steps", 5)?.max(2);
    let replicas = flags.get_usize("replicas", 3)? as u64;
    let failures = flags.get_usize("failures", 1500)? as u64;

    println!("{param},analytic,simulated");
    for i in 0..steps {
        let x = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
        let mut sys = system_from(flags)?;
        let mut flags_p = String::new();
        match param.as_str() {
            "mtti" => sys.mtti = x * MINUTE,
            "size" => sys.checkpoint_bytes = x * GB,
            "p-local" => flags_p = format!("{x}"),
            other => return Err(format!("unknown --param {other}")),
        }
        let strat = if flags_p.is_empty() {
            strategy_from(flags, &sys)?
        } else {
            // p-local sweep: override.
            let mut named = flags.named.clone();
            named.push(("p-local".into(), flags_p));
            let f2 = Flags {
                positional: flags.positional.clone(),
                named,
            };
            strategy_from(&f2, &sys)?
        };
        let a = analytic::progress_rate(&sys, &strat);
        let opts = SimOptions {
            seed: 7,
            min_failures: failures,
            min_work: 0.0,
            max_wall: 1e12,
        };
        let s = simulate_avg(&sys, &strat, &opts, replicas).progress_rate();
        println!("{x},{a:.4},{s:.4}");
    }
    Ok(())
}

fn cmd_study(flags: &Flags) -> Result<(), String> {
    use ndp_checkpoint::cr_compress::measure::measure;
    use ndp_checkpoint::cr_compress::registry::study_codecs;
    use ndp_checkpoint::cr_workloads::{all_mini_apps, CheckpointGenerator};
    let mb = flags.get_usize("mb", 4)?;
    println!("app,codec,factor,compress_mbps,decompress_mbps");
    for app in all_mini_apps() {
        let image = app.generate(mb << 20, 1);
        for codec in study_codecs() {
            let m = measure(codec.as_ref(), &image);
            println!(
                "{},{},{:.4},{:.1},{:.1}",
                app.name(),
                codec.label(),
                m.factor,
                m.compress_rate / 1e6,
                m.decompress_rate / 1e6
            );
        }
    }
    Ok(())
}

fn cmd_sizing(flags: &Flags) -> Result<(), String> {
    let sys = system_from(flags)?;
    println!("utility,required_mbps,ndp_cores,min_interval_s");
    for (util, s) in ndp_sizing::table3(&sys) {
        println!(
            "{},{:.0},{},{:.0}",
            util.label(),
            s.required_rate / 1e6,
            s.cores,
            s.min_interval
        );
    }
    let r90 = daly::ratio_for_progress(0.90);
    println!(
        "# 90% progress requires M/delta >= {r90:.0} -> commit <= {}",
        fmt_secs(sys.mtti / r90)
    );
    Ok(())
}

fn cmd_trace(flags: &Flags) -> Result<(), String> {
    use ndp_checkpoint::cr_obs::metrics::Metrics;
    use ndp_checkpoint::cr_obs::{
        Bus, EventKind, JsonLinesSink, RingSink, VecSink,
    };
    use ndp_checkpoint::cr_sim::{run_engine_observed, SimFaults, Trace};

    let sys = system_from(flags)?;
    let strat = strategy_from(flags, &sys)?;
    let opts = SimOptions {
        seed: flags.get_usize("seed", 42)? as u64,
        min_failures: flags.get_usize("failures", 25)? as u64,
        min_work: 0.0,
        max_wall: 1e12,
    };

    let sink_name = flags.get("sink").unwrap_or("vec");
    let bus = match sink_name {
        "off" => Bus::disabled(),
        "vec" => Bus::with_sink(VecSink::new()),
        "ring" => {
            Bus::with_sink(RingSink::new(flags.get_usize("ring-cap", 4096)?))
        }
        "json" => Bus::with_sink(JsonLinesSink::new()),
        other => {
            return Err(format!("unknown --sink {other} (off|vec|ring|json)"))
        }
    };

    let result =
        run_engine_observed(&sys, &strat, &opts, &SimFaults::default(), &bus);

    // The json sink renders eagerly; vec/ring retain events we can
    // rebuild the timeline (and metrics) from. Read the drop count
    // before draining so it reflects the run just observed.
    let dropped = bus.dropped();
    let rendered = bus.render();
    let events = bus.drain();
    let trace = Trace::from_events(&events);

    println!("strategy: {} | seed {}", strat.label(), opts.seed);
    let drop_note = if dropped > 0 {
        format!(" (ring dropped {dropped})")
    } else {
        String::new()
    };
    println!(
        "wall {:.0} s | work {:.0} s | failures {} | events {}{}",
        result.stats.wall_time,
        result.stats.work_done,
        result.stats.failures,
        events.len(),
        drop_note
    );
    if !events.is_empty() {
        let from = flags.get_f64("from", 0.0)?;
        let to = flags.get_f64("to", result.stats.wall_time)?;
        let width = flags.get_usize("width", 100)?.max(10);
        if to <= from {
            return Err(format!("--to ({to}) must exceed --from ({from})"));
        }
        print!("{}", trace.render_ascii(from, to, width));
    }
    if sink_name == "json" {
        print!("{rendered}");
    }

    if let Some(path) = flags.get("result-out") {
        ensure_parent_dir(path);
        let dump = format!("{result:?}\n");
        std::fs::write(path, dump)
            .map_err(|e| format!("--result-out {path}: {e}"))?;
    }
    if let Some(path) = flags.get("metrics-out") {
        ensure_parent_dir(path);
        let mut m = Metrics::new();
        m.inc("events_total", events.len() as u64);
        for e in &events {
            m.inc(&format!("events_{}", e.kind.name()), 1);
            if let EventKind::Span { t0, t1, .. } = e.kind {
                m.observe("span_us", ((t1 - t0) * 1e6) as u64);
            }
        }
        m.gauge("wall_time_s", result.stats.wall_time);
        m.gauge("work_done_s", result.stats.work_done);
        std::fs::write(path, m.to_json("crx_trace"))
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }
    Ok(())
}

/// Per-replica result and event stream from an observed fleet run.
type FleetRuns =
    Vec<(ndp_checkpoint::cr_sim::SimResult, Vec<ndp_checkpoint::cr_obs::Event>)>;

/// Runs an observed fleet with the report/export flag conventions.
fn observed_fleet(
    flags: &Flags,
    default_replicas: usize,
    default_failures: usize,
) -> Result<(SystemParams, Strategy, SimOptions, FleetRuns), String> {
    use ndp_checkpoint::cr_sim::{run_fleet_observed, SimFaults};
    let sys = system_from(flags)?;
    let strat = strategy_from(flags, &sys)?;
    let replicas = flags.get_usize("replicas", default_replicas)?.max(1) as u64;
    let opts = SimOptions {
        seed: flags.get_usize("seed", 42)? as u64,
        min_failures: flags.get_usize("failures", default_failures)? as u64,
        min_work: 0.0,
        max_wall: 1e12,
    };
    let fleet = run_fleet_observed(
        &sys,
        &strat,
        &opts,
        &SimFaults::default(),
        replicas,
    );
    Ok((sys, strat, opts, fleet))
}

fn cmd_report(flags: &Flags) -> Result<(), String> {
    use ndp_checkpoint::cr_obs::analyze::{analyze, merge_percentiles};

    let (sys, strat, opts, fleet) = observed_fleet(flags, 4, 400)?;
    let per_node: Vec<_> = fleet
        .iter()
        .enumerate()
        .map(|(i, (_, events))| analyze(&format!("node{i}"), events))
        .collect();
    let label = format!(
        "{} seed {} x{}",
        strat.label(),
        opts.seed,
        fleet.len()
    );
    let mut report = if per_node.len() > 1 {
        merge_percentiles(&label, &per_node)
    } else {
        let mut r = per_node[0].clone();
        r.label = label;
        r
    };

    // Analytic-model-vs-sim divergence: predicted progress rate from
    // the Markov-renewal solution against the pooled simulated rate.
    let sol = analytic::solve_cycle(&sys, &strat);
    let predicted = sol.progress_rate();
    let (mut compute, mut wall) = (0.0, 0.0);
    for (r, _) in &fleet {
        compute += r.breakdown.compute;
        wall += r.breakdown.total();
    }
    let observed = if wall > 0.0 { compute / wall } else { 0.0 };
    report.set("model_progress_predicted", predicted);
    report.set("model_progress_observed", observed);
    report.set(
        "model_divergence",
        if predicted > 0.0 {
            (observed - predicted).abs() / predicted
        } else {
            0.0
        },
    );

    println!("indicators: {}", report.label);
    for (k, v) in report.values() {
        println!("  {k:<34} {v}");
    }
    if let Some(path) = flags.get("out") {
        ensure_parent_dir(path);
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("--out {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_export(flags: &Flags) -> Result<(), String> {
    use ndp_checkpoint::cr_obs::export::{
        chrome_trace_merged, validate_chrome_trace,
    };

    let (_sys, strat, opts, fleet) = observed_fleet(flags, 2, 25)?;
    let streams: Vec<&[ndp_checkpoint::cr_obs::Event]> =
        fleet.iter().map(|(_, e)| e.as_slice()).collect();
    let text = chrome_trace_merged(&streams);
    validate_chrome_trace(&text)
        .map_err(|e| format!("exporter produced an invalid trace: {e}"))?;
    match flags.get("out") {
        Some(path) => {
            ensure_parent_dir(path);
            std::fs::write(path, &text)
                .map_err(|e| format!("--out {path}: {e}"))?;
            println!(
                "wrote {path}: {} nodes, {} events ({} | seed {})",
                fleet.len(),
                fleet.iter().map(|(_, e)| e.len()).sum::<usize>(),
                strat.label(),
                opts.seed
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_obs_diff(flags: &Flags) -> Result<(), String> {
    use ndp_checkpoint::cr_obs::analyze::{diff_flat, flatten_numbers};
    use ndp_checkpoint::cr_obs::json;

    if flags.positional.len() < 4 {
        return Err(format!(
            "usage: crx obs diff <baseline.json> <current.json>\n\n{USAGE}"
        ));
    }
    let (base_path, cur_path) =
        (&flags.positional[2], &flags.positional[3]);
    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e}"))?;
        let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(flatten_numbers(&doc))
    };
    let base = load(base_path)?;
    let current = load(cur_path)?;

    let tol = flags.get_f64("tol", 0.05)?;
    let mut per_key = std::collections::BTreeMap::new();
    for (k, v) in &flags.named {
        if k == "tol-key" {
            let (key, t) = v.split_once('=').ok_or_else(|| {
                format!("--tol-key wants key=tolerance, got {v}")
            })?;
            let t: f64 = t
                .parse()
                .map_err(|_| format!("--tol-key {key}: bad tolerance {t}"))?;
            per_key.insert(key.to_string(), t);
        }
    }

    let diff = diff_flat(&base, &current, tol, &per_key);
    println!(
        "compared {} keys ({} added in current), default tol {:.1}%",
        diff.compared,
        diff.added.len(),
        tol * 100.0
    );
    for m in &diff.missing {
        println!("  MISSING  {m} (in baseline, absent from current)");
    }
    for r in &diff.regressions {
        println!(
            "  REGRESSED {} : {} -> {} ({:+.2}% vs tol {:.1}%)",
            r.key,
            r.base,
            r.current,
            (r.current - r.base) / r.base.abs().max(1e-9) * 100.0,
            per_key.get(&r.key).copied().unwrap_or(tol) * 100.0
        );
    }
    if diff.ok() {
        println!("OK: within tolerance");
        Ok(())
    } else {
        Err(format!(
            "{} regression(s), {} missing key(s)",
            diff.regressions.len(),
            diff.missing.len()
        ))
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = Flags::parse(&args)?;
    if flags.has("help") || flags.positional.is_empty() {
        print!("{USAGE}");
        return Ok(());
    }
    match flags.positional[0].as_str() {
        "project" => cmd_project(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "ratio" => cmd_ratio(&flags),
        "sweep" => cmd_sweep(&flags),
        "study" => cmd_study(&flags),
        "sizing" => cmd_sizing(&flags),
        "trace" => cmd_trace(&flags),
        "report" => cmd_report(&flags),
        "export" => cmd_export(&flags),
        "obs" => match flags.positional.get(1).map(String::as_str) {
            Some("diff") => cmd_obs_diff(&flags),
            other => Err(format!(
                "unknown obs subcommand {other:?} (expected: diff)\n\n{USAGE}"
            )),
        },
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .unwrap()
    }

    #[test]
    fn flag_parsing() {
        let f = flags(&["evaluate", "--mtti", "60", "--strategy", "host"]);
        assert_eq!(f.positional, vec!["evaluate"]);
        assert_eq!(f.get("mtti"), Some("60"));
        assert_eq!(f.get_f64("mtti", 30.0).unwrap(), 60.0);
        assert_eq!(f.get_f64("size", 112.0).unwrap(), 112.0);
        assert!(!f.has("compress"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let args: Vec<String> = vec!["x".into(), "--mtti".into()];
        assert!(Flags::parse(&args).is_err());
    }

    #[test]
    fn system_and_strategy_construction() {
        let f = flags(&[
            "evaluate", "--mtti", "60", "--size", "56", "--strategy",
            "ndp", "--compress", "0.8",
        ]);
        let sys = system_from(&f).unwrap();
        assert_eq!(sys.mtti, 3600.0);
        assert_eq!(sys.checkpoint_bytes, 56.0 * GB);
        let strat = strategy_from(&f, &sys).unwrap();
        assert!(matches!(strat, Strategy::LocalIoNdp { .. }));
        assert!(strat.compression().is_some());
    }

    #[test]
    fn host_strategy_with_explicit_ratio() {
        let f = flags(&["evaluate", "--strategy", "host", "--ratio", "12"]);
        let sys = system_from(&f).unwrap();
        let strat = strategy_from(&f, &sys).unwrap();
        match strat {
            Strategy::LocalIoHost { ratio, .. } => assert_eq!(ratio, 12),
            other => panic!("wrong strategy {other:?}"),
        }
    }

    #[test]
    fn unknown_strategy_rejected() {
        let f = flags(&["evaluate", "--strategy", "wat"]);
        let sys = system_from(&f).unwrap();
        assert!(strategy_from(&f, &sys).is_err());
    }

    #[test]
    fn last_flag_wins() {
        let f = flags(&["x", "--mtti", "30", "--mtti", "90"]);
        assert_eq!(f.get_f64("mtti", 0.0).unwrap(), 90.0);
    }
}
