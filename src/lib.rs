//! # ndp-checkpoint
//!
//! A reproduction of *"Leveraging Near Data Processing for
//! High-Performance Checkpoint/Restart"* (Agrawal, Loh & Tuck, SC'17)
//! as a Rust workspace. This facade crate re-exports the member crates:
//!
//! * [`cr_core`] — Daly math, the exascale projection, configuration
//!   types, and the Markov-renewal analytic model of multilevel C/R
//!   with NDP offload.
//! * [`cr_sim`] — a discrete-event Monte-Carlo simulator of the same
//!   configurations (Figure 3's timeline, exactly).
//! * [`cr_compress`] — from-scratch codecs standing in for lz4, gzip,
//!   bzip2 and xz in the §5 compression study.
//! * [`cr_workloads`] — synthetic Mantevo-mini-app checkpoint images
//!   with calibrated compressibility.
//! * [`cr_node`] — a functional emulation of an NDP-equipped compute
//!   node: NVM circular buffers, drain engine, NIC backpressure,
//!   failure injection and recovery.
//! * [`cr_obs`] — the observability plane: a structured event bus,
//!   metrics registry and stage profiler shared by every crate above,
//!   all zero-overhead when disabled.
//!
//! The `cr-bench` crate (not re-exported; it is a binary/bench crate)
//! regenerates every table and figure of the paper — see `DESIGN.md`
//! and `EXPERIMENTS.md`.
//!
//! ## Two-minute tour
//!
//! ```
//! use ndp_checkpoint::prelude::*;
//!
//! // The paper's projected exascale system (Table 1/4).
//! let sys = SystemParams::exascale_default();
//!
//! // Multilevel checkpointing with host-driven I/O commits...
//! let host = Strategy::local_io_host(20, 0.85, Some(CompressionSpec::gzip1_host()));
//! // ...versus NDP-offloaded drains.
//! let ndp = Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp()));
//!
//! let p_host = cr_core::analytic::progress_rate(&sys, &host);
//! let p_ndp = cr_core::analytic::progress_rate(&sys, &ndp);
//! assert!(p_ndp > p_host, "NDP offload must win: {p_ndp} vs {p_host}");
//! ```

#![deny(missing_docs)]

pub use cr_compress;
pub use cr_core;
pub use cr_node;
pub use cr_obs;
pub use cr_sim;
pub use cr_workloads;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use cr_core::prelude::*;
    pub use cr_sim::{simulate, simulate_avg, SimOptions};
}
