//! Tests of the partner level (§3.4): checkpoints replicated to a
//! partner node's NVM survive single-node loss; only pair loss forces
//! recovery from global I/O.

use ndp_checkpoint::cr_node::node::{
    ComputeNode, FailureKind, NodeConfig, NodeError, RestoreSource,
};
use ndp_checkpoint::cr_workloads::{by_name, CheckpointGenerator};

fn cfg(partner_ratio: u32, drain_ratio: u32) -> NodeConfig {
    NodeConfig {
        partner_ratio,
        drain_ratio,
        ..NodeConfig::small_test()
    }
}

fn image(step: u64) -> Vec<u8> {
    by_name("miniAero").unwrap().generate(512 << 10, step)
}

#[test]
fn node_loss_recovers_from_partner() {
    let mut node = ComputeNode::new(cfg(1, 4));
    node.register_app("a");
    let img = image(1);
    node.checkpoint("a", &img).unwrap();
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::Partner);
    assert_eq!(r.data, img);
}

#[test]
fn recovery_hierarchy_local_partner_io() {
    let mut node = ComputeNode::new(cfg(2, 2));
    node.register_app("a");
    let imgs: Vec<Vec<u8>> = (1..=4).map(image).collect();
    for img in &imgs {
        node.checkpoint("a", img).unwrap();
    }
    node.drain_all().unwrap();
    // Local survives a process crash: newest (#3) from local NVM.
    node.inject_failure(FailureKind::LocalSurvivable);
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::LocalNvm);
    assert_eq!(r.data, imgs[3]);
    // Node loss: partner holds every 2nd checkpoint (#1, #3).
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::Partner);
    assert_eq!(r.data, imgs[3], "partner's newest replica is #3");
    // Pair loss: only I/O-durable drains (every 2nd: #1, #3) remain.
    node.inject_failure(FailureKind::PairLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::RemoteIo);
    assert_eq!(r.data, imgs[3]);
}

#[test]
fn partner_restore_reseeds_local() {
    let mut node = ComputeNode::new(cfg(1, 8));
    node.register_app("a");
    let img = image(5);
    node.checkpoint("a", &img).unwrap();
    node.inject_failure(FailureKind::NodeLoss);
    let _ = node.restore("a").unwrap();
    // Next local-survivable failure restores from local again.
    node.inject_failure(FailureKind::LocalSurvivable);
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::LocalNvm);
    assert_eq!(r.data, img);
}

#[test]
fn pair_loss_without_drain_loses_everything() {
    let mut node = ComputeNode::new(cfg(1, 100));
    node.register_app("a");
    node.checkpoint("a", &image(6)).unwrap();
    node.inject_failure(FailureKind::PairLoss);
    assert!(matches!(
        node.restore("a").unwrap_err(),
        NodeError::NoCheckpoint
    ));
}

#[test]
fn partner_ratio_skips_checkpoints() {
    let mut node = ComputeNode::new(cfg(3, 100));
    node.register_app("a");
    let imgs: Vec<Vec<u8>> = (1..=7).map(image).collect();
    for img in &imgs {
        node.checkpoint("a", img).unwrap();
    }
    // Partner holds every 3rd: #2 and #5 (0-indexed ids).
    let partner = node.partner().unwrap();
    let ids: Vec<u64> = partner
        .slots(ndp_checkpoint::cr_node::nvm::Region::Uncompressed)
        .map(|s| s.meta.ckpt_id)
        .collect();
    assert_eq!(ids, vec![2, 5]);
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::Partner);
    assert_eq!(r.data, imgs[5], "newest partner replica");
}

#[test]
fn disabled_partner_level_goes_straight_to_io() {
    let mut node = ComputeNode::new(cfg(0, 1));
    node.register_app("a");
    assert!(node.partner().is_none());
    let img = image(9);
    node.checkpoint("a", &img).unwrap();
    node.drain_all().unwrap();
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::RemoteIo);
    assert_eq!(r.data, img);
}
