//! End-to-end recovery scenarios on the functional compute node,
//! driving real mini-app checkpoint data through the NVM → NDP → remote
//! I/O pipeline and back (§4.2–4.3 mechanisms under composed stress).

use ndp_checkpoint::cr_node::background::BackgroundNode;
use ndp_checkpoint::cr_node::ndp::{BackpressurePolicy, StepOutcome};
use ndp_checkpoint::cr_node::node::{
    ComputeNode, FailureKind, NodeConfig, NodeError, RestoreSource,
};
use ndp_checkpoint::cr_workloads::{by_name, CheckpointGenerator};

fn app_image(step: u64, bytes: usize) -> Vec<u8> {
    by_name("miniFE").unwrap().generate_rank(bytes, step, 0)
}

fn cfg() -> NodeConfig {
    NodeConfig {
        drain_ratio: 2,
        block_size: 64 << 10,
        ..NodeConfig::small_test()
    }
}

#[test]
fn repeated_failure_recovery_cycles_stay_consistent() {
    let mut node = ComputeNode::new(cfg());
    node.register_app("fe");
    let bytes = 1 << 20;
    let mut latest;
    let mut latest_drained = Vec::new();

    for step in 0..20u64 {
        let img = app_image(step, bytes);
        node.checkpoint("fe", &img).unwrap();
        node.drain_all().unwrap();
        if step % 2 == 1 {
            // drain_ratio 2: odd steps (2nd, 4th, ...) are drained.
            latest_drained = img.clone();
        }
        latest = img;

        match step % 3 {
            0 => {
                node.inject_failure(FailureKind::LocalSurvivable);
                let r = node.restore("fe").unwrap();
                assert_eq!(r.source, RestoreSource::LocalNvm);
                assert_eq!(r.data, latest, "step {step}");
            }
            1 => {
                node.inject_failure(FailureKind::NodeLoss);
                let r = node.restore("fe").unwrap();
                assert_eq!(r.source, RestoreSource::RemoteIo);
                assert_eq!(r.data, latest_drained, "step {step}");
            }
            _ => {} // no failure this step
        }
    }
}

#[test]
fn node_loss_mid_drain_is_atomic() {
    // Kill the node at every possible point of a drain; recovery must
    // always produce either the previous durable checkpoint or the new
    // one — never a torn mix.
    let bytes = 512 << 10;
    let old = app_image(1, bytes);
    let new = app_image(2, bytes);

    // Number of steps a full drain takes with this geometry.
    let total_steps = {
        let mut node = ComputeNode::new(NodeConfig {
            drain_ratio: 1,
            ..cfg()
        });
        node.register_app("fe");
        node.checkpoint("fe", &new).unwrap();
        let mut n = 0;
        loop {
            match node.ndp_step().unwrap() {
                StepOutcome::Idle => break,
                _ => n += 1,
            }
        }
        n
    };
    assert!(total_steps > 4, "drain too short to be interesting");

    for kill_at in [0, 1, total_steps / 2, total_steps - 1, total_steps] {
        let mut node = ComputeNode::new(NodeConfig {
            drain_ratio: 1,
            ..cfg()
        });
        node.register_app("fe");
        node.checkpoint("fe", &old).unwrap();
        node.drain_all().unwrap();
        node.checkpoint("fe", &new).unwrap();
        for _ in 0..kill_at {
            node.ndp_step().unwrap();
        }
        node.inject_failure(FailureKind::NodeLoss);
        let r = node.restore("fe").unwrap();
        assert_eq!(r.source, RestoreSource::RemoteIo);
        assert!(
            r.data == old || r.data == new,
            "kill_at {kill_at}: torn restore (got neither image)"
        );
        if r.data == new {
            assert_eq!(r.meta.ckpt_id, 1);
        } else {
            assert_eq!(r.meta.ckpt_id, 0);
        }
    }
}

#[test]
fn spill_policy_survives_blocked_nic_then_node_loss() {
    let mut node = ComputeNode::new(NodeConfig {
        drain_ratio: 1,
        policy: BackpressurePolicy::Spill,
        nic_blocks: 2,
        ..cfg()
    });
    node.register_app("fe");
    let img = app_image(7, 1 << 20);
    node.checkpoint("fe", &img).unwrap();

    // Block the NIC: the NDP keeps compressing, spilling to NVM.
    node.nic_blocked(true);
    loop {
        match node.ndp_step().unwrap() {
            StepOutcome::Stalled | StepOutcome::Idle => break,
            _ => {}
        }
    }
    assert!(node.ndp_stats().blocks_spilled > 0);

    // Node loss while everything is spilled: nothing durable remotely.
    node.inject_failure(FailureKind::NodeLoss);
    assert!(matches!(
        node.restore("fe").unwrap_err(),
        NodeError::NoCheckpoint
    ));
}

#[test]
fn spill_policy_completes_after_nic_unblocks() {
    let mut node = ComputeNode::new(NodeConfig {
        drain_ratio: 1,
        policy: BackpressurePolicy::Spill,
        nic_blocks: 2,
        ..cfg()
    });
    node.register_app("fe");
    let img = app_image(8, 1 << 20);
    node.checkpoint("fe", &img).unwrap();
    node.nic_blocked(true);
    loop {
        match node.ndp_step().unwrap() {
            StepOutcome::Stalled | StepOutcome::Idle => break,
            _ => {}
        }
    }
    node.nic_blocked(false);
    node.drain_all().unwrap();
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("fe").unwrap();
    assert_eq!(r.data, img, "spilled blocks must ship in order");
}

#[test]
fn sixteen_rank_coordinated_checkpoint() {
    // The paper's study checkpoints 16 MPI ranks per app; all ranks
    // must drain and restore independently.
    let mut node = ComputeNode::new(NodeConfig {
        drain_ratio: 1,
        nvm_uncompressed: 256 << 20,
        nvm_compressed: 128 << 20,
        ..cfg()
    });
    node.register_app("fe");
    let gen = by_name("pHPCCG").unwrap();
    let images: Vec<Vec<u8>> = (0..16)
        .map(|rank| gen.generate_rank(256 << 10, 3, rank))
        .collect();
    for (rank, img) in images.iter().enumerate() {
        node.checkpoint_rank("fe", rank as u32, img).unwrap();
    }
    node.drain_all().unwrap();
    node.inject_failure(FailureKind::NodeLoss);
    for (rank, img) in images.iter().enumerate() {
        let r = node.restore_rank("fe", rank as u32).unwrap();
        assert_eq!(&r.data, img, "rank {rank}");
        assert_eq!(r.source, RestoreSource::RemoteIo);
    }
}

#[test]
fn background_node_under_checkpoint_storm() {
    let mut node = ComputeNode::new(NodeConfig {
        drain_ratio: 3,
        nvm_uncompressed: 24 << 20, // forces wraparound
        ..cfg()
    });
    node.register_app("fe");
    let bg = BackgroundNode::start(node);
    let bytes = 2 << 20;
    let mut last_img = Vec::new();
    for step in 0..30u64 {
        last_img = app_image(step, bytes);
        // Retry when the circular buffer is momentarily full of locked
        // (draining) checkpoints — the host waits for the NDP (§4.2.2).
        loop {
            match bg.with_node(|n| n.checkpoint("fe", &last_img)) {
                Ok(_) => break,
                Err(NodeError::Nvm(_)) => std::thread::yield_now(),
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    bg.wait_drained().unwrap();
    let node = bg.stop();
    assert!(node.nvm().evictions > 0, "wraparound expected");
    assert!(node.ndp_stats().drains_completed >= 9);

    // The newest local checkpoint equals the last image.
    let mut node = node;
    let r = node.restore("fe").unwrap();
    assert_eq!(r.data, last_img);
}
