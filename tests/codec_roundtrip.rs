//! Cross-crate codec integration: every codec must losslessly
//! round-trip every mini-app's synthetic checkpoint images, including
//! property-based tests over arbitrary inputs and adversarial
//! containers.

use ndp_checkpoint::cr_compress::registry::{by_name, study_codecs};
use ndp_checkpoint::cr_workloads::{all_mini_apps, CheckpointGenerator};
use proptest::prelude::*;

#[test]
fn every_codec_roundtrips_every_miniapp() {
    for app in all_mini_apps() {
        let image = app.generate(1 << 20, 99);
        for codec in study_codecs() {
            let compressed = codec.compress_to_vec(&image);
            let restored = codec
                .decompress_to_vec(&compressed)
                .unwrap_or_else(|e| {
                    panic!("{} on {}: {e}", codec.label(), app.name())
                });
            assert_eq!(
                restored,
                image,
                "{} corrupted {}",
                codec.label(),
                app.name()
            );
        }
    }
}

#[test]
fn compression_factors_follow_family_strength_on_compressible_data() {
    // On a compressible image, the stronger families should not lose
    // badly to the weaker ones: lzf <= gz(1) and gz(1) <= rz(6) + slack.
    let image = all_mini_apps()[1].generate(2 << 20, 5); // HPCCG
    let size = |name: &str, level: u32| {
        by_name(name, level)
            .unwrap()
            .compress_to_vec(&image)
            .len() as f64
    };
    let lzf = size("lzf", 1);
    let gz1 = size("gz", 1);
    let rz1 = size("rz", 1);
    let bwz1 = size("bwz", 1);
    assert!(gz1 < lzf, "gz(1) {gz1} must beat lzf {lzf}");
    assert!(rz1 < gz1 * 1.05, "rz(1) {rz1} should rival gz(1) {gz1}");
    assert!(bwz1 < lzf, "bwz(1) {bwz1} must beat lzf {lzf}");
}

#[test]
fn codecs_reject_each_others_containers() {
    let data = b"cross container test ".repeat(100);
    let codecs = study_codecs();
    for a in &codecs {
        let compressed = a.compress_to_vec(&data);
        for b in &codecs {
            if a.name() == b.name() {
                continue;
            }
            // Wrong-family decode must error (magic mismatch), never
            // panic or return wrong data silently.
            match b.decompress_to_vec(&compressed) {
                Err(_) => {}
                Ok(out) => panic!(
                    "{} accepted {}'s container and returned {} bytes",
                    b.label(),
                    a.label(),
                    out.len()
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_gz_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = by_name("gz", 3).unwrap();
        let compressed = c.compress_to_vec(&data);
        prop_assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
    }

    #[test]
    fn prop_lzf_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = by_name("lzf", 1).unwrap();
        let compressed = c.compress_to_vec(&data);
        prop_assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
    }

    #[test]
    fn prop_bwz_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        let c = by_name("bwz", 1).unwrap();
        let compressed = c.compress_to_vec(&data);
        prop_assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
    }

    #[test]
    fn prop_rz_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        let c = by_name("rz", 1).unwrap();
        let compressed = c.compress_to_vec(&data);
        prop_assert_eq!(c.decompress_to_vec(&compressed).unwrap(), data);
    }

    #[test]
    fn prop_roundtrips_structured_runs(
        runs in proptest::collection::vec((any::<u8>(), 1usize..500), 1..50)
    ) {
        // Run-length-structured data (checkpoint-like): all codecs.
        let mut data = Vec::new();
        for (byte, len) in runs {
            data.extend(std::iter::repeat_n(byte, len));
        }
        for codec in study_codecs() {
            let compressed = codec.compress_to_vec(&data);
            prop_assert_eq!(
                &codec.decompress_to_vec(&compressed).unwrap(),
                &data,
                "{} failed", codec.label()
            );
        }
    }

    #[test]
    fn prop_truncated_streams_error_not_panic(
        data in proptest::collection::vec(any::<u8>(), 100..2_000),
        cut_frac in 0.0f64..0.99
    ) {
        for codec in study_codecs() {
            let compressed = codec.compress_to_vec(&data);
            let cut = ((compressed.len() as f64) * cut_frac) as usize;
            // Either error or (rarely, for lucky prefixes) a wrong
            // result — but never a panic.
            let _ = codec.decompress_to_vec(&compressed[..cut]);
        }
    }

    #[test]
    fn prop_corrupted_streams_never_panic(
        seed_data in proptest::collection::vec(any::<u8>(), 200..2_000),
        flip_at in 0usize..1_000,
        flip_mask in 1u8..=255
    ) {
        for codec in study_codecs() {
            let mut compressed = codec.compress_to_vec(&seed_data);
            if compressed.is_empty() { continue; }
            let idx = flip_at % compressed.len();
            compressed[idx] ^= flip_mask;
            let _ = codec.decompress_to_vec(&compressed);
        }
    }
}
