//! Cross-crate codec integration: every codec must losslessly
//! round-trip every mini-app's synthetic checkpoint images, including
//! randomized (seeded, deterministic) sweeps over arbitrary inputs and
//! adversarial containers.

use cr_rand::ChaCha8;
use ndp_checkpoint::cr_compress::parallel::ParallelCodec;
use ndp_checkpoint::cr_compress::registry::{by_name, study_codecs};
use ndp_checkpoint::cr_compress::Codec;
use ndp_checkpoint::cr_workloads::{all_mini_apps, CheckpointGenerator};

fn random_bytes(rng: &mut ChaCha8, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill(&mut v);
    v
}

#[test]
fn every_codec_roundtrips_every_miniapp() {
    for app in all_mini_apps() {
        let image = app.generate(1 << 20, 99);
        for codec in study_codecs() {
            let compressed = codec.compress_to_vec(&image);
            let restored = codec
                .decompress_to_vec(&compressed)
                .unwrap_or_else(|e| {
                    panic!("{} on {}: {e}", codec.label(), app.name())
                });
            assert_eq!(
                restored,
                image,
                "{} corrupted {}",
                codec.label(),
                app.name()
            );
        }
    }
}

#[test]
fn compression_factors_follow_family_strength_on_compressible_data() {
    // On a compressible image, the stronger families should not lose
    // badly to the weaker ones: lzf <= gz(1) and gz(1) <= rz(6) + slack.
    let image = all_mini_apps()[1].generate(2 << 20, 5); // HPCCG
    let size = |name: &str, level: u32| {
        by_name(name, level)
            .unwrap()
            .compress_to_vec(&image)
            .len() as f64
    };
    let lzf = size("lzf", 1);
    let gz1 = size("gz", 1);
    let rz1 = size("rz", 1);
    let bwz1 = size("bwz", 1);
    assert!(gz1 < lzf, "gz(1) {gz1} must beat lzf {lzf}");
    assert!(rz1 < gz1 * 1.05, "rz(1) {rz1} should rival gz(1) {gz1}");
    assert!(bwz1 < lzf, "bwz(1) {bwz1} must beat lzf {lzf}");
}

#[test]
fn codecs_reject_each_others_containers() {
    let data = b"cross container test ".repeat(100);
    let codecs = study_codecs();
    for a in &codecs {
        let compressed = a.compress_to_vec(&data);
        for b in &codecs {
            if a.name() == b.name() {
                continue;
            }
            // Wrong-family decode must error (magic mismatch), never
            // panic or return wrong data silently.
            match b.decompress_to_vec(&compressed) {
                Err(_) => {}
                Ok(out) => panic!(
                    "{} accepted {}'s container and returned {} bytes",
                    b.label(),
                    a.label(),
                    out.len()
                ),
            }
        }
    }
}

#[test]
fn codecs_roundtrip_arbitrary_bytes() {
    // Seeded sweep standing in for the former proptest cases: a range
    // of lengths of incompressible data through every family.
    let mut rng = ChaCha8::seed_from_u64(0xC0DEC);
    for len in [0usize, 1, 2, 7, 100, 999, 4096, 8_000, 20_000] {
        let data = random_bytes(&mut rng, len);
        for codec in study_codecs() {
            let compressed = codec.compress_to_vec(&data);
            assert_eq!(
                codec.decompress_to_vec(&compressed).unwrap(),
                data,
                "{} failed at len {len}",
                codec.label()
            );
        }
    }
}

#[test]
fn codecs_roundtrip_structured_runs() {
    // Run-length-structured data (checkpoint-like): all codecs.
    let mut rng = ChaCha8::seed_from_u64(0x5EED);
    for _case in 0..8 {
        let mut data = Vec::new();
        let nruns = 1 + (rng.next_u32() % 50) as usize;
        for _ in 0..nruns {
            let byte = rng.next_u32() as u8;
            let len = 1 + (rng.next_u32() % 500) as usize;
            data.extend(std::iter::repeat_n(byte, len));
        }
        for codec in study_codecs() {
            let compressed = codec.compress_to_vec(&data);
            assert_eq!(
                codec.decompress_to_vec(&compressed).unwrap(),
                data,
                "{} failed",
                codec.label()
            );
        }
    }
}

#[test]
fn compress_append_matches_compress_for_all_codecs() {
    // The zero-copy append entry point must produce the same container
    // bytes as `compress`, after any prefix.
    let image = all_mini_apps()[0].generate(1 << 18, 3);
    for codec in study_codecs() {
        let clean = codec.compress_to_vec(&image);
        let mut appended = b"prefix".to_vec();
        codec.compress_append(&image, &mut appended);
        assert_eq!(
            &appended[6..],
            &clean[..],
            "{} compress_append diverged",
            codec.label()
        );
        assert_eq!(&appended[..6], b"prefix");
    }
}

#[test]
fn truncated_streams_error_not_panic() {
    let mut rng = ChaCha8::seed_from_u64(0x72C4);
    let data = random_bytes(&mut rng, 1500);
    for codec in study_codecs() {
        let compressed = codec.compress_to_vec(&data);
        for i in 0..40 {
            let cut = compressed.len() * i / 40;
            // Either error or (rarely, for lucky prefixes) a wrong
            // result — but never a panic.
            let _ = codec.decompress_to_vec(&compressed[..cut]);
        }
    }
}

#[test]
fn corrupted_streams_never_panic() {
    let mut rng = ChaCha8::seed_from_u64(0xF11B);
    let seed_data = random_bytes(&mut rng, 1200);
    for codec in study_codecs() {
        let compressed = codec.compress_to_vec(&seed_data);
        if compressed.is_empty() {
            continue;
        }
        for _ in 0..64 {
            let idx = rng.next_u64() as usize % compressed.len();
            let mask = (rng.next_u32() % 255 + 1) as u8;
            let mut bad = compressed.clone();
            bad[idx] ^= mask;
            let _ = codec.decompress_to_vec(&bad);
        }
    }
}

// ---- ParallelCodec chunk-boundary and container edge cases ----

const CHUNK: usize = 8 << 10;

fn par_codec(threads: usize) -> ParallelCodec {
    ParallelCodec::new(by_name("gz", 1).unwrap(), threads, CHUNK)
}

#[test]
fn parallel_roundtrips_chunk_boundary_lengths() {
    // The adversarial lengths for a chunked container: empty, single
    // byte, below one chunk, exact multiples, and one past a multiple.
    let mut rng = ChaCha8::seed_from_u64(0xB0DD);
    let lens = [
        0usize,
        1,
        CHUNK - 1,
        CHUNK,
        CHUNK + 1,
        3 * CHUNK,
        3 * CHUNK + 1,
        5 * CHUNK - 1,
    ];
    for threads in [1usize, 4] {
        let c = par_codec(threads);
        for &len in &lens {
            let data = random_bytes(&mut rng, len);
            let compressed = c.compress_to_vec(&data);
            assert_eq!(
                c.decompress_to_vec(&compressed).unwrap(),
                data,
                "threads {threads} len {len}"
            );
        }
    }
}

#[test]
fn parallel_corrupt_frame_headers_error_not_panic() {
    let mut rng = ChaCha8::seed_from_u64(0xBADF);
    let data = random_bytes(&mut rng, 3 * CHUNK + 17);
    let c = par_codec(2);
    let good = c.compress_to_vec(&data);

    // Oversized first chunk frame length: claims more bytes than the
    // container holds.
    let mut bad = good.clone();
    bad[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(c.decompress_to_vec(&bad).is_err(), "oversized frame len");

    // Zero chunk size in the container header.
    let mut bad = good.clone();
    bad[12..16].copy_from_slice(&0u32.to_le_bytes());
    assert!(c.decompress_to_vec(&bad).is_err(), "zero chunk size");

    // Total-length header inflated: frame count no longer matches.
    let mut bad = good.clone();
    bad[4..12].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(c.decompress_to_vec(&bad).is_err(), "inflated total");

    // Truncated mid-frame-header (cut 2 bytes into a length field).
    let bad = &good[..18];
    assert!(c.decompress_to_vec(bad).is_err(), "truncated frame header");

    // Bit flips across the whole container: error or mismatch detection,
    // never a panic.
    for _ in 0..64 {
        let idx = rng.next_u64() as usize % good.len();
        let mut bad = good.clone();
        bad[idx] ^= 0x40;
        if let Ok(out) = c.decompress_to_vec(&bad) {
            // A surviving decode must at least preserve the length
            // contract enforced by the container.
            assert_eq!(out.len(), data.len());
        }
    }
}
