//! Restore fallback-ordering matrix: every `FailureKind` crossed with
//! every tampered-level combination must restore from the best intact
//! level (local NVM → partner replica → remote I/O), count each detected
//! corruption, and surface a typed error — never stale or torn data —
//! when no intact copy survives.

use ndp_checkpoint::cr_node::node::{
    ComputeNode, FailureKind, NodeConfig, NodeError, RestoreSource,
};
use ndp_checkpoint::cr_workloads::{by_name, CheckpointGenerator};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tamper {
    None,
    Local,
    Remote,
    Both,
}

const TAMPERS: [Tamper; 4] =
    [Tamper::None, Tamper::Local, Tamper::Remote, Tamper::Both];

fn image(step: u64) -> Vec<u8> {
    by_name("miniFE").unwrap().generate_rank(768 << 10, step, 0)
}

/// Node with all three levels populated with two checkpoints each.
fn populated_node(partner: bool) -> (ComputeNode, Vec<u8>) {
    let mut node = ComputeNode::new(NodeConfig {
        drain_ratio: 1,
        partner_ratio: if partner { 1 } else { 0 },
        block_size: 64 << 10,
        ..NodeConfig::small_test()
    });
    node.register_app("fe");
    node.checkpoint("fe", &image(1)).unwrap();
    node.drain_all().unwrap();
    let newest = image(2);
    node.checkpoint("fe", &newest).unwrap();
    node.drain_all().unwrap();
    (node, newest)
}

fn apply_tamper(node: &mut ComputeNode, tamper: Tamper) {
    if matches!(tamper, Tamper::Local | Tamper::Both) {
        assert!(node.tamper_local("fe", 0), "local copy must exist");
    }
    if matches!(tamper, Tamper::Remote | Tamper::Both) {
        assert!(node.tamper_remote("fe", 0), "remote object must exist");
    }
}

#[test]
fn local_survivable_failures_prefer_intact_local_then_partner() {
    for tamper in TAMPERS {
        let (mut node, newest) = populated_node(true);
        apply_tamper(&mut node, tamper);
        node.inject_failure(FailureKind::LocalSurvivable);
        let r = node.restore("fe").unwrap();
        assert_eq!(r.data, newest, "{tamper:?}: newest image");
        assert_eq!(r.meta.ckpt_id, 1, "{tamper:?}");
        match tamper {
            // Local copy intact: the remote tamper must never even be
            // noticed (no fallback reads past the first intact level).
            Tamper::None | Tamper::Remote => {
                assert_eq!(r.source, RestoreSource::LocalNvm, "{tamper:?}");
                assert_eq!(node.corruptions_detected(), 0, "{tamper:?}");
            }
            // Local rot detected by verification; partner serves.
            Tamper::Local | Tamper::Both => {
                assert_eq!(r.source, RestoreSource::Partner, "{tamper:?}");
                assert_eq!(node.corruptions_detected(), 1, "{tamper:?}");
            }
        }
    }
}

#[test]
fn node_loss_falls_back_to_partner_regardless_of_tampering() {
    for tamper in TAMPERS {
        let (mut node, newest) = populated_node(true);
        // Tampering happens before the node dies; the wipe makes the
        // local tamper moot and the partner replica is still pristine.
        apply_tamper(&mut node, tamper);
        node.inject_failure(FailureKind::NodeLoss);
        let r = node.restore("fe").unwrap();
        assert_eq!(r.source, RestoreSource::Partner, "{tamper:?}");
        assert_eq!(r.data, newest, "{tamper:?}");
        assert_eq!(node.corruptions_detected(), 0, "{tamper:?}");
    }
}

#[test]
fn node_loss_without_partner_level_restores_from_remote() {
    for tamper in [Tamper::None, Tamper::Local] {
        let (mut node, newest) = populated_node(false);
        assert!(node.partner().is_none());
        apply_tamper(&mut node, tamper);
        node.inject_failure(FailureKind::NodeLoss);
        let r = node.restore("fe").unwrap();
        assert_eq!(r.source, RestoreSource::RemoteIo, "{tamper:?}");
        assert_eq!(r.data, newest, "{tamper:?}");
        assert_eq!(node.corruptions_detected(), 0, "{tamper:?}");
    }
}

#[test]
fn pair_loss_restores_from_remote_or_fails_typed_on_rot() {
    for tamper in TAMPERS {
        let (mut node, newest) = populated_node(true);
        apply_tamper(&mut node, tamper);
        node.inject_failure(FailureKind::PairLoss);
        match tamper {
            Tamper::None | Tamper::Local => {
                let r = node.restore("fe").unwrap();
                assert_eq!(r.source, RestoreSource::RemoteIo, "{tamper:?}");
                assert_eq!(r.data, newest, "{tamper:?}");
                assert_eq!(node.corruptions_detected(), 0, "{tamper:?}");
            }
            // The newest remote object is rotten and both NVM levels
            // are gone: a typed error, never stale or garbage data.
            Tamper::Remote | Tamper::Both => {
                let err = node.restore("fe").unwrap_err();
                assert!(
                    matches!(err, NodeError::Corrupt),
                    "{tamper:?}: got {err}"
                );
                assert_eq!(node.corruptions_detected(), 1, "{tamper:?}");
            }
        }
    }
}

#[test]
fn double_rot_with_no_partner_falls_through_to_remote() {
    // Local rot + no partner level: restore must skip the corrupt local
    // copy and land on the remote object, counting exactly one
    // detection.
    let (mut node, newest) = populated_node(false);
    apply_tamper(&mut node, Tamper::Local);
    node.inject_failure(FailureKind::LocalSurvivable);
    let r = node.restore("fe").unwrap();
    assert_eq!(r.source, RestoreSource::RemoteIo);
    assert_eq!(r.data, newest);
    assert_eq!(node.corruptions_detected(), 1);
}
