//! End-to-end tests of the §7 future-work NDP optimizations:
//! incremental drains (diff consecutive checkpoints, ship only changed
//! blocks) and their interaction with compression, failures and chain
//! limits.

use ndp_checkpoint::cr_node::incremental::DedupStore;
use ndp_checkpoint::cr_node::ndp::IncrementalPolicy;
use ndp_checkpoint::cr_node::node::{
    ComputeNode, FailureKind, NodeConfig, NodeError, RestoreSource,
};
use ndp_checkpoint::cr_workloads::{by_name, CheckpointGenerator};

fn incr_cfg(max_chain: u32) -> NodeConfig {
    NodeConfig {
        drain_ratio: 1,
        incremental: Some(IncrementalPolicy {
            max_chain,
            diff_block: 16 << 10,
        }),
        block_size: 64 << 10,
        ..NodeConfig::small_test()
    }
}

/// Evolving application state: a base image with a slowly-moving dirty
/// stripe, like an iterative solver touching a working set.
fn evolve(state: &mut [u8], step: u64) {
    let stripe = (step as usize * 30_000) % state.len();
    let end = (stripe + 20_000).min(state.len());
    for b in &mut state[stripe..end] {
        *b = b.wrapping_add(13);
    }
}

#[test]
fn incremental_drains_ship_far_fewer_bytes() {
    let bytes = 4 << 20;
    let image = by_name("HPCCG").unwrap().generate(bytes, 10);

    let run = |incremental: bool| -> (u64, u64) {
        let mut cfg = if incremental {
            incr_cfg(100)
        } else {
            NodeConfig {
                drain_ratio: 1,
                ..NodeConfig::small_test()
            }
        };
        cfg.codec = None; // isolate the dedup effect from compression
        let mut node = ComputeNode::new(cfg);
        node.register_app("a");
        let mut state = image.clone();
        for step in 1..=10 {
            evolve(&mut state, step);
            node.checkpoint("a", &state).unwrap();
            node.drain_all().unwrap();
        }
        (node.io().bytes_written, node.ndp_stats().incremental_drains)
    };

    let (full_bytes, full_incr) = run(false);
    let (incr_bytes, incr_count) = run(true);
    assert_eq!(full_incr, 0);
    assert_eq!(incr_count, 9, "after the first full, all are deltas");
    assert!(
        incr_bytes < full_bytes / 5,
        "deltas should slash shipped bytes: {incr_bytes} vs {full_bytes}"
    );
}

#[test]
fn restore_walks_the_delta_chain_byte_exactly() {
    let bytes = 2 << 20;
    let mut node = ComputeNode::new(incr_cfg(100));
    node.register_app("a");
    let mut state = by_name("miniFE").unwrap().generate(bytes, 3);
    let mut final_state = state.clone();
    for step in 1..=7 {
        evolve(&mut state, step * 31);
        node.checkpoint("a", &state).unwrap();
        node.drain_all().unwrap();
        final_state = state.clone();
    }
    assert!(node.ndp_stats().incremental_drains >= 6);
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::RemoteIo);
    assert_eq!(r.data, final_state, "chain reconstruction must be exact");
}

#[test]
fn chain_limit_forces_periodic_full_images() {
    let bytes = 1 << 20;
    let mut node = ComputeNode::new(incr_cfg(3));
    node.register_app("a");
    let mut state = by_name("CoMD").unwrap().generate(bytes, 4);
    for step in 1..=9 {
        evolve(&mut state, step * 7);
        node.checkpoint("a", &state).unwrap();
        node.drain_all().unwrap();
    }
    // Drains: full, d, d, d, full, d, d, d, full -> 6 deltas.
    assert_eq!(node.ndp_stats().incremental_drains, 6);
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.data, state);
}

#[test]
fn node_loss_resets_the_diff_base() {
    let bytes = 1 << 20;
    let mut node = ComputeNode::new(incr_cfg(100));
    node.register_app("a");
    let mut state = by_name("miniMD").unwrap().generate(bytes, 5);
    node.checkpoint("a", &state).unwrap();
    node.drain_all().unwrap();
    evolve(&mut state, 1);
    node.checkpoint("a", &state).unwrap();
    node.drain_all().unwrap();
    assert_eq!(node.ndp_stats().incremental_drains, 1);

    node.inject_failure(FailureKind::NodeLoss);
    let _ = node.restore("a").unwrap();

    // After node loss the encoder has no base: next drain must be full,
    // and restore from it alone must work.
    evolve(&mut state, 2);
    // The restore rolled state back; continue from the restored point.
    let mut post = node.restore("a").unwrap().data;
    evolve(&mut post, 3);
    node.checkpoint("a", &post).unwrap();
    node.drain_all().unwrap();
    assert_eq!(
        node.ndp_stats().incremental_drains,
        1,
        "post-loss drain must be a full image"
    );
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.data, post);
}

#[test]
fn incremental_composes_with_compression() {
    let bytes = 2 << 20;
    let mut cfg = incr_cfg(100);
    cfg.codec = Some(("gz", 1));
    let mut node = ComputeNode::new(cfg);
    node.register_app("a");
    let mut state = by_name("pHPCCG").unwrap().generate(bytes, 6);
    for step in 1..=5 {
        evolve(&mut state, step * 11);
        node.checkpoint("a", &state).unwrap();
        node.drain_all().unwrap();
    }
    node.inject_failure(FailureKind::NodeLoss);
    let r = node.restore("a").unwrap();
    assert_eq!(r.data, state);
    // Compressed deltas: tiny on the wire.
    let shipped = node.io().bytes_written;
    assert!(
        shipped < (bytes as u64) * 2,
        "5 checkpoints shipped in {shipped} bytes"
    );
}

#[test]
fn per_rank_chains_are_independent() {
    let bytes = 512 << 10;
    let mut node = ComputeNode::new(incr_cfg(100));
    node.register_app("a");
    let gen = by_name("HPCCG").unwrap();
    let mut states: Vec<Vec<u8>> =
        (0..4).map(|r| gen.generate_rank(bytes, 9, r)).collect();
    for round in 1..=3 {
        for (rank, st) in states.iter_mut().enumerate() {
            evolve(st, round * 17 + rank as u64);
            node.checkpoint_rank("a", rank as u32, st).unwrap();
        }
        node.drain_all().unwrap();
    }
    node.inject_failure(FailureKind::NodeLoss);
    for (rank, st) in states.iter().enumerate() {
        let r = node.restore_rank("a", rank as u32).unwrap();
        assert_eq!(&r.data, st, "rank {rank}");
    }
}

#[test]
fn missing_base_after_manual_tampering_is_detected() {
    // If the chain is broken (base object missing), restore must error
    // rather than return wrong data. Build chain, then kill before the
    // NEXT full; simulate by asking for a rank that has only deltas —
    // construct via two nodes sharing nothing.
    let bytes = 256 << 10;
    let mut node = ComputeNode::new(incr_cfg(2));
    node.register_app("a");
    let st = by_name("CoMD").unwrap().generate(bytes, 8);
    node.checkpoint("a", &st).unwrap();
    node.drain_all().unwrap();
    // Normal restore works.
    node.inject_failure(FailureKind::NodeLoss);
    assert!(node.restore("a").is_ok());
    // A bogus rank has nothing.
    assert!(matches!(
        node.restore_rank("a", 9).unwrap_err(),
        NodeError::NoCheckpoint
    ));
}

#[test]
fn cross_rank_dedup_on_real_workloads() {
    // §7's second opportunity: neighboring ranks share zero pages and
    // common structures; a content-addressed store collapses them.
    let gen = by_name("HPCCG").unwrap();
    let mut store = DedupStore::new();
    for rank in 0..8 {
        let img = gen.generate_rank(512 << 10, 12, rank);
        let recipe = store.ingest(&img, 4096);
        assert_eq!(store.reassemble(&recipe).unwrap(), img);
    }
    // HPCCG images share the metadata page and zero regions at minimum.
    assert!(
        store.dedup_factor() > 0.1,
        "cross-rank dedup factor = {}",
        store.dedup_factor()
    );
}
