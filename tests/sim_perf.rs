//! Determinism of the simulation plane under the work-stealing
//! executor and the pooled engine: every thread count must produce
//! bit-identical replica results, pooled event streams, and sweep
//! outputs for a pinned seed — parallelism and buffer reuse are pure
//! performance changes, never semantic ones.

use ndp_checkpoint::cr_core::cache::{solve_cycle_cached, solve_cycle_many};
use ndp_checkpoint::cr_core::par::par_map_in;
use ndp_checkpoint::cr_core::{analytic, ratio_opt};
use ndp_checkpoint::cr_sim::{
    run_engine, run_engine_cold, run_fleet_observed_in, simulate_avg_in,
    SimFaults, SimOptions,
};
use ndp_checkpoint::prelude::*;

fn sys() -> SystemParams {
    SystemParams::exascale_default()
}

fn strat() -> Strategy {
    Strategy::local_io_ndp(0.85, Some(CompressionSpec::gzip1_ndp()))
}

#[test]
fn simulate_avg_is_bit_identical_across_thread_counts() {
    let opts = SimOptions::quick(42);
    let one = simulate_avg_in(1, &sys(), &strat(), &opts, 12);
    for threads in [2, 3, 8] {
        let many = simulate_avg_in(threads, &sys(), &strat(), &opts, 12);
        assert_eq!(
            one.pooled, many.pooled,
            "{threads}-thread pooled breakdown diverged"
        );
        assert_eq!(one.progress_rates, many.progress_rates);
        for (i, (a, b)) in
            one.replicas.iter().zip(&many.replicas).enumerate()
        {
            assert_eq!(a.breakdown, b.breakdown, "replica {i}");
            assert_eq!(a.stats, b.stats, "replica {i}");
        }
    }
}

#[test]
fn observed_fleet_streams_are_bit_identical_across_thread_counts() {
    let opts = SimOptions::quick(7);
    let faults = SimFaults {
        p_drain_error: 0.05,
        p_local_corrupt: 0.02,
        ..SimFaults::default()
    };
    let one = run_fleet_observed_in(1, &sys(), &strat(), &opts, &faults, 6);
    for threads in [2, 6] {
        let many = run_fleet_observed_in(
            threads,
            &sys(),
            &strat(),
            &opts,
            &faults,
            6,
        );
        assert_eq!(one.len(), many.len());
        for (i, ((ra, ea), (rb, eb))) in one.iter().zip(&many).enumerate() {
            assert_eq!(ra.breakdown, rb.breakdown, "replica {i} result");
            assert_eq!(ra.stats, rb.stats, "replica {i} stats");
            assert_eq!(ea, eb, "replica {i} event stream");
        }
    }
}

#[test]
fn pooled_engine_matches_cold_engine_across_workers() {
    // Exercise the pool from executor worker threads (each worker
    // builds its own pooled engine and reuses it across claimed
    // replicas), then compare against cold per-replica engines.
    let seeds: Vec<u64> = (0..24).collect();
    let pooled = par_map_in(4, &seeds, |&s| {
        run_engine(&sys(), &strat(), &SimOptions::quick(s))
    });
    for (s, r) in seeds.iter().zip(&pooled) {
        let cold = run_engine_cold(&sys(), &strat(), &SimOptions::quick(*s));
        assert_eq!(r.breakdown, cold.breakdown, "seed {s}");
        assert_eq!(r.stats, cold.stats, "seed {s}");
    }
}

#[test]
fn cached_solver_is_bit_identical_to_direct_solver_in_sweeps() {
    // The memoized path feeding the ratio sweep must agree exactly with
    // the direct analytic solver for every grid point, hit or miss.
    let s = sys();
    let pairs: Vec<(SystemParams, Strategy)> = (1..=50)
        .map(|ratio| (s, Strategy::local_io_host(ratio, 0.8, None)))
        .collect();
    // Twice: first pass misses, second pass hits the cache.
    for pass in 0..2 {
        let batch = solve_cycle_many(&pairs);
        for ((sys_p, strat_p), got) in pairs.iter().zip(&batch) {
            let want = analytic::solve_cycle(sys_p, strat_p);
            assert_eq!(
                got.cycle_time.to_bits(),
                want.cycle_time.to_bits(),
                "pass {pass}"
            );
            assert_eq!(
                got.work_per_cycle.to_bits(),
                want.work_per_cycle.to_bits(),
                "pass {pass}"
            );
            let cached = solve_cycle_cached(sys_p, strat_p);
            assert_eq!(
                cached.progress_rate().to_bits(),
                want.progress_rate().to_bits(),
                "pass {pass}"
            );
        }
    }
}

#[test]
fn ratio_sweep_unchanged_by_memoized_batch_path() {
    // Figure 4's sweep now routes through solve_cycle_many; the result
    // must equal what per-point direct solves produce.
    let s = sys();
    let sweep = ratio_opt::host_overhead_sweep(&s, 0.8, None, 60);
    assert_eq!(sweep.len(), 60);
    for (ratio, breakdown) in &sweep {
        let strat = Strategy::local_io_host(*ratio, 0.8, None);
        let direct = analytic::solve_cycle(&s, &strat).breakdown;
        assert_eq!(breakdown, &direct, "ratio {ratio}");
    }
}
