//! Bit-rot injection drills: corrupted checkpoints must be *detected*
//! and skipped in favor of the next recovery level — never restored
//! silently.

use ndp_checkpoint::cr_node::node::{
    ComputeNode, FailureKind, NodeConfig, NodeError, RestoreSource,
};
use ndp_checkpoint::cr_workloads::{by_name, CheckpointGenerator};

fn cfg() -> NodeConfig {
    NodeConfig {
        drain_ratio: 1,
        partner_ratio: 1,
        ..NodeConfig::small_test()
    }
}

fn image(step: u64) -> Vec<u8> {
    by_name("CoMD").unwrap().generate(256 << 10, step)
}

#[test]
fn corrupt_local_falls_through_to_partner() {
    let mut node = ComputeNode::new(cfg());
    node.register_app("a");
    let img = image(1);
    node.checkpoint("a", &img).unwrap();
    assert!(node.tamper_local("a", 0));
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::Partner);
    assert_eq!(r.data, img, "partner copy must be intact");
    assert_eq!(node.corruptions_detected(), 1);
}

#[test]
fn corrupt_local_falls_through_to_io_without_partner() {
    let mut node = ComputeNode::new(NodeConfig {
        partner_ratio: 0,
        ..cfg()
    });
    node.register_app("a");
    let img = image(2);
    node.checkpoint("a", &img).unwrap();
    node.drain_all().unwrap();
    assert!(node.tamper_local("a", 0));
    let r = node.restore("a").unwrap();
    assert_eq!(r.source, RestoreSource::RemoteIo);
    assert_eq!(r.data, img);
    assert_eq!(node.corruptions_detected(), 1);
}

#[test]
fn corrupt_remote_object_is_an_error_not_wrong_data() {
    let mut node = ComputeNode::new(NodeConfig {
        partner_ratio: 0,
        ..cfg()
    });
    node.register_app("a");
    node.checkpoint("a", &image(3)).unwrap();
    node.drain_all().unwrap();
    assert!(node.tamper_remote("a", 0));
    node.inject_failure(FailureKind::NodeLoss);
    match node.restore("a") {
        Err(NodeError::Corrupt) | Err(NodeError::Codec(_)) => {}
        Ok(r) => panic!(
            "restored {} bytes from a tampered object",
            r.data.len()
        ),
        Err(e) => panic!("unexpected error {e}"),
    }
    assert!(node.corruptions_detected() >= 1 || node.restore("a").is_err());
}

#[test]
fn intact_paths_unaffected_by_integrity_machinery() {
    let mut node = ComputeNode::new(cfg());
    node.register_app("a");
    let img = image(4);
    node.checkpoint("a", &img).unwrap();
    node.drain_all().unwrap();
    for kind in [FailureKind::LocalSurvivable, FailureKind::NodeLoss] {
        node.inject_failure(kind);
        let r = node.restore("a").unwrap();
        assert_eq!(r.data, img);
    }
    assert_eq!(node.corruptions_detected(), 0);
}

#[test]
fn corruption_counter_accumulates() {
    let mut node = ComputeNode::new(cfg());
    node.register_app("a");
    for step in 0..3 {
        let img = image(10 + step);
        node.checkpoint("a", &img).unwrap();
        node.tamper_local("a", 0);
        // Local corrupt -> partner serves.
        let r = node.restore("a").unwrap();
        assert_eq!(r.source, RestoreSource::Partner);
    }
    assert_eq!(node.corruptions_detected(), 3);
}
