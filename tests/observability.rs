//! Observability determinism grid: attaching any sink to the event bus
//! must leave every observed computation bit-identical to the
//! unobserved one, and the artifacts the sinks produce must themselves
//! be deterministic across runs.

use ndp_checkpoint::cr_node::faults::FaultPlaneConfig;
use ndp_checkpoint::cr_node::ndp::StepOutcome;
use ndp_checkpoint::cr_node::node::{ComputeNode, NodeConfig};
use ndp_checkpoint::cr_obs::metrics::{bucket_bound, bucket_index, Metrics};
use ndp_checkpoint::cr_obs::{Bus, JsonLinesSink, RingSink, VecSink};
use ndp_checkpoint::cr_sim::{
    run_engine_faulty, run_engine_observed, run_engine_traced, SimFaults,
    SimOptions, Trace,
};
use ndp_checkpoint::prelude::*;

fn sys() -> SystemParams {
    SystemParams::exascale_default()
}

fn strat() -> Strategy {
    Strategy::local_io_ndp(0.85, None)
}

fn faults() -> SimFaults {
    SimFaults {
        p_drain_error: 0.05,
        p_local_corrupt: 0.02,
        ..SimFaults::default()
    }
}

/// The tentpole guarantee: a pinned-seed simulation produces the same
/// SimResult whether the bus is disabled or feeding a vec, ring, or
/// JSON-lines sink.
#[test]
fn sim_results_are_identical_across_all_sinks() {
    let opts = SimOptions::quick(20260807);
    let baseline = run_engine_faulty(&sys(), &strat(), &opts, &faults());
    let buses: Vec<(&str, Bus)> = vec![
        ("off", Bus::disabled()),
        ("vec", Bus::with_sink(VecSink::new())),
        ("ring", Bus::with_sink(RingSink::new(512))),
        ("json", Bus::with_sink(JsonLinesSink::new())),
    ];
    for (name, bus) in buses {
        let r = run_engine_observed(&sys(), &strat(), &opts, &faults(), &bus);
        assert_eq!(
            r.breakdown, baseline.breakdown,
            "breakdown drifted under sink {name}"
        );
        assert_eq!(
            r.stats, baseline.stats,
            "stats drifted under sink {name}"
        );
        assert_eq!(
            format!("{r:?}"),
            format!("{baseline:?}"),
            "debug dump drifted under sink {name}"
        );
    }
}

/// Two observed runs with the same seed must render byte-identical
/// event streams (the JSON artifact is as deterministic as the run).
#[test]
fn json_event_stream_is_deterministic() {
    let opts = SimOptions::quick(7);
    let render = |_: u32| {
        let bus = Bus::with_sink(JsonLinesSink::new());
        run_engine_observed(&sys(), &strat(), &opts, &faults(), &bus);
        bus.render()
    };
    let a = render(0);
    let b = render(1);
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// `run_engine_traced` is now a thin wrapper over the bus: rebuilding
/// the timeline from the raw event stream must agree with it exactly.
#[test]
fn trace_rebuilt_from_events_matches_traced_run() {
    let opts = SimOptions::quick(11);
    let (r1, trace) = run_engine_traced(&sys(), &strat(), &opts);
    let bus = Bus::with_sink(VecSink::new());
    let r2 = run_engine_observed(
        &sys(),
        &strat(),
        &opts,
        &SimFaults::default(),
        &bus,
    );
    let rebuilt = Trace::from_events(&bus.drain());
    assert_eq!(r1.breakdown, r2.breakdown);
    assert_eq!(trace.spans, rebuilt.spans);
    assert_eq!(trace.marks, rebuilt.marks);
    assert!(!rebuilt.spans.is_empty());
    assert!(!rebuilt.marks.is_empty());
}

fn chaos_node(bus: Option<&Bus>) -> ComputeNode {
    let cfg = NodeConfig {
        drain_ratio: 1,
        codec: Some(("gz", 1)),
        faults: Some(FaultPlaneConfig::uniform(99, 0.05)),
        ..NodeConfig::small_test()
    };
    let mut node = ComputeNode::new(cfg);
    node.register_app("obs");
    if let Some(bus) = bus {
        node.set_observer(bus);
    }
    node
}

fn drive(node: &mut ComputeNode) {
    for i in 0..6u8 {
        let img = vec![i.wrapping_mul(37); 96 << 10];
        let _ = node.checkpoint("obs", &img);
        for _ in 0..200 {
            if matches!(node.ndp_step(), Ok(StepOutcome::Idle)) {
                break;
            }
        }
    }
}

/// The functional emulation under fault injection: the full node
/// (NVM + NDP + NIC + remote + fault plane) behaves identically with
/// an observer attached, and the bus mirrors the fault log one-to-one.
#[test]
fn node_behaviour_is_identical_with_observer_attached() {
    let mut plain = chaos_node(None);
    drive(&mut plain);

    let bus = Bus::with_sink(VecSink::new());
    let mut observed = chaos_node(Some(&bus));
    drive(&mut observed);

    assert_eq!(
        format!("{:?}", plain.ndp_stats()),
        format!("{:?}", observed.ndp_stats())
    );
    assert_eq!(
        plain.faults().render_log(),
        observed.faults().render_log()
    );
    let events = bus.drain();
    assert!(!events.is_empty(), "observed node must emit events");
    let fault_events =
        events.iter().filter(|e| e.kind.name() == "fault").count();
    assert_eq!(fault_events, observed.faults().events().len());
}

/// Histogram bucketing is pure integer arithmetic, so the boundaries
/// are identical on every platform: value v lands in the first bucket
/// whose upper bound is >= v.
#[test]
fn histogram_buckets_are_platform_independent() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(u64::MAX), 64);
    for v in [0u64, 1, 2, 255, 256, 1 << 20, u64::MAX] {
        let i = bucket_index(v);
        assert!(v <= bucket_bound(i), "v={v} above bound of its bucket");
        if i > 0 {
            assert!(
                v > bucket_bound(i - 1),
                "v={v} should not fit the previous bucket"
            );
        }
    }
}

/// Metrics snapshots built from the same deterministic run are
/// byte-identical (BTreeMap ordering, stable float rendering).
#[test]
fn metrics_snapshot_is_deterministic() {
    let snapshot = |_: u32| {
        let bus = Bus::with_sink(VecSink::new());
        run_engine_observed(
            &sys(),
            &strat(),
            &SimOptions::quick(3),
            &faults(),
            &bus,
        );
        let mut m = Metrics::new();
        for e in bus.drain() {
            m.inc(&format!("events_{}", e.kind.name()), 1);
            m.observe("event_t_s", e.t as u64);
        }
        m.to_json("grid")
    };
    let a = snapshot(0);
    let b = snapshot(1);
    assert!(a.contains("\"schema\": \"metrics/v1\""));
    assert_eq!(a, b);
}
