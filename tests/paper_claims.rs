//! The paper's qualitative claims, asserted against the reproduction
//! harness at reduced fidelity (these are the statements EXPERIMENTS.md
//! tracks quantitatively).

use cr_bench_shim::*;

/// `cr-bench` is a binary crate; re-run its experiment functions here
/// through the library interface.
mod cr_bench_shim {
    pub use ndp_checkpoint::prelude::*;
}

use ndp_checkpoint::cr_core::ratio_opt;

fn sim(sys: &SystemParams, strat: &Strategy, seed: u64) -> f64 {
    let opts = SimOptions {
        seed,
        min_failures: 1200,
        min_work: 0.0,
        max_wall: 1e12,
    };
    simulate_avg(sys, strat, &opts, 3).progress_rate()
}

/// §6.3: like-for-like, NDP always beats the host configuration — with
/// or without compression, at every recovery probability.
#[test]
fn ndp_beats_host_like_for_like_everywhere() {
    let sys = SystemParams::exascale_default();
    for (i, &p) in [0.2, 0.5, 0.8, 0.96].iter().enumerate() {
        for comp in [false, true] {
            let (host_comp, ndp_comp) = if comp {
                (
                    Some(CompressionSpec::gzip1_host()),
                    Some(CompressionSpec::gzip1_ndp()),
                )
            } else {
                (None, None)
            };
            let host = ratio_opt::best_host_strategy(&sys, p, host_comp).0;
            let ndp = Strategy::local_io_ndp(p, ndp_comp);
            let ph = sim(&sys, &host, 1000 + i as u64);
            let pn = sim(&sys, &ndp, 2000 + i as u64);
            assert!(
                pn > ph,
                "p={p} comp={comp}: ndp {pn} <= host {ph}"
            );
        }
    }
}

/// §6.3 also claims NDP *without* compression beats multilevel *with*
/// compression. Under this reproduction's more detailed failure model
/// (I/O restores can themselves be interrupted, forcing repeat
/// restores and destroying local-recovery eligibility), that crossover
/// holds in the paper's emphasized high-`p_local` regime but inverts at
/// low `p_local`, where the 18.7-minute uncompressed restores dominate.
/// See EXPERIMENTS.md ("Deviations").
#[test]
fn ndp_plain_vs_host_compressed_crossover() {
    let sys = SystemParams::exascale_default();
    let host_c = |p| {
        ratio_opt::best_host_strategy(&sys, p, Some(CompressionSpec::gzip1_host()))
            .0
    };
    // High p_local (paper's 4%-I/O-recovery regime): NDP-plain wins.
    let p = 0.96;
    let h = sim(&sys, &host_c(p), 41);
    let n = sim(&sys, &Strategy::local_io_ndp(p, None), 42);
    assert!(n > h, "at p=0.96 NDP-plain {n} must beat host-comp {h}");
    // Low p_local: compression's cheap restores win instead.
    let p = 0.2;
    let h = sim(&sys, &host_c(p), 43);
    let n = sim(&sys, &Strategy::local_io_ndp(p, None), 44);
    assert!(
        h > n,
        "at p=0.2 the documented inversion should appear: host-comp {h} vs ndp-plain {n}"
    );
}

/// §6.3 headline: a large progress gap between multilevel+compression
/// and NDP+compression (paper: 51% -> 78%).
#[test]
fn headline_gap_is_large() {
    let sys = SystemParams::exascale_default();
    let p = 0.8;
    let host_c = ratio_opt::best_host_strategy(
        &sys,
        p,
        Some(CompressionSpec::gzip1_host()),
    )
    .0;
    let ndp_c = Strategy::local_io_ndp(p, Some(CompressionSpec::gzip1_ndp()));
    let h = sim(&sys, &host_c, 31);
    let n = sim(&sys, &ndp_c, 32);
    assert!(
        n - h > 0.08,
        "gap too small: host+comp {h} vs ndp+comp {n}"
    );
    assert!(n > 0.78, "ndp+comp at p=0.8 should exceed 78%: {n}");
}

/// §6.4: under NDP the host-blocking Checkpoint-I/O component vanishes
/// and Rerun-I/O collapses.
#[test]
fn fig7_component_claims() {
    let sys = SystemParams::exascale_default();
    let p = 0.96;
    let host = ratio_opt::best_host_strategy(&sys, p, None).0;
    let ndp_c = Strategy::local_io_ndp(p, Some(CompressionSpec::gzip1_ndp()));
    let opts = SimOptions {
        seed: 77,
        min_failures: 2500,
        min_work: 0.0,
        max_wall: 1e12,
    };
    let h = simulate_avg(&sys, &host, &opts, 4).fractions();
    let n = simulate_avg(&sys, &ndp_c, &opts, 4).fractions();
    assert!(h.checkpoint_io > 0.03, "host ckpt-IO: {}", h.checkpoint_io);
    assert_eq!(n.checkpoint_io, 0.0, "NDP must have zero ckpt-IO");
    assert!(
        n.rerun_io < h.rerun_io / 2.0,
        "rerun-IO must collapse: host {} vs ndp {}",
        h.rerun_io,
        n.rerun_io
    );
    // NDP+compression approaches the 90% single-level bound.
    assert!(
        n.compute > 0.86,
        "NDP+comp progress {} should approach 90%",
        n.compute
    );
}

/// §6.5 / Figure 8: the NDP advantage grows with checkpoint size, and a
/// 2 GB/s NVM with NDP+compression beats a 15 GB/s NVM with host
/// compression.
#[test]
fn fig8_claims() {
    let p = 0.85;
    let cf = 0.73;
    let sys_at = |size_frac: f64, local_bw: f64| SystemParams {
        checkpoint_bytes: size_frac * 140.0 * GB,
        local_bw,
        ..SystemParams::exascale_default()
    };
    // Sensitivity configurations re-optimize the local interval (Daly)
    // per hardware point, as the experiment harness does.
    let ndp_daly = |comp| Strategy::LocalIoNdp {
        interval: None,
        ratio: None,
        p_local: p,
        compression: comp,
        drain_lag: Default::default(),
    };
    let gain_at = |frac: f64, seed: u64| {
        let fast = sys_at(frac, 15.0 * GB);
        let host_c = ratio_opt::best_host_strategy_at(
            &fast,
            p,
            Some(CompressionSpec::gzip1_host_with_factor(cf)),
            None,
        )
        .0;
        let ndp_c = ndp_daly(Some(CompressionSpec::gzip1_ndp_with_factor(cf)));
        sim(&fast, &ndp_c, seed) - sim(&fast, &host_c, seed + 1)
    };
    let gain_small = gain_at(0.1, 51);
    let gain_large = gain_at(0.8, 61);
    assert!(
        gain_large > gain_small,
        "NDP gain must grow with checkpoint size: {gain_small} -> {gain_large}"
    );

    // Slow NVM + NDP+comp vs fast NVM + host comp, at full size.
    let fast = sys_at(0.8, 15.0 * GB);
    let slow = sys_at(0.8, 2.0 * GB);
    let host_fast = ratio_opt::best_host_strategy_at(
        &fast,
        p,
        Some(CompressionSpec::gzip1_host_with_factor(cf)),
        None,
    )
    .0;
    let ndp_slow = ndp_daly(Some(CompressionSpec::gzip1_ndp_with_factor(cf)));
    let ph = sim(&fast, &host_fast, 71);
    let pn = sim(&slow, &ndp_slow, 72);
    assert!(
        pn > ph - 0.02,
        "L-2GBps+NC ({pn}) should match or beat L-15GBps+HC ({ph})"
    );
}

/// §6.5 / Figure 9: the NDP advantage shrinks as MTTI grows.
#[test]
fn fig9_claims() {
    let p = 0.85;
    let cf = 0.73;
    let gain_at = |mtti_min: f64, seed: u64| {
        let sys = SystemParams::exascale_default().with_mtti(mtti_min * MINUTE);
        let host_c = ratio_opt::best_host_strategy_at(
            &sys,
            p,
            Some(CompressionSpec::gzip1_host_with_factor(cf)),
            None,
        )
        .0;
        let ndp_c = Strategy::LocalIoNdp {
            interval: None,
            ratio: None,
            p_local: p,
            compression: Some(CompressionSpec::gzip1_ndp_with_factor(cf)),
            drain_lag: Default::default(),
        };
        sim(&sys, &ndp_c, seed) - sim(&sys, &host_c, seed + 1)
    };
    let gain_30 = gain_at(30.0, 81);
    let gain_150 = gain_at(150.0, 91);
    assert!(
        gain_30 > gain_150,
        "gain must shrink with MTTI: 30min {gain_30} vs 150min {gain_150}"
    );
    assert!(gain_150 > -0.01, "NDP should never lose: {gain_150}");
}

/// §3.4: multilevel checkpointing sits between I/O-only and local-only;
/// the system is designed for ~90% at the local level.
#[test]
fn ordering_io_multilevel_local() {
    let sys = SystemParams::exascale_default();
    let io = sim(
        &sys,
        &Strategy::IoOnly {
            interval: None,
            compression: None,
        },
        1,
    );
    let multi = sim(&sys, &Strategy::local_io_host(20, 0.85, None), 2);
    let local = sim(&sys, &Strategy::LocalOnly { interval: None }, 3);
    assert!(io < multi && multi < local, "io {io}, multi {multi}, local {local}");
    assert!((local - 0.90).abs() < 0.02, "local-only = {local}");
}

/// Figure 5 claims: host optimal ratios rise with p_local and fall with
/// compression; the NDP ratio depends only on the compression factor.
#[test]
fn fig5_claims() {
    let sys = SystemParams::exascale_default();
    let r_low = ratio_opt::best_host_ratio(&sys, 0.2, None).0;
    let r_high = ratio_opt::best_host_ratio(&sys, 0.96, None).0;
    assert!(r_high > r_low);
    let r_comp = ratio_opt::best_host_ratio(
        &sys,
        0.96,
        Some(CompressionSpec::gzip1_host()),
    )
    .0;
    assert!(r_comp < r_high);
    assert_eq!(ratio_opt::ndp_ratio(&sys, None), 8);
    assert_eq!(
        ratio_opt::ndp_ratio(&sys, Some(CompressionSpec::gzip1_ndp())),
        3
    );
}
