//! Deterministic shape checks of the cheap experiments (Tables 1/3,
//! Figures 1/4/5) plus a reduced-size Table 2 run: the reproduction's
//! qualitative structure must match the paper without needing long
//! simulations.

use ndp_checkpoint::cr_core::{daly, ndp_sizing, ratio_opt};
use ndp_checkpoint::prelude::*;

#[test]
fn fig1_anchor_points() {
    // Figure 1 anchors: very low ratios give very low progress; 200
    // gives ~90%; 10^4 is near-perfect.
    assert!(daly::progress_for_ratio(1.0) < 0.3);
    let p200 = daly::progress_for_ratio(200.0);
    assert!((p200 - 0.90).abs() < 0.01, "{p200}");
    assert!(daly::progress_for_ratio(1e4) > 0.98);
}

#[test]
fn table1_projection_values() {
    use ndp_checkpoint::cr_core::projection::ExascaleProjection;
    let p = ExascaleProjection::paper_default();
    assert_eq!(p.node_count, 100_000);
    assert_eq!(p.node_memory, 140.0 * GB);
    assert_eq!(p.checkpoint_bytes, 112.0 * GB);
    assert_eq!(p.io_bw_per_node, 100.0 * MB);
    // 12.44 GB/s commit requirement (within Daly-inversion rounding).
    assert!((p.required_commit_bw / GB - 12.44).abs() < 1.0);
}

#[test]
fn table3_core_counts() {
    let sys = SystemParams::exascale_default();
    let rows = ndp_sizing::table3(&sys);
    let by_label: Vec<(String, u32)> = rows
        .iter()
        .map(|(u, s)| (u.label(), s.cores))
        .collect();
    let expected = [
        ("gzip(1)", 4u32),
        ("gzip(6)", 8),
        ("bzip2(1)", 34),
        ("bzip2(9)", 41),
        ("xz(1)", 21),
        ("xz(6)", 125),
        ("lz4(1)", 1),
    ];
    for ((label, cores), (e_label, e_cores)) in
        by_label.iter().zip(expected.iter())
    {
        assert_eq!(label, e_label);
        assert_eq!(cores, e_cores, "{label}");
    }
}

#[test]
fn fig4_tradeoff_shape() {
    // Checkpoint-I/O time falls and Rerun-I/O rises as the ratio grows.
    let sys = SystemParams::exascale_default();
    let sweep = ratio_opt::host_overhead_sweep(&sys, 0.85, None, 60);
    let first = sweep.first().unwrap().1.as_fractions();
    let last = sweep.last().unwrap().1.as_fractions();
    assert!(last.checkpoint_io < first.checkpoint_io);
    assert!(last.rerun_io > first.rerun_io);
}

#[test]
fn fig5_monotonicity() {
    let sys = SystemParams::exascale_default();
    let rows = ratio_opt::figure5_table(
        &sys,
        &[0.2, 0.5, 0.8, 0.96],
        &[None, Some(0.73)],
    );
    // Within a row, host ratios rise with p_local.
    for row in &rows {
        for pair in row.host.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "host ratio fell with p_local: {:?}",
                row.host
            );
        }
    }
    // Compression lowers ratios column-wise.
    for (plain, comp) in rows[0].host.iter().zip(rows[1].host.iter()) {
        assert!(comp.1 <= plain.1);
    }
    assert!(rows[1].ndp <= rows[0].ndp);
}

#[test]
fn table2_reduced_run_preserves_orderings() {
    // A 1 MiB-per-app compression run: per-app ordering (HPCCG-family
    // most compressible, miniSmac least) and per-codec speed ordering
    // (lzf fastest, rz slowest) must hold even at reduced size.
    use ndp_checkpoint::cr_compress::measure::measure;
    use ndp_checkpoint::cr_compress::registry::study_codecs;
    use ndp_checkpoint::cr_workloads::{all_mini_apps, CheckpointGenerator};

    let codecs = study_codecs();
    let gz1 = &codecs[0];
    let mut factors = std::collections::HashMap::new();
    let mut lzf_speed = 0.0_f64;
    let mut rz_speed = 0.0_f64;
    for app in all_mini_apps() {
        let img = app.generate(1 << 20, 33);
        let m = measure(gz1.as_ref(), &img);
        factors.insert(app.name().to_string(), m.factor);
        if app.name() == "CoMD" {
            // Best-of-3 so scheduler noise on a loaded runner can't
            // flip the speed-ordering assertion below.
            for _ in 0..3 {
                lzf_speed = lzf_speed
                    .max(measure(codecs[6].as_ref(), &img).compress_rate);
                rz_speed = rz_speed
                    .max(measure(codecs[4].as_ref(), &img).compress_rate);
            }
        }
    }
    assert!(factors["HPCCG"] > factors["miniFE"]);
    assert!(factors["miniFE"] > factors["miniMD"]);
    assert!(factors["miniMD"] > factors["miniSmac"]);
    assert!(factors["pHPCCG"] > 0.8);
    assert!(factors["miniSmac"] < 0.5);
    assert!(
        lzf_speed > 3.0 * rz_speed,
        "lzf {lzf_speed} must be much faster than rz {rz_speed}"
    );
}

#[test]
fn ndp_sizing_from_measured_codecs_is_feasible() {
    // Feeding our own measured averages through the Sec. 4.4 equations
    // must yield a plausible NDP: gz-family needs a few cores, lzf one
    // or two, and intervals land in minutes.
    use ndp_checkpoint::cr_compress::measure::measure;
    use ndp_checkpoint::cr_compress::registry::by_name;
    use ndp_checkpoint::cr_workloads::{all_mini_apps, CheckpointGenerator};

    let sys = SystemParams::exascale_default();
    let gz = by_name("gz", 1).unwrap();
    let mut f_sum = 0.0;
    let mut s_sum = 0.0;
    let apps = all_mini_apps();
    for app in &apps {
        let img = app.generate(1 << 20, 44);
        let m = measure(gz.as_ref(), &img);
        f_sum += m.factor;
        s_sum += m.compress_rate;
    }
    let n = apps.len() as f64;
    let sizing = ndp_sizing::size_ndp(&sys, f_sum / n, s_sum / n);
    // The required rate and interval depend only on the measured
    // compression factor (build-independent); the core count also
    // depends on throughput, which collapses in debug builds, so only
    // sanity-check it.
    assert!(
        sizing.required_rate > 250e6 && sizing.required_rate < 550e6,
        "{:?}",
        sizing
    );
    assert!(sizing.cores >= 1, "{:?}", sizing);
    assert!(
        sizing.min_interval > 60.0 && sizing.min_interval < 900.0,
        "{:?}",
        sizing
    );
}
