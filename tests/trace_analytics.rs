//! Trace analytics end-to-end: causal spans emitted by a real fleet
//! run, the `indicators/v1` fold, the Chrome trace exporter, and the
//! `crx obs diff` regression gate (exercised both through the library
//! and through the real binary's exit codes).

use std::collections::BTreeMap;
use std::process::Command;

use ndp_checkpoint::cr_obs::analyze::{
    analyze, diff_flat, flatten_numbers, merge_percentiles, IndicatorReport,
};
use ndp_checkpoint::cr_obs::export::{
    chrome_trace_merged, validate_chrome_trace,
};
use ndp_checkpoint::cr_obs::json::parse as parse_json;
use ndp_checkpoint::cr_obs::{Event, EventKind};
use ndp_checkpoint::cr_sim::{run_fleet_observed, SimFaults, SimOptions};
use ndp_checkpoint::prelude::*;

fn fleet(seed: u64, replicas: u64) -> Vec<(ndp_checkpoint::cr_sim::SimResult, Vec<Event>)> {
    let sys = SystemParams::exascale_default();
    let strat = Strategy::local_io_ndp(0.85, None);
    let opts = SimOptions::quick(seed);
    let faults = SimFaults {
        p_drain_error: 0.05,
        p_local_corrupt: 0.02,
        ..SimFaults::default()
    };
    run_fleet_observed(&sys, &strat, &opts, &faults, replicas)
}

fn fleet_report(seed: u64, replicas: u64) -> IndicatorReport {
    let fleet = fleet(seed, replicas);
    let per_node: Vec<IndicatorReport> = fleet
        .iter()
        .enumerate()
        .map(|(i, (_, events))| analyze(&format!("node{i}"), events))
        .collect();
    merge_percentiles("fleet", &per_node)
}

/// Same seed, same fleet size — the indicator report must be
/// byte-identical across runs (the determinism the diff gate relies
/// on).
#[test]
fn indicator_report_is_byte_deterministic() {
    let a = fleet_report(20260807, 3).to_json();
    let b = fleet_report(20260807, 3).to_json();
    assert_eq!(a, b, "same seed must give a byte-identical report");
    let c = fleet_report(20260808, 3).to_json();
    assert_ne!(a, c, "different seed should move the indicators");
}

/// to_json -> from_json is lossless for every indicator value.
#[test]
fn indicator_report_round_trips_through_json() {
    let report = fleet_report(7, 2);
    let back = IndicatorReport::from_json(&report.to_json())
        .expect("well-formed report must re-parse");
    assert_eq!(report.label, back.label);
    assert_eq!(report.values(), back.values());
}

/// A real fleet run emits the causal span graph: every replica gets a
/// root `replica` span, and any recovery spans are parented inside it.
#[test]
fn fleet_runs_emit_nested_causal_spans() {
    let fleet = fleet(20260807, 2);
    for (i, (result, events)) in fleet.iter().enumerate() {
        let mut roots = Vec::new();
        let mut parents: BTreeMap<u64, u64> = BTreeMap::new();
        let mut opens = 0u64;
        let mut closes = 0u64;
        for e in events {
            match e.kind {
                EventKind::SpanOpen { id, parent, name } => {
                    opens += 1;
                    parents.insert(id, parent);
                    if name == "replica" {
                        roots.push((id, parent));
                    }
                    if name == "recovery" {
                        assert_ne!(
                            parent, 0,
                            "node {i}: recovery span must have a parent"
                        );
                    }
                }
                EventKind::SpanClose { .. } => closes += 1,
                _ => {}
            }
        }
        assert_eq!(
            roots.len(),
            1,
            "node {i}: exactly one replica root span"
        );
        assert_eq!(roots[0].1, 0, "node {i}: replica span is a root");
        assert_eq!(
            opens, closes,
            "node {i}: every span opened must be closed"
        );
        // Every non-root parent must itself be a known span.
        for (&id, &parent) in &parents {
            assert!(
                parent == 0 || parents.contains_key(&parent),
                "node {i}: span {id} has unknown parent {parent}"
            );
        }
        assert!(result.breakdown.total() > 0.0);
    }
}

/// The merged Chrome trace from a real fleet run passes the structural
/// validator: valid JSON, monotone timestamps per track, balanced
/// B/E and async b/e pairs.
#[test]
fn merged_chrome_trace_is_valid() {
    let fleet = fleet(20260807, 3);
    let streams: Vec<&[Event]> =
        fleet.iter().map(|(_, e)| e.as_slice()).collect();
    let trace = chrome_trace_merged(&streams);
    validate_chrome_trace(&trace).expect("exporter output must validate");
    // Spot-check shape: one process per node, causal span events
    // present.
    assert!(trace.contains("\"pid\":2"), "three nodes => pid 2 exists");
    assert!(trace.contains("\"cat\":\"causal\""));
}

/// The diff gate catches a synthetic ~10% utilization regression while
/// accepting an identical rerun (library-level).
#[test]
fn diff_gate_flags_synthetic_regression() {
    let base = fleet_report(20260807, 2);
    let same = fleet_report(20260807, 2);

    let flat = |r: &IndicatorReport| {
        let doc = parse_json(&r.to_json()).expect("report parses");
        flatten_numbers(&doc)
    };
    let tols = BTreeMap::new();

    let identical = diff_flat(&flat(&base), &flat(&same), 0.05, &tols);
    assert!(identical.ok(), "identical reports must pass the gate");

    // Degrade one indicator by 10% past a 5% tolerance.
    let mut current = base.clone();
    let key = "ndp_utilization_mean";
    let v = current.get(key).expect("fleet report has utilization");
    current.set(key, v * 0.9);
    let report = diff_flat(&flat(&base), &flat(&current), 0.05, &tols);
    assert!(!report.ok(), "10% drop must fail a 5% gate");
    assert!(report
        .regressions
        .iter()
        .any(|r| r.key == format!("indicators.{key}")));
}

/// The real `crx` binary: `obs diff` exits 0 on a self-diff and
/// nonzero on a different-seed report, and `report` is
/// byte-deterministic on disk.
#[test]
fn crx_obs_diff_exit_codes() {
    let crx = env!("CARGO_BIN_EXE_crx");
    let dir = std::env::temp_dir().join(format!(
        "trace_analytics_{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let base = dir.join("base.json");
    let again = dir.join("again.json");
    let other = dir.join("other.json");

    let gen = |seed: &str, out: &std::path::Path| {
        let st = Command::new(crx)
            .args([
                "report", "--seed", seed, "--replicas", "2", "--failures",
                "120", "--out",
            ])
            .arg(out)
            .status()
            .expect("run crx report");
        assert!(st.success(), "crx report must succeed");
    };
    gen("42", &base);
    gen("42", &again);
    gen("43", &other);

    let base_bytes = std::fs::read(&base).unwrap();
    assert_eq!(
        base_bytes,
        std::fs::read(&again).unwrap(),
        "crx report must be byte-deterministic for a pinned seed"
    );

    let diff = |a: &std::path::Path, b: &std::path::Path| {
        Command::new(crx)
            .args(["obs", "diff"])
            .arg(a)
            .arg(b)
            .args(["--tol", "0.05"])
            .output()
            .expect("run crx obs diff")
    };
    let ok = diff(&base, &again);
    assert!(
        ok.status.success(),
        "self-diff must pass: {}",
        String::from_utf8_lossy(&ok.stdout)
    );
    let bad = diff(&base, &other);
    assert!(
        !bad.status.success(),
        "different-seed diff must exit nonzero"
    );
    assert!(String::from_utf8_lossy(&bad.stdout).contains("REGRESSED"));

    let _ = std::fs::remove_dir_all(&dir);
}
