//! Property tests over the model space: for arbitrary (sane) systems
//! and strategies, both backends must produce valid, consistent results
//! — no panics, no accounting leaks, sensible monotonicities.
//!
//! The parameter space is sampled with a seeded ChaCha8 stream rather
//! than a property-testing framework, so the suite is fully
//! deterministic and dependency-free; each property sweeps a few dozen
//! drawn configurations.

use cr_rand::ChaCha8;
use ndp_checkpoint::prelude::*;
// Both preludes could export a name `Strategy`; import the C/R enum
// explicitly.
use ndp_checkpoint::cr_core::params::Strategy;

/// Deterministic generator over the physically sensible model space.
struct ParamGen {
    rng: ChaCha8,
}

impl ParamGen {
    fn new(seed: u64) -> Self {
        ParamGen {
            rng: ChaCha8::seed_from_u64(seed),
        }
    }

    fn system(&mut self) -> SystemParams {
        SystemParams {
            mtti: self.rng.gen_range(600.0, 7200.0), // 10 min .. 2 h
            checkpoint_bytes: self.rng.gen_range(10e9, 200e9),
            local_bw: self.rng.gen_range(1e9, 30e9),
            io_bw_per_node: self.rng.gen_range(20e6, 500e6),
        }
    }

    fn maybe_factor(&mut self, lo: f64, hi: f64) -> Option<f64> {
        if self.rng.gen_f64() < 0.5 {
            Some(self.rng.gen_range(lo, hi))
        } else {
            None
        }
    }

    fn host_strategy(&mut self) -> Strategy {
        Strategy::LocalIoHost {
            interval: Some(150.0),
            ratio: self.rng.gen_range(1.0, 60.0) as u32,
            p_local: self.rng.gen_f64(),
            compression: self
                .maybe_factor(0.2, 0.9)
                .map(CompressionSpec::gzip1_host_with_factor),
        }
    }

    fn ndp_strategy(&mut self) -> Strategy {
        Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: None,
            p_local: self.rng.gen_f64(),
            compression: self
                .maybe_factor(0.2, 0.9)
                .map(CompressionSpec::gzip1_ndp_with_factor),
            drain_lag: Default::default(),
        }
    }
}

fn quick_sim(sys: &SystemParams, strat: &Strategy, seed: u64) -> cr_sim::SimResult {
    let opts = SimOptions {
        seed,
        min_failures: 250,
        min_work: 0.0,
        max_wall: 1e12,
    };
    cr_sim::simulate(sys, strat, &opts)
}

#[test]
fn analytic_progress_is_valid_probability() {
    let mut g = ParamGen::new(0xA11C);
    for case in 0..24 {
        let sys = g.system();
        let strat = g.host_strategy();
        let sol = cr_core::analytic::solve_cycle(&sys, &strat);
        let p = sol.progress_rate();
        assert!(p > 0.0 && p <= 1.0, "case {case}: progress {p}");
        assert!(sol.breakdown.validate().is_ok(), "case {case}");
        // Buckets partition the cycle.
        assert!(
            (sol.breakdown.total() - sol.cycle_time).abs()
                <= 1e-6 * sol.cycle_time,
            "case {case}"
        );
    }
}

#[test]
fn simulator_accounting_never_leaks() {
    let mut g = ParamGen::new(0xACC7);
    for case in 0..12 {
        let sys = g.system();
        let strat = g.host_strategy();
        let r = quick_sim(&sys, &strat, case);
        assert!(r.breakdown.validate().is_ok(), "case {case}");
        assert!(
            (r.breakdown.total() - r.stats.wall_time).abs()
                <= 1e-6 * r.stats.wall_time.max(1.0),
            "case {case}"
        );
        assert!(
            (r.breakdown.compute - r.stats.work_done).abs() < 1e-6,
            "case {case}"
        );
        let p = r.breakdown.progress_rate();
        assert!(p > 0.0 && p <= 1.0, "case {case}");
    }
}

#[test]
fn simulator_is_deterministic() {
    let mut g = ParamGen::new(0xDE7E);
    for case in 0..6 {
        let sys = g.system();
        let strat = g.ndp_strategy();
        let a = quick_sim(&sys, &strat, case);
        let b = quick_sim(&sys, &strat, case);
        assert_eq!(a.breakdown, b.breakdown, "case {case}");
        assert_eq!(a.stats, b.stats, "case {case}");
    }
}

#[test]
fn analytic_progress_monotone_in_mtti() {
    let mut g = ParamGen::new(0x4771);
    for case in 0..24 {
        let sys = g.system();
        let strat = g.host_strategy();
        let lo = cr_core::analytic::progress_rate(&sys, &strat);
        let better = sys.with_mtti(sys.mtti * 2.0);
        let hi = cr_core::analytic::progress_rate(&better, &strat);
        assert!(
            hi >= lo - 1e-9,
            "case {case}: progress fell when failures halved: {lo} -> {hi}"
        );
    }
}

#[test]
fn analytic_progress_monotone_in_io_bandwidth() {
    let mut g = ParamGen::new(0x10B0);
    for case in 0..24 {
        let sys = g.system();
        let strat = g.host_strategy();
        let lo = cr_core::analytic::progress_rate(&sys, &strat);
        let better = SystemParams {
            io_bw_per_node: sys.io_bw_per_node * 4.0,
            ..sys
        };
        let hi = cr_core::analytic::progress_rate(&better, &strat);
        assert!(
            hi >= lo - 1e-9,
            "case {case}: progress fell with faster I/O: {lo} -> {hi}"
        );
    }
}

#[test]
fn ndp_never_loses_to_host_at_same_settings() {
    let mut g = ParamGen::new(0x0DDB);
    for case in 0..24 {
        let sys = g.system();
        let p_local = g.rng.gen_range(0.1, 0.99);
        let factor = g.maybe_factor(0.3, 0.9);
        let host = Strategy::LocalIoHost {
            interval: Some(150.0),
            ratio: cr_core::params::derive_costs(
                &sys,
                &Strategy::LocalIoNdp {
                    interval: Some(150.0),
                    ratio: None,
                    p_local,
                    compression: factor
                        .map(CompressionSpec::gzip1_ndp_with_factor),
                    drain_lag: Default::default(),
                },
            )
            .ratio,
            p_local,
            compression: factor.map(CompressionSpec::gzip1_host_with_factor),
        };
        let ndp = Strategy::LocalIoNdp {
            interval: Some(150.0),
            ratio: None,
            p_local,
            compression: factor.map(CompressionSpec::gzip1_ndp_with_factor),
            drain_lag: cr_core::params::DrainLagModel::Ignore,
        };
        // Same ratio, same compression: offloading the I/O write can
        // only help (lag-free accounting).
        let ph = cr_core::analytic::progress_rate(&sys, &host);
        let pn = cr_core::analytic::progress_rate(&sys, &ndp);
        assert!(
            pn >= ph - 1e-9,
            "case {case}: NDP {pn} lost to host {ph} at identical settings"
        );
    }
}

#[test]
fn sim_and_analytic_agree_loosely_on_host_configs() {
    let mut g = ParamGen::new(0x57A7);
    for case in 0..8 {
        let sys = g.system();
        let ratio = g.rng.gen_range(2.0, 40.0) as u32;
        let p_local = g.rng.gen_range(0.3, 0.98);
        let strat = Strategy::local_io_host(ratio, p_local, None);
        let a = cr_core::analytic::progress_rate(&sys, &strat);
        let opts = SimOptions {
            seed: 5,
            min_failures: 800,
            min_work: 0.0,
            max_wall: 1e12,
        };
        let s = simulate_avg(&sys, &strat, &opts, 2).progress_rate();
        assert!(
            (a - s).abs() < 0.08,
            "case {case}: analytic {a} vs sim {s} (ratio {ratio}, p {p_local})"
        );
    }
}
